#!/usr/bin/env bash
# apt-get with retries. Ubuntu mirror flakes (transient 403/timeout on
# azure.archive.ubuntu.com) are the single biggest source of spurious CI
# failures; a short backoff-and-retry absorbs nearly all of them.
#
# Usage: apt-install.sh PACKAGE...
set -euo pipefail

if [[ $# -eq 0 ]]; then
  echo "usage: $0 PACKAGE..." >&2
  exit 2
fi

attempts=3
for ((i = 1; i <= attempts; i++)); do
  if sudo apt-get update &&
     sudo apt-get install -y --no-install-recommends "$@"; then
    exit 0
  fi
  if ((i < attempts)); then
    echo "apt-get failed (attempt $i/$attempts); retrying in 20s..." >&2
    sleep 20
  fi
done
echo "apt-get failed after $attempts attempts" >&2
exit 1
