# Empty dependencies file for bench_f9_energy.
# This may be replaced when dependencies are built.
