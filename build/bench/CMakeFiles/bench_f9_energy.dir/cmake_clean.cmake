file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_energy.dir/bench_f9_energy.cpp.o"
  "CMakeFiles/bench_f9_energy.dir/bench_f9_energy.cpp.o.d"
  "bench_f9_energy"
  "bench_f9_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
