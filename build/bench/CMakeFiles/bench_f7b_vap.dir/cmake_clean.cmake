file(REMOVE_RECURSE
  "CMakeFiles/bench_f7b_vap.dir/bench_f7b_vap.cpp.o"
  "CMakeFiles/bench_f7b_vap.dir/bench_f7b_vap.cpp.o.d"
  "bench_f7b_vap"
  "bench_f7b_vap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7b_vap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
