# Empty compiler generated dependencies file for bench_f7b_vap.
# This may be replaced when dependencies are built.
