file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_analytic.dir/bench_a1_analytic.cpp.o"
  "CMakeFiles/bench_a1_analytic.dir/bench_a1_analytic.cpp.o.d"
  "bench_a1_analytic"
  "bench_a1_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
