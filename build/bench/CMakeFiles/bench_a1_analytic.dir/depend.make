# Empty dependencies file for bench_a1_analytic.
# This may be replaced when dependencies are built.
