# Empty compiler generated dependencies file for bench_f3_delay_load.
# This may be replaced when dependencies are built.
