file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_delay_load.dir/bench_f3_delay_load.cpp.o"
  "CMakeFiles/bench_f3_delay_load.dir/bench_f3_delay_load.cpp.o.d"
  "bench_f3_delay_load"
  "bench_f3_delay_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_delay_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
