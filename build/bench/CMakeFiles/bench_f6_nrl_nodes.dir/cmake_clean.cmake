file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_nrl_nodes.dir/bench_f6_nrl_nodes.cpp.o"
  "CMakeFiles/bench_f6_nrl_nodes.dir/bench_f6_nrl_nodes.cpp.o.d"
  "bench_f6_nrl_nodes"
  "bench_f6_nrl_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_nrl_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
