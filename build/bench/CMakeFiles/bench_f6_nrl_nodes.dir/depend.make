# Empty dependencies file for bench_f6_nrl_nodes.
# This may be replaced when dependencies are built.
