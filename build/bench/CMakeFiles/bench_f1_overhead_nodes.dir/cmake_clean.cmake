file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_overhead_nodes.dir/bench_f1_overhead_nodes.cpp.o"
  "CMakeFiles/bench_f1_overhead_nodes.dir/bench_f1_overhead_nodes.cpp.o.d"
  "bench_f1_overhead_nodes"
  "bench_f1_overhead_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_overhead_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
