# Empty compiler generated dependencies file for bench_f1_overhead_nodes.
# This may be replaced when dependencies are built.
