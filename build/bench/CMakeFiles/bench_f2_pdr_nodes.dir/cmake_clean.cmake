file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_pdr_nodes.dir/bench_f2_pdr_nodes.cpp.o"
  "CMakeFiles/bench_f2_pdr_nodes.dir/bench_f2_pdr_nodes.cpp.o.d"
  "bench_f2_pdr_nodes"
  "bench_f2_pdr_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_pdr_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
