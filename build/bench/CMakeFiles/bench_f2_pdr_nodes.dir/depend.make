# Empty dependencies file for bench_f2_pdr_nodes.
# This may be replaced when dependencies are built.
