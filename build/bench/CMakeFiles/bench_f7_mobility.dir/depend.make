# Empty dependencies file for bench_f7_mobility.
# This may be replaced when dependencies are built.
