file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_mobility.dir/bench_f7_mobility.cpp.o"
  "CMakeFiles/bench_f7_mobility.dir/bench_f7_mobility.cpp.o.d"
  "bench_f7_mobility"
  "bench_f7_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
