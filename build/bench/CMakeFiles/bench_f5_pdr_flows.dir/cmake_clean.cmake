file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_pdr_flows.dir/bench_f5_pdr_flows.cpp.o"
  "CMakeFiles/bench_f5_pdr_flows.dir/bench_f5_pdr_flows.cpp.o.d"
  "bench_f5_pdr_flows"
  "bench_f5_pdr_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_pdr_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
