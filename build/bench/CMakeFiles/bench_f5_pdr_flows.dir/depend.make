# Empty dependencies file for bench_f5_pdr_flows.
# This may be replaced when dependencies are built.
