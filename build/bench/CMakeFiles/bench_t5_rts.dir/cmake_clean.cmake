file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_rts.dir/bench_t5_rts.cpp.o"
  "CMakeFiles/bench_t5_rts.dir/bench_t5_rts.cpp.o.d"
  "bench_t5_rts"
  "bench_t5_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
