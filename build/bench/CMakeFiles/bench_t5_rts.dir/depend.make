# Empty dependencies file for bench_t5_rts.
# This may be replaced when dependencies are built.
