file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_throughput_load.dir/bench_f4_throughput_load.cpp.o"
  "CMakeFiles/bench_f4_throughput_load.dir/bench_f4_throughput_load.cpp.o.d"
  "bench_f4_throughput_load"
  "bench_f4_throughput_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_throughput_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
