file(REMOVE_RECURSE
  "CMakeFiles/test_clnlr.dir/test_clnlr.cpp.o"
  "CMakeFiles/test_clnlr.dir/test_clnlr.cpp.o.d"
  "test_clnlr"
  "test_clnlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clnlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
