# Empty compiler generated dependencies file for test_clnlr.
# This may be replaced when dependencies are built.
