file(REMOVE_RECURSE
  "CMakeFiles/test_load_monitor.dir/test_load_monitor.cpp.o"
  "CMakeFiles/test_load_monitor.dir/test_load_monitor.cpp.o.d"
  "test_load_monitor"
  "test_load_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
