# Empty dependencies file for test_vap.
# This may be replaced when dependencies are built.
