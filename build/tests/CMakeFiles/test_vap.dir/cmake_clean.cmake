file(REMOVE_RECURSE
  "CMakeFiles/test_vap.dir/test_vap.cpp.o"
  "CMakeFiles/test_vap.dir/test_vap.cpp.o.d"
  "test_vap"
  "test_vap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
