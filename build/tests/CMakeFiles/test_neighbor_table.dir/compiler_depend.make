# Empty compiler generated dependencies file for test_neighbor_table.
# This may be replaced when dependencies are built.
