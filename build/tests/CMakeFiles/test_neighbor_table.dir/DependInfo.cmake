
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_neighbor_table.cpp" "tests/CMakeFiles/test_neighbor_table.dir/test_neighbor_table.cpp.o" "gcc" "tests/CMakeFiles/test_neighbor_table.dir/test_neighbor_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/wmn_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wmn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wmn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wmn_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wmn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wmn_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wmn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wmn_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wmn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
