# Empty dependencies file for test_dcf_model.
# This may be replaced when dependencies are built.
