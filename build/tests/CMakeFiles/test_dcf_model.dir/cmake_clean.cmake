file(REMOVE_RECURSE
  "CMakeFiles/test_dcf_model.dir/test_dcf_model.cpp.o"
  "CMakeFiles/test_dcf_model.dir/test_dcf_model.cpp.o.d"
  "test_dcf_model"
  "test_dcf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
