file(REMOVE_RECURSE
  "CMakeFiles/test_route_selection.dir/test_route_selection.cpp.o"
  "CMakeFiles/test_route_selection.dir/test_route_selection.cpp.o.d"
  "test_route_selection"
  "test_route_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
