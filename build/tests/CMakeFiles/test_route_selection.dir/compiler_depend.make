# Empty compiler generated dependencies file for test_route_selection.
# This may be replaced when dependencies are built.
