file(REMOVE_RECURSE
  "CMakeFiles/test_rts_cts.dir/test_rts_cts.cpp.o"
  "CMakeFiles/test_rts_cts.dir/test_rts_cts.cpp.o.d"
  "test_rts_cts"
  "test_rts_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rts_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
