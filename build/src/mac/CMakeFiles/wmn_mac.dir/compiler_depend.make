# Empty compiler generated dependencies file for wmn_mac.
# This may be replaced when dependencies are built.
