file(REMOVE_RECURSE
  "libwmn_mac.a"
)
