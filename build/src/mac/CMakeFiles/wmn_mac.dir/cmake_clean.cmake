file(REMOVE_RECURSE
  "CMakeFiles/wmn_mac.dir/dcf_mac.cpp.o"
  "CMakeFiles/wmn_mac.dir/dcf_mac.cpp.o.d"
  "CMakeFiles/wmn_mac.dir/load_monitor.cpp.o"
  "CMakeFiles/wmn_mac.dir/load_monitor.cpp.o.d"
  "libwmn_mac.a"
  "libwmn_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
