
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/dcf_mac.cpp" "src/mac/CMakeFiles/wmn_mac.dir/dcf_mac.cpp.o" "gcc" "src/mac/CMakeFiles/wmn_mac.dir/dcf_mac.cpp.o.d"
  "/root/repo/src/mac/load_monitor.cpp" "src/mac/CMakeFiles/wmn_mac.dir/load_monitor.cpp.o" "gcc" "src/mac/CMakeFiles/wmn_mac.dir/load_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wmn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wmn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wmn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wmn_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
