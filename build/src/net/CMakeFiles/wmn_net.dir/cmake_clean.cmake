file(REMOVE_RECURSE
  "CMakeFiles/wmn_net.dir/packet.cpp.o"
  "CMakeFiles/wmn_net.dir/packet.cpp.o.d"
  "libwmn_net.a"
  "libwmn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
