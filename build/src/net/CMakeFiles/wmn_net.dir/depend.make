# Empty dependencies file for wmn_net.
# This may be replaced when dependencies are built.
