file(REMOVE_RECURSE
  "libwmn_net.a"
)
