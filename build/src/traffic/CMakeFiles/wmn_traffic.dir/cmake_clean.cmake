file(REMOVE_RECURSE
  "CMakeFiles/wmn_traffic.dir/cbr_source.cpp.o"
  "CMakeFiles/wmn_traffic.dir/cbr_source.cpp.o.d"
  "CMakeFiles/wmn_traffic.dir/flow_builder.cpp.o"
  "CMakeFiles/wmn_traffic.dir/flow_builder.cpp.o.d"
  "CMakeFiles/wmn_traffic.dir/flow_registry.cpp.o"
  "CMakeFiles/wmn_traffic.dir/flow_registry.cpp.o.d"
  "CMakeFiles/wmn_traffic.dir/packet_sink.cpp.o"
  "CMakeFiles/wmn_traffic.dir/packet_sink.cpp.o.d"
  "libwmn_traffic.a"
  "libwmn_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
