file(REMOVE_RECURSE
  "libwmn_traffic.a"
)
