# Empty dependencies file for wmn_traffic.
# This may be replaced when dependencies are built.
