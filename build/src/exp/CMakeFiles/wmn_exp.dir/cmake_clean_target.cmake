file(REMOVE_RECURSE
  "libwmn_exp.a"
)
