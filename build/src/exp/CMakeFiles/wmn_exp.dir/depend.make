# Empty dependencies file for wmn_exp.
# This may be replaced when dependencies are built.
