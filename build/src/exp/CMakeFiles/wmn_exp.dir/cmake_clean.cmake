file(REMOVE_RECURSE
  "CMakeFiles/wmn_exp.dir/scenario.cpp.o"
  "CMakeFiles/wmn_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/wmn_exp.dir/sweep.cpp.o"
  "CMakeFiles/wmn_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/wmn_exp.dir/timeseries.cpp.o"
  "CMakeFiles/wmn_exp.dir/timeseries.cpp.o.d"
  "libwmn_exp.a"
  "libwmn_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
