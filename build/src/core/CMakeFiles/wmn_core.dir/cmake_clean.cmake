file(REMOVE_RECURSE
  "CMakeFiles/wmn_core.dir/clnlr_policy.cpp.o"
  "CMakeFiles/wmn_core.dir/clnlr_policy.cpp.o.d"
  "CMakeFiles/wmn_core.dir/node_load_index.cpp.o"
  "CMakeFiles/wmn_core.dir/node_load_index.cpp.o.d"
  "CMakeFiles/wmn_core.dir/protocols.cpp.o"
  "CMakeFiles/wmn_core.dir/protocols.cpp.o.d"
  "CMakeFiles/wmn_core.dir/vap_policy.cpp.o"
  "CMakeFiles/wmn_core.dir/vap_policy.cpp.o.d"
  "libwmn_core.a"
  "libwmn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
