file(REMOVE_RECURSE
  "libwmn_core.a"
)
