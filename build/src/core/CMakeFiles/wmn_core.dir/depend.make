# Empty dependencies file for wmn_core.
# This may be replaced when dependencies are built.
