file(REMOVE_RECURSE
  "libwmn_sim.a"
)
