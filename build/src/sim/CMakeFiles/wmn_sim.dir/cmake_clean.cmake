file(REMOVE_RECURSE
  "CMakeFiles/wmn_sim.dir/logging.cpp.o"
  "CMakeFiles/wmn_sim.dir/logging.cpp.o.d"
  "CMakeFiles/wmn_sim.dir/rng.cpp.o"
  "CMakeFiles/wmn_sim.dir/rng.cpp.o.d"
  "CMakeFiles/wmn_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wmn_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/wmn_sim.dir/simulator.cpp.o"
  "CMakeFiles/wmn_sim.dir/simulator.cpp.o.d"
  "libwmn_sim.a"
  "libwmn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
