# Empty dependencies file for wmn_sim.
# This may be replaced when dependencies are built.
