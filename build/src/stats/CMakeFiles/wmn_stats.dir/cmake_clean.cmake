file(REMOVE_RECURSE
  "CMakeFiles/wmn_stats.dir/confidence.cpp.o"
  "CMakeFiles/wmn_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/wmn_stats.dir/dcf_model.cpp.o"
  "CMakeFiles/wmn_stats.dir/dcf_model.cpp.o.d"
  "CMakeFiles/wmn_stats.dir/fairness.cpp.o"
  "CMakeFiles/wmn_stats.dir/fairness.cpp.o.d"
  "CMakeFiles/wmn_stats.dir/histogram.cpp.o"
  "CMakeFiles/wmn_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/wmn_stats.dir/summary.cpp.o"
  "CMakeFiles/wmn_stats.dir/summary.cpp.o.d"
  "CMakeFiles/wmn_stats.dir/table.cpp.o"
  "CMakeFiles/wmn_stats.dir/table.cpp.o.d"
  "libwmn_stats.a"
  "libwmn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
