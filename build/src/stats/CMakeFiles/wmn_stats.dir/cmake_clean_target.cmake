file(REMOVE_RECURSE
  "libwmn_stats.a"
)
