# Empty compiler generated dependencies file for wmn_stats.
# This may be replaced when dependencies are built.
