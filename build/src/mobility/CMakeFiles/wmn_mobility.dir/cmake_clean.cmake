file(REMOVE_RECURSE
  "CMakeFiles/wmn_mobility.dir/mobility_model.cpp.o"
  "CMakeFiles/wmn_mobility.dir/mobility_model.cpp.o.d"
  "CMakeFiles/wmn_mobility.dir/placement.cpp.o"
  "CMakeFiles/wmn_mobility.dir/placement.cpp.o.d"
  "libwmn_mobility.a"
  "libwmn_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
