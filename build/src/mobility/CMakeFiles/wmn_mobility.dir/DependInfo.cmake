
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/mobility_model.cpp" "src/mobility/CMakeFiles/wmn_mobility.dir/mobility_model.cpp.o" "gcc" "src/mobility/CMakeFiles/wmn_mobility.dir/mobility_model.cpp.o.d"
  "/root/repo/src/mobility/placement.cpp" "src/mobility/CMakeFiles/wmn_mobility.dir/placement.cpp.o" "gcc" "src/mobility/CMakeFiles/wmn_mobility.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wmn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
