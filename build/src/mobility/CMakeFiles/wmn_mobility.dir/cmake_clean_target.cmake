file(REMOVE_RECURSE
  "libwmn_mobility.a"
)
