# Empty dependencies file for wmn_mobility.
# This may be replaced when dependencies are built.
