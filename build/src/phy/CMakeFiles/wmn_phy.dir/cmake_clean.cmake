file(REMOVE_RECURSE
  "CMakeFiles/wmn_phy.dir/channel.cpp.o"
  "CMakeFiles/wmn_phy.dir/channel.cpp.o.d"
  "CMakeFiles/wmn_phy.dir/propagation.cpp.o"
  "CMakeFiles/wmn_phy.dir/propagation.cpp.o.d"
  "CMakeFiles/wmn_phy.dir/wifi_phy.cpp.o"
  "CMakeFiles/wmn_phy.dir/wifi_phy.cpp.o.d"
  "libwmn_phy.a"
  "libwmn_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
