# Empty compiler generated dependencies file for wmn_phy.
# This may be replaced when dependencies are built.
