file(REMOVE_RECURSE
  "libwmn_phy.a"
)
