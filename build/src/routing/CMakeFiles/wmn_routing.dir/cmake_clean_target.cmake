file(REMOVE_RECURSE
  "libwmn_routing.a"
)
