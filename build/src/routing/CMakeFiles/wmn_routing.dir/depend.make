# Empty dependencies file for wmn_routing.
# This may be replaced when dependencies are built.
