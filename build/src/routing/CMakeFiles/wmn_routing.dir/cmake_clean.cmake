file(REMOVE_RECURSE
  "CMakeFiles/wmn_routing.dir/aodv.cpp.o"
  "CMakeFiles/wmn_routing.dir/aodv.cpp.o.d"
  "CMakeFiles/wmn_routing.dir/neighbor_table.cpp.o"
  "CMakeFiles/wmn_routing.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/wmn_routing.dir/rebroadcast_policy.cpp.o"
  "CMakeFiles/wmn_routing.dir/rebroadcast_policy.cpp.o.d"
  "CMakeFiles/wmn_routing.dir/route_selection.cpp.o"
  "CMakeFiles/wmn_routing.dir/route_selection.cpp.o.d"
  "CMakeFiles/wmn_routing.dir/route_table.cpp.o"
  "CMakeFiles/wmn_routing.dir/route_table.cpp.o.d"
  "libwmn_routing.a"
  "libwmn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
