
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/aodv.cpp" "src/routing/CMakeFiles/wmn_routing.dir/aodv.cpp.o" "gcc" "src/routing/CMakeFiles/wmn_routing.dir/aodv.cpp.o.d"
  "/root/repo/src/routing/neighbor_table.cpp" "src/routing/CMakeFiles/wmn_routing.dir/neighbor_table.cpp.o" "gcc" "src/routing/CMakeFiles/wmn_routing.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/routing/rebroadcast_policy.cpp" "src/routing/CMakeFiles/wmn_routing.dir/rebroadcast_policy.cpp.o" "gcc" "src/routing/CMakeFiles/wmn_routing.dir/rebroadcast_policy.cpp.o.d"
  "/root/repo/src/routing/route_selection.cpp" "src/routing/CMakeFiles/wmn_routing.dir/route_selection.cpp.o" "gcc" "src/routing/CMakeFiles/wmn_routing.dir/route_selection.cpp.o.d"
  "/root/repo/src/routing/route_table.cpp" "src/routing/CMakeFiles/wmn_routing.dir/route_table.cpp.o" "gcc" "src/routing/CMakeFiles/wmn_routing.dir/route_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wmn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wmn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wmn_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wmn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wmn_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
