file(REMOVE_RECURSE
  "CMakeFiles/congestion_watch.dir/congestion_watch.cpp.o"
  "CMakeFiles/congestion_watch.dir/congestion_watch.cpp.o.d"
  "congestion_watch"
  "congestion_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
