# Empty dependencies file for gateway_backhaul.
# This may be replaced when dependencies are built.
