file(REMOVE_RECURSE
  "CMakeFiles/gateway_backhaul.dir/gateway_backhaul.cpp.o"
  "CMakeFiles/gateway_backhaul.dir/gateway_backhaul.cpp.o.d"
  "gateway_backhaul"
  "gateway_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
