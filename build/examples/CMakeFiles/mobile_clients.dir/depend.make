# Empty dependencies file for mobile_clients.
# This may be replaced when dependencies are built.
