file(REMOVE_RECURSE
  "CMakeFiles/mobile_clients.dir/mobile_clients.cpp.o"
  "CMakeFiles/mobile_clients.dir/mobile_clients.cpp.o.d"
  "mobile_clients"
  "mobile_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
