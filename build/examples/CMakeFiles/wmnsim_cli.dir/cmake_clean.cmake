file(REMOVE_RECURSE
  "CMakeFiles/wmnsim_cli.dir/wmnsim_cli.cpp.o"
  "CMakeFiles/wmnsim_cli.dir/wmnsim_cli.cpp.o.d"
  "wmnsim_cli"
  "wmnsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmnsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
