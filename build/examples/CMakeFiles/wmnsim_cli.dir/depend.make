# Empty dependencies file for wmnsim_cli.
# This may be replaced when dependencies are built.
