// Congestion watch: the cross-layer instruments in action.
//
// Runs one CLNLR mesh while a congestion wave is switched on halfway
// through the run, and samples one relay node's MAC-layer signals every
// second: queue occupancy, medium busy ratio, retry ratio, the blended
// node load index, and the HELLO-disseminated neighbourhood load. This
// is the observability story behind CLNLR: routing decisions follow
// measured air-time pressure, not hop counts.
//
//   ./examples/congestion_watch [seed]
#include <cstdlib>
#include <iostream>

#include "core/node_load_index.hpp"
#include "exp/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace wmn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  exp::ScenarioConfig cfg;
  cfg.n_nodes = 64;
  cfg.area_width_m = 800.0;
  cfg.area_height_m = 800.0;
  cfg.protocol = core::Protocol::kClnlr;
  // Light background traffic from the start...
  cfg.traffic.n_flows = 4;
  cfg.traffic.rate_pps = 2.0;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(40.0);
  cfg.seed = seed;

  exp::Scenario scenario(cfg);
  sim::Simulator& simr = scenario.simulator();

  // ...plus a congestion wave: at t=25 s, eight saturating bursts near
  // the mesh centre (node 27 talks to node 36 and friends).
  simr.schedule_at(sim::Time::seconds(25.0), [&scenario, &simr] {
    for (std::uint32_t k = 0; k < 8; ++k) {
      const std::size_t src = 26 + k % 4;
      const std::uint32_t dst = 36 + k % 4;
      for (int i = 0; i < 600; ++i) {
        simr.schedule(sim::Time::millis(i * 12.0), [&scenario, src, dst] {
          // Raw sends bypass the flow registry: this is interference,
          // not measured traffic.
          net::Packet p =
              scenario.packet_factory().make(512, scenario.simulator().now());
          scenario.agent(src).send(std::move(p), net::Address(dst));
        });
      }
    }
    std::cout << "[t=25s] congestion wave started near the mesh centre\n";
  });

  // Observe node 28 (a centre relay) once per second.
  const std::size_t observed = 28;
  stats::Table table({"t (s)", "queue", "busy", "retry", "load index",
                      "nbhd load", "fwd prob"});
  core::ClnlrRebroadcastPolicy policy;
  for (int t = 5; t <= 45; t += 2) {
    simr.schedule_at(
        sim::Time::seconds(static_cast<double>(t)),
        [&, t] {
          auto& mac = scenario.node_mac(observed);
          auto& agent = scenario.agent(observed);
          routing::RebroadcastContext ctx;
          ctx.hop_count = 5;
          ctx.neighbor_count = agent.neighbors().count();
          ctx.neighbourhood_load = agent.neighbourhood_load();
          table.add_row({std::to_string(t),
                         stats::Table::num(mac.queue_ratio(), 2),
                         stats::Table::num(mac.busy_ratio(), 2),
                         stats::Table::num(mac.retry_ratio(), 2),
                         stats::Table::num(agent.own_load(), 2),
                         stats::Table::num(agent.neighbourhood_load(), 2),
                         stats::Table::num(policy.forward_probability(ctx), 2)});
        });
  }

  std::cout << "Congestion watch: CLNLR mesh, observing relay node "
            << observed << " (seed=" << seed << ")\n\n";
  scenario.run();
  table.print(std::cout);
  std::cout << "\nAfter t=25 s the busy/retry signals rise, the load index "
               "follows,\nand the RREQ forward probability backs off from "
               "1.0 toward p_min.\n";
  return 0;
}
