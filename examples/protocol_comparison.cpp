// Protocol comparison: all six protocols (headline + ablations) on one
// configurable scenario, with the full diagnostic breakdown — metrics
// table on stdout, per-protocol loss accounting on stderr.
//
//   ./examples/protocol_comparison [nodes] [flows] [rate_pps] [seed]
#include <cstdint>
#include <iostream>

#include "exp/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace wmn;
  exp::ScenarioConfig cfg;
  cfg.n_nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  cfg.traffic.n_flows = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 15;
  cfg.traffic.rate_pps = argc > 3 ? std::strtod(argv[3], nullptr) : 12.0;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(30.0);
  cfg.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  stats::Table table({"protocol", "PDR", "delay(ms)", "thpt(kb/s)", "RREQ tx",
                      "RREQ/disc", "disc", "fail", "NRL", "qdrop", "coll",
                      "busy", "jain"});
  for (core::Protocol p : core::all_protocols()) {
    cfg.protocol = p;
    exp::Scenario s(cfg);
    s.run();
    const auto m = s.metrics();
    std::uint64_t no_route = 0, link_break = 0, buffer = 0, ttl = 0,
                  retry_drop = 0, breaks = 0, salvaged = 0;
    double hops = 0;
    for (std::size_t i = 0; i < s.node_count(); ++i) {
      const auto& c = s.agent(i).counters();
      no_route += c.data_dropped_no_route;
      link_break += c.data_dropped_link_break;
      buffer += c.data_dropped_buffer;
      ttl += c.data_dropped_ttl;
      breaks += c.link_breaks;
      retry_drop += s.node_mac(i).counters().retry_drops;
    }
    hops = m.avg_path_hops;
    std::cerr << core::protocol_name(p) << ": no_route=" << no_route
              << " link_break=" << link_break << " buffer=" << buffer
              << " ttl=" << ttl << " retry_drop=" << retry_drop
              << " breaks=" << breaks << " hops=" << hops
              << " salvage=" << salvaged << "\n";
    table.add_row({core::protocol_name(p), stats::Table::num(m.pdr, 3),
                   stats::Table::num(m.mean_delay_ms, 1),
                   stats::Table::num(m.throughput_kbps, 1),
                   std::to_string(m.rreq_tx),
                   stats::Table::num(m.rreq_per_discovery, 1),
                   std::to_string(m.discoveries),
                   std::to_string(m.discoveries_failed),
                   stats::Table::num(m.nrl, 2),
                   std::to_string(m.mac_queue_drops),
                   std::to_string(m.phy_collisions),
                   stats::Table::num(m.mean_busy_ratio, 3),
                   stats::Table::num(m.forwarding_jain, 3)});
  }
  table.print(std::cout);
  return 0;
}
