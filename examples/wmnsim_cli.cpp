// wmnsim — command-line scenario runner.
//
// Run any mesh scenario from flags, print the metrics table, and
// optionally export per-flow and time-series CSVs:
//
//   wmnsim_cli --nodes 100 --flows 10 --rate 6 --protocol clnlr
//              --seconds 30 --seed 42 --timeseries run.csv
//
// Flags (all optional):
//   --nodes N          mesh size                    (default 100)
//   --area W H         area in metres               (default 1000 1000)
//   --flows N          CBR flow count               (default 10)
//   --rate R           pkt/s per flow               (default 4)
//   --bytes B          payload bytes                (default 512)
//   --protocol NAME    bf|gossip|cb|vap|clnlr|clnlr-rd|clnlr-rs
//   --speed S          RWP max speed m/s, 0=static  (default 0)
//   --gateways K       gateway traffic to K gateways (default: random pairs)
//   --traffic NAME     cbr|onoff|heavytail|sessions (default cbr)
//   --users N          users aggregated per source  (sessions; default 1000)
//   --session-rate R   session arrivals per user/s  (sessions; default 0.002)
//   --arrival-gap T    mean flow-arrival gap in s, 0=all flows at start
//   --envelope SPEC    piecewise-linear arrival-rate envelope over the
//                      traffic window, as t:mult comma pairs, e.g.
//                      "0:1,10:1,12:8,20:8,22:1" for a flash crowd
//                      (scales session arrivals and --arrival-gap)
//   --seconds T        traffic time                 (default 30)
//   --event-budget N   abort (exit 3) after N simulated events —
//                      deterministic runaway guard
//   --deadline T       wall-clock watchdog: cancel the run after T
//                      seconds (exit 4)
//   --seed X           master seed                  (default 1)
//   --rts B            RTS threshold bytes          (default off)
//   --churn R          router crashes per minute (seeded Poisson churn
//                      across the traffic window, ~10 s mean downtime)
//   --outage NODE T0 T1  crash NODE from T0 to T1 seconds (repeatable)
//   --repair           enable local repair + blacklist + precursor RERR
//   --no-spatial-index run the channel's full O(N^2) broadcast scan
//                      (results are bit-identical; diagnostic only)
//   --shards N         conservative-PDES intra-run sharding on N worker
//                      threads (0 = classic serial engine). Fingerprints
//                      are bit-identical for every N >= 1; see
//                      DESIGN.md §3e for the determinism contract
//   --timeseries FILE  write 1 Hz network time series CSV
//   --flows-csv FILE   write per-flow results CSV
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/cancel_token.hpp"

#include "exp/failure.hpp"
#include "exp/scenario.hpp"
#include "exp/supervision.hpp"
#include "exp/timeseries.hpp"
#include "stats/table.hpp"

namespace {

wmn::core::Protocol parse_protocol(const std::string& name) {
  using wmn::core::Protocol;
  if (name == "bf" || name == "flood") return Protocol::kAodvFlood;
  if (name == "gossip") return Protocol::kAodvGossip;
  if (name == "cb" || name == "counter") return Protocol::kAodvCounter;
  if (name == "vap") return Protocol::kAodvVap;
  if (name == "clnlr") return Protocol::kClnlr;
  if (name == "clnlr-rd") return Protocol::kClnlrRdOnly;
  if (name == "clnlr-rs") return Protocol::kClnlrRsOnly;
  std::cerr << "unknown protocol '" << name << "', using clnlr\n";
  return Protocol::kClnlr;
}

// "0:1,10:1,12:8" -> {(0,1),(10,1),(12,8)}; empty on malformed input.
std::vector<std::pair<double, double>> parse_envelope(const std::string& spec) {
  std::vector<std::pair<double, double>> knots;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string knot =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    const std::size_t colon = knot.find(':');
    if (colon == std::string::npos) {
      std::cerr << "malformed --envelope knot '" << knot
                << "' (want t:mult); envelope ignored\n";
      return {};
    }
    char* end = nullptr;
    const double t = std::strtod(knot.c_str(), &end);
    const double m = std::strtod(knot.c_str() + colon + 1, nullptr);
    if (end != knot.c_str() + colon) {
      std::cerr << "malformed --envelope time in '" << knot
                << "'; envelope ignored\n";
      return {};
    }
    knots.emplace_back(t, m);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return knots;
}

wmn::exp::TrafficSpec::Model parse_traffic_model(const std::string& name) {
  using Model = wmn::exp::TrafficSpec::Model;
  if (name == "cbr") return Model::kCbr;
  if (name == "onoff") return Model::kPoissonOnOff;
  if (name == "heavytail") return Model::kHeavyTailOnOff;
  if (name == "sessions") return Model::kSessions;
  std::cerr << "unknown traffic model '" << name << "', using cbr\n";
  return Model::kCbr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wmn;

  exp::ScenarioConfig cfg;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(30.0);
  std::string timeseries_path;
  std::string flows_path;
  double deadline_s = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double fallback) {
      return i + 1 < argc ? std::strtod(argv[++i], nullptr) : fallback;
    };
    if (a == "--nodes") {
      cfg.n_nodes = static_cast<std::size_t>(next(100));
    } else if (a == "--area") {
      cfg.area_width_m = next(1000);
      cfg.area_height_m = next(1000);
    } else if (a == "--flows") {
      cfg.traffic.n_flows = static_cast<std::size_t>(next(10));
    } else if (a == "--rate") {
      cfg.traffic.rate_pps = next(4);
    } else if (a == "--bytes") {
      cfg.traffic.packet_bytes = static_cast<std::uint32_t>(next(512));
    } else if (a == "--protocol" && i + 1 < argc) {
      cfg.protocol = parse_protocol(argv[++i]);
    } else if (a == "--speed") {
      cfg.mobility.max_speed_mps = next(0);
    } else if (a == "--gateways") {
      cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
      cfg.traffic.n_gateways = static_cast<std::size_t>(next(1));
    } else if (a == "--traffic" && i + 1 < argc) {
      cfg.traffic.model = parse_traffic_model(argv[++i]);
    } else if (a == "--users") {
      cfg.traffic.users_per_node = static_cast<std::uint32_t>(next(1000));
    } else if (a == "--session-rate") {
      cfg.traffic.session_rate_per_user_per_s = next(0.002);
    } else if (a == "--arrival-gap") {
      cfg.traffic.mean_arrival_gap_s = next(0);
    } else if (a == "--envelope" && i + 1 < argc) {
      cfg.traffic.rate_envelope = parse_envelope(argv[++i]);
    } else if (a == "--seconds") {
      cfg.traffic_time = sim::Time::seconds(next(30));
    } else if (a == "--event-budget") {
      cfg.event_budget = static_cast<std::uint64_t>(next(0));
    } else if (a == "--deadline") {
      deadline_s = next(0);
    } else if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(next(1));
    } else if (a == "--rts") {
      cfg.mac.rts_threshold_bytes = static_cast<std::uint32_t>(next(256));
    } else if (a == "--churn") {
      cfg.fault.churn.rate_per_s = next(2) / 60.0;
      cfg.fault.churn.mean_downtime = sim::Time::seconds(10.0);
    } else if (a == "--outage") {
      fault::NodeOutage o;
      o.node = static_cast<std::uint32_t>(next(0));
      o.down_at = sim::Time::seconds(next(0));
      o.up_at = sim::Time::seconds(next(0));
      cfg.fault.outages.push_back(o);
    } else if (a == "--repair") {
      cfg.options.aodv.local_repair = true;
      cfg.options.aodv.rrep_blacklist = true;
      cfg.options.aodv.rerr_to_precursors = true;
    } else if (a == "--no-spatial-index") {
      cfg.spatial_index = false;
    } else if (a == "--shards") {
      cfg.intra_run_shards = static_cast<std::uint32_t>(next(0));
    } else if (a == "--timeseries" && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else if (a == "--flows-csv" && i + 1 < argc) {
      flows_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "see the header comment of examples/wmnsim_cli.cpp\n";
      return 0;
    } else {
      std::cerr << "unknown flag '" << a << "' (see --help)\n";
      return 1;
    }
  }

  // The churn window spans the traffic; it depends on --seconds, so
  // resolve it after all flags are parsed.
  if (cfg.fault.churn.rate_per_s > 0.0) {
    cfg.fault.churn.start = cfg.warmup;
    cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
  }

  exp::Scenario scenario(cfg);
  std::unique_ptr<exp::TimeseriesProbe> probe;
  if (!timeseries_path.empty()) {
    probe = std::make_unique<exp::TimeseriesProbe>(scenario,
                                                   sim::Time::seconds(1.0));
  }

  std::cout << "running: " << cfg.n_nodes << " nodes, "
            << cfg.traffic.n_flows << " flows @ " << cfg.traffic.rate_pps
            << " pkt/s, protocol " << core::protocol_name(cfg.protocol)
            << ", seed " << cfg.seed << "\n";

  // Optional run supervision (docs/TOOLING.md, "Run supervision &
  // resume"): the event budget aborts deterministically inside the
  // kernel; the wall-clock watchdog lives out here in the harness and
  // only ever flips a cooperative cancel token.
  sim::CancelToken cancel;
  exp::Watchdog watchdog;
  exp::Watchdog::Lease lease;
  if (deadline_s > 0.0) {
    scenario.set_cancel_token(&cancel);
    lease = watchdog.watch(cancel, deadline_s);
  }
  try {
    scenario.run();
  } catch (const exp::RunAborted& e) {
    lease.release();
    std::cerr << "[aborted: " << exp::failure_kind_name(e.kind()) << "] "
              << e.what() << "\n";
    return e.kind() == exp::FailureKind::kEventBudgetExhausted ? 3 : 4;
  }
  lease.release();
  const exp::RunMetrics m = scenario.metrics();

  stats::Table t({"metric", "value"});
  t.add_row({"PDR", stats::Table::num(m.pdr, 3)});
  t.add_row({"mean delay (ms)", stats::Table::num(m.mean_delay_ms, 1)});
  t.add_row({"mean jitter (ms)", stats::Table::num(m.mean_jitter_ms, 1)});
  t.add_row({"throughput (kb/s)", stats::Table::num(m.throughput_kbps, 1)});
  t.add_row({"delivered / sent", std::to_string(m.data_delivered) + " / " +
                                     std::to_string(m.data_sent)});
  t.add_row({"RREQ tx", std::to_string(m.rreq_tx)});
  t.add_row({"RREQ per discovery", stats::Table::num(m.rreq_per_discovery, 1)});
  t.add_row({"NRL", stats::Table::num(m.nrl, 2)});
  t.add_row({"discoveries (failed)", std::to_string(m.discoveries) + " (" +
                                         std::to_string(m.discoveries_failed) +
                                         ")"});
  t.add_row({"collisions", std::to_string(m.phy_collisions)});
  t.add_row({"queue drops", std::to_string(m.mac_queue_drops)});
  t.add_row({"avg path hops", stats::Table::num(m.avg_path_hops, 1)});
  t.add_row({"fairness (Jain, active)", stats::Table::num(m.forwarding_jain, 3)});
  t.add_row({"energy (J)", stats::Table::num(m.total_energy_j, 0)});
  t.add_row({"energy (mJ/kbit)", stats::Table::num(m.energy_mj_per_kbit, 1)});
  if (m.gateway_count > 0) {
    t.add_row({"gateways", std::to_string(m.gateway_count)});
    t.add_row({"gateway Jain", stats::Table::num(m.gateway_jain, 3)});
    t.add_row({"gateway load variance",
               stats::Table::num(m.gateway_load_variance, 1)});
  }
  if (m.sessions_started > 0 || m.sessions_rejected > 0) {
    t.add_row({"sessions (completed)",
               std::to_string(m.sessions_started) + " (" +
                   std::to_string(m.sessions_completed) + ")"});
    t.add_row({"sessions rejected", std::to_string(m.sessions_rejected)});
  }
  if (m.fault_enabled) {
    t.add_row({"crashes / rejoins", std::to_string(m.fault_crashes) + " / " +
                                        std::to_string(m.fault_rejoins)});
    t.add_row({"node downtime (s)", stats::Table::num(m.fault_downtime_s, 1)});
    t.add_row({"PDR during outage", stats::Table::num(m.pdr_during_outage, 3)});
    t.add_row({"PDR outside outage",
               stats::Table::num(m.pdr_outside_outage, 3)});
    t.add_row({"local repairs (ok)",
               std::to_string(m.local_repairs_attempted) + " (" +
                   std::to_string(m.local_repairs_succeeded) + ")"});
    t.add_row({"route recoveries", std::to_string(m.route_recoveries)});
    t.add_row({"mean recovery (ms)",
               stats::Table::num(m.route_recovery_mean_ms, 1)});
    t.add_row({"flows stranded", std::to_string(m.flows_stranded)});
  }
  t.add_row({"sim events", stats::Table::num(m.sim_event_count, 0)});
  t.add_row({"wall seconds", stats::Table::num(m.wall_seconds, 2)});
  t.print(std::cout);

  if (probe && !timeseries_path.empty()) {
    if (probe->save_csv(timeseries_path)) {
      std::cout << "[time series written: " << timeseries_path << "]\n";
    }
  }
  if (!flows_path.empty()) {
    stats::Table ft({"flow", "src", "dst", "sent", "delivered", "pdr",
                     "delay_ms", "jitter_ms"});
    for (const auto& r : scenario.flows().snapshot()) {
      ft.add_row({std::to_string(r.flow_id), r.src.str(), r.dst.str(),
                  std::to_string(r.sent), std::to_string(r.delivered),
                  stats::Table::num(r.pdr(), 3),
                  stats::Table::num(r.delay_mean_s * 1e3, 1),
                  stats::Table::num(r.jitter_mean_s * 1e3, 1)});
    }
    if (ft.save_csv(flows_path)) {
      std::cout << "[per-flow results written: " << flows_path << "]\n";
    }
  }
  return 0;
}
