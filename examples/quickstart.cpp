// Quickstart: build a 50-node wireless mesh, run 10 CBR flows for 30
// seconds under CLNLR, and print the headline metrics next to stock
// AODV flooding.
//
//   ./examples/quickstart [seed]
//
// This is the smallest complete use of the public API:
//   ScenarioConfig -> Scenario -> run() -> metrics().
#include <cstdlib>
#include <iostream>

#include "exp/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace wmn;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  exp::ScenarioConfig cfg;
  cfg.n_nodes = 50;
  cfg.area_width_m = 1000.0;
  cfg.area_height_m = 1000.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.traffic.n_flows = 10;
  cfg.traffic.rate_pps = 4.0;
  cfg.traffic.packet_bytes = 512;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(30.0);
  cfg.seed = seed;

  stats::Table table({"protocol", "PDR", "delay(ms)", "thpt(kb/s)",
                      "RREQ tx", "RREQ/disc", "NRL", "delivered"});

  for (core::Protocol p : {core::Protocol::kAodvFlood, core::Protocol::kClnlr}) {
    cfg.protocol = p;
    exp::Scenario scenario(cfg);
    scenario.run();
    const exp::RunMetrics m = scenario.metrics();
    table.add_row({core::protocol_name(p), stats::Table::num(m.pdr, 3),
                   stats::Table::num(m.mean_delay_ms, 1),
                   stats::Table::num(m.throughput_kbps, 1),
                   std::to_string(m.rreq_tx),
                   stats::Table::num(m.rreq_per_discovery, 1),
                   stats::Table::num(m.nrl, 2),
                   std::to_string(m.data_delivered)});
  }

  std::cout << "\n50-node mesh, 10 CBR flows @ 4 pkt/s, 512 B, seed=" << seed
            << "\n\n";
  table.print(std::cout);
  std::cout << "\nCLNLR should deliver comparable PDR with fewer RREQ "
               "transmissions.\n";
  return 0;
}
