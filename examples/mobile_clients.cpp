// Mobile mesh clients: random-waypoint mobility stressing route
// maintenance.
//
// As client speed rises, links break and AODV-family protocols must
// re-discover routes; the cost of each re-discovery is exactly what the
// rebroadcast policy controls. This example sweeps maximum speed and
// prints PDR, link breaks, and discovery counts for stock AODV vs
// CLNLR.
//
//   ./examples/mobile_clients [max_speed_mps] [seed]
#include <cstdlib>
#include <iostream>

#include "exp/scenario.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace wmn;
  const double max_speed = argc > 1 ? std::strtod(argv[1], nullptr) : 15.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::cout << "Mobile clients: 80 nodes, random waypoint up to " << max_speed
            << " m/s, 8 CBR flows, seed=" << seed << "\n\n";

  stats::Table table({"protocol", "speed(m/s)", "PDR", "delay(ms)",
                      "link breaks", "discoveries", "RREQ tx"});

  for (double speed : {0.0, max_speed / 2.0, max_speed}) {
    for (core::Protocol p :
         {core::Protocol::kAodvFlood, core::Protocol::kClnlr}) {
      exp::ScenarioConfig cfg;
      cfg.n_nodes = 80;
      cfg.traffic.n_flows = 8;
      cfg.traffic.rate_pps = 4.0;
      cfg.mobility.max_speed_mps = speed;
      cfg.mobility.pause = sim::Time::seconds(2.0);
      cfg.warmup = sim::Time::seconds(5.0);
      cfg.traffic_time = sim::Time::seconds(30.0);
      cfg.seed = seed;
      cfg.protocol = p;

      exp::Scenario scenario(cfg);
      scenario.run();
      const exp::RunMetrics m = scenario.metrics();

      std::uint64_t breaks = 0;
      for (std::size_t i = 0; i < scenario.node_count(); ++i) {
        breaks += scenario.agent(i).counters().link_breaks;
      }
      table.add_row({core::protocol_name(p), stats::Table::num(speed, 1),
                     stats::Table::num(m.pdr, 3),
                     stats::Table::num(m.mean_delay_ms, 0),
                     std::to_string(breaks), std::to_string(m.discoveries),
                     std::to_string(m.rreq_tx)});
    }
  }
  table.print(std::cout);
  std::cout << "\nHigher speed -> more breaks and discoveries for both; "
               "CLNLR pays fewer RREQ transmissions per discovery.\n";
  return 0;
}
