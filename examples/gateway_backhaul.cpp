// Gateway backhaul: the canonical WMN workload.
//
// A 100-router mesh where all traffic funnels toward two gateway nodes
// (think: neighbourhood mesh uplinking to the wired internet). Hop-count
// routing concentrates forwarding on the few nodes nearest the
// gateways; CLNLR's load-aware selection spreads it. The example prints
// per-protocol load-balance metrics and an ASCII heat map of forwarding
// work across the mesh grid.
//
//   ./examples/gateway_backhaul [seed]
#include <cstdlib>
#include <iostream>

#include "exp/scenario.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"

namespace {

// 10x10 ASCII heat map of per-node forwarding counts (row-major grid
// placement order).
void print_heat_map(const std::vector<double>& forwarded, std::size_t cols) {
  double peak = 1.0;
  for (double f : forwarded) peak = std::max(peak, f);
  const char* shades = " .:-=+*#%@";
  for (std::size_t i = 0; i < forwarded.size(); ++i) {
    const auto level =
        static_cast<std::size_t>(forwarded[i] / peak * 9.0 + 0.5);
    std::cout << shades[std::min<std::size_t>(level, 9)];
    if ((i + 1) % cols == 0) std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wmn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  exp::ScenarioConfig cfg;
  cfg.n_nodes = 100;
  cfg.placement = exp::Placement::kGrid;  // clean grid for the heat map
  cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
  cfg.traffic.n_gateways = 2;  // spread along the area diagonal
  cfg.traffic.n_flows = 12;
  cfg.traffic.rate_pps = 6.0;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(30.0);
  cfg.seed = seed;

  std::cout << "Gateway backhaul: 100-router grid, 12 flows -> 2 gateways, "
            << "6 pkt/s each, seed=" << seed << "\n";

  stats::Table table({"protocol", "PDR", "delay(ms)", "Jain", "peak/mean"});
  for (core::Protocol p :
       {core::Protocol::kAodvFlood, core::Protocol::kClnlr}) {
    cfg.protocol = p;
    exp::Scenario scenario(cfg);
    scenario.run();
    const exp::RunMetrics m = scenario.metrics();
    table.add_row({core::protocol_name(p), stats::Table::num(m.pdr, 3),
                   stats::Table::num(m.mean_delay_ms, 0),
                   stats::Table::num(m.forwarding_jain, 3),
                   stats::Table::num(m.forwarding_peak_to_mean, 2)});

    std::cout << "\nForwarding heat map (" << core::protocol_name(p)
              << "; gateways on the diagonal; darker = more forwarding):\n";
    print_heat_map(m.per_node_forwarded, 10);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nCLNLR should show a higher Jain index and a lower "
               "peak/mean hotspot factor.\n";
  return 0;
}
