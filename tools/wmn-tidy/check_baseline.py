#!/usr/bin/env python3
"""Baseline gate for the wmn-* checks over the production tree.

Runs an engine (lite or plugin) over src/ and bench/, aggregates
findings into per-file-per-check counts, and compares against the
committed baseline (baseline.txt). The rules:

  * A file/check pair above its baselined count (or absent from the
    baseline) FAILS the gate — new violations are never grandfathered.
  * A pair below its baselined count prints a shrink notice: run with
    --update and commit the smaller baseline. The baseline may only
    shrink; it never grows.

The baseline is currently EMPTY: every finding the checks surface in
src/ and bench/ was either fixed or NOLINT-annotated with a written
justification in the PR that introduced this tool. Keep it that way.

Baseline format (one entry per line, '#' comments allowed):
    <repo-relative-path> <check-name> <count>
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent

DIAG_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<check>[\w.,-]+)\]\s*$")

SCAN_DIRS = ("src", "bench")
EXTS = (".cpp", ".hpp", ".h")


def production_files() -> list[Path]:
    files: list[Path] = []
    for d in SCAN_DIRS:
        root = REPO / d
        if root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in EXTS and p.is_file())
    return files


def load_baseline(path: Path) -> Counter:
    baseline: Counter = Counter()
    if not path.is_file():
        return baseline
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or not parts[2].isdigit():
            print(f"error: {path}:{lineno}: malformed baseline entry: "
                  f"{line!r}", file=sys.stderr)
            sys.exit(2)
        baseline[(parts[0], parts[1])] = int(parts[2])
    return baseline


def collect_findings(engine: str, files: list[Path],
                     args: argparse.Namespace) -> Counter:
    if engine == "lite":
        cmd = [sys.executable, str(args.lite_script), "--checks=wmn-*",
               *map(str, files)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        output = proc.stdout
    else:
        # Only .cpp files are tidy translation units; headers are
        # covered through --header-filter.
        tus = [f for f in files if f.suffix == ".cpp"]
        cmd = [args.clang_tidy, f"--load={args.plugin}",
               "--checks=-*,wmn-*", "--quiet",
               "--header-filter=.*/(src|bench)/.*"]
        if args.build_dir:
            cmd.append(f"-p={args.build_dir}")
        cmd.extend(map(str, tus))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        output = proc.stdout

    # Dedupe by (file, line, check): headers included from several TUs
    # repeat their diagnostics.
    seen: set[tuple[str, int, str]] = set()
    counts: Counter = Counter()
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        try:
            rel = str(Path(m.group("path")).resolve().relative_to(REPO))
        except ValueError:
            continue  # diagnostics outside the repo (system headers)
        for check in m.group("check").split(","):
            if not check.startswith("wmn-"):
                continue
            key = (rel, int(m.group("line")), check)
            if key in seen:
                continue
            seen.add(key)
            counts[(rel, check)] += 1
    return counts


def write_baseline(path: Path, counts: Counter) -> None:
    lines = [
        "# wmn-tidy baseline: grandfathered findings, one",
        "# '<path> <check> <count>' entry per line. Shrink-only — see",
        "# check_baseline.py. Currently empty by design.",
    ]
    for (rel, check), n in sorted(counts.items()):
        lines.append(f"{rel} {check} {n}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--engine", choices=("lite", "plugin"), required=True)
    ap.add_argument("--baseline", type=Path, default=HERE / "baseline.txt")
    ap.add_argument("--lite-script", type=Path,
                    default=HERE / "wmn_tidy_lite.py")
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--plugin", help="path to libwmn-tidy.so")
    ap.add_argument("--build-dir",
                    help="build dir with compile_commands.json (plugin)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from current findings")
    args = ap.parse_args(argv)

    if args.engine == "plugin" and not args.plugin:
        print("error: --plugin is required with --engine=plugin",
              file=sys.stderr)
        return 2

    files = production_files()
    if not files:
        print("error: nothing to scan under src/ or bench/", file=sys.stderr)
        return 2

    counts = collect_findings(args.engine, files, args)

    if args.update:
        write_baseline(args.baseline, counts)
        print(f"baseline rewritten with {sum(counts.values())} findings "
              f"across {len(counts)} file/check pairs")
        return 0

    baseline = load_baseline(args.baseline)
    new, shrunk = [], []
    for key, n in sorted(counts.items()):
        allowed = baseline.get(key, 0)
        if n > allowed:
            new.append((key, n, allowed))
        elif n < allowed:
            shrunk.append((key, n, allowed))
    for key, allowed in sorted(baseline.items()):
        if key not in counts and allowed > 0:
            shrunk.append((key, 0, allowed))

    for (rel, check), n, allowed in shrunk:
        print(f"note: {rel} [{check}] improved: {allowed} -> {n}; run "
              "check_baseline.py --update and commit the smaller baseline")
    if new:
        for (rel, check), n, allowed in new:
            print(f"FAIL: {rel} [{check}] has {n} finding(s), baseline "
                  f"allows {allowed} — fix it or NOLINT with a written "
                  "justification (see docs/TOOLING.md)")
        return 1

    print(f"baseline gate clean: {sum(counts.values())} finding(s), all "
          "within baseline" if counts else
          "baseline gate clean: zero findings")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
