// Fixture: mutation inside a WMN_CHECK* condition must be flagged.
// Local replica of core/check.hpp's macro shape (fixtures are
// self-contained; the real header is not on the include path here).
void wmn_check_fail(const char* expr, const char* msg);

#define WMN_CHECK(cond, msg)       \
  do {                             \
    if (!(cond)) {                 \
      wmn_check_fail(#cond, msg);  \
    }                              \
  } while (false)

#define WMN_CHECK_OP_(a, op, b, msg)                 \
  do {                                               \
    const auto& wmn_chk_a_ = (a);                    \
    const auto& wmn_chk_b_ = (b);                    \
    if (!(wmn_chk_a_ op wmn_chk_b_)) {               \
      wmn_check_fail(#a " " #op " " #b, msg);        \
    }                                                \
  } while (false)

#define WMN_CHECK_EQ(a, b, msg) WMN_CHECK_OP_(a, ==, b, msg)

int consume(int* cursor, int limit) {
  WMN_CHECK(++(*cursor) < limit, "cursor overran");  // EXPECT: wmn-check-side-effects
  int budget = limit;
  WMN_CHECK_EQ(budget -= 1, *cursor, "budget drift");  // EXPECT: wmn-check-side-effects
  return budget;
}
