// Fixture: every raw termination path and NDEBUG fork must be flagged.
#include <cassert>
#include <cstdlib>

int guard(int x) {
  assert(x > 0);  // EXPECT: wmn-no-raw-assert
  if (x > 100) {
    std::abort();  // EXPECT: wmn-no-raw-assert
  }
#ifdef NDEBUG  // EXPECT: wmn-no-raw-assert
  x += 1;
#endif
  return x;
}
