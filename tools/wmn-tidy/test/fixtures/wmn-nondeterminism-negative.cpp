// Fixture: seeded randomness and stable-id keying must NOT be flagged.
#include <cstdint>
#include <thread>
#include <unordered_map>

// The sanctioned randomness shape: all state derives from the seed.
struct RngStream {
  std::uint64_t state;
  explicit RngStream(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

// Keyed by a stable id, not a pointer: layout-independent semantics.
std::unordered_map<std::uint32_t, int> by_stable_id;

std::uint64_t draw(RngStream& rng) { return rng.next(); }

// Thread-adjacent shapes that are not raw primitives: a same-named
// type in another namespace, and this_thread utilities.
namespace pool {
struct thread_handle {};
}  // namespace pool
pool::thread_handle handle;

void let_others_run() { std::this_thread::yield(); }
