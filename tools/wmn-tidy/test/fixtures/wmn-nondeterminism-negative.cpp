// Fixture: seeded randomness and stable-id keying must NOT be flagged.
#include <cstdint>
#include <unordered_map>

// The sanctioned randomness shape: all state derives from the seed.
struct RngStream {
  std::uint64_t state;
  explicit RngStream(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

// Keyed by a stable id, not a pointer: layout-independent semantics.
std::unordered_map<std::uint32_t, int> by_stable_id;

std::uint64_t draw(RngStream& rng) { return rng.next(); }
