// Fixture: loops over unordered containers must be flagged — both the
// range-for and explicit-iterator shapes, with and without a call into
// the send path inside the body.
#include <unordered_map>
#include <unordered_set>

void send_packet(int payload);

struct RouteTable {
  std::unordered_map<int, int> routes_;
  std::unordered_set<int> pending_;

  void flush() {
    // Bucket order decides packet order here — the live hazard class.
    for (const auto& [dest, hop] : routes_) {  // EXPECT: wmn-unordered-iteration
      send_packet(hop);
    }
  }

  int total() const {
    int sum = 0;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {  // EXPECT: wmn-unordered-iteration
      sum += *it;
    }
    return sum;
  }
};
