// Fixture: side-effect-free conditions — including plain function
// calls, which HasSideEffects(IncludePossibleEffects=false) permits —
// must NOT be flagged.
void wmn_check_fail(const char* expr, const char* msg);
bool is_valid(int value);

#define WMN_CHECK(cond, msg)       \
  do {                             \
    if (!(cond)) {                 \
      wmn_check_fail(#cond, msg);  \
    }                              \
  } while (false)

#define WMN_CHECK_OP_(a, op, b, msg)                 \
  do {                                               \
    const auto& wmn_chk_a_ = (a);                    \
    const auto& wmn_chk_b_ = (b);                    \
    if (!(wmn_chk_a_ op wmn_chk_b_)) {               \
      wmn_check_fail(#a " " #op " " #b, msg);        \
    }                                                \
  } while (false)

#define WMN_CHECK_EQ(a, b, msg) WMN_CHECK_OP_(a, ==, b, msg)

int audit(int x, int y) {
  WMN_CHECK(x >= 0, "negative input");
  WMN_CHECK(is_valid(x), "invalid state");
  WMN_CHECK_EQ(x + y, y + x, "addition commutes");
  return x;
}
