// Fixture: NOLINT-annotated termination sites must be suppressed.
// This mirrors the one sanctioned raw abort() in core/check.hpp.
#include <cassert>
#include <cstdlib>

[[noreturn]] void sanctioned_failure_exit() {
  std::abort();  // NOLINT(wmn-no-raw-assert)
}

void debug_probe(int x) {
  assert(x >= 0);  // NOLINT(wmn-no-raw-assert)
}
