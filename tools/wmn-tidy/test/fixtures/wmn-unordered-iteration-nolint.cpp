// Fixture: a NOLINT with a written commutativity argument (the
// allowlist policy from docs/TOOLING.md) must be suppressed.
#include <unordered_map>

struct LoadTable {
  std::unordered_map<int, long> load_;

  long total() const {
    long sum = 0;
    // Commutative integer sum; no order escapes this loop.
    // NOLINTNEXTLINE(wmn-unordered-iteration)
    for (const auto& [id, load] : load_) {
      sum += load;
    }
    return sum;
  }
};
