// Fixture: the sanctioned shapes — WMN_CHECK-style macros and
// static_assert — must NOT be flagged.
void wmn_check_fail(const char* expr, const char* msg);

#define WMN_CHECK(cond, msg)       \
  do {                             \
    if (!(cond)) {                 \
      wmn_check_fail(#cond, msg);  \
    }                              \
  } while (false)

static_assert(sizeof(int) >= 4, "platform contract");

int clamp(int x) {
  WMN_CHECK(x >= 0, "negative input");
  return x;
}
