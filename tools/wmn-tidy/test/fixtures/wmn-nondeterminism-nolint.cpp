// Fixture: the sanctioned wall-clock-for-host-perf shape (the policy
// exp::Scenario::run uses) must be suppressible.
#include <chrono>
#include <cstdlib>
#include <thread>

double wall_seconds_and_env() {
  // Host-performance timing only; never feeds simulation state.
  // NOLINTNEXTLINE(wmn-nondeterminism)
  auto t0 = std::chrono::steady_clock::now();
  // Sweep-harness knob, read before any replication starts.
  // NOLINTNEXTLINE(wmn-nondeterminism)
  const char* reps = getenv("WMN_REPS");
  (void)reps;
  auto t1 = std::chrono::steady_clock::now();  // NOLINT(wmn-nondeterminism)
  return std::chrono::duration<double>(t1 - t0).count();
}

struct JustifiedWorker {
  // Drains host-side log IO only; never touches simulation state.
  std::thread io_;  // NOLINT(wmn-nondeterminism)
};
