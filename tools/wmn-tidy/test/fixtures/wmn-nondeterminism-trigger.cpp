// Fixture: every host-entropy source must be flagged, and so is raw
// threading outside the sanctioned files (this fixture is neither
// under src/exp/ nor the sharded-simulator TU).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>

unsigned host_entropy() {
  std::random_device rd;  // EXPECT: wmn-nondeterminism
  unsigned r = static_cast<unsigned>(rand());  // EXPECT: wmn-nondeterminism
  r += static_cast<unsigned>(time(nullptr));  // EXPECT: wmn-nondeterminism
  if (getenv("WMN_HOME") != nullptr) {  // EXPECT: wmn-nondeterminism
    r += 1;
  }
  auto t0 = std::chrono::steady_clock::now();  // EXPECT: wmn-nondeterminism
  (void)t0;
  return r + rd();
}

std::unordered_map<int*, int> by_address;  // EXPECT: wmn-nondeterminism

struct AdHocWorker {
  std::thread worker_;  // EXPECT: wmn-nondeterminism
  std::mutex state_lock_;  // EXPECT: wmn-nondeterminism
};

void spawn_detached() {
  std::thread t([] {});  // EXPECT: wmn-nondeterminism
  t.join();
}
