// Fixture: every host-entropy source must be flagged.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

unsigned host_entropy() {
  std::random_device rd;  // EXPECT: wmn-nondeterminism
  unsigned r = static_cast<unsigned>(rand());  // EXPECT: wmn-nondeterminism
  r += static_cast<unsigned>(time(nullptr));  // EXPECT: wmn-nondeterminism
  if (getenv("WMN_HOME") != nullptr) {  // EXPECT: wmn-nondeterminism
    r += 1;
  }
  auto t0 = std::chrono::steady_clock::now();  // EXPECT: wmn-nondeterminism
  (void)t0;
  return r + rd();
}

std::unordered_map<int*, int> by_address;  // EXPECT: wmn-nondeterminism
