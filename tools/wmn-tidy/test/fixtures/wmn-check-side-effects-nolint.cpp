// Fixture: a NOLINT'd mutating condition must be suppressed.
void wmn_check_fail(const char* expr, const char* msg);

#define WMN_CHECK(cond, msg)       \
  do {                             \
    if (!(cond)) {                 \
      wmn_check_fail(#cond, msg);  \
    }                              \
  } while (false)

int drain(int* cursor) {
  // Deliberate: advancing the cursor IS the checked operation here.
  // NOLINTNEXTLINE(wmn-check-side-effects)
  WMN_CHECK(++(*cursor) > 0, "cursor wrapped");
  return *cursor;
}
