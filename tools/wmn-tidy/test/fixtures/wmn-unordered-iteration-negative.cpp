// Fixture: ordered-container loops and the sorted-copy idiom (the fix
// the check asks for) must NOT be flagged.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

void send_packet(int payload);

struct Snapshot {
  std::map<int, int> ordered_;
  std::unordered_map<int, int> raw_;

  // std::map iterates in key order: deterministic by construction.
  void flush_ordered() {
    for (const auto& [key, value] : ordered_) {
      send_packet(value);
    }
  }

  // The sanctioned fix: copy keys out, sort, iterate the vector.
  std::vector<int> sorted_keys() const {
    std::vector<int> keys;
    keys.reserve(raw_.size());
    std::transform(raw_.begin(), raw_.end(), std::back_inserter(keys),
                   [](const auto& kv) { return kv.first; });
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};
