#!/usr/bin/env python3
"""Heuristic (regex/lexical) engine for the wmn-* checks.

The real engine is the clang-tidy plugin in src/ — CI builds and runs
it against full ASTs. This file re-implements the same four checks on
a lexical level with only the Python stdlib, so the fixture tests and
the baseline gate also run on machines with no clang tooling at all
(the default dev container ships none). Fixtures are deliberately
restricted to the intersection of what both engines detect; this file
is NOT a general-purpose linter.

Output format matches clang-tidy:
    path:line:col: warning: message [check-name]

Checks:
    wmn-no-raw-assert       assert()/abort()/_Exit/quick_exit/NDEBUG
    wmn-nondeterminism      std::random_device, rand/srand, time(),
                            getenv(), std::chrono wall clocks,
                            unordered containers keyed by pointers,
                            raw std::thread/std::mutex outside the
                            sanctioned files (src/exp/, the
                            sharded-simulator TU)
    wmn-unordered-iteration loops over unordered_{map,set,...}
    wmn-check-side-effects  mutation inside WMN_CHECK* conditions

NOLINT / NOLINTNEXTLINE with an optional (check-list) are honoured the
same way clang-tidy honours them, including globs like wmn-*.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

ALL_CHECKS = (
    "wmn-no-raw-assert",
    "wmn-nondeterminism",
    "wmn-unordered-iteration",
    "wmn-check-side-effects",
)

UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")
# `std::unordered_map<K, V> name` / `... name{` / `... name;` — collects
# member/local names typed as unordered containers. Template args may
# nest one level of <>.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
    r"(?P<args>(?:[^<>]|<[^<>]*>)*)>\s*"
    r"(?P<name>\w+)\s*(?:[;={(,)]|$)")

SINK_RE = re.compile(
    r"\b(?:schedule|send|transmit|enqueue|broadcast|deliver|emit|notify|fire)"
    r"\w*\s*\(")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(")

RAW_THREADING_RE = re.compile(
    r"\bstd\s*::\s*(?P<sym>thread|jthread|mutex|timed_mutex|"
    r"recursive_mutex|recursive_timed_mutex|shared_mutex|"
    r"shared_timed_mutex|condition_variable(?:_any)?)\b")

# The two places allowed to hold raw threading primitives: the sweep
# concurrency layer (exp::ThreadPool and supervision) and the sharded
# engine's worker team. Matches the plugin's isSanctionedThreadingFile.
SANCTIONED_THREADING_RE = re.compile(
    r"src[/\\]exp[/\\]|sharded_simulator\.")

LIBC_ENTROPY_RE = re.compile(
    r"(?:\bstd\s*::\s*|(?<![\w:.>]))(?P<fn>rand|srand|time|getenv)\s*\(")

TERMINATE_RE = re.compile(
    r"(?:\bstd\s*::\s*|(?<![\w:.>]))(?P<fn>abort|_Exit|quick_exit)\s*\(")

# assert( but not static_assert( or foo_assert(
ASSERT_RE = re.compile(r"(?<![\w])assert\s*\(")

# Definite side effects only (mirrors HasSideEffects with
# IncludePossibleEffects=false): ++/--, plain assignment, compound
# assignment. Plain calls intentionally pass.
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--"
    r"|[+\-*/%&|^]="           # compound assignment
    r"|<<=|>>="
    r"|(?<![=!<>+\-*/%&|^<>])=(?![=])")  # plain =, not ==/!=/<=/>=/op=

NOLINT_RE = re.compile(r"//\s*NOLINT(?P<next>NEXTLINE)?"
                       r"(?:\((?P<list>[^)]*)\))?")


def strip_comments_and_strings(src: str) -> str:
    """Replace comment/string/char contents with spaces, keeping
    newlines and column positions intact so line:col stays accurate."""
    out = []
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = src.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = src.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = src[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if src[j] == "\\":
                    j += 2
                    continue
                if src[j] == quote:
                    j += 1
                    break
                if src[j] == "\n":
                    # Unterminated on this line (apostrophe in code
                    # context, digit separator): never eat the newline
                    # or every later line number shifts.
                    break
                j += 1
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Suppressions:
    """NOLINT bookkeeping, computed from the ORIGINAL source (comments
    survive there)."""

    def __init__(self, original: str):
        self.by_line: dict[int, list[str] | None] = {}
        for lineno, line in enumerate(original.splitlines(), start=1):
            m = NOLINT_RE.search(line)
            if not m:
                continue
            target = lineno + 1 if m.group("next") else lineno
            checks = m.group("list")
            if checks is None:
                self.by_line[target] = None  # suppress everything
            else:
                globs = [c.strip() for c in checks.split(",") if c.strip()]
                prev = self.by_line.get(target)
                if prev is None and target in self.by_line:
                    continue  # already suppress-all
                self.by_line[target] = (prev or []) + globs

    def suppressed(self, line: int, check: str) -> bool:
        if line not in self.by_line:
            return False
        globs = self.by_line[line]
        if globs is None:
            return True
        return any(fnmatch.fnmatchcase(check, g) for g in globs)


class Finding:
    def __init__(self, path: Path, line: int, col: int, msg: str, check: str):
        self.path, self.line, self.col = path, line, col
        self.msg, self.check = msg, check

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: warning: "
                f"{self.msg} [{self.check}]")


def find_matching_paren(text: str, open_idx: int) -> int:
    """Index of the ')' matching the '(' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level_commas(text: str, track_angles: bool = False) -> list[str]:
    """Split on commas not nested in brackets. track_angles=True treats
    <> as nesting (template argument lists); leave it off for macro
    arguments, where `<` is usually a comparison and the preprocessor
    itself only respects parentheses."""
    parts, depth, depth_angle, start = [], 0, 0, 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif track_angles and c == "<":
            depth_angle += 1
        elif track_angles and c == ">":
            depth_angle = max(0, depth_angle - 1)
        elif c == "," and depth == 0 and depth_angle == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def loop_body_lines(lines: list[str], header_line: int) -> range:
    """Lines (1-based, inclusive range) of the loop body that starts at
    header_line. Brace-balanced; a braceless body is the next line."""
    text = "\n".join(lines[header_line - 1:])
    brace = text.find("{")
    semi = text.find(";")
    # find the ')' closing the loop header first; braces before it
    # (lambda args etc.) don't open the body
    paren = text.find("(")
    if paren != -1:
        close = find_matching_paren(text, paren)
        if close != -1:
            brace = text.find("{", close)
            semi = text.find(";", close)
    if brace == -1 or (semi != -1 and semi < brace):
        return range(header_line + 1, header_line + 2)
    depth, i = 0, brace
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                break
        i += 1
    first = header_line + text[:brace].count("\n")
    last = header_line + text[:i].count("\n")
    return range(first, last + 1)


def gather_unordered_names(stripped_sources: list[str]) -> set[str]:
    """Variable/member names declared as unordered containers, pooled
    across every input file so member uses in .cpp files resolve even
    when the declaration lives in a header."""
    names: set[str] = set()
    for src in stripped_sources:
        flat = re.sub(r"\s+", " ", src)
        for m in UNORDERED_DECL_RE.finditer(flat):
            name = m.group("name")
            if name and not name[0].isdigit():
                names.add(name)
    return names


def check_no_raw_assert(path, lines, supp, findings):
    check = "wmn-no-raw-assert"
    for ln, line in enumerate(lines, start=1):
        code = line
        pp = code.lstrip()
        if pp.startswith("#"):
            if re.search(r"\bNDEBUG\b", pp) and re.match(
                    r"#\s*(?:if|ifdef|ifndef|elif)\b", pp):
                if not supp.suppressed(ln, check):
                    findings.append(Finding(
                        path, ln, code.index("#") + 1,
                        "NDEBUG-conditional code forks behaviour between "
                        "build types; use WMN_CHECK*, which is live in all "
                        "builds", check))
            continue  # no assert()/abort() inside other directives
        m = ASSERT_RE.search(code)
        if m and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                "raw assert() compiles out of release builds; use WMN_CHECK* "
                "(core/check.hpp) so the invariant stays live in every build "
                "type", check))
        m = TERMINATE_RE.search(code)
        if m and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                f"direct {m.group('fn')}() bypasses the WMN_CHECK policy "
                "layer; invariant failures must go through "
                "WMN_CHECK*/WMN_UNREACHABLE", check))


def check_nondeterminism(path, lines, supp, findings):
    check = "wmn-nondeterminism"
    threading_sanctioned = bool(SANCTIONED_THREADING_RE.search(str(path)))
    for ln, line in enumerate(lines, start=1):
        if line.lstrip().startswith("#"):
            continue
        m = RAW_THREADING_RE.search(line)
        if m and not threading_sanctioned and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                f"raw std::{m.group('sym')} outside the sanctioned "
                "concurrency layers (src/exp/, the sharded-simulator TU): "
                "ad-hoc threads can reorder simulation events; use "
                "exp::ThreadPool across runs or sim::ShardedSimulator "
                "within one", check))
        m = re.search(r"\bstd\s*::\s*random_device\b", line)
        if m and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                "std::random_device draws hardware entropy; all randomness "
                "must come from the seeded sim::RngStream", check))
        m = LIBC_ENTROPY_RE.search(line)
        if m and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                f"{m.group('fn')}() injects host state into simulation "
                "results; derive everything from (config, seed) instead",
                check))
        m = WALL_CLOCK_RE.search(line)
        if m and not supp.suppressed(ln, check):
            findings.append(Finding(
                path, ln, m.start() + 1,
                "wall-clock reads are invisible to the seed; use "
                "sim::Simulator time, or NOLINT with a justification if this "
                "measures host performance only", check))
        m = UNORDERED_DECL_RE.search(re.sub(r"\s+", " ", line))
        if m:
            first_arg = split_top_level_commas(m.group("args"),
                                               track_angles=True)[0]
            if first_arg.rstrip().endswith("*") and \
                    not supp.suppressed(ln, check):
                findings.append(Finding(
                    path, ln, 1,
                    "unordered container keyed by pointer values: iteration "
                    "order would follow the allocator, not the seed; key by "
                    "a stable id", check))


def check_unordered_iteration(path, lines, supp, findings, unordered_names):
    check = "wmn-unordered-iteration"
    names_alt = "|".join(re.escape(n) for n in sorted(unordered_names)) \
        if unordered_names else r"(?!x)x"
    # range-for over a known unordered variable/member, or over an
    # inline unordered_* expression
    range_for = re.compile(
        r"\bfor\s*\(\s*(?:\[\[[^\]]*\]\]\s*)?[^;()]*?:\s*"
        r"(?:\w+(?:\.|->))*(?:" + names_alt + r")\s*\)")
    range_for_inline = re.compile(
        r"\bfor\s*\([^;()]*?:\s*[^;]*\bunordered_"
        r"(?:map|set|multimap|multiset)\b")
    iter_for = re.compile(
        r"\bfor\s*\(\s*(?:auto|[\w:<>,\s]+?)\s+\w+\s*=\s*"
        r"(?:\w+(?:\.|->))*(?:" + names_alt + r")\s*\.\s*(?:c?begin)\s*\(")
    for ln, line in enumerate(lines, start=1):
        if line.lstrip().startswith("#"):
            continue
        m = range_for.search(line) or range_for_inline.search(line) \
            or iter_for.search(line)
        if not m or supp.suppressed(ln, check):
            continue
        body = loop_body_lines(lines, ln)
        calls_sink = any(
            SINK_RE.search(lines[i - 1])
            for i in body if 0 < i <= len(lines))
        if calls_sink:
            msg = ("loop over an unordered container calls into the "
                   "event/send path: bucket order would decide event order; "
                   "iterate a sorted or insertion-ordered copy instead")
        else:
            msg = ("iteration order over an unordered container follows "
                   "hash-bucket layout (reserve/rehash history); sort what "
                   "escapes, or NOLINT with a written commutativity argument")
        findings.append(Finding(path, ln, m.start() + 1, msg, check))


def check_side_effects(path, lines, supp, findings):
    check = "wmn-check-side-effects"
    text = "\n".join(lines)
    for m in re.finditer(r"\bWMN_CHECK(?:_(?:EQ|NE|GE|GT|LE|LT|NOTNULL))?"
                         r"\s*(\()", text):
        open_idx = m.start(1)
        close_idx = find_matching_paren(text, open_idx)
        if close_idx == -1:
            continue
        ln = text[:m.start()].count("\n") + 1
        # Skip the macro definitions themselves.
        if lines[ln - 1].lstrip().startswith("#"):
            continue
        if supp.suppressed(ln, check):
            continue
        args = split_top_level_commas(text[open_idx + 1:close_idx])
        if len(args) < 2:
            continue
        # Everything except the trailing message is user condition.
        for arg in args[:-1]:
            if SIDE_EFFECT_RE.search(arg):
                findings.append(Finding(
                    path, ln, m.start() - text.rfind("\n", 0, m.start()),
                    "WMN_CHECK condition has side effects; under "
                    "kLogAndCount the check continues after failure, so "
                    "mutation here makes state depend on the active check "
                    "policy", check))
                break


def lint_files(paths: list[Path], enabled: list[str]) -> list[Finding]:
    originals = {p: p.read_text(encoding="utf-8", errors="replace")
                 for p in paths}
    stripped = {p: strip_comments_and_strings(src)
                for p, src in originals.items()}
    unordered_names = gather_unordered_names(list(stripped.values()))
    findings: list[Finding] = []
    for p in paths:
        supp = Suppressions(originals[p])
        lines = stripped[p].splitlines()
        if "wmn-no-raw-assert" in enabled:
            check_no_raw_assert(p, lines, supp, findings)
        if "wmn-nondeterminism" in enabled:
            check_nondeterminism(p, lines, supp, findings)
        if "wmn-unordered-iteration" in enabled:
            check_unordered_iteration(p, lines, supp, findings,
                                      unordered_names)
        if "wmn-check-side-effects" in enabled:
            check_side_effects(p, lines, supp, findings)
    findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.check))
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", type=Path)
    ap.add_argument("--checks", default="wmn-*",
                    help="comma-separated check globs (default: wmn-*)")
    args = ap.parse_args(argv)

    globs = [g.strip() for g in args.checks.split(",") if g.strip()]
    enabled = [c for c in ALL_CHECKS
               if any(fnmatch.fnmatchcase(c, g) for g in globs)]

    missing = [p for p in args.files if not p.is_file()]
    if missing:
        for p in missing:
            print(f"error: no such file: {p}", file=sys.stderr)
        return 2

    findings = lint_files(args.files, enabled)
    for f in findings:
        print(f)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
