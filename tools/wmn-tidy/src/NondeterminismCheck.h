// wmn-nondeterminism: simulation code may not read entropy the seed
// does not control. Banned: std::random_device, rand()/srand(),
// time(), getenv(), and the std::chrono wall clocks — plus hashing on
// pointer values (unordered containers keyed by pointers) and ordering
// comparisons between raw pointers, both of which leak allocator
// layout into results. Also banned: raw threading primitives
// (std::thread, std::mutex, ...) anywhere outside src/exp/ and the
// sharded-simulator TU — ad-hoc threads touching simulation state
// break the determinism contract even when race-free. The one
// legitimate wall-clock perf timer (exp::Scenario::run) carries a
// NOLINT with its justification.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace wmn_tidy {

class NondeterminismCheck : public clang::tidy::ClangTidyCheck {
 public:
  NondeterminismCheck(llvm::StringRef Name,
                      clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace wmn_tidy
