#include "CheckSideEffectsCheck.h"

#include <string>

#include "clang/Lex/Lexer.h"

namespace wmn_tidy {

using namespace clang;
using namespace clang::ast_matchers;

namespace {

// True when Loc sits inside an expansion of a WMN_CHECK* macro (the
// macro name at the immediate expansion site starts with "WMN_CHECK").
bool insideWmnCheck(SourceLocation Loc, const SourceManager &SM,
                    const LangOptions &LangOpts) {
  if (!Loc.isMacroID()) return false;
  const std::string Name =
      Lexer::getImmediateMacroName(Loc, SM, LangOpts).str();
  return Name.rfind("WMN_CHECK", 0) == 0;
}

}  // namespace

void CheckSideEffectsCheck::registerMatchers(MatchFinder *Finder) {
  // WMN_CHECK(cond, msg) expands to `if (!(cond)) ...` — grab the if.
  Finder->addMatcher(ifStmt().bind("if"), this);
  // WMN_CHECK_OP_(a, op, b, msg) binds (a)/(b) to wmn_chk_{a,b}_
  // locals; their initializers are the user-supplied expressions.
  Finder->addMatcher(
      varDecl(matchesName("wmn_chk_"), hasInitializer(expr().bind("init")))
          .bind("chk-var"),
      this);
}

void CheckSideEffectsCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  ASTContext &Ctx = *Result.Context;

  const Expr *Cond = nullptr;
  SourceLocation Loc;

  if (const auto *If = Result.Nodes.getNodeAs<IfStmt>("if")) {
    Loc = If->getIfLoc();
    if (!insideWmnCheck(Loc, SM, Ctx.getLangOpts())) return;
    Cond = If->getCond();
    // Strip the `!` wrapper the macro adds around the user condition.
    if (const auto *Not = dyn_cast_or_null<UnaryOperator>(
            Cond != nullptr ? Cond->IgnoreParenImpCasts() : nullptr)) {
      if (Not->getOpcode() == UO_LNot) Cond = Not->getSubExpr();
    }
  } else if (const auto *Var = Result.Nodes.getNodeAs<VarDecl>("chk-var")) {
    Loc = Var->getLocation();
    if (!insideWmnCheck(Loc, SM, Ctx.getLangOpts())) return;
    Cond = Result.Nodes.getNodeAs<Expr>("init");
  }

  if (Cond == nullptr) return;
  // IncludePossibleEffects=false: only definite side effects
  // (assignment, ++/--, volatile access). Plain function calls pass;
  // the lite engine mirrors this so fixtures agree across engines.
  if (!Cond->HasSideEffects(Ctx, /*IncludePossibleEffects=*/false)) return;

  diag(SM.getExpansionLoc(Loc),
       "WMN_CHECK condition has side effects; under kLogAndCount the "
       "check continues after failure, so mutation here makes state "
       "depend on the active check policy");
}

}  // namespace wmn_tidy
