#include "UnorderedIterationCheck.h"

#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace wmn_tidy {

using namespace clang;
using namespace clang::ast_matchers;

namespace {

// Default sink-name pattern: anything that schedules events or moves
// packets. Deliberately loose — a miss only downgrades the diagnostic
// text, never suppresses the finding.
constexpr char kDefaultSinks[] =
    "^(schedule|send|transmit|enqueue|broadcast|deliver|emit|notify|fire)";

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     unorderedContainer) {
  return qualType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
      classTemplateSpecializationDecl(hasAnyName(
          "::std::unordered_map", "::std::unordered_set",
          "::std::unordered_multimap", "::std::unordered_multiset"))))));
}

}  // namespace

UnorderedIterationCheck::UnorderedIterationCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SinkFunctions(Options.get("SinkFunctions", kDefaultSinks)),
      SinkRegex(SinkFunctions) {}

void UnorderedIterationCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SinkFunctions", SinkFunctions);
}

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxForRangeStmt(hasRangeInit(expr(hasType(unorderedContainer()))))
          .bind("loop"),
      this);
  Finder->addMatcher(
      forStmt(hasLoopInit(declStmt(containsDeclaration(
                  0, varDecl(hasInitializer(cxxMemberCallExpr(
                         callee(cxxMethodDecl(hasName("begin"))),
                         on(expr(hasType(unorderedContainer()))))))))))
          .bind("loop"),
      this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<Stmt>("loop");
  if (Loop == nullptr) return;

  const Stmt *Body = nullptr;
  if (const auto *RF = dyn_cast<CXXForRangeStmt>(Loop)) Body = RF->getBody();
  if (const auto *F = dyn_cast<ForStmt>(Loop)) Body = F->getBody();

  bool CallsSink = false;
  if (Body != nullptr) {
    for (const auto &Bound :
         match(findAll(callExpr().bind("call")), *Body, *Result.Context)) {
      const auto *Call = Bound.getNodeAs<CallExpr>("call");
      if (Call == nullptr) continue;
      const FunctionDecl *Callee = Call->getDirectCallee();
      if (Callee == nullptr) continue;
      // getName() asserts on operators/constructors; skip them.
      if (!Callee->getDeclName().isIdentifier()) continue;
      if (SinkRegex.match(Callee->getName())) {
        CallsSink = true;
        break;
      }
    }
  }

  if (CallsSink) {
    diag(Loop->getBeginLoc(),
         "loop over an unordered container calls into the event/send path: "
         "bucket order would decide event order; iterate a sorted or "
         "insertion-ordered copy instead");
  } else {
    diag(Loop->getBeginLoc(),
         "iteration order over an unordered container follows hash-bucket "
         "layout (reserve/rehash history); sort what escapes, or NOLINT "
         "with a written commutativity argument");
  }
}

}  // namespace wmn_tidy
