#include "NoRawAssertCheck.h"

#include "clang/Frontend/CompilerInstance.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"

namespace wmn_tidy {

using namespace clang;
using namespace clang::ast_matchers;

namespace {

// Preprocessor side: assert() expansions and NDEBUG conditionals both
// vanish from the AST, so they can only be caught here.
class AssertPPCallbacks : public PPCallbacks {
 public:
  AssertPPCallbacks(NoRawAssertCheck *Check, const SourceManager &SM)
      : Check(Check), SM(SM) {}

  void MacroExpands(const Token &MacroNameTok, const MacroDefinition &,
                    SourceRange, const MacroArgs *) override {
    const IdentifierInfo *II = MacroNameTok.getIdentifierInfo();
    if (II == nullptr) return;
    if (II->getName() != "assert") return;
    const SourceLocation Loc = MacroNameTok.getLocation();
    if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return;
    Check->diag(Loc,
                "raw assert() compiles out of release builds; use WMN_CHECK* "
                "(core/check.hpp) so the invariant stays live in every build "
                "type");
  }

  void Ifdef(SourceLocation Loc, const Token &MacroNameTok,
             const MacroDefinition &) override {
    flagNdebug(Loc, MacroNameTok);
  }
  void Ifndef(SourceLocation Loc, const Token &MacroNameTok,
              const MacroDefinition &) override {
    flagNdebug(Loc, MacroNameTok);
  }
  void Defined(const Token &MacroNameTok, const MacroDefinition &,
               SourceRange Range) override {
    flagNdebug(Range.getBegin(), MacroNameTok);
  }

 private:
  void flagNdebug(SourceLocation Loc, const Token &MacroNameTok) {
    const IdentifierInfo *II = MacroNameTok.getIdentifierInfo();
    if (II == nullptr) return;
    if (II->getName() != "NDEBUG") return;
    if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return;
    Check->diag(Loc,
                "NDEBUG-conditional code forks behaviour between build types; "
                "the determinism contract requires one behaviour everywhere "
                "(use WMN_CHECK*, which is live in all builds)");
  }

  NoRawAssertCheck *Check;
  const SourceManager &SM;
};

}  // namespace

void NoRawAssertCheck::registerPPCallbacks(const SourceManager &SM,
                                           Preprocessor *PP, Preprocessor *) {
  PP->addPPCallbacks(std::make_unique<AssertPPCallbacks>(this, SM));
}

void NoRawAssertCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::abort", "::std::abort",
                                              "::_Exit", "::std::_Exit",
                                              "::quick_exit",
                                              "::std::quick_exit"))))
          .bind("terminate"),
      this);
}

void NoRawAssertCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("terminate");
  if (Call == nullptr) return;
  diag(Call->getBeginLoc(),
       "direct process termination bypasses the WMN_CHECK policy layer; "
       "invariant failures must go through WMN_CHECK*/WMN_UNREACHABLE so "
       "kLogAndCount sweeps survive one bad replication");
}

}  // namespace wmn_tidy
