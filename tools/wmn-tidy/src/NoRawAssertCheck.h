// wmn-no-raw-assert: invariants in simulation code must go through the
// release-safe WMN_CHECK* family (src/core/check.hpp), never through
// raw assert()/abort() or NDEBUG-conditional code. assert() compiles
// out of the default RelWithDebInfo build, silently shipping unchecked
// invariants; NDEBUG guards fork behaviour between build types, which
// the same-seed fingerprint contract cannot tolerate.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace wmn_tidy {

class NoRawAssertCheck : public clang::tidy::ClangTidyCheck {
 public:
  NoRawAssertCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerPPCallbacks(const clang::SourceManager &SM,
                           clang::Preprocessor *PP,
                           clang::Preprocessor *ModuleExpanderPP) override;
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace wmn_tidy
