#include "NondeterminismCheck.h"

#include <algorithm>

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallString.h"

namespace wmn_tidy {

using namespace clang;
using namespace clang::ast_matchers;

namespace {

// The two places allowed to hold raw threading primitives: the sweep
// concurrency layer (exp::ThreadPool and its supervision machinery)
// and the sharded engine's worker team. Everywhere else a std::thread
// or std::mutex means simulation state is about to be touched from an
// unsanctioned thread — which breaks the determinism contract even
// when it happens to be race-free.
bool isSanctionedThreadingFile(llvm::StringRef path) {
  llvm::SmallString<256> norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  const llvm::StringRef p(norm);
  return p.contains("src/exp/") || p.contains("sharded_simulator.");
}

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     unorderedContainerKeyedByPointer) {
  return qualType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
      classTemplateSpecializationDecl(
          hasAnyName("::std::unordered_map", "::std::unordered_set",
                     "::std::unordered_multimap", "::std::unordered_multiset"),
          hasTemplateArgument(0, refersToType(isAnyPointer())))))));
}

}  // namespace

void NondeterminismCheck::registerMatchers(MatchFinder *Finder) {
  // Entropy sources the seed does not own.
  Finder->addMatcher(
      varDecl(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                  namedDecl(hasName("::std::random_device")))))))
          .bind("random-device"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::std::rand", "::srand", "::std::srand",
                   "::time", "::std::time", "::getenv", "::std::getenv"))))
          .bind("libc-entropy"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasName("now"),
                   hasDeclContext(recordDecl(hasAnyName(
                       "::std::chrono::system_clock",
                       "::std::chrono::steady_clock",
                       "::std::chrono::high_resolution_clock"))))))
          .bind("wall-clock"),
      this);
  // Pointer-derived ordering/hashing: bit patterns of addresses depend
  // on the allocator and ASLR, so any order they induce is not a
  // function of (config, seed).
  Finder->addMatcher(
      valueDecl(hasType(unorderedContainerKeyedByPointer())).bind("ptr-key"),
      this);
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("<", ">", "<=", ">="),
                     hasLHS(expr(hasType(isAnyPointer()))),
                     hasRHS(expr(hasType(isAnyPointer()))))
          .bind("ptr-order"),
      this);
  // Raw threading primitives outside the sanctioned concurrency
  // layers (see isSanctionedThreadingFile above).
  Finder->addMatcher(
      valueDecl(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                    namedDecl(hasAnyName(
                        "::std::thread", "::std::jthread", "::std::mutex",
                        "::std::timed_mutex", "::std::recursive_mutex",
                        "::std::recursive_timed_mutex", "::std::shared_mutex",
                        "::std::shared_timed_mutex",
                        "::std::condition_variable",
                        "::std::condition_variable_any")))))))
          .bind("raw-thread"),
      this);
}

void NondeterminismCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *D = Result.Nodes.getNodeAs<VarDecl>("random-device")) {
    diag(D->getBeginLoc(),
         "std::random_device draws hardware entropy; all randomness must "
         "come from the seeded sim::RngStream");
    return;
  }
  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("libc-entropy")) {
    diag(C->getBeginLoc(),
         "%0 injects host state into simulation results; derive everything "
         "from (config, seed) instead")
        << (C->getDirectCallee() != nullptr
                ? C->getDirectCallee()->getNameAsString()
                : std::string("this call"));
    return;
  }
  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("wall-clock")) {
    diag(C->getBeginLoc(),
         "wall-clock reads are invisible to the seed; use sim::Simulator "
         "time, or NOLINT with a justification if this measures host "
         "performance only");
    return;
  }
  if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("ptr-key")) {
    diag(D->getBeginLoc(),
         "unordered container keyed by pointer values: iteration order "
         "would follow the allocator, not the seed; key by a stable id");
    return;
  }
  if (const auto *B = Result.Nodes.getNodeAs<BinaryOperator>("ptr-order")) {
    diag(B->getOperatorLoc(),
         "ordering raw pointers compares allocator-assigned addresses; "
         "order by a stable id (or NOLINT a same-array scan)");
    return;
  }
  if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("raw-thread")) {
    const SourceManager &SM = *Result.SourceManager;
    const llvm::StringRef file =
        SM.getFilename(SM.getExpansionLoc(D->getLocation()));
    if (isSanctionedThreadingFile(file)) return;
    diag(D->getBeginLoc(),
         "raw threading primitive outside the sanctioned concurrency "
         "layers (src/exp/, the sharded-simulator TU): ad-hoc threads "
         "can reorder simulation events; use exp::ThreadPool across "
         "runs or sim::ShardedSimulator within one");
  }
}

}  // namespace wmn_tidy
