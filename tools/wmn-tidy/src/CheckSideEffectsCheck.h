// wmn-check-side-effects: the condition handed to WMN_CHECK* must be
// side-effect-free. Under policy kLogAndCount the macro evaluates the
// condition and continues on failure, so a mutating condition makes
// program state depend on which check policy is active — the exact
// build-type fork WMN_CHECK exists to prevent.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace wmn_tidy {

class CheckSideEffectsCheck : public clang::tidy::ClangTidyCheck {
 public:
  CheckSideEffectsCheck(llvm::StringRef Name,
                        clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace wmn_tidy
