// wmn-unordered-iteration: flags range-for and iterator loops over
// std::unordered_{map,set,multimap,multiset}. Bucket order depends on
// reserve/rehash history and the standard library's hash internals, so
// any order that escapes such a loop couples results to things the
// seed does not control. Loops whose body calls into the scheduler,
// channel, or packet send paths (SinkFunctions option) get the sharper
// event-ordering diagnostic. Sites that are commutative by
// construction carry NOLINT with a written safety argument — see
// docs/TOOLING.md for the allowlist policy.
#pragma once

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace wmn_tidy {

class UnorderedIterationCheck : public clang::tidy::ClangTidyCheck {
 public:
  UnorderedIterationCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext *Context);

  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string SinkFunctions;
  llvm::Regex SinkRegex;
};

}  // namespace wmn_tidy
