// wmn-module: registers the project's clang-tidy checks. Built as an
// out-of-tree plugin and loaded with `clang-tidy --load=libwmn-tidy.so`;
// no symbols are linked against LLVM here — everything resolves from
// the hosting clang-tidy binary at dlopen time.
#include "clang-tidy/ClangTidy.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CheckSideEffectsCheck.h"
#include "NoRawAssertCheck.h"
#include "NondeterminismCheck.h"
#include "UnorderedIterationCheck.h"

namespace wmn_tidy {

class WmnTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoRawAssertCheck>("wmn-no-raw-assert");
    CheckFactories.registerCheck<NondeterminismCheck>("wmn-nondeterminism");
    CheckFactories.registerCheck<UnorderedIterationCheck>(
        "wmn-unordered-iteration");
    CheckFactories.registerCheck<CheckSideEffectsCheck>(
        "wmn-check-side-effects");
  }
};

}  // namespace wmn_tidy

namespace clang::tidy {

// Anchor the registry entry; the variable itself is otherwise unused.
static ClangTidyModuleRegistry::Add<::wmn_tidy::WmnTidyModule>
    X("wmn-module", "WMN determinism and invariant-policy checks.");

// Pulled in by the plugin loader to keep the module from being
// dead-stripped.
volatile int WmnTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
