#!/usr/bin/env python3
"""Fixture harness for the wmn-* checks.

Each fixture is named <check>-<kind>.cpp with kind one of:
    trigger   every `// EXPECT: <check>` line must produce exactly that
              diagnostic (and nothing else). A trigger fixture with no
              EXPECT lines is an error — that is how a check that
              silently stops matching fails the suite.
    nolint    same shapes annotated with NOLINT; zero diagnostics.
    negative  sanctioned shapes; zero diagnostics.

Two engines run the same fixtures:
    lite      wmn_tidy_lite.py (stdlib Python; always available)
    plugin    clang-tidy --load=<libwmn-tidy.so> (CI, or any machine
              with clang dev packages)

Fixtures are restricted to the intersection of what both engines
detect, so the expectation files are engine-independent.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(?P<check>[\w-]+)")
DIAG_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<check>[\w.,-]+)\]\s*$")

KINDS = ("trigger", "nolint", "negative")


def parse_fixture_name(path: Path) -> tuple[str, str] | None:
    for kind in KINDS:
        suffix = f"-{kind}"
        if path.stem.endswith(suffix):
            return path.stem[: -len(suffix)], kind
    return None


def expected_diags(path: Path) -> set[tuple[int, str]]:
    out = set()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            out.add((lineno, m.group("check")))
    return out


def run_engine(engine: str, fixture: Path, check: str,
               args: argparse.Namespace) -> tuple[set[tuple[int, str]], str]:
    if engine == "lite":
        cmd = [sys.executable, str(args.lite_script),
               f"--checks={check}", str(fixture)]
    else:
        cmd = [args.clang_tidy, f"--load={args.plugin}",
               f"--checks=-*,{check}", "--quiet", str(fixture),
               "--", "-std=c++20"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        # clang-tidy may tag a line with several checks; keep ours.
        if check in m.group("check").split(","):
            diags.add((int(m.group("line")), check))
    return diags, proc.stdout + proc.stderr


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--engine", choices=("lite", "plugin"), required=True)
    ap.add_argument("--fixtures", type=Path, default=HERE / "test/fixtures")
    ap.add_argument("--lite-script", type=Path,
                    default=HERE / "wmn_tidy_lite.py")
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--plugin", help="path to libwmn-tidy.so (plugin engine)")
    ap.add_argument("--only", help="run only fixtures for this check")
    args = ap.parse_args(argv)

    if args.engine == "plugin" and not args.plugin:
        print("error: --plugin is required with --engine=plugin",
              file=sys.stderr)
        return 2

    fixtures = sorted(args.fixtures.glob("*.cpp"))
    if not fixtures:
        print(f"error: no fixtures under {args.fixtures}", file=sys.stderr)
        return 2

    failures = 0
    ran = 0
    for fixture in fixtures:
        parsed = parse_fixture_name(fixture)
        if parsed is None:
            print(f"FAIL {fixture.name}: unrecognised fixture name")
            failures += 1
            continue
        check, kind = parsed
        if args.only and check != args.only:
            continue
        ran += 1

        expected = expected_diags(fixture)
        actual, raw = run_engine(args.engine, fixture, check, args)

        if kind == "trigger" and not expected:
            print(f"FAIL {fixture.name}: trigger fixture has no EXPECT lines")
            failures += 1
            continue
        if kind in ("nolint", "negative") and expected:
            print(f"FAIL {fixture.name}: {kind} fixture must not carry "
                  "EXPECT lines")
            failures += 1
            continue

        if actual == expected:
            print(f"PASS {fixture.name} ({len(actual)} diagnostics)")
            continue

        failures += 1
        print(f"FAIL {fixture.name}")
        for line, chk in sorted(expected - actual):
            print(f"  missing: line {line} [{chk}]")
        for line, chk in sorted(actual - expected):
            print(f"  unexpected: line {line} [{chk}]")
        if raw.strip():
            print("  engine output:")
            for ln in raw.strip().splitlines():
                print(f"    {ln}")

    if ran == 0:
        print("error: no fixtures matched the filter", file=sys.stderr)
        return 2
    print(f"{ran - failures}/{ran} fixtures passed ({args.engine} engine)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
