// F11 — gateway-aggregation production workload: PDR / delay / gateway
// fairness vs offered session load.
//
// Each source node aggregates the sessions of ~1000 users (Poisson
// session arrivals, Pareto session sizes) against 3 gateway hotspots;
// flows join the mesh over time via the seeded arrival process. The
// offered-load knob is the per-user session rate. Expected shape:
// AODV-BF (blind flood + hop count) funnels every source onto the
// shortest tree into its gateway, so as load rises one gateway
// neighbourhood saturates first — gateway Jain falls toward 1/K and
// the per-gateway load variance explodes while PDR collapses. CLNLR's
// neighbourhood-load routing detours around the hot gateway cells and
// degrades gracefully.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env =
      announce("F11", "gateway aggregation: fairness vs session load", argc, argv);

  // Per-user session arrivals per second; offered load per source is
  // users * rate * mean_session_pkts * packet_bytes.
  const std::vector<double> session_rates{0.001, 0.002, 0.004, 0.008};
  const std::vector<core::Protocol> protocols{core::Protocol::kClnlr,
                                              core::Protocol::kAodvFlood};

  auto f11_config = [](double session_rate, core::Protocol p) {
    exp::ScenarioConfig cfg = base_config();
    cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
    cfg.traffic.n_gateways = 3;
    cfg.traffic.n_flows = 12;
    cfg.traffic.model = exp::TrafficSpec::Model::kSessions;
    cfg.traffic.users_per_node = 1000;
    cfg.traffic.session_rate_per_user_per_s = session_rate;
    cfg.traffic.session_rate_pps = 16.0;
    cfg.traffic.mean_session_pkts = 20.0;
    cfg.traffic.mean_arrival_gap_s = 1.0;
    cfg.protocol = p;
    return cfg;
  };

  stats::Table table({"sess/user/s", "protocol", "PDR", "delay (ms)",
                      "gw Jain", "gw variance", "sessions", "rejected"});

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double rate : session_rates) {
    for (core::Protocol p : protocols) {
      cells.push_back(sweep.add_cell(
          f11_config(rate, p), env.reps,
          stats::Table::num(rate, 3) + " sess/u/s, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double rate : session_rates) {
    for (core::Protocol p : protocols) {
      const auto reps = sweep.cell_metrics(*cell++);
      table.add_row(
          {stats::Table::num(rate, 3), core::protocol_name(p),
           exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
           exp::ci_str(
               reps, [](const exp::RunMetrics& m) { return m.mean_delay_ms; },
               0),
           exp::ci_str(
               reps, [](const exp::RunMetrics& m) { return m.gateway_jain; },
               3),
           exp::ci_str(
               reps,
               [](const exp::RunMetrics& m) { return m.gateway_load_variance; },
               0),
           exp::ci_str(
               reps,
               [](const exp::RunMetrics& m) {
                 return static_cast<double>(m.sessions_started);
               },
               0),
           exp::ci_str(
               reps,
               [](const exp::RunMetrics& m) {
                 return static_cast<double>(m.sessions_rejected);
               },
               0)});
    }
  }
  return finish(table, "f11_gateway_load.csv", sweep, env);
}
