// T3 — CLNLR ablation: which half of the mechanism buys what?
//
//   CLNLR-RD: load-adaptive discovery only (stock route selection)
//   CLNLR-RS: load-aware route selection only (blind-flood discovery)
//   CLNLR:    both
//
// Expected: discovery throttling dominates the overhead savings
// (RREQ/disc, collisions); route selection dominates the PDR/delay
// gains under load; the full protocol combines both.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("T3", "CLNLR ablation at the reference point", argc, argv);

  const std::vector<core::Protocol> protocols{
      core::Protocol::kAodvFlood, core::Protocol::kClnlrRdOnly,
      core::Protocol::kClnlrRsOnly, core::Protocol::kClnlr};

  stats::Table table({"protocol", "PDR", "delay (ms)", "RREQ tx", "RREQ/disc",
                      "NRL", "collisions", "avg hops"});

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (core::Protocol p : protocols) {
    exp::ScenarioConfig cfg = base_config();
    cfg.traffic.rate_pps = 6.0;
    cfg.protocol = p;
    cells.push_back(sweep.add_cell(cfg, env.reps, core::protocol_name(p)));
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (core::Protocol p : protocols) {
    const auto reps = sweep.cell_metrics(*cell++);
    table.add_row(
        {core::protocol_name(p),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.rreq_tx);
             },
             0),
         exp::ci_str(
             reps, [](const exp::RunMetrics& m) { return m.rreq_per_discovery; },
             1),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.nrl; }, 1),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.phy_collisions);
             },
             0),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.avg_path_hops; }, 1)});
  }
  return finish(table, "t3_ablation.csv", sweep, env);
}
