// Macro perf benchmark: full-stack simulator throughput on the T1
// reference mesh, pinned so the number is comparable across commits.
//
// The scenario is the 100-node / 1000x1000 m perturbed-grid mesh from
// bench/common.hpp at 6 pkt/s per flow — the congestion operating point
// where the F3/F4 curves bend and the event rate is dominated by the
// scheduler/packet hot path this benchmark exists to track. Unlike the
// figure benches this config is hard-coded (WMN_QUICK is deliberately
// ignored): a quick-mode run would produce numbers incomparable with
// bench/baseline.json.
//
// Emits results/BENCH_macro.json (see perf_json.hpp) for the CI perf
// gate; run docs are in docs/TOOLING.md ("The perf harness").
#include <benchmark/benchmark.h>

#include "core/protocols.hpp"
#include "exp/scenario.hpp"
#include "perf_json.hpp"

namespace {

using namespace wmn;

exp::ScenarioConfig reference_config(core::Protocol protocol) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 100;
  cfg.area_width_m = 1000.0;
  cfg.area_height_m = 1000.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.placement_jitter_m = 60.0;
  cfg.traffic.n_flows = 10;
  cfg.traffic.rate_pps = 6.0;  // the congestion point
  cfg.traffic.packet_bytes = 512;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(25.0);
  cfg.drain = sim::Time::seconds(2.0);
  cfg.seed = 1000;
  cfg.protocol = protocol;
  return cfg;
}

void BM_Reference100Nodes6pps(benchmark::State& state) {
  const auto protocol = static_cast<core::Protocol>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::Scenario s(reference_config(protocol));
    s.run();
    events += s.simulator().events_executed();
  }
  state.SetLabel(core::protocol_name(protocol));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Reference100Nodes6pps)
    ->Arg(static_cast<int>(core::Protocol::kClnlr))
    ->Arg(static_cast<int>(core::Protocol::kAodvFlood))
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

// 400-node scale point: the reference mesh's density and operating
// point over a 2000x2000 m area, with a shorter traffic window so the
// wall cost stays CI-sized. Tracks how the channel hot path (spatial
// index + neighbour caches, on by default) scales with N — at this
// size the full O(N^2) scan would dominate the event loop.
void BM_Scale400Nodes6pps(benchmark::State& state) {
  std::uint64_t events = 0;
  std::size_t bytes_per_node = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg = reference_config(core::Protocol::kClnlr);
    cfg.n_nodes = 400;
    cfg.area_width_m = 2000.0;
    cfg.area_height_m = 2000.0;
    cfg.traffic.n_flows = 40;
    cfg.traffic_time = sim::Time::seconds(8.0);
    exp::Scenario s(cfg);
    s.run();
    events += s.simulator().events_executed();
    // End-of-run footprint: tables and caches are at their steady-state
    // size after 8 simulated seconds of routed traffic.
    bytes_per_node = s.bytes_per_node();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
  // Gated by bench/perf_gate.py (higher = regression).
  state.counters["bytes_per_node"] =
      benchmark::Counter(static_cast<double>(bytes_per_node));
}
BENCHMARK(BM_Scale400Nodes6pps)->Iterations(1)->Unit(benchmark::kMillisecond);

// The 400-node scale point on the sharded engine (DESIGN.md §3e) at
// 1/2/4/8 worker threads. All four arguments execute the identical
// event schedule (that is the determinism contract, pinned in
// tests/test_determinism.cpp); only the wall clock may differ. CI
// gates shards=8 against shards=1 with perf_gate.py --min-speedup.
// Note the 1-shard point is the parallel engine on one thread — the
// honest baseline for a speedup claim, since it pays the same epoch
// and merge overhead. The worker count is clamped to the host's
// hardware concurrency, so the speedup saturates on small runners.
void BM_Scale400Nodes6ppsSharded(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg = reference_config(core::Protocol::kClnlr);
    cfg.n_nodes = 400;
    cfg.area_width_m = 2000.0;
    cfg.area_height_m = 2000.0;
    cfg.traffic.n_flows = 40;
    cfg.traffic_time = sim::Time::seconds(8.0);
    cfg.intra_run_shards = shards;
    exp::Scenario s(cfg);
    s.run();
    events += s.sharded_engine()->events_executed();
  }
  state.SetLabel("shards=" + std::to_string(shards));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Scale400Nodes6ppsSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// F11 smoke point: the gateway-aggregation session workload at the
// reference scale — tracks the cost of the session/heavy-tail source
// machinery (per-arrival scheduling, per-session pacing timers) on top
// of the scheduler hot path. Not in bench/baseline.json, so the perf
// gate reports it without gating on it until a baseline is pinned.
void BM_F11GatewaySessions(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg = reference_config(core::Protocol::kClnlr);
    cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
    cfg.traffic.n_gateways = 3;
    cfg.traffic.n_flows = 12;
    cfg.traffic.model = exp::TrafficSpec::Model::kSessions;
    cfg.traffic.users_per_node = 1000;
    cfg.traffic.session_rate_per_user_per_s = 0.004;
    cfg.traffic.mean_arrival_gap_s = 1.0;
    cfg.traffic_time = sim::Time::seconds(15.0);
    exp::Scenario s(cfg);
    s.run();
    events += s.simulator().events_executed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_F11GatewaySessions)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return wmnbench::run_benchmark_main(argc, argv, "macro");
}
