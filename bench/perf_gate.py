#!/usr/bin/env python3
"""Compare BENCH_*.json perf summaries against a committed baseline.

Usage:
    perf_gate.py --baseline bench/baseline.json CURRENT.json [CURRENT2.json...]
                 [--tolerance 0.25]

The baseline and the current files use the schema written by
bench/perf_json.hpp (schema_version 1). Benchmarks are matched by name;
the gated quantity is per-iteration real time:

  * current > baseline * (1 + tolerance)  ->  REGRESSION, exit 1
  * current < baseline * (1 - tolerance)  ->  warning: faster than
    baseline; suggest rebaselining so future regressions are caught
    from the new, better level
  * baseline entries that none of the current files ran are reported
    and skipped (CI runs a pinned subset of bench_micro).

Rebaselining (after an intentional perf change): run the benches, then
merge the fresh summaries into the baseline with
    perf_gate.py --rebaseline bench/baseline.json NEW.json [NEW2.json...]
Only uses the Python standard library.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1


def load_summary(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.exit(f"{path}: schema_version {version} != expected {SCHEMA_VERSION}")
    if not isinstance(data.get("benchmarks"), list):
        sys.exit(f"{path}: missing 'benchmarks' array")
    return data


def index_benchmarks(data: dict) -> dict[str, dict]:
    return {b["name"]: b for b in data["benchmarks"]}


def fmt_time(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.3f} s"


def gate(args: argparse.Namespace) -> int:
    baseline = index_benchmarks(load_summary(args.baseline))
    current: dict[str, dict] = {}
    for path in args.current:
        current.update(index_benchmarks(load_summary(path)))

    regressions, faster, skipped = [], [], []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            skipped.append(name)
            continue
        base_ns, cur_ns = base["real_time_ns"], cur["real_time_ns"]
        if base_ns <= 0:
            skipped.append(name)
            continue
        ratio = cur_ns / base_ns
        line = (f"{name}: {fmt_time(cur_ns)} vs baseline "
                f"{fmt_time(base_ns)} ({ratio - 1.0:+.1%})")
        if ratio > 1.0 + args.tolerance:
            regressions.append(line)
        elif ratio < 1.0 - args.tolerance:
            faster.append(line)
        else:
            print(f"  ok      {line}")

    for name in skipped:
        print(f"  skipped {name} (not in the current run)")
    for line in faster:
        print(f"  FASTER  {line}")
    if faster:
        print(f"\n{len(faster)} benchmark(s) are >{args.tolerance:.0%} faster "
              "than the baseline. If this speedup is intentional, rebaseline "
              "so the gate tracks the new level:\n"
              f"    bench/perf_gate.py --rebaseline {args.baseline} "
              + " ".join(args.current))
    if regressions:
        print(f"\nPERF REGRESSION: {len(regressions)} benchmark(s) are "
              f">{args.tolerance:.0%} slower than {args.baseline}:")
        for line in regressions:
            print(f"  SLOWER  {line}")
        print("\nIf the slowdown is intentional and accepted, rebaseline:\n"
              f"    bench/perf_gate.py --rebaseline {args.baseline} "
              + " ".join(args.current))
        return 1
    print(f"\nperf gate passed ({len(baseline) - len(skipped)} compared, "
          f"{len(skipped)} skipped, tolerance ±{args.tolerance:.0%})")
    return 0


def rebaseline(args: argparse.Namespace) -> int:
    merged = index_benchmarks(load_summary(args.baseline))
    for path in args.current:
        merged.update(index_benchmarks(load_summary(path)))
    out = {
        "schema_version": SCHEMA_VERSION,
        "suite": "baseline",
        "benchmarks": [merged[name] for name in sorted(merged)],
    }
    with open(args.baseline, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(f"rebaselined {args.baseline} with {len(merged)} benchmark(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json",
                        help="committed reference summary")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="merge the current summaries into the baseline "
                             "instead of gating")
    parser.add_argument("current", nargs="+",
                        help="BENCH_*.json summaries from the current build")
    args = parser.parse_args()
    return rebaseline(args) if args.rebaseline else gate(args)


if __name__ == "__main__":
    sys.exit(main())
