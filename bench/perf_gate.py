#!/usr/bin/env python3
"""Compare BENCH_*.json perf summaries against a committed baseline.

Usage:
    perf_gate.py --baseline bench/baseline.json CURRENT.json [CURRENT2.json...]
                 [--tolerance 0.25] [--counter-tolerance 0.10]
                 [--gate-counter NAME]... [--markdown-out PATH]

The baseline and the current files use the schema written by
bench/perf_json.hpp (schema_version 1). Benchmarks are matched by name;
two quantities are gated:

  * per-iteration real time, against --tolerance:
      - current > baseline * (1 + tolerance)  ->  REGRESSION, exit 1
      - current < baseline * (1 - tolerance)  ->  warning: faster than
        baseline; suggest rebaselining so future regressions are caught
        from the new, better level
  * gated counters (bytes_per_node by default; add more with repeated
    --gate-counter), against --counter-tolerance. Gated counters are
    size/cost-like: HIGHER is a regression. A counter present in only
    one side is skipped, so adding a counter to a benchmark does not
    break the gate until it is rebaselined in.

A third gate compares two entries of the *current* run against each
other instead of against the baseline:

    --min-speedup SLOW FAST RATIO       (repeatable)

fails unless real_time(SLOW) / real_time(FAST) >= RATIO. This is how
CI gates the sharded engine: the 1-shard and 8-shard points of
BM_Scale400Nodes6ppsSharded run in the same process on the same
machine, so their ratio is far less noisy than any absolute time —
and a parallel speedup has no meaningful committed baseline. A spec
whose entries are missing from the current files is skipped (the
sharded bench only runs on multi-core runners), not failed.

Baseline entries that none of the current files ran are reported and
skipped (CI runs a pinned subset of bench_micro).

--markdown-out appends a compact delta table (one row per compared
quantity) to the given file; CI points it at $GITHUB_STEP_SUMMARY.

Rebaselining (after an intentional perf change): run the benches, then
merge the fresh summaries into the baseline with
    perf_gate.py --rebaseline bench/baseline.json NEW.json [NEW2.json...]
Only uses the Python standard library.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1

# Counters gated by default when both sides carry them. All gated
# counters are treated as "higher = worse".
DEFAULT_GATED_COUNTERS = ("bytes_per_node",)


def load_summary(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.exit(f"{path}: schema_version {version} != expected {SCHEMA_VERSION}")
    if not isinstance(data.get("benchmarks"), list):
        sys.exit(f"{path}: missing 'benchmarks' array")
    return data


def index_benchmarks(data: dict) -> dict[str, dict]:
    return {b["name"]: b for b in data["benchmarks"]}


def fmt_time(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.3f} s"


def fmt_counter(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def write_markdown(path: str, rows: list[tuple[str, str, str, str, str]],
                   tolerance: float, counter_tolerance: float) -> None:
    """Append a delta table (quantity, baseline, current, delta, verdict)."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("### Perf gate: baseline vs current\n\n")
        fh.write("| benchmark | baseline | current | delta | verdict |\n")
        fh.write("|---|---|---|---|---|\n")
        for row in rows:
            fh.write("| " + " | ".join(row) + " |\n")
        fh.write(f"\nTolerance: time ±{tolerance:.0%}, "
                 f"counters ±{counter_tolerance:.0%}. Gated counters are "
                 "higher-is-worse.\n")


def gate(args: argparse.Namespace) -> int:
    baseline = index_benchmarks(load_summary(args.baseline))
    current: dict[str, dict] = {}
    for path in args.current:
        current.update(index_benchmarks(load_summary(path)))

    gated_counters = list(DEFAULT_GATED_COUNTERS)
    for name in args.gate_counter:
        if name not in gated_counters:
            gated_counters.append(name)

    regressions: list[str] = []
    faster: list[str] = []
    skipped: list[str] = []
    md_rows: list[tuple[str, str, str, str, str]] = []

    def judge(label: str, base_v: float, cur_v: float, shown_base: str,
              shown_cur: str, tolerance: float) -> None:
        ratio = cur_v / base_v
        delta = f"{ratio - 1.0:+.1%}"
        line = f"{label}: {shown_cur} vs baseline {shown_base} ({delta})"
        if ratio > 1.0 + tolerance:
            regressions.append(line)
            verdict = "REGRESSION"
        elif ratio < 1.0 - tolerance:
            faster.append(line)
            verdict = "faster"
        else:
            print(f"  ok      {line}")
            verdict = "ok"
        md_rows.append((label, shown_base, shown_cur, delta, verdict))

    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            skipped.append(name)
            continue
        base_ns, cur_ns = base["real_time_ns"], cur["real_time_ns"]
        if base_ns <= 0:
            skipped.append(name)
            continue
        judge(name, base_ns, cur_ns, fmt_time(base_ns), fmt_time(cur_ns),
              args.tolerance)
        base_counters = base.get("counters", {})
        cur_counters = cur.get("counters", {})
        for cname in gated_counters:
            base_c = base_counters.get(cname)
            cur_c = cur_counters.get(cname)
            if base_c is None or cur_c is None or base_c <= 0:
                continue
            judge(f"{name} [{cname}]", base_c, cur_c, fmt_counter(base_c),
                  fmt_counter(cur_c), args.counter_tolerance)

    for slow_name, fast_name, min_ratio_text in args.min_speedup:
        try:
            min_ratio = float(min_ratio_text)
        except ValueError:
            sys.exit(f"--min-speedup ratio {min_ratio_text!r} is not a number")
        if min_ratio <= 0:
            sys.exit(f"--min-speedup ratio must be positive, got {min_ratio_text}")
        label = f"speedup {slow_name} / {fast_name}"
        slow, fast = current.get(slow_name), current.get(fast_name)
        if slow is None or fast is None or fast["real_time_ns"] <= 0:
            skipped.append(label)
            continue
        ratio = slow["real_time_ns"] / fast["real_time_ns"]
        shown = f"{ratio:.2f}x"
        required = f">= {min_ratio:g}x"
        line = f"{label}: {shown} (required {required})"
        if ratio < min_ratio:
            regressions.append(line)
            verdict = "REGRESSION"
        else:
            print(f"  ok      {line}")
            verdict = "ok"
        md_rows.append((label, required, shown, "-", verdict))

    for name in skipped:
        print(f"  skipped {name} (not in the current run)")
    for line in faster:
        print(f"  FASTER  {line}")
    if faster:
        print(f"\n{len(faster)} quantitie(s) are more than the tolerance "
              "better than the baseline. If this improvement is intentional, "
              "rebaseline so the gate tracks the new level:\n"
              f"    bench/perf_gate.py --rebaseline {args.baseline} "
              + " ".join(args.current))

    if args.markdown_out:
        write_markdown(args.markdown_out, md_rows, args.tolerance,
                       args.counter_tolerance)

    if regressions:
        print(f"\nPERF REGRESSION: {len(regressions)} quantitie(s) are "
              f"beyond tolerance versus {args.baseline}:")
        for line in regressions:
            print(f"  SLOWER  {line}")
        print("\nIf the slowdown is intentional and accepted, rebaseline:\n"
              f"    bench/perf_gate.py --rebaseline {args.baseline} "
              + " ".join(args.current))
        return 1
    print(f"\nperf gate passed ({len(baseline) - len(skipped)} compared, "
          f"{len(skipped)} skipped, time tolerance ±{args.tolerance:.0%}, "
          f"counter tolerance ±{args.counter_tolerance:.0%})")
    return 0


def rebaseline(args: argparse.Namespace) -> int:
    merged = index_benchmarks(load_summary(args.baseline))
    for path in args.current:
        merged.update(index_benchmarks(load_summary(path)))
    out = {
        "schema_version": SCHEMA_VERSION,
        "suite": "baseline",
        "benchmarks": [merged[name] for name in sorted(merged)],
    }
    with open(args.baseline, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(f"rebaselined {args.baseline} with {len(merged)} benchmark(s)")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json",
                        help="committed reference summary")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--counter-tolerance", type=float, default=0.10,
                        help="allowed relative counter growth (default 0.10)")
    parser.add_argument("--gate-counter", action="append", default=[],
                        metavar="NAME",
                        help="gate this counter too (repeatable; "
                             "higher = regression)")
    parser.add_argument("--min-speedup", action="append", nargs=3, default=[],
                        metavar=("SLOW", "FAST", "RATIO"),
                        help="require real_time(SLOW)/real_time(FAST) >= "
                             "RATIO within the current run (repeatable; "
                             "skipped if either entry is absent)")
    parser.add_argument("--markdown-out", default=None, metavar="PATH",
                        help="append a markdown delta table to this file "
                             "(CI: $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="merge the current summaries into the baseline "
                             "instead of gating")
    parser.add_argument("current", nargs="+",
                        help="BENCH_*.json summaries from the current build")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return rebaseline(args) if args.rebaseline else gate(args)


if __name__ == "__main__":
    sys.exit(main())
