// A1 — analytical model vs simulation (extension experiment).
//
// Bianchi-style DCF saturation throughput against the simulator's MAC
// in a single collision domain, swept over station count — the
// model-validation table the source group publishes alongside every
// simulation study.
#include <cmath>
#include <memory>

#include "common.hpp"
#include "mac/dcf_mac.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "stats/dcf_model.hpp"

namespace {

double simulate_saturation_bps(std::uint32_t n, double sim_seconds,
                               std::uint64_t seed) {
  using namespace wmn;
  using mobility::ConstantPositionModel;
  using mobility::Vec2;

  sim::Simulator simr(seed);
  phy::WirelessChannel channel(simr, std::make_unique<phy::LogDistanceModel>());
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mob;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::uint64_t delivered_bytes = 0;

  for (std::uint32_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265 * i / n;
    mob.push_back(std::make_unique<ConstantPositionModel>(
        Vec2{25.0 * std::cos(a), 25.0 * std::sin(a)}));
    phys.push_back(std::make_unique<phy::WifiPhy>(simr, phy::PhyConfig{}, i,
                                                  mob.back().get()));
    channel.attach(phys.back().get());
    macs.push_back(std::make_unique<mac::DcfMac>(
        simr, mac::MacConfig{}, net::Address(i), *phys.back(), factory));
    macs.back()->set_rx_callback([&delivered_bytes](net::Packet p, net::Address) {
      delivered_bytes += p.payload_bytes();
    });
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    // 250 pkt/s per station: above per-station capacity even for the
    // smallest population, so the queue never drains (true saturation).
    for (int k = 0; k < static_cast<int>(sim_seconds * 250); ++k) {
      simr.schedule_at(sim::Time::millis(k * 4.0), [&, i] {
        macs[i]->enqueue(factory.make(512, simr.now()), net::Address((i + 1) % n));
      });
    }
  }
  simr.run_until(sim::Time::seconds(sim_seconds));
  return static_cast<double>(delivered_bytes) * 8.0 / sim_seconds;
}

}  // namespace

int main() {
  using namespace wmnbench;
  std::cout << "\n=== A1: analytical DCF saturation model vs simulator ===\n"
            << "(single collision domain, saturated 512 B unicast)\n\n";

  stats::Table table({"stations", "model (kb/s)", "sim (kb/s)", "sim/model",
                      "model p_coll", "model tau"});
  for (std::uint32_t n : {3u, 5u, 10u, 15u, 25u}) {
    stats::DcfModelParams params;
    params.n_stations = n;
    const auto model = stats::solve_dcf_saturation(params);
    const double sim_bps = simulate_saturation_bps(n, 15.0, 7);
    table.add_row({std::to_string(n),
                   stats::Table::num(model.throughput_bps / 1e3, 1),
                   stats::Table::num(sim_bps / 1e3, 1),
                   stats::Table::num(sim_bps / model.throughput_bps, 3),
                   stats::Table::num(model.p_collision, 3),
                   stats::Table::num(model.tau, 4)});
  }
  finish(table, "a1_analytic.csv");
  return 0;
}
