// F10 — resilience under node churn (fault-injection family).
//
// Routers crash and rejoin as a Poisson process while CBR flows run;
// the graceful-degradation features (local repair, RREP blacklist,
// RERR-to-precursors) are enabled for every cell so the figure shows
// what the protocols can do about failures, not just that failures
// hurt. Expected shape: PDR falls with churn rate for every protocol,
// PDR measured over packets sent during fault windows falls fastest,
// and CLNLR holds PDR at least as well as flooding AODV while keeping
// its overhead margin — load-aware route choice tends to pick
// better-connected (hence more failure-tolerant) neighbourhoods.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F10", "PDR and recovery latency vs node churn", argc, argv);

  // Crash events per minute across the whole mesh; ~10 s mean downtime.
  const std::vector<double> churn_per_min{0.0, 2.0, 6.0, 12.0};
  const std::vector<core::Protocol> protocols{core::Protocol::kAodvFlood,
                                              core::Protocol::kClnlr};

  std::vector<std::string> cols{"churn (/min)"};
  for (core::Protocol p : protocols) {
    cols.push_back(core::protocol_name(p) + " PDR");
    cols.push_back(core::protocol_name(p) + " PDR-outage");
    cols.push_back(core::protocol_name(p) + " recovery ms");
    cols.push_back(core::protocol_name(p) + " NRL");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double rate : churn_per_min) {
    for (core::Protocol p : protocols) {
      exp::ScenarioConfig cfg = base_config();
      cfg.protocol = p;
      cfg.options.aodv.local_repair = true;
      cfg.options.aodv.rrep_blacklist = true;
      cfg.options.aodv.rerr_to_precursors = true;
      if (rate > 0.0) {
        cfg.fault.churn.rate_per_s = rate / 60.0;
        cfg.fault.churn.mean_downtime = sim::Time::seconds(10.0);
        cfg.fault.churn.start = cfg.warmup;
        cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
      }
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          stats::Table::num(rate, 0) + "/min, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double rate : churn_per_min) {
    std::vector<std::string> row{stats::Table::num(rate, 0)};
    for ([[maybe_unused]] core::Protocol p : protocols) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3));
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.pdr_during_outage; },
          3));
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.route_recovery_mean_ms; },
          1));
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.nrl; }, 2));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f10_resilience.csv", sweep, env);
}
