// F3 — mean end-to-end delay vs offered load.
//
// Expected shape: all protocols share a low-delay plateau at light
// load; the delay knee (queueing + discovery churn) arrives earliest
// for blind flooding and latest for CLNLR, whose discovery throttling
// keeps the medium clearer and whose route selection avoids queueing
// hotspots.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F3", "mean end-to-end delay vs offered load", argc, argv);

  const std::vector<double> rates{2.0, 4.0, 6.0, 8.0, 12.0};
  std::vector<std::string> cols{"pkt/s per flow"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p) + " (ms)");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double rate : rates) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = rate;
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          stats::Table::num(rate, 0) + " pkt/s, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double rate : rates) {
    std::vector<std::string> row{stats::Table::num(rate, 0)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f3_delay_load.csv", sweep, env);
}
