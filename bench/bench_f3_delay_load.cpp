// F3 — mean end-to-end delay vs offered load.
//
// Expected shape: all protocols share a low-delay plateau at light
// load; the delay knee (queueing + discovery churn) arrives earliest
// for blind flooding and latest for CLNLR, whose discovery throttling
// keeps the medium clearer and whose route selection avoids queueing
// hotspots.
#include "common.hpp"

int main() {
  using namespace wmnbench;
  const auto env = announce("F3", "mean end-to-end delay vs offered load");

  const std::vector<double> rates{2.0, 4.0, 6.0, 8.0, 12.0};
  std::vector<std::string> cols{"pkt/s per flow"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p) + " (ms)");
  }
  stats::Table table(cols);

  for (double rate : rates) {
    std::vector<std::string> row{stats::Table::num(rate, 0)};
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = rate;
      cfg.protocol = p;
      const auto reps = exp::run_replications(cfg, env.reps, env.threads);
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0));
    }
    table.add_row(std::move(row));
  }
  finish(table, "f3_delay_load.csv");
  return 0;
}
