// F6 — normalized routing load vs network size.
//
// NRL = control-packet transmissions per delivered data packet, shown
// both in full and with the (protocol-independent) HELLO beacons
// excluded. Expected shape: flooding's on-demand NRL grows superlinearly
// with density; CLNLR's stays lowest and flattest.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F6", "normalized routing load vs nodes", argc, argv);

  const std::vector<std::size_t> node_counts{50, 100, 150, 200};
  std::vector<std::string> cols{"nodes"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p) + " NRL");
    cols.push_back(core::protocol_name(p) + " (no hello)");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (std::size_t n : node_counts) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.n_nodes = n;
      cfg.traffic.rate_pps = 6.0;  // the congestion operating point
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          std::to_string(n) + " nodes, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (std::size_t n : node_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.nrl; }, 1));
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.nrl_on_demand; }, 1));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f6_nrl_nodes.csv", sweep, env);
}
