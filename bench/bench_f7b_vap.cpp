// F7b — velocity-aware discovery under mobility (extension experiment,
// reconstructing the group's VAP comparison).
//
// Random-waypoint clients at increasing speed; AODV-VAP excludes fast
// movers from route construction. Expected shape: at speed 0 VAP equals
// flooding; as speed rises VAP's RREQ economy improves and its routes
// (built from slower nodes) break less often per delivered packet.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F7b", "velocity-aware discovery vs mobility", argc, argv);

  const std::vector<core::Protocol> protocols{
      core::Protocol::kAodvFlood, core::Protocol::kAodvGossip,
      core::Protocol::kAodvVap, core::Protocol::kClnlr};
  const std::vector<double> speeds{0.0, 5.0, 10.0, 20.0};

  std::vector<std::string> cols{"max speed (m/s)"};
  for (core::Protocol p : protocols) {
    cols.push_back(core::protocol_name(p) + " PDR");
    cols.push_back(core::protocol_name(p) + " RREQ tx");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double speed : speeds) {
    for (core::Protocol p : protocols) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = 6.0;
      cfg.mobility.max_speed_mps = speed;
      cfg.mobility.pause = sim::Time::seconds(2.0);
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          stats::Table::num(speed, 0) + " m/s, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double speed : speeds) {
    std::vector<std::string> row{stats::Table::num(speed, 0)};
    for ([[maybe_unused]] core::Protocol p : protocols) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3));
      row.push_back(exp::ci_str(
          reps,
          [](const exp::RunMetrics& m) { return static_cast<double>(m.rreq_tx); },
          0));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f7b_vap_mobility.csv", sweep, env);
}
