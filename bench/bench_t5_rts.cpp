// T5 — RTS/CTS ablation (extension experiment).
//
// The source papers run basic access; this table shows why that is the
// right default at 2 Mb/s with 512-byte packets: the RTS/CTS handshake
// suppresses hidden-terminal data collisions but its per-packet
// overhead (RTS + CTS + 2 SIFS per data frame) eats the savings at
// this payload size. Expected: fewer MAC retries with RTS, comparable
// or slightly lower PDR/throughput.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("T5", "RTS/CTS on/off at the congestion point", argc, argv);

  stats::Table table({"variant", "PDR", "delay (ms)", "thpt (kb/s)",
                      "MAC retries", "collisions"});

  const std::vector<core::Protocol> protocols{core::Protocol::kAodvFlood,
                                              core::Protocol::kClnlr};

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (core::Protocol p : protocols) {
    for (bool rts : {false, true}) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = 6.0;
      cfg.protocol = p;
      if (rts) cfg.mac.rts_threshold_bytes = 256;  // data yes, control no
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          core::protocol_name(p) + (rts ? " +RTS/CTS" : " (basic)")));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (core::Protocol p : protocols) {
    for (bool rts : {false, true}) {
      const auto reps = sweep.cell_metrics(*cell++);
      table.add_row(
          {core::protocol_name(p) + (rts ? " +RTS/CTS" : " (basic)"),
           exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
           exp::ci_str(
               reps, [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0),
           exp::ci_str(
               reps, [](const exp::RunMetrics& m) { return m.throughput_kbps; },
               0),
           exp::ci_str(
               reps,
               [](const exp::RunMetrics& m) {
                 return static_cast<double>(m.mac_retries);
               },
               0),
           exp::ci_str(
               reps,
               [](const exp::RunMetrics& m) {
                 return static_cast<double>(m.phy_collisions);
               },
               0)});
    }
  }
  return finish(table, "t5_rts.csv", sweep, env);
}
