// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench flattens its whole sweep (point × protocol × replication)
// into one exp::SweepEngine drained by the persistent worker pool, then
// renders a paper-style series table to stdout and writes the same data
// as CSV next to the binary. Benches run WMN_CHECK under kLogAndCount:
// a replication that trips an invariant (or throws) becomes a failed
// slot in the sweep report instead of killing the campaign.
//
// Supervision & resume (docs/TOOLING.md, "Run supervision & resume"):
// every sweep bench journals completed slots to
// ${WMN_RESULTS_DIR:-results}/JOURNAL_<id>.jsonl and exits non-zero
// when any slot failed, unless --allow-partial / WMN_ALLOW_PARTIAL
// says a partial campaign is acceptable. A rerun with --resume /
// WMN_RESUME re-executes only the missing slots.
//
// Environment knobs:
//   WMN_REPS=N          replications per point (default 2)
//   WMN_THREADS=N       worker threads (default: hardware concurrency)
//   WMN_QUICK=1         shrink traffic time for smoke runs
//   WMN_DEADLINE_S=X    wall-clock watchdog per replication
//   WMN_RETRIES=N       transient-failure retries (same seed)
//   WMN_SWEEP_EVENT_BUDGET=N  cumulative event ceiling for the sweep
//   WMN_RESUME=1        resume from the journal
//   WMN_ALLOW_PARTIAL=1 exit 0 despite failed slots
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/check.hpp"
#include "exp/sweep.hpp"
#include "results_dir.hpp"
#include "stats/table.hpp"

namespace wmnbench {

using namespace wmn;  // bench binaries are leaf executables

// T1 reference configuration: the operating point every sweep perturbs.
// Chosen from the source group's 2009-2012 WMN evaluations: 1000x1000 m
// area, ~100 mesh routers on a perturbed grid, 10 CBR flows of 512-byte
// packets, 2 Mb/s PHY abstraction, 250 m nominal radio range.
inline exp::ScenarioConfig base_config() {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 100;
  cfg.area_width_m = 1000.0;
  cfg.area_height_m = 1000.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.placement_jitter_m = 60.0;
  cfg.traffic.n_flows = 10;
  cfg.traffic.rate_pps = 4.0;
  cfg.traffic.packet_bytes = 512;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(25.0);
  cfg.drain = sim::Time::seconds(2.0);
  cfg.seed = 1000;
  exp::apply_quick_mode(cfg);
  return cfg;
}

struct BenchEnv {
  std::string id;  // bench identifier ("F2", ...) — names the journal
  std::size_t reps = 2;
  unsigned threads = 1;
  bool allow_partial = false;  // --allow-partial / WMN_ALLOW_PARTIAL
  bool resume = false;         // --resume / WMN_RESUME
};

inline BenchEnv announce(const std::string& id, const std::string& title,
                         int argc = 0, char** argv = nullptr) {
  // Long campaigns: one bad replication taints its own slot instead of
  // aborting the binary (docs/TOOLING.md, "Crash-safe sweeps").
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  BenchEnv env;
  env.id = id;
  env.reps = exp::env_reps(2);
  env.threads = exp::env_threads();
  // Harness switches, not simulation inputs (same contract as WMN_REPS).
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  env.allow_partial = std::getenv("WMN_ALLOW_PARTIAL") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-partial") == 0) {
      env.allow_partial = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      env.resume = true;
    } else {
      std::fprintf(stderr, "[wmn] %s: unknown flag '%s' ignored\n", id.c_str(),
                   argv[i]);
    }
  }
  std::cout << "\n=== " << id << ": " << title << " ===\n"
            << "(replications per point: " << env.reps
            << ", threads: " << env.threads
            << "; values are mean +-95% CI half-width)\n\n";
  return env;
}

// Arm the sweep's supervision from the environment and point its
// checkpoint journal at results/JOURNAL_<id>.jsonl. Call after every
// add_cell(), before run().
inline void setup_supervision(exp::SweepEngine& sweep, const BenchEnv& env) {
  exp::apply_supervision_env(sweep, results_path("JOURNAL_" + env.id + ".jsonl"),
                             env.resume);
}

inline void finish(const stats::Table& table, const std::string& csv_name) {
  table.print(std::cout);
  // CSVs land under results/ (WMN_RESULTS_DIR to override) instead of
  // the invocation CWD, so runs from the repo root cannot litter it.
  const std::string csv_path = results_path(csv_name);
  if (table.save_csv(csv_path)) {
    std::cout << "\n[csv written: " << csv_path << "]\n";
  }
  std::cout.flush();
}

// Machine-readable sweep summary (SWEEP_<id>.json): slot totals and the
// per-FailureKind taxonomy counts CI folds into its step summary.
inline void write_sweep_summary(const exp::SweepEngine& sweep,
                                const BenchEnv& env) {
  const std::string path = results_path("SWEEP_" + env.id + ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[wmn] cannot write sweep summary %s\n", path.c_str());
    return;
  }
  const exp::FailureCounts counts = sweep.failure_counts();
  std::fprintf(f,
               "{\"bench\":\"%s\",\"slots\":%zu,\"failed\":%zu,"
               "\"resumed\":%zu,\"counts\":{",
               env.id.c_str(), sweep.task_count(), sweep.failed_count(),
               sweep.resumed_count());
  for (std::size_t k = 0; k < exp::kFailureKindCount; ++k) {
    std::fprintf(f, "%s\"%s\":%zu", k == 0 ? "" : ",",
                 exp::failure_kind_name(static_cast<exp::FailureKind>(k)),
                 counts[k]);
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
  std::cout << "[sweep summary written: " << path << "]\n";
}

// Sweep-aware variant: surfaces failed replication slots next to the
// table they were excluded from, writes the taxonomy summary, and
// returns the bench's exit code — non-zero on any failed slot unless
// partial results were explicitly accepted, so a quietly degraded
// campaign can never look green in CI.
[[nodiscard]] inline int finish(const stats::Table& table,
                                const std::string& csv_name,
                                const exp::SweepEngine& sweep,
                                const BenchEnv& env) {
  finish(table, csv_name);
  if (const std::size_t resumed = sweep.resumed_count(); resumed > 0) {
    std::cout << "[resumed " << resumed << " slot(s) from the journal]\n";
  }
  write_sweep_summary(sweep, env);
  const std::size_t failed = sweep.failed_count();
  if (failed > 0) {
    std::cout << "\n[WARNING: " << failed << " of " << sweep.task_count()
              << " replication(s) failed; their slots are excluded above]\n"
              << sweep.failure_report();
    std::cout.flush();
    if (!env.allow_partial) {
      std::cout << "[exiting non-zero: pass --allow-partial or set "
                   "WMN_ALLOW_PARTIAL=1 to accept a partial campaign]\n";
      std::cout.flush();
      return 1;
    }
  }
  std::cout.flush();
  return 0;
}

}  // namespace wmnbench
