// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench flattens its whole sweep (point × protocol × replication)
// into one exp::SweepEngine drained by the persistent worker pool, then
// renders a paper-style series table to stdout and writes the same data
// as CSV next to the binary. Benches run WMN_CHECK under kLogAndCount:
// a replication that trips an invariant (or throws) becomes a failed
// slot in the sweep report instead of killing the campaign.
//
// Environment knobs:
//   WMN_REPS=N    replications per point (default 2)
//   WMN_THREADS=N worker threads (default: hardware concurrency)
//   WMN_QUICK=1   shrink traffic time for smoke runs
#pragma once

#include <iostream>
#include <string>

#include "core/check.hpp"
#include "exp/sweep.hpp"
#include "results_dir.hpp"
#include "stats/table.hpp"

namespace wmnbench {

using namespace wmn;  // bench binaries are leaf executables

// T1 reference configuration: the operating point every sweep perturbs.
// Chosen from the source group's 2009-2012 WMN evaluations: 1000x1000 m
// area, ~100 mesh routers on a perturbed grid, 10 CBR flows of 512-byte
// packets, 2 Mb/s PHY abstraction, 250 m nominal radio range.
inline exp::ScenarioConfig base_config() {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 100;
  cfg.area_width_m = 1000.0;
  cfg.area_height_m = 1000.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.placement_jitter_m = 60.0;
  cfg.traffic.n_flows = 10;
  cfg.traffic.rate_pps = 4.0;
  cfg.traffic.packet_bytes = 512;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.traffic_time = sim::Time::seconds(25.0);
  cfg.drain = sim::Time::seconds(2.0);
  cfg.seed = 1000;
  exp::apply_quick_mode(cfg);
  return cfg;
}

struct BenchEnv {
  std::size_t reps;
  unsigned threads;
};

inline BenchEnv announce(const std::string& id, const std::string& title) {
  // Long campaigns: one bad replication taints its own slot instead of
  // aborting the binary (docs/TOOLING.md, "Crash-safe sweeps").
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  BenchEnv env{exp::env_reps(2), exp::env_threads()};
  std::cout << "\n=== " << id << ": " << title << " ===\n"
            << "(replications per point: " << env.reps
            << ", threads: " << env.threads
            << "; values are mean +-95% CI half-width)\n\n";
  return env;
}

inline void finish(const stats::Table& table, const std::string& csv_name) {
  table.print(std::cout);
  // CSVs land under results/ (WMN_RESULTS_DIR to override) instead of
  // the invocation CWD, so runs from the repo root cannot litter it.
  const std::string csv_path = results_path(csv_name);
  if (table.save_csv(csv_path)) {
    std::cout << "\n[csv written: " << csv_path << "]\n";
  }
  std::cout.flush();
}

// Sweep-aware variant: also surfaces failed replication slots, so a
// crashed or tainted worker is visible right next to the table it was
// excluded from.
inline void finish(const stats::Table& table, const std::string& csv_name,
                   const exp::SweepEngine& sweep) {
  finish(table, csv_name);
  if (const std::size_t failed = sweep.failed_count(); failed > 0) {
    std::cout << "\n[WARNING: " << failed << " of " << sweep.task_count()
              << " replication(s) failed; their slots are excluded above]\n"
              << sweep.failure_report();
    std::cout.flush();
  }
}

}  // namespace wmnbench
