// F2 — packet delivery ratio vs network size.
//
// Expected shape: at low density all protocols deliver comparably
// (flooding slightly ahead on reachability); as density grows, RREQ
// storms cost the flooding baselines collisions and queue losses while
// CLNLR holds its PDR.
#include "common.hpp"

int main() {
  using namespace wmnbench;
  const auto env = announce("F2", "packet delivery ratio vs nodes");

  const std::vector<std::size_t> node_counts{50, 100, 150, 200};
  std::vector<std::string> cols{"nodes"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p));
  }
  stats::Table table(cols);

  for (std::size_t n : node_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.n_nodes = n;
      cfg.traffic.rate_pps = 6.0;  // the congestion operating point
      cfg.protocol = p;
      const auto reps = exp::run_replications(cfg, env.reps, env.threads);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3));
    }
    table.add_row(std::move(row));
  }
  finish(table, "f2_pdr_nodes.csv");
  return 0;
}
