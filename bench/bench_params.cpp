// T1 — the simulation parameter table (paper-style "Table 1").
#include <iostream>

#include "common.hpp"

int main() {
  using namespace wmnbench;
  const auto cfg = base_config();

  std::cout << "\n=== T1: simulation parameters (reference configuration) ===\n\n";
  stats::Table t({"parameter", "value"});
  t.add_row({"area", stats::Table::num(cfg.area_width_m, 0) + " x " +
                         stats::Table::num(cfg.area_height_m, 0) + " m"});
  t.add_row({"nodes (reference)", std::to_string(cfg.n_nodes)});
  t.add_row({"placement", "perturbed grid (jitter " +
                              stats::Table::num(cfg.placement_jitter_m, 0) + " m)"});
  t.add_row({"PHY bit rate", stats::Table::num(cfg.phy.bit_rate_bps / 1e6, 0) +
                                 " Mb/s"});
  t.add_row({"TX power", stats::Table::num(cfg.phy.tx_power_dbm, 0) + " dBm"});
  t.add_row({"RX sensitivity", stats::Table::num(cfg.phy.rx_sensitivity_dbm, 0) +
                                   " dBm (~250 m range)"});
  t.add_row({"CCA threshold", stats::Table::num(cfg.phy.cca_threshold_dbm, 0) +
                                  " dBm (~480 m carrier sense)"});
  t.add_row({"capture (SINR) threshold",
             stats::Table::num(cfg.phy.sinr_threshold_db, 0) + " dB"});
  t.add_row({"propagation", "log-distance, exponent 2.5"});
  t.add_row({"MAC", "802.11 DCF (CSMA/CA, no RTS/CTS)"});
  t.add_row({"interface queue", std::to_string(cfg.mac.queue_capacity) + " frames"});
  t.add_row({"MAC retry limit", std::to_string(cfg.mac.retry_limit)});
  t.add_row({"traffic", std::to_string(cfg.traffic.n_flows) + " CBR flows, " +
                            stats::Table::num(cfg.traffic.rate_pps, 0) +
                            " pkt/s, " + std::to_string(cfg.traffic.packet_bytes) +
                            " B"});
  t.add_row({"HELLO interval", "1 s (+-25% jitter)"});
  t.add_row({"warmup / traffic time",
             stats::Table::num(cfg.warmup.to_seconds(), 0) + " s / " +
                 stats::Table::num(cfg.traffic_time.to_seconds(), 0) + " s"});
  t.add_row({"gossip p (AODV-GOSSIP)", "0.65"});
  t.add_row({"counter threshold (AODV-CB)", "3"});
  t.add_row({"CLNLR p_min / p_max", "0.35 / 1.0"});
  t.add_row({"CLNLR load / density weights", "0.8 / 0.25 (gate 0.15)"});
  t.add_row({"CLNLR reply window / hysteresis", "50 ms / 15%"});
  finish(t, "t1_params.csv");
  return 0;
}
