// T2 — head-to-head summary at the reference operating point
// (100 nodes, 10 flows, 6 pkt/s: just past the congestion knee, where
// the protocols differentiate). All six protocols including ablations.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("T2", "protocol summary at the reference point", argc, argv);

  stats::Table table({"protocol", "PDR", "delay (ms)", "thpt (kb/s)",
                      "RREQ/disc", "NRL", "collisions", "q-drops"});

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (core::Protocol p : core::all_protocols()) {
    exp::ScenarioConfig cfg = base_config();
    cfg.traffic.rate_pps = 6.0;
    cfg.protocol = p;
    cells.push_back(sweep.add_cell(cfg, env.reps, core::protocol_name(p)));
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (core::Protocol p : core::all_protocols()) {
    const auto reps = sweep.cell_metrics(*cell++);
    table.add_row(
        {core::protocol_name(p),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0),
         exp::ci_str(
             reps, [](const exp::RunMetrics& m) { return m.throughput_kbps; }, 0),
         exp::ci_str(
             reps, [](const exp::RunMetrics& m) { return m.rreq_per_discovery; },
             1),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.nrl; }, 1),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.phy_collisions);
             },
             0),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.mac_queue_drops);
             },
             0)});
  }
  return finish(table, "t2_summary.csv", sweep, env);
}
