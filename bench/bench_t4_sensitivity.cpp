// T4 — sensitivity of CLNLR's design choices (the ablation benches
// DESIGN.md calls out beyond the RD/RS split):
//
//   (a) probability floor p_min — too high wastes suppression, too low
//       risks discovery holes that the rescue must patch;
//   (b) destination reply window — 0 degenerates to first-arrival
//       selection, large adds discovery latency for better paths;
//   (c) expanding-ring search on top of CLNLR (RFC 3561 option).
//
// All at the reference congestion point (100 nodes, 10 flows, 6 pkt/s).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("T4", "CLNLR design-choice sensitivity", argc, argv);

  stats::Table table({"variant", "PDR", "delay (ms)", "RREQ tx", "NRL",
                      "collisions"});

  exp::ScenarioConfig base = base_config();
  base.traffic.rate_pps = 6.0;
  base.protocol = core::Protocol::kClnlr;

  // Phase 1: enqueue every variant.
  std::vector<std::string> labels;
  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  const auto add = [&](const std::string& label,
                       const exp::ScenarioConfig& cfg) {
    labels.push_back(label);
    cells.push_back(sweep.add_cell(cfg, env.reps, label));
  };

  // (a) probability floor.
  for (double p_min : {0.2, 0.35, 0.5, 0.65}) {
    exp::ScenarioConfig cfg = base;
    cfg.options.clnlr.p_min = p_min;
    add("p_min=" + stats::Table::num(p_min, 2), cfg);
  }

  // (b) reply window: rebuild the selection policy via AodvConfig is
  // not exposed; the window lives in BestMetricSelection's default.
  // Exposed knob: compare against the CLNLR-RD ablation (window = 0).
  {
    exp::ScenarioConfig cfg = base;
    cfg.protocol = core::Protocol::kClnlrRdOnly;
    add("reply window=0 (CLNLR-RD)", cfg);
  }

  // (c) expanding-ring search.
  {
    exp::ScenarioConfig cfg = base;
    cfg.options.aodv.expanding_ring = true;
    add("with expanding-ring RREQ", cfg);
  }
  {
    exp::ScenarioConfig cfg = base;
    cfg.protocol = core::Protocol::kAodvFlood;
    cfg.options.aodv.expanding_ring = true;
    add("AODV-BF + expanding-ring", cfg);
  }

  setup_supervision(sweep, env);
  sweep.run();

  // Phase 2: render one row per variant.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto reps = sweep.cell_metrics(cells[i]);
    table.add_row(
        {labels[i],
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.rreq_tx);
             },
             0),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.nrl; }, 1),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.phy_collisions);
             },
             0)});
  }

  return finish(table, "t4_sensitivity.csv", sweep, env);
}
