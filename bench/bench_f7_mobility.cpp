// F7 — PDR and routing overhead vs node mobility (random waypoint).
//
// The "velocity niche" experiment: mesh clients move at increasing
// maximum speed, multiplying link breakages and re-discoveries.
// Expected shape: overhead grows with speed for every protocol while
// PDR falls; CLNLR keeps an overhead margin over flooding at a PDR
// within a few points of it (the group's velocity-aware papers report
// exactly this trade).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F7", "PDR and overhead vs max node speed (RWP)", argc, argv);

  const std::vector<double> speeds{0.0, 5.0, 10.0, 20.0};
  std::vector<std::string> cols{"max speed (m/s)"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p) + " PDR");
    cols.push_back(core::protocol_name(p) + " RREQ/s");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double speed : speeds) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = 6.0;  // the congestion operating point
      cfg.mobility.max_speed_mps = speed;
      cfg.mobility.pause = sim::Time::seconds(2.0);
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          stats::Table::num(speed, 0) + " m/s, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double speed : speeds) {
    std::vector<std::string> row{stats::Table::num(speed, 0)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3));
      const auto base = base_config();
      const double window =
          base.traffic_time.to_seconds() + base.warmup.to_seconds();
      row.push_back(exp::ci_str(
          reps,
          [window](const exp::RunMetrics& m) {
            return static_cast<double>(m.rreq_tx) / window;
          },
          1));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f7_mobility.csv", sweep, env);
}
