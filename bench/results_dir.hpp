// Where bench outputs land.
//
// Benches used to scatter CSVs into the current directory (historically
// the repo root, which then got committed). Everything now goes under
// one results directory — `results/` relative to the invocation CWD
// (i.e. `build/results/` when run from the build tree), overridable
// with WMN_RESULTS_DIR.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

namespace wmnbench {

inline std::filesystem::path results_dir() {
  // Bench-harness output path selection; never touches simulation state.
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  const char* env = std::getenv("WMN_RESULTS_DIR");
  std::filesystem::path dir =
      (env != nullptr && *env != '\0') ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; write reports
  return dir;
}

inline std::string results_path(const std::string& filename) {
  return (results_dir() / filename).string();
}

}  // namespace wmnbench
