// Kernel micro-benchmarks (google-benchmark): the hot paths whose cost
// bounds how large a mesh the simulator can sweep.
//
// Emits results/BENCH_micro.json (see perf_json.hpp) for the CI perf
// gate; the pinned subset CI runs is listed in .github/workflows/ci.yml.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "exp/scenario.hpp"
#include "fault/injector.hpp"
#include "mac/mac_header.hpp"
#include "mobility/mobility_model.hpp"
#include "perf_json.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "phy/wifi_phy.hpp"
#include "routing/messages.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace wmn;

void BM_SchedulerInsertPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::RngStream rng(1, 1);
  for (auto _ : state) {
    sim::Scheduler s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule(sim::Time::nanos(static_cast<std::int64_t>(
                     rng.uniform_u64(0, 1'000'000'000))),
                 [] {});
    }
    while (!s.empty()) benchmark::DoNotOptimize(s.pop().at);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerInsertPop)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  sim::RngStream rng(1, 2);
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(s.schedule(
          sim::Time::nanos(static_cast<std::int64_t>(rng.uniform_u64(0, 1'000'000))),
          [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    while (!s.empty()) benchmark::DoNotOptimize(s.pop().at);
  }
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_RngUniform(benchmark::State& state) {
  sim::RngStream rng(1, 3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform);

void BM_RngNormal(benchmark::State& state) {
  sim::RngStream rng(1, 4);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
}
BENCHMARK(BM_RngNormal);

void BM_PacketHeaderPushPop(benchmark::State& state) {
  net::PacketFactory factory;
  for (auto _ : state) {
    net::Packet p = factory.make(512, sim::Time::zero());
    p.push(routing::DataHeader{});
    p.push(routing::RreqHeader{});
    benchmark::DoNotOptimize(p.pop<routing::RreqHeader>());
    benchmark::DoNotOptimize(p.pop<routing::DataHeader>());
  }
}
BENCHMARK(BM_PacketHeaderPushPop);

void BM_PacketBroadcastCopy(benchmark::State& state) {
  net::PacketFactory factory;
  net::Packet p = factory.make(512, sim::Time::zero());
  p.push(routing::DataHeader{});
  p.push(routing::RreqHeader{});
  for (auto _ : state) {
    net::Packet copy = p;  // the per-receiver fan-out copy
    benchmark::DoNotOptimize(copy.size_bytes());
  }
}
BENCHMARK(BM_PacketBroadcastCopy);

// Steady-state arena churn: the per-hop header cycle of a forwarded
// data frame (push net + mac, pop both at the receiver) once the free
// list is warm — the path every transmitted packet pays per hop.
void BM_PacketArenaChurn(benchmark::State& state) {
  net::PacketFactory factory;
  for (auto _ : state) {
    net::Packet p = factory.make(512, sim::Time::zero());
    p.push(routing::DataHeader{});
    p.push(mac::MacHeader{});
    net::Packet copy = p;  // receiver-side share
    benchmark::DoNotOptimize(copy.pop<mac::MacHeader>());
    benchmark::DoNotOptimize(copy.pop<routing::DataHeader>());
  }
  state.counters["arena_nodes"] = benchmark::Counter(
      static_cast<double>(factory.arena().capacity_nodes()));
}
BENCHMARK(BM_PacketArenaChurn);

// Steady-state scheduler churn: schedule/cancel/fire cycling through
// recycled slots — the timer pattern the MAC and routing layers run.
void BM_SchedulerSlotRecycle(benchmark::State& state) {
  sim::Scheduler s;
  for (auto _ : state) {
    const sim::EventId keep = s.schedule(sim::Time::nanos(10), [] {});
    const sim::EventId drop = s.schedule(sim::Time::nanos(20), [] {});
    s.cancel(drop);
    benchmark::DoNotOptimize(s.pending(keep));
    while (!s.empty()) benchmark::DoNotOptimize(s.pop().at);
  }
}
BENCHMARK(BM_SchedulerSlotRecycle);

void BM_PropagationLogDistance(benchmark::State& state) {
  phy::LogDistanceModel m;
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.rx_power_dbm(15.0, {0.0, 0.0}, {d, d}, 1, 2));
    d = d < 1000.0 ? d + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PropagationLogDistance);

void BM_PropagationShadowing(benchmark::State& state) {
  phy::LogNormalShadowing m(std::make_unique<phy::LogDistanceModel>(), 6.0, 7);
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.rx_power_dbm(15.0, {0.0, 0.0}, {d, d}, 1, 2));
    d = d < 1000.0 ? d + 1.0 : 1.0;
  }
}
BENCHMARK(BM_PropagationShadowing);

// Fault-overlay link-state lookup: the injector-side work Channel adds
// per (transmission, receiver) pair when a FaultPlan is active. A
// blackout-only plan needs no node hooks, so the hook vector can stay
// null. Not part of the CI-pinned baseline subset — the gate protects
// the faults-off hot path, which skips this code entirely.
void BM_FaultOverlayLookup(benchmark::State& state) {
  const auto blackouts = static_cast<std::uint32_t>(state.range(0));
  sim::Simulator sim(1);
  fault::FaultPlan plan;
  for (std::uint32_t i = 0; i < blackouts; ++i) {
    plan.blackouts.push_back({i, i + 1, sim::Time::seconds(1.0),
                              sim::Time::seconds(100.0)});
  }
  fault::Injector inj(sim, std::move(plan),
                      std::vector<fault::NodeHooks>(blackouts + 1));
  sim.run_until(sim::Time::seconds(2.0));  // all blackouts active
  std::uint32_t tx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.node_up(tx));
    benchmark::DoNotOptimize(
        inj.link_loss_db(tx, tx + 1, sim::Time::seconds(2.0)));
    tx = tx < blackouts ? tx + 1 : 0;
  }
}
BENCHMARK(BM_FaultOverlayLookup)->Arg(1)->Arg(4)->Arg(16);

// Broadcast fan-out kernel: one transmit() on a static sparse mesh,
// spatial index off (full O(N) scan per transmit) vs on (grid cull +
// cached link budgets). The pair quantifies the index's speedup on the
// channel hot path; the determinism contract (test_spatial_index)
// guarantees both variants do identical delivery work. Not part of the
// CI-pinned baseline subset — the on/off ratio is the number that
// matters, not the absolute time of either variant.
void BM_TransmitFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool indexed = state.range(1) != 0;
  // ~14 in-range neighbours per node regardless of N (sparse mesh,
  // LogDistance default detection range ~830 m).
  const double side = 400.0 * std::sqrt(static_cast<double>(n));
  sim::Simulator sim(1);
  sim::RngStream rng(1, 42);
  std::vector<std::unique_ptr<mobility::ConstantPositionModel>> models;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  // Declared after the models: the channel's index detaches from them
  // in its destructor, so it must die first.
  auto channel = std::make_unique<phy::WirelessChannel>(
      sim, std::make_unique<phy::LogDistanceModel>());
  if (indexed) channel->enable_spatial_index(side, side);
  for (std::size_t i = 0; i < n; ++i) {
    models.push_back(std::make_unique<mobility::ConstantPositionModel>(
        mobility::Vec2{rng.uniform01() * side, rng.uniform01() * side}));
    phys.push_back(std::make_unique<phy::WifiPhy>(
        sim, phy::PhyConfig{}, static_cast<std::uint32_t>(i),
        models.back().get()));
    channel->attach(phys.back().get());
  }
  net::PacketFactory factory;
  std::size_t src = 0;
  for (auto _ : state) {
    net::Packet p = factory.make(64, sim.now());
    channel->transmit(*phys[src], p, phys[src]->tx_duration(64));
    sim.run();  // drain the scheduled deliveries
    src = src + 1 == n ? 0 : src + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["copies_delivered"] = benchmark::Counter(
      static_cast<double>(channel->counters().copies_delivered) /
      static_cast<double>(state.iterations()));
  channel.reset();
}
BENCHMARK(BM_TransmitFanout)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1});

// Full-stack throughput: simulated seconds per wall second for a small
// mesh, per protocol.
void BM_ScenarioEndToEnd(benchmark::State& state) {
  const auto protocol = static_cast<core::Protocol>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.n_nodes = 36;
    cfg.area_width_m = 700.0;
    cfg.area_height_m = 700.0;
    cfg.traffic.n_flows = 4;
    cfg.traffic.rate_pps = 4.0;
    cfg.warmup = sim::Time::seconds(2.0);
    cfg.traffic_time = sim::Time::seconds(8.0);
    cfg.seed = 11;
    cfg.protocol = protocol;
    exp::Scenario s(cfg);
    s.run();
    events += s.simulator().events_executed();
  }
  state.SetLabel(core::protocol_name(protocol));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScenarioEndToEnd)
    ->Arg(static_cast<int>(core::Protocol::kAodvFlood))
    ->Arg(static_cast<int>(core::Protocol::kClnlr))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return wmnbench::run_benchmark_main(argc, argv, "micro");
}
