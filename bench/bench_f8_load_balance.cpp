// F8 — forwarding-load distribution under gateway-oriented traffic.
//
// WMN backhaul workload: every flow targets one of two gateway nodes,
// funnelling traffic toward one corner of the mesh. Plotted: Jain
// fairness of per-node forwarding counts and the peak-to-mean hotspot
// factor. Expected shape: hop-count routing (AODV-BF) funnels through
// the same few centre nodes (low Jain, high peak); CLNLR's load-aware
// selection spreads forwarding across parallel paths.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F8", "forwarding-load balance, gateway traffic", argc, argv);

  stats::Table table({"protocol", "Jain (active)", "peak/mean", "active nodes",
                      "PDR", "delay (ms)", "fwd total"});

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (core::Protocol p : core::headline_protocols()) {
    exp::ScenarioConfig cfg = base_config();
    cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
    cfg.traffic.n_gateways = 2;
    cfg.traffic.n_flows = 12;
    cfg.traffic.rate_pps = 6.0;
    cfg.protocol = p;
    cells.push_back(sweep.add_cell(cfg, env.reps, core::protocol_name(p)));
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (core::Protocol p : core::headline_protocols()) {
    const auto reps = sweep.cell_metrics(*cell++);
    double fwd_total = 0.0;
    for (const auto& m : reps) {
      for (double f : m.per_node_forwarded) fwd_total += f;
    }
    if (!reps.empty()) fwd_total /= static_cast<double>(reps.size());
    table.add_row(
        {core::protocol_name(p),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.forwarding_jain; }, 3),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) { return m.forwarding_peak_to_mean; },
             2),
         exp::ci_str(
             reps,
             [](const exp::RunMetrics& m) {
               return static_cast<double>(m.forwarding_active_nodes);
             },
             0),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.mean_delay_ms; }, 0),
         stats::Table::num(fwd_total, 0)});
  }
  return finish(table, "f8_load_balance.csv", sweep, env);
}
