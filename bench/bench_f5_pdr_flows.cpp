// F5 — packet delivery ratio vs number of concurrent flows.
//
// Congestion scaling at fixed per-flow rate: more flows = more
// simultaneous discoveries and more forwarding load. Expected shape:
// CLNLR degrades most gracefully; flooding collapses fastest because
// every additional flow's discovery storms the same channel.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F5", "packet delivery ratio vs flow count", argc, argv);

  const std::vector<std::size_t> flow_counts{5, 10, 15, 20, 25};
  std::vector<std::string> cols{"flows"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p));
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (std::size_t flows : flow_counts) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.n_flows = flows;
      cfg.traffic.rate_pps = 6.0;
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          std::to_string(flows) + " flows, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (std::size_t flows : flow_counts) {
    std::vector<std::string> row{std::to_string(flows)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(
          exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f5_pdr_flows.csv", sweep, env);
}
