// F4 — aggregate delivered throughput vs offered load.
//
// Expected shape: linear region at light load for everyone; saturation
// hits blind flooding first (its RREQ storms consume the channel), so
// CLNLR's saturation throughput sits highest and degrades most
// gracefully past the knee.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F4", "aggregate throughput vs offered load", argc, argv);

  const std::vector<double> rates{2.0, 4.0, 6.0, 8.0, 12.0};
  std::vector<std::string> cols{"pkt/s per flow", "offered (kb/s)"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p) + " (kb/s)");
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (double rate : rates) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.traffic.rate_pps = rate;
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          stats::Table::num(rate, 0) + " pkt/s, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (double rate : rates) {
    const auto base = base_config();
    const double offered_kbps = rate *
                                static_cast<double>(base.traffic.n_flows) *
                                static_cast<double>(base.traffic.packet_bytes) *
                                8.0 / 1e3;
    std::vector<std::string> row{stats::Table::num(rate, 0),
                                 stats::Table::num(offered_kbps, 0)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.throughput_kbps; }, 0));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f4_throughput_load.csv", sweep, env);
}
