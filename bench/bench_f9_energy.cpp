// F9 — energy efficiency (extension experiment).
//
// Radio energy per delivered payload kilobit at the reference
// congestion point. Control-packet storms burn energy twice: the
// transmissions themselves and the retries/collisions they provoke.
// Expected shape: CLNLR delivers the cheapest bits; blind flooding the
// most expensive.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F9", "energy per delivered kilobit", argc, argv);

  stats::Table table({"protocol", "total J", "J/node", "mJ/kbit", "PDR"});

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (core::Protocol p : core::headline_protocols()) {
    exp::ScenarioConfig cfg = base_config();
    cfg.traffic.rate_pps = 6.0;
    cfg.protocol = p;
    cells.push_back(sweep.add_cell(cfg, env.reps, core::protocol_name(p)));
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (core::Protocol p : core::headline_protocols()) {
    const auto reps = sweep.cell_metrics(*cell++);
    table.add_row(
        {core::protocol_name(p),
         exp::ci_str(reps,
                     [](const exp::RunMetrics& m) { return m.total_energy_j; }, 0),
         exp::ci_str(
             reps, [](const exp::RunMetrics& m) { return m.mean_node_energy_j; },
             1),
         exp::ci_str(
             reps, [](const exp::RunMetrics& m) { return m.energy_mj_per_kbit; },
             1),
         exp::ci_str(reps, [](const exp::RunMetrics& m) { return m.pdr; }, 3)});
  }
  return finish(table, "f9_energy.csv", sweep, env);
}
