// F1 — RREQ overhead vs network size.
//
// Series: RREQ transmissions per route discovery, per protocol, as the
// node count grows at fixed area (density scaling).
//
// Expected shape: blind flooding grows steepest (every node rebroadcasts
// every discovery); gossip sits a constant factor below; counter-based
// in between; CLNLR at or below gossip with the gap widening as density
// (and with it contention) rises.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace wmnbench;
  const auto env = announce("F1", "RREQ transmissions per discovery vs nodes", argc, argv);

  const std::vector<std::size_t> node_counts{50, 100, 150, 200};
  std::vector<std::string> cols{"nodes"};
  for (core::Protocol p : core::headline_protocols()) {
    cols.push_back(core::protocol_name(p));
  }
  stats::Table table(cols);

  exp::SweepEngine sweep(env.threads);
  std::vector<std::size_t> cells;
  for (std::size_t n : node_counts) {
    for (core::Protocol p : core::headline_protocols()) {
      exp::ScenarioConfig cfg = base_config();
      cfg.n_nodes = n;
      cfg.traffic.rate_pps = 6.0;  // the congestion operating point
      cfg.protocol = p;
      cells.push_back(sweep.add_cell(
          cfg, env.reps,
          std::to_string(n) + " nodes, " + core::protocol_name(p)));
    }
  }
  setup_supervision(sweep, env);
  sweep.run();

  auto cell = cells.cbegin();
  for (std::size_t n : node_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for ([[maybe_unused]] core::Protocol p : core::headline_protocols()) {
      const auto reps = sweep.cell_metrics(*cell++);
      row.push_back(exp::ci_str(
          reps, [](const exp::RunMetrics& m) { return m.rreq_per_discovery; }, 1));
    }
    table.add_row(std::move(row));
  }
  return finish(table, "f1_overhead_nodes.csv", sweep, env);
}
