// Machine-readable perf summaries for the benchmark binaries.
//
// google-benchmark already emits its full JSON via --benchmark_out; the
// problem is that its schema is verbose, version-drifting, and awkward
// to diff in CI. SummaryReporter additionally writes a small,
// schema-versioned summary — one object per benchmark with the fields
// the perf gate compares — to results/BENCH_<suite>.json (override with
// WMN_BENCH_JSON=path). bench/perf_gate.py consumes these summaries and
// bench/baseline.json stores the committed reference; see
// docs/TOOLING.md ("The perf harness").
//
// Schema (bump kSchemaVersion on any incompatible change):
//   {
//     "schema_version": 1,
//     "suite": "micro" | "macro",
//     "benchmarks": [
//       { "name": "...", "iterations": N,
//         "real_time_ns": R, "cpu_time_ns": C,
//         "counters": { "events/s": X, ... } }
//     ]
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "results_dir.hpp"

namespace wmnbench {

inline constexpr int kSchemaVersion = 1;

class SummaryReporter : public benchmark::ConsoleReporter {
 public:
  struct Collected {
    std::string name;
    std::int64_t iterations = 0;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Collected c;
      c.name = run.run_name.str();
      c.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      c.real_time_ns = run.real_accumulated_time / iters * 1e9;
      c.cpu_time_ns = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, counter] : run.counters) {
        c.counters.emplace_back(name, static_cast<double>(counter));
      }
      collected_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Collected>& collected() const {
    return collected_;
  }

  bool write_summary(const std::string& suite, std::ostream& out) const {
    out << "{\n  \"schema_version\": " << kSchemaVersion << ",\n  \"suite\": \""
        << escape(suite) << "\",\n  \"benchmarks\": [";
    bool first = true;
    for (const Collected& c : collected_) {
      out << (first ? "" : ",") << "\n    {\"name\": \"" << escape(c.name)
          << "\", \"iterations\": " << c.iterations
          << ", \"real_time_ns\": " << c.real_time_ns
          << ", \"cpu_time_ns\": " << c.cpu_time_ns << ", \"counters\": {";
      bool cfirst = true;
      for (const auto& [name, value] : c.counters) {
        out << (cfirst ? "" : ", ") << "\"" << escape(name) << "\": " << value;
        cfirst = false;
      }
      out << "}}";
      first = false;
    }
    out << "\n  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(ch);
    }
    return out;
  }

  std::vector<Collected> collected_;
};

// Shared main() body for the perf binaries: run benchmarks under the
// summary reporter, then write BENCH_<suite>.json. Returns the process
// exit code.
inline int run_benchmark_main(int argc, char** argv, const std::string& suite) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  SummaryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Bench-harness output path selection; never touches simulation state.
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  const char* env = std::getenv("WMN_BENCH_JSON");
  const std::string path = (env != nullptr && *env != '\0')
                               ? std::string(env)
                               : results_path("BENCH_" + suite + ".json");
  std::ofstream out(path);
  if (!out || !reporter.write_summary(suite, out)) {
    std::cerr << "perf summary: failed to write " << path << "\n";
    return 1;
  }
  std::cout << "[perf summary written: " << path << "]\n";
  return 0;
}

}  // namespace wmnbench
