#include "routing/route_table.hpp"

#include <gtest/gtest.h>

namespace wmn::routing {
namespace {

RouteEntry entry(std::uint32_t dest, std::uint32_t via, std::uint8_t hops,
                 sim::Time expires, std::uint32_t seqno = 1) {
  RouteEntry e;
  e.dest = net::Address(dest);
  e.next_hop = net::Address(via);
  e.hop_count = hops;
  e.dest_seqno = seqno;
  e.valid_seqno = true;
  e.state = RouteState::kValid;
  e.expires = expires;
  return e;
}

TEST(RouteTable, LookupFindsValidEntry) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  const RouteEntry* e = t.lookup(net::Address(5), sim::Time::seconds(1.0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->next_hop, net::Address(2));
  EXPECT_EQ(e->hop_count, 3);
}

TEST(RouteTable, LookupMissesUnknownDest) {
  RouteTable t;
  EXPECT_EQ(t.lookup(net::Address(9), sim::Time::zero()), nullptr);
}

TEST(RouteTable, ExpiredEntryBecomesInvalidLazily) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  EXPECT_NE(t.lookup(net::Address(5), sim::Time::seconds(9.0)), nullptr);
  EXPECT_EQ(t.lookup(net::Address(5), sim::Time::seconds(10.0)), nullptr);
  // The dead entry still exists for its seqno.
  ASSERT_NE(t.find(net::Address(5)), nullptr);
  EXPECT_EQ(t.find(net::Address(5))->state, RouteState::kInvalid);
}

TEST(RouteTable, InvalidateBumpsSeqno) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0), 7));
  const auto inv = t.invalidate(net::Address(5), sim::Time::seconds(1.0));
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->dest_seqno, 8u);  // 7 + 1
  EXPECT_EQ(t.lookup(net::Address(5), sim::Time::seconds(1.0)), nullptr);
}

TEST(RouteTable, InvalidateMissingOrInvalidReturnsNothing) {
  RouteTable t;
  EXPECT_FALSE(t.invalidate(net::Address(5), sim::Time::zero()).has_value());
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  (void)t.invalidate(net::Address(5), sim::Time::zero());
  EXPECT_FALSE(t.invalidate(net::Address(5), sim::Time::zero()).has_value());
}

TEST(RouteTable, TouchExtendsLifetime) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.touch(net::Address(5), sim::Time::seconds(20.0));
  EXPECT_NE(t.lookup(net::Address(5), sim::Time::seconds(15.0)), nullptr);
}

TEST(RouteTable, TouchNeverShortensLifetime) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.touch(net::Address(5), sim::Time::seconds(3.0));
  EXPECT_NE(t.lookup(net::Address(5), sim::Time::seconds(9.0)), nullptr);
}

TEST(RouteTable, DestsViaFindsAllRoutesThroughHop) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.upsert(entry(6, 2, 4, sim::Time::seconds(10.0)));
  t.upsert(entry(7, 3, 2, sim::Time::seconds(10.0)));
  auto dests = t.dests_via(net::Address(2), sim::Time::seconds(1.0));
  EXPECT_EQ(dests.size(), 2u);
}

TEST(RouteTable, DestsViaSkipsExpired) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(1.0)));
  EXPECT_TRUE(t.dests_via(net::Address(2), sim::Time::seconds(2.0)).empty());
}

TEST(RouteTable, PrecursorsAccumulate) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.add_precursor(net::Address(5), net::Address(8));
  t.add_precursor(net::Address(5), net::Address(9));
  t.add_precursor(net::Address(5), net::Address(8));  // dup
  // The list is kept sorted and duplicate-free — RERR precursor fanout
  // reads it in this normalised order.
  const std::vector<net::Address> expect{net::Address(8), net::Address(9)};
  EXPECT_EQ(t.find(net::Address(5))->precursors, expect);
}

TEST(RouteTable, RemovePrecursorScrubsEveryEntry) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.upsert(entry(6, 3, 2, sim::Time::seconds(10.0)));
  t.add_precursor(net::Address(5), net::Address(8));
  t.add_precursor(net::Address(5), net::Address(9));
  t.add_precursor(net::Address(6), net::Address(8));
  t.remove_precursor(net::Address(8));
  const std::vector<net::Address> expect{net::Address(9)};
  EXPECT_EQ(t.find(net::Address(5))->precursors, expect);
  EXPECT_TRUE(t.find(net::Address(6))->precursors.empty());
}

TEST(RouteTable, ClearDropsEverything) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.upsert(entry(6, 2, 3, sim::Time::seconds(10.0)));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(net::Address(5)), nullptr);
}

TEST(RouteTable, PurgeRemovesLongDeadEntries) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(1.0)));
  t.upsert(entry(6, 2, 3, sim::Time::seconds(100.0)));
  // At t=2 the first entry expires; retention 10 s.
  t.purge(sim::Time::seconds(2.0), sim::Time::seconds(10.0));
  EXPECT_EQ(t.size(), 2u);  // freshly dead, still retained
  t.purge(sim::Time::seconds(13.0), sim::Time::seconds(10.0));
  EXPECT_EQ(t.size(), 1u);  // dead entry reclaimed
  EXPECT_NE(t.find(net::Address(6)), nullptr);
}

TEST(RouteTable, UpsertOverwrites) {
  RouteTable t;
  t.upsert(entry(5, 2, 3, sim::Time::seconds(10.0)));
  t.upsert(entry(5, 4, 1, sim::Time::seconds(10.0)));
  const RouteEntry* e = t.lookup(net::Address(5), sim::Time::zero());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->next_hop, net::Address(4));
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace wmn::routing
