// Velocity-Aware Probabilistic (VAP) rebroadcast policy.
#include "core/vap_policy.hpp"

#include <gtest/gtest.h>

#include "mobility/mobility_model.hpp"

namespace wmn::core {
namespace {

using mobility::ConstantPositionModel;
using mobility::ConstantVelocityModel;
using mobility::Vec2;
using routing::RebroadcastAction;
using routing::RebroadcastContext;

RebroadcastContext ctx(std::uint8_t hops = 5, std::size_t degree = 10) {
  RebroadcastContext c;
  c.hop_count = hops;
  c.neighbor_count = degree;
  return c;
}

TEST(VapPolicy, ProbabilityFormulaMonotoneInSpeed) {
  sim::Simulator s;
  ConstantPositionModel still(Vec2{0, 0});
  VapRebroadcastPolicy p(s, &still);
  double prev = 2.0;
  for (double v = 0.0; v <= 40.0; v += 2.5) {
    const double prob = p.forward_probability(v);
    EXPECT_LE(prob, prev);
    EXPECT_GE(prob, VapPolicyParams{}.p_min);
    EXPECT_LE(prob, 1.0);
    prev = prob;
  }
  EXPECT_DOUBLE_EQ(p.forward_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.forward_probability(1000.0), VapPolicyParams{}.p_min);
}

TEST(VapPolicy, StationaryNodeAlwaysForwards) {
  sim::Simulator s;
  ConstantPositionModel still(Vec2{0, 0});
  VapRebroadcastPolicy p(s, &still);
  sim::RngStream rng(1, 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(p.decide(ctx(), rng).action, RebroadcastAction::kForward);
  }
}

TEST(VapPolicy, FastMoverForwardsNearFloor) {
  sim::Simulator s;
  VapPolicyParams params;
  params.p_min = 0.2;
  params.v_ref_mps = 20.0;
  ConstantVelocityModel fast(Vec2{0, 0}, Vec2{30.0, 0.0}, sim::Time::zero());
  VapRebroadcastPolicy p(s, &fast, params);
  sim::RngStream rng(1, 2);
  int fwd = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (p.decide(ctx(), rng).action == RebroadcastAction::kForward) ++fwd;
  }
  EXPECT_NEAR(static_cast<double>(fwd) / n, 0.2, 0.02);
}

TEST(VapPolicy, ModerateSpeedIsProportional) {
  sim::Simulator s;
  ConstantVelocityModel mid(Vec2{0, 0}, Vec2{10.0, 0.0}, sim::Time::zero());
  VapRebroadcastPolicy p(s, &mid);  // v_ref 20 -> p = 0.5
  sim::RngStream rng(1, 3);
  int fwd = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.decide(ctx(), rng).action == RebroadcastAction::kForward) ++fwd;
  }
  EXPECT_NEAR(static_cast<double>(fwd) / n, 0.5, 0.02);
}

TEST(VapPolicy, GuardsOverrideSpeed) {
  sim::Simulator s;
  ConstantVelocityModel fast(Vec2{0, 0}, Vec2{100.0, 0.0}, sim::Time::zero());
  VapRebroadcastPolicy p(s, &fast);
  sim::RngStream rng(1, 4);
  for (int i = 0; i < 100; ++i) {
    // First hop always forwards.
    EXPECT_EQ(p.decide(ctx(0, 10), rng).action, RebroadcastAction::kForward);
    // Sparse neighbourhood always forwards.
    EXPECT_EQ(p.decide(ctx(5, 2), rng).action, RebroadcastAction::kForward);
  }
}

TEST(VapPolicy, NameIsStable) {
  sim::Simulator s;
  ConstantPositionModel still(Vec2{0, 0});
  VapRebroadcastPolicy p(s, &still);
  EXPECT_EQ(p.name(), "vap");
}

}  // namespace
}  // namespace wmn::core
