#include "phy/propagation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "phy/units.hpp"

namespace wmn::phy {
namespace {

using mobility::Vec2;

TEST(Units, DbmMwRoundTrip) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(30.0), 1000.0);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-85.0)), -85.0, 1e-9);
  EXPECT_EQ(mw_to_dbm(0.0), -300.0);  // floor, not -inf
}

TEST(Friis, MatchesClosedForm) {
  FriisModel m(2.4e9, 0.0);
  // PL(d) = 20 log10(4 pi d f / c); at 100 m and 2.4 GHz: ~80.05 dB.
  const double rx = m.rx_power_dbm(20.0, Vec2{0, 0}, Vec2{100, 0}, 0, 1);
  EXPECT_NEAR(20.0 - rx, 80.05, 0.1);
}

TEST(Friis, SystemLossSubtracts) {
  FriisModel a(2.4e9, 0.0);
  FriisModel b(2.4e9, 6.0);
  const double pa = a.rx_power_dbm(10.0, Vec2{0, 0}, Vec2{50, 0}, 0, 1);
  const double pb = b.rx_power_dbm(10.0, Vec2{0, 0}, Vec2{50, 0}, 0, 1);
  EXPECT_NEAR(pa - pb, 6.0, 1e-9);
}

TEST(LogDistance, ReferenceLossAtReferenceDistance) {
  LogDistanceModel m(3.0, 1.0, 40.0);
  const double rx = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{1, 0}, 0, 1);
  EXPECT_NEAR(rx, 15.0 - 40.0, 1e-9);
}

TEST(LogDistance, TenXDistanceCostsTenNdB) {
  LogDistanceModel m(3.0, 1.0, 40.0);
  const double rx10 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{10, 0}, 0, 1);
  const double rx100 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{100, 0}, 0, 1);
  EXPECT_NEAR(rx10 - rx100, 30.0, 1e-9);
}

TEST(LogDistance, DefaultCalibrationGives250mRange) {
  // The library default (exp 2.5, PL0 40 dB @ 1 m) with 15 dBm TX and
  // -85 dBm sensitivity must give a communication range of ~250 m.
  LogDistanceModel m;
  const double at_250 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{250, 0}, 0, 1);
  const double at_260 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{260, 0}, 0, 1);
  EXPECT_GE(at_250, -85.0);
  EXPECT_LT(at_260, -85.0);
}

TEST(TwoRay, FarFieldFollowsFourthPower) {
  TwoRayGroundModel m(2.4e9, 1.5);
  const double rx1km = m.rx_power_dbm(20.0, Vec2{0, 0}, Vec2{1000, 0}, 0, 1);
  const double rx2km = m.rx_power_dbm(20.0, Vec2{0, 0}, Vec2{2000, 0}, 0, 1);
  // d^4 law: doubling distance costs 40 log10(2) ~ 12.04 dB.
  EXPECT_NEAR(rx1km - rx2km, 40.0 * std::log10(2.0), 0.01);
}

TEST(TwoRay, NearFieldUsesFriis) {
  TwoRayGroundModel two_ray(2.4e9, 1.5);
  FriisModel friis(2.4e9, 0.0);
  const double a = two_ray.rx_power_dbm(20.0, Vec2{0, 0}, Vec2{10, 0}, 0, 1);
  const double b = friis.rx_power_dbm(20.0, Vec2{0, 0}, Vec2{10, 0}, 0, 1);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Shadowing, DeterministicAndReciprocal) {
  auto make = [] {
    return LogNormalShadowing(std::make_unique<LogDistanceModel>(), 6.0, 99);
  };
  const LogNormalShadowing m1 = make();
  const LogNormalShadowing m2 = make();
  const double ab1 = m1.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{100, 0}, 4, 9);
  const double ab2 = m2.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{100, 0}, 4, 9);
  const double ba = m1.rx_power_dbm(15.0, Vec2{100, 0}, Vec2{0, 0}, 9, 4);
  EXPECT_DOUBLE_EQ(ab1, ab2);   // deterministic
  EXPECT_DOUBLE_EQ(ab1, ba);    // reciprocal
}

TEST(Shadowing, DifferentLinksDiffer) {
  LogNormalShadowing m(std::make_unique<LogDistanceModel>(), 6.0, 99);
  const double l1 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{100, 0}, 1, 2);
  const double l2 = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{100, 0}, 1, 3);
  EXPECT_NE(l1, l2);
}

TEST(Shadowing, ZeroSigmaIsTransparent) {
  LogNormalShadowing m(std::make_unique<LogDistanceModel>(), 0.0, 99);
  LogDistanceModel plain;
  const double a = m.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{123, 0}, 1, 2);
  const double b = plain.rx_power_dbm(15.0, Vec2{0, 0}, Vec2{123, 0}, 1, 2);
  EXPECT_DOUBLE_EQ(a, b);
}

// Property: every model decays monotonically with distance.
class Monotonicity : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] std::unique_ptr<PropagationModel> model() const {
    switch (GetParam()) {
      case 0: return std::make_unique<FriisModel>();
      case 1: return std::make_unique<LogDistanceModel>();
      case 2: return std::make_unique<TwoRayGroundModel>();
      default:
        return std::make_unique<LogNormalShadowing>(
            std::make_unique<LogDistanceModel>(), 4.0, 1);
    }
  }
};

TEST_P(Monotonicity, PowerDecaysWithDistance) {
  const auto m = model();
  double prev = 1e9;
  for (double d = 1.0; d <= 2000.0; d *= 1.3) {
    // Fixed ids: the shadowing offset is constant per link, so the
    // distance trend must still be monotone.
    const double rx = m->rx_power_dbm(15.0, Vec2{0, 0}, Vec2{d, 0}, 1, 2);
    EXPECT_LT(rx, prev);
    prev = rx;
  }
}

TEST_P(Monotonicity, CoLocatedNodesAreFinite) {
  const auto m = model();
  const double rx = m->rx_power_dbm(15.0, Vec2{5, 5}, Vec2{5, 5}, 1, 2);
  EXPECT_TRUE(std::isfinite(rx));
}

INSTANTIATE_TEST_SUITE_P(Models, Monotonicity, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace wmn::phy
