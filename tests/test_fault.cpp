// Fault-injection subsystem: crash choreography, link blackouts,
// seeded churn, and the graceful-degradation routing extensions
// (local repair, RREP blacklist, RERR-to-precursors) built on top.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/placement.hpp"
#include "phy/channel.hpp"
#include "routing/aodv.hpp"

namespace wmn::fault {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct Delivery {
  std::uint64_t uid;
  net::Address origin;
  net::Address at;
  sim::Time when;
};

// Full stacks (phy+mac+aodv) at fixed positions, plus an optional
// fault::Injector wired as the channel's fault overlay.
struct FaultBed {
  explicit FaultBed(std::vector<Vec2> positions,
                    routing::AodvConfig cfg = {}, std::uint64_t seed = 1,
                    std::unique_ptr<phy::PropagationModel> prop =
                        std::make_unique<phy::LogDistanceModel>())
      : sim(seed), channel(sim, std::move(prop)) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      mobilities.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<mac::DcfMac>(
          sim, mac::MacConfig{}, net::Address(id), *phys.back(), factory));
      agents.push_back(std::make_unique<routing::AodvAgent>(
          sim, cfg, net::Address(id), *macs.back(), factory,
          std::make_unique<routing::FloodPolicy>(),
          std::make_unique<routing::FirstArrivalSelection>(),
          std::make_unique<routing::ZeroLoadSource>()));
      agents.back()->set_deliver_callback(
          [this, id](net::Packet p, net::Address origin) {
            deliveries.push_back({p.uid(), origin, net::Address(id), sim.now()});
          });
    }
  }

  void arm(FaultPlan plan) {
    std::vector<NodeHooks> hooks;
    hooks.reserve(agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i) {
      hooks.push_back({phys[i].get(), macs[i].get(), agents[i].get()});
    }
    injector = std::make_unique<Injector>(sim, std::move(plan), std::move(hooks));
    channel.set_fault_overlay(injector.get());
  }

  void send(std::size_t from, std::size_t to, std::uint32_t bytes = 256) {
    net::Packet p = factory.make(bytes, sim.now());
    agents[from]->send(std::move(p), net::Address(static_cast<std::uint32_t>(to)));
  }

  // Send from -> to every `every` seconds across [start, stop).
  void traffic(std::size_t from, std::size_t to, double start, double stop,
               double every) {
    for (double t = start; t < stop; t += every) {
      sim.schedule_at(sim::Time::seconds(t), [this, from, to] { send(from, to); });
    }
  }

  [[nodiscard]] std::size_t delivered_at_between(std::size_t node, double t0,
                                                 double t1) const {
    std::size_t n = 0;
    for (const auto& d : deliveries) {
      if (d.at == net::Address(static_cast<std::uint32_t>(node)) &&
          d.when >= sim::Time::seconds(t0) && d.when < sim::Time::seconds(t1)) {
        ++n;
      }
    }
    return n;
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<routing::AodvAgent>> agents;
  std::unique_ptr<Injector> injector;
  std::vector<Delivery> deliveries;
};

// 5-node line with 200 m spacing (250 m range): only adjacent nodes
// hear each other, so 0 -> 4 is a 4-hop route through every other node.
std::vector<Vec2> line5() { return mobility::line_placement(5, 200.0); }

// ---------------------------------------------------------------------
// Node outages
// ---------------------------------------------------------------------

TEST(FaultInjector, StaticOutageCrashesAndRejoins) {
  FaultBed tb(line5());
  FaultPlan plan;
  plan.outages.push_back({2, sim::Time::seconds(3.0), sim::Time::seconds(6.0)});
  tb.arm(std::move(plan));
  tb.traffic(0, 4, 1.0, 11.0, 0.5);
  tb.sim.run_until(sim::Time::seconds(12.0));

  EXPECT_EQ(tb.injector->counters().crashes, 1u);
  EXPECT_EQ(tb.injector->counters().rejoins, 1u);
  EXPECT_FALSE(tb.agents[2]->paused());
  EXPECT_TRUE(tb.phys[2]->is_up());
  EXPECT_FALSE(tb.macs[2]->is_down());

  // Delivered before the outage, nothing mid-outage (the line has no
  // alternate path around node 2), delivering again after the rejoin.
  EXPECT_GE(tb.delivered_at_between(4, 0.0, 3.0), 1u);
  EXPECT_EQ(tb.delivered_at_between(4, 3.3, 6.0), 0u);
  EXPECT_GE(tb.delivered_at_between(4, 6.5, 12.0), 1u);

  // The downtime window was realized and is queryable.
  EXPECT_DOUBLE_EQ(
      tb.injector->total_node_downtime(tb.sim.now()).to_seconds(), 3.0);
  EXPECT_TRUE(tb.injector->in_fault_window(sim::Time::seconds(4.5)));
  EXPECT_FALSE(tb.injector->in_fault_window(sim::Time::seconds(1.0)));
}

TEST(FaultInjector, CrashedNodeDropsOfferedTraffic) {
  FaultBed tb(line5());
  FaultPlan plan;
  plan.outages.push_back({0, sim::Time::seconds(2.0), sim::Time::seconds(8.0)});
  tb.arm(std::move(plan));
  tb.traffic(0, 4, 3.0, 5.0, 0.5);  // offered while 0 is down
  tb.sim.run_until(sim::Time::seconds(6.0));
  EXPECT_EQ(tb.delivered_at_between(4, 0.0, 6.0), 0u);
  EXPECT_GE(tb.agents[0]->counters().data_dropped_node_down, 4u);
}

// Regression: a transmission from a crashed source must be rejected
// *before* any counting — the transmissions counter used to increment
// ahead of the fault guard, so a downed source's send inflated it even
// though no energy ever reached the air.
TEST(FaultInjector, DownedSourceTransmitCountsNothing) {
  FaultBed tb(line5());
  FaultPlan plan;
  plan.outages.push_back({0, sim::Time::seconds(1.0), sim::Time::seconds(9.0)});
  tb.arm(std::move(plan));
  // Other nodes' hello broadcasts keep the counters moving on their
  // own; the assertion is on the *delta* across the injected transmit
  // (transmit() is synchronous, so before/after brackets exactly it).
  tb.sim.schedule_at(sim::Time::seconds(2.0), [&tb] {
    const auto before = tb.channel.counters();
    net::Packet p = tb.factory.make(64, tb.sim.now());
    tb.channel.transmit(*tb.phys[0], p, tb.phys[0]->tx_duration(64));
    const auto after = tb.channel.counters();
    EXPECT_EQ(after.transmissions, before.transmissions);
    EXPECT_EQ(after.copies_delivered, before.copies_delivered);
    EXPECT_EQ(after.copies_dropped_floor, before.copies_dropped_floor);
    EXPECT_EQ(after.copies_dropped_fault, before.copies_dropped_fault);
  });
  tb.sim.run_until(sim::Time::seconds(3.0));
}

// Satellite 1 regression: crashing routers *mid-discovery* — while
// RREQ rebroadcast jitter timers, reply timers, and retry timers are
// all pending — must cancel every per-agent event. Under ASan a stale
// timer firing into a paused/cleared agent shows up immediately.
TEST(FaultInjector, CrashDuringActiveDiscoveryIsClean) {
  FaultBed tb(line5());
  FaultPlan plan;
  // Source and a mid-line forwarder die 5 ms after the RREQ leaves,
  // squarely inside the <=10 ms rebroadcast jitter window.
  plan.outages.push_back(
      {0, sim::Time::seconds(1.005), sim::Time::seconds(4.0)});
  plan.outages.push_back(
      {2, sim::Time::seconds(1.005), sim::Time::seconds(4.0)});
  tb.arm(std::move(plan));
  tb.sim.schedule_at(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(10.0));

  EXPECT_EQ(tb.injector->counters().crashes, 2u);
  EXPECT_EQ(tb.injector->counters().rejoins, 2u);
  EXPECT_FALSE(tb.agents[0]->paused());
  // The crashed source lost its buffered packet and discovery state.
  EXPECT_EQ(tb.delivered_at_between(4, 0.0, 10.0), 0u);
}

// Satellite 1, destruction flavour: destroying an agent with a pending
// RREQ-forward timer must cancel it; otherwise the event later fires
// into freed memory (caught by ASan in CI).
TEST(FaultInjector, AgentDestructionCancelsPendingForwardTimers) {
  FaultBed tb(line5());
  tb.sim.schedule_at(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  // Stop inside the rebroadcast jitter window: forwarders hold timers.
  tb.sim.run_until(sim::Time::seconds(1.002));
  for (auto& m : tb.macs) {
    m->set_rx_callback({});
    m->set_tx_failed_callback({});
    m->set_tx_ok_callback({});
  }
  for (auto& a : tb.agents) a.reset();
  // Any surviving agent-owned event would now dereference freed state.
  tb.sim.run_until(sim::Time::seconds(5.0));
}

// ---------------------------------------------------------------------
// Link blackouts and RERR propagation (satellite 3)
// ---------------------------------------------------------------------

TEST(FaultInjector, BlackoutSeversLinkAndRerrReachesSource) {
  FaultBed tb(line5());
  FaultPlan plan;
  // Short enough that the source's retry schedule (1 s, then 2 s, then
  // 4 s of binary backoff) still has an attempt left once it lifts.
  plan.blackouts.push_back(
      {2, 3, sim::Time::seconds(3.0), sim::Time::seconds(6.0)});
  tb.arm(std::move(plan));
  tb.traffic(0, 4, 1.0, 12.0, 0.25);
  tb.sim.run_until(sim::Time::seconds(13.0));

  EXPECT_EQ(tb.injector->counters().blackouts, 1u);
  // Route up before the blackout...
  EXPECT_GE(tb.delivered_at_between(4, 0.0, 3.0), 1u);
  // ...the break at node 2 produced a RERR that propagated hop by hop
  // back to the source, which invalidated and re-discovered.
  EXPECT_GE(tb.agents[2]->counters().rerr_sent, 1u);
  EXPECT_GE(tb.agents[0]->counters().rerr_received, 1u);
  EXPECT_GE(tb.agents[0]->counters().discovery_started, 2u);
  // Nothing crosses the severed link mid-blackout; service resumes
  // once a post-blackout RREQ retry gets through.
  EXPECT_EQ(tb.delivered_at_between(4, 3.5, 6.0), 0u);
  EXPECT_GE(tb.delivered_at_between(4, 8.5, 13.0), 1u);
  // Blackouts count as fault windows for traffic classification.
  EXPECT_TRUE(tb.injector->in_fault_window(sim::Time::seconds(5.0)));
}

// ---------------------------------------------------------------------
// Graceful degradation: local repair (RFC 3561 §6.12)
// ---------------------------------------------------------------------

TEST(GracefulDegradation, LocalRepairBridgesBrokenLink) {
  // Diamond detour: the line 0-1-2-4 carries traffic; node 3 sits off
  // the line, reachable from 2 (130 m) and 4 (192 m) but not 1 (277 m).
  // Severing 2<->4 leaves 2 -> 3 -> 4 as the repair path.
  std::vector<Vec2> pos = {{0.0, 0.0},  {200.0, 0.0}, {400.0, 0.0},
                           {450.0, 120.0}, {600.0, 0.0}};
  routing::AodvConfig cfg;
  cfg.local_repair = true;
  FaultBed tb(pos, cfg);
  FaultPlan plan;
  plan.blackouts.push_back(
      {2, 4, sim::Time::seconds(3.0), sim::Time::seconds(12.0)});
  tb.arm(std::move(plan));
  tb.traffic(0, 4, 1.0, 10.0, 0.25);
  tb.sim.run_until(sim::Time::seconds(12.0));

  const auto& repairer = tb.agents[2]->counters();
  EXPECT_GE(repairer.local_repair_attempted, 1u);
  EXPECT_GE(repairer.local_repair_succeeded, 1u);
  // The repair succeeded upstream of the source: no RERR reached it,
  // its route survived, and deliveries continued through the detour.
  EXPECT_EQ(tb.agents[0]->counters().rerr_received, 0u);
  EXPECT_EQ(tb.agents[0]->counters().discovery_started, 1u);
  EXPECT_GE(tb.delivered_at_between(4, 3.5, 10.0), 1u);
  // Node 3 only forwards once the detour is in use.
  EXPECT_GE(tb.agents[3]->counters().data_forwarded, 1u);
}

// ---------------------------------------------------------------------
// Graceful degradation: unidirectional-neighbour blacklist (§6.8)
// ---------------------------------------------------------------------

// Wraps log-distance and kills one direction of one link, modelling a
// unidirectional neighbour: hellos/RREQs arrive, but nothing unicast
// makes it back.
class OneWayBlock final : public phy::PropagationModel {
 public:
  OneWayBlock(std::uint32_t tx, std::uint32_t rx) : tx_(tx), rx_(rx) {}
  [[nodiscard]] double rx_power_dbm(double tx_power_dbm, Vec2 tx_pos,
                                    Vec2 rx_pos, std::uint32_t tx_id,
                                    std::uint32_t rx_id) const override {
    const double p =
        base_.rx_power_dbm(tx_power_dbm, tx_pos, rx_pos, tx_id, rx_id);
    return (tx_id == tx_ && rx_id == rx_) ? p - 200.0 : p;
  }

 private:
  phy::LogDistanceModel base_;
  std::uint32_t tx_;
  std::uint32_t rx_;
};

TEST(GracefulDegradation, FailedRrepBlacklistsUnidirectionalNeighbor) {
  // 0 <- 1 <-> 2: node 1 hears 0 but 0's transmissions never reach 1.
  // Node 2's discovery for 0 delivers the RREQ (via 1 -> 0), but 0's
  // RREP unicast back to 1 dies at the MAC. With the blacklist on, 0
  // then ignores RREQs arriving from 1 for a while instead of burning
  // a reply on every retry.
  routing::AodvConfig cfg;
  cfg.rrep_blacklist = true;
  cfg.blacklist_timeout = sim::Time::seconds(30.0);
  FaultBed tb(mobility::line_placement(3, 200.0), cfg, 1,
              std::make_unique<OneWayBlock>(0, 1));
  tb.traffic(2, 0, 1.0, 12.0, 2.0);
  tb.sim.run_until(sim::Time::seconds(15.0));

  EXPECT_GE(tb.agents[0]->counters().blacklist_adds, 1u);
  EXPECT_GE(tb.agents[0]->counters().rreq_ignored_blacklist, 1u);
  EXPECT_EQ(tb.delivered_at_between(0, 0.0, 15.0), 0u);
}

// ---------------------------------------------------------------------
// Scenario integration + resilience metrics
// ---------------------------------------------------------------------

exp::ScenarioConfig small_config(std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 25;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.traffic.n_flows = 4;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(10.0);
  cfg.drain = sim::Time::seconds(1.0);
  cfg.seed = seed;
  return cfg;
}

TEST(FaultScenario, EmptyPlanBuildsNoInjector) {
  exp::Scenario s(small_config(5));
  EXPECT_EQ(s.injector(), nullptr);
  s.run();
  const exp::RunMetrics m = s.metrics();
  EXPECT_FALSE(m.fault_enabled);
  EXPECT_EQ(m.fault_crashes, 0u);
}

TEST(FaultScenario, OutagesPopulateResilienceMetrics) {
  exp::ScenarioConfig cfg = small_config(5);
  for (std::uint32_t n : {6u, 7u, 8u, 11u, 12u, 13u}) {
    cfg.fault.outages.push_back(
        {n, sim::Time::seconds(6.0), sim::Time::seconds(10.0)});
  }
  exp::Scenario s(cfg);
  ASSERT_NE(s.injector(), nullptr);
  s.run();
  const exp::RunMetrics m = s.metrics();
  EXPECT_TRUE(m.fault_enabled);
  EXPECT_EQ(m.fault_crashes, 6u);
  EXPECT_EQ(m.fault_rejoins, 6u);
  EXPECT_DOUBLE_EQ(m.fault_downtime_s, 24.0);
  EXPECT_GT(m.sent_during_outage, 0u);
  EXPECT_LT(m.sent_during_outage, m.data_sent);
  EXPECT_GE(m.pdr_during_outage, 0.0);
  EXPECT_LE(m.pdr_during_outage, 1.0);
  EXPECT_GT(m.pdr_outside_outage, 0.0);
}

TEST(FaultScenario, ChurnSameSeedSameFingerprint) {
  exp::ScenarioConfig cfg = small_config(21);
  cfg.fault.churn.rate_per_s = 0.2;
  cfg.fault.churn.mean_downtime = sim::Time::seconds(3.0);
  cfg.fault.churn.start = cfg.warmup;
  cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;

  exp::Scenario a(cfg);
  a.run();
  exp::Scenario b(cfg);
  b.run();
  const exp::RunMetrics ma = a.metrics();
  EXPECT_GT(ma.fault_crashes, 0u);
  EXPECT_EQ(a.simulator().events_executed(), b.simulator().events_executed());
  EXPECT_EQ(exp::fingerprint(ma), exp::fingerprint(b.metrics()));
}

TEST(FaultScenario, ChurnDifferentSeedDifferentFingerprint) {
  exp::ScenarioConfig cfg = small_config(21);
  cfg.fault.churn.rate_per_s = 0.2;
  cfg.fault.churn.mean_downtime = sim::Time::seconds(3.0);
  cfg.fault.churn.start = cfg.warmup;
  cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;

  exp::Scenario a(cfg);
  a.run();
  cfg.seed = 22;
  exp::Scenario b(cfg);
  b.run();
  EXPECT_NE(exp::fingerprint(a.metrics()), exp::fingerprint(b.metrics()));
}

}  // namespace
}  // namespace wmn::fault
