#include "phy/wifi_phy.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::phy {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

// Records every PHY callback for assertions.
class RecordingListener final : public PhyListener {
 public:
  void on_rx_start() override { ++rx_starts; }
  void on_rx_end(std::optional<net::Packet> packet, double power) override {
    if (packet) {
      received.push_back(std::move(*packet));
      rx_power_dbm.push_back(power);
    } else {
      ++rx_failures;
    }
  }
  void on_tx_end() override { ++tx_ends; }
  void on_cca_change(bool busy) override { cca_changes.push_back(busy); }

  int rx_starts = 0;
  int rx_failures = 0;
  int tx_ends = 0;
  std::vector<net::Packet> received;
  std::vector<double> rx_power_dbm;
  std::vector<bool> cca_changes;
};

struct TestBed {
  explicit TestBed(std::vector<Vec2> positions, std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<LogDistanceModel>()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mobilities.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<WifiPhy>(sim, PhyConfig{},
                                               static_cast<std::uint32_t>(i),
                                               mobilities.back().get()));
      listeners.push_back(std::make_unique<RecordingListener>());
      phys.back()->set_listener(listeners.back().get());
      channel.attach(phys.back().get());
    }
  }

  net::Packet packet(std::uint32_t bytes) { return factory.make(bytes, sim.now()); }

  sim::Simulator sim;
  WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<WifiPhy>> phys;
  std::vector<std::unique_ptr<RecordingListener>> listeners;
};

TEST(WifiPhy, TxDurationMatchesRateAndPreamble) {
  TestBed tb({{0, 0}, {100, 0}});
  // 512 bytes at 2 Mb/s = 2048 us + 192 us preamble.
  const sim::Time d = tb.phys[0]->tx_duration(512);
  EXPECT_EQ(d, sim::Time::micros(2048.0 + 192.0));
}

TEST(WifiPhy, InRangeFrameIsDelivered) {
  TestBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(100)); });
  tb.sim.run();
  EXPECT_EQ(tb.listeners[1]->received.size(), 1u);
  EXPECT_EQ(tb.listeners[1]->rx_starts, 1);
  EXPECT_EQ(tb.listeners[0]->tx_ends, 1);
  EXPECT_EQ(tb.phys[1]->counters().rx_ok, 1u);
  // Receive power must be above sensitivity.
  EXPECT_GE(tb.listeners[1]->rx_power_dbm[0], PhyConfig{}.rx_sensitivity_dbm);
}

TEST(WifiPhy, OutOfRangeFrameIsNotDelivered) {
  TestBed tb({{0, 0}, {600, 0}});  // beyond 250 m decode range
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(100)); });
  tb.sim.run();
  EXPECT_TRUE(tb.listeners[1]->received.empty());
  EXPECT_EQ(tb.phys[1]->counters().rx_ok, 0u);
}

TEST(WifiPhy, FarFrameStillRaisesCca) {
  // 300-400 m: below decode sensitivity but above the CCA threshold.
  TestBed tb({{0, 0}, {320, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(500)); });
  tb.sim.run();
  EXPECT_TRUE(tb.listeners[1]->received.empty());
  // The receiver saw the medium busy at some point.
  ASSERT_FALSE(tb.listeners[1]->cca_changes.empty());
  EXPECT_TRUE(tb.listeners[1]->cca_changes.front());
  EXPECT_GT(tb.phys[1]->counters().rx_below_sensitivity, 0u);
}

TEST(WifiPhy, SimultaneousTransmittersCollideAtMidpoint) {
  // Two senders equidistant from the middle receiver: comparable power,
  // SINR ~0 dB < 10 dB threshold, both frames lost.
  TestBed tb({{0, 0}, {200, 0}, {400, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(500)); });
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[2]->send(tb.packet(500)); });
  tb.sim.run();
  EXPECT_TRUE(tb.listeners[1]->received.empty());
  EXPECT_EQ(tb.listeners[1]->rx_failures, 1);  // locked one, it died
  EXPECT_EQ(tb.phys[1]->counters().rx_failed_sinr, 1u);
}

TEST(WifiPhy, CaptureStrongFrameSurvivesWeakInterferer) {
  // Receiver at 50 m from sender A and 390 m from sender B: A is >25 dB
  // stronger, so A's frame survives B's concurrent transmission.
  TestBed tb({{0, 0}, {50, 0}, {440, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(500)); });
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[2]->send(tb.packet(500)); });
  tb.sim.run();
  EXPECT_EQ(tb.listeners[1]->received.size(), 1u);
}

TEST(WifiPhy, CannotReceiveWhileTransmitting) {
  TestBed tb({{0, 0}, {100, 0}});
  // Both transmit at the same instant: neither receives.
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(500)); });
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[1]->send(tb.packet(500)); });
  tb.sim.run();
  EXPECT_TRUE(tb.listeners[0]->received.empty());
  EXPECT_TRUE(tb.listeners[1]->received.empty());
  EXPECT_GT(tb.phys[0]->counters().rx_missed_busy +
                tb.phys[1]->counters().rx_missed_busy,
            0u);
}

TEST(WifiPhy, BroadcastReachesAllInRange) {
  TestBed tb({{0, 0}, {100, 0}, {200, 0}, {200, 100}, {900, 900}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(64)); });
  tb.sim.run();
  EXPECT_EQ(tb.listeners[1]->received.size(), 1u);
  EXPECT_EQ(tb.listeners[2]->received.size(), 1u);
  EXPECT_EQ(tb.listeners[3]->received.size(), 1u);
  EXPECT_TRUE(tb.listeners[4]->received.empty());  // far corner
}

TEST(WifiPhy, CcaBusyDuringOwnTx) {
  TestBed tb({{0, 0}, {100, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] {
    tb.phys[0]->send(tb.packet(100));
    EXPECT_TRUE(tb.phys[0]->cca_busy());
    EXPECT_FALSE(tb.phys[0]->can_transmit());
  });
  tb.sim.run();
  EXPECT_FALSE(tb.phys[0]->cca_busy());
  EXPECT_TRUE(tb.phys[0]->can_transmit());
}

TEST(WifiPhy, BusyTimeAccountingMatchesAirTime) {
  TestBed tb({{0, 0}, {100, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(512)); });
  tb.sim.run();
  const sim::Time air = tb.phys[0]->tx_duration(512);
  // Sender busy for exactly the TX; receiver for the arrival.
  EXPECT_EQ(tb.phys[0]->cumulative_busy_time(), air);
  EXPECT_EQ(tb.phys[1]->cumulative_busy_time(), air);
}

TEST(WifiPhy, ChannelCountsCopies) {
  TestBed tb({{0, 0}, {100, 0}, {2000, 2000}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(64)); });
  tb.sim.run();
  EXPECT_EQ(tb.channel.counters().transmissions, 1u);
  EXPECT_EQ(tb.channel.counters().copies_delivered, 1u);     // node 1
  EXPECT_EQ(tb.channel.counters().copies_dropped_floor, 1u); // node 2
}

TEST(WifiPhy, LinkPowerQueryMatchesModel) {
  TestBed tb({{0, 0}, {250, 0}});
  const double p = tb.channel.link_rx_power_dbm(*tb.phys[0], *tb.phys[1]);
  LogDistanceModel model;
  const double expected =
      model.rx_power_dbm(PhyConfig{}.tx_power_dbm, {0, 0}, {250, 0}, 0, 1);
  EXPECT_DOUBLE_EQ(p, expected);
}

TEST(WifiPhy, PropagationDelayOrdersDistantReceivers) {
  // Two receivers at different distances: the near one locks first.
  TestBed tb({{0, 0}, {30, 0}, {240, 0}});
  sim::Time near_start, far_start;
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(500)); });
  tb.sim.run();
  // Both received; the frame is identical.
  ASSERT_EQ(tb.listeners[1]->received.size(), 1u);
  ASSERT_EQ(tb.listeners[2]->received.size(), 1u);
  EXPECT_EQ(tb.listeners[1]->received[0].uid(), tb.listeners[2]->received[0].uid());
  (void)near_start;
  (void)far_start;
}

}  // namespace
}  // namespace wmn::phy
