// CLNLR-specific behaviour: the cross-layer load index, neighbourhood
// load dissemination via HELLOs, and protocol factory wiring.
#include <gtest/gtest.h>

#include <memory>

#include "core/node_load_index.hpp"
#include "core/protocols.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::core {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct ClnlrBed {
  explicit ClnlrBed(std::vector<Vec2> positions, Protocol protocol = Protocol::kClnlr,
                    std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    ProtocolOptions options;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      mobilities.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<mac::DcfMac>(
          sim, mac::MacConfig{}, net::Address(id), *phys.back(), factory));
      agents.push_back(
          make_agent(protocol, options, sim, net::Address(id), *macs.back(),
                     factory));
    }
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<routing::AodvAgent>> agents;
};

TEST(NodeLoadIndex, IdleNodeHasZeroLoad) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  NodeLoadIndex idx(tb.sim, LoadIndexParams{}, *tb.macs[0]);
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_LT(idx.load_index(), 0.05);
}

TEST(NodeLoadIndex, BoundedToUnitInterval) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  NodeLoadIndex idx(tb.sim, LoadIndexParams{}, *tb.macs[0]);
  // Saturate the MAC.
  for (int i = 0; i < 3000; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 1.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  for (int i = 1; i <= 6; ++i) {
    tb.sim.schedule_at(sim::Time::seconds(static_cast<double>(i)), [&] {
      EXPECT_GE(idx.load_index(), 0.0);
      EXPECT_LE(idx.load_index(), 1.0);
    });
  }
  tb.sim.run_until(sim::Time::seconds(6.0));
}

TEST(NodeLoadIndex, RisesUnderSaturation) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  NodeLoadIndex idx(tb.sim, LoadIndexParams{}, *tb.macs[0]);
  for (int i = 0; i < 4000; ++i) {
    tb.sim.schedule_at(sim::Time::millis(500.0 + i * 1.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(4.0));
  EXPECT_GT(idx.load_index(), 0.3);
}

TEST(NodeLoadIndex, WeightsAreRespected) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  LoadIndexParams only_queue;
  only_queue.weight_queue = 1.0;
  only_queue.weight_busy = 0.0;
  only_queue.weight_retry = 0.0;
  NodeLoadIndex idx(tb.sim, only_queue, *tb.macs[0]);
  // No traffic: queue component stays zero even if we pretend the air
  // is busy elsewhere.
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_DOUBLE_EQ(idx.load_index(), 0.0);
}

TEST(NodeLoadIndex, ZeroWeightsGiveZero) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  LoadIndexParams zero;
  zero.weight_queue = zero.weight_busy = zero.weight_retry = 0.0;
  NodeLoadIndex idx(tb.sim, zero, *tb.macs[0]);
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_DOUBLE_EQ(idx.load_index(), 0.0);
}

TEST(Clnlr, HellosDisseminateLoadToNeighbours) {
  ClnlrBed tb({{0, 0}, {150, 0}, {300, 0}});
  // Saturate node 0 so its advertised load rises.
  for (int i = 0; i < 5000; ++i) {
    tb.sim.schedule_at(sim::Time::millis(1000.0 + i * 1.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(6.0));
  // Node 1 hears node 0's hellos; its view of 0's load must be > 0.
  const routing::NeighborInfo* info =
      tb.agents[1]->neighbors().info(net::Address(0));
  ASSERT_NE(info, nullptr);
  EXPECT_GT(info->load_index, 0.1);
  // Neighbourhood load of node 1 blends it in.
  EXPECT_GT(tb.agents[1]->neighbourhood_load(), 0.05);
}

TEST(Clnlr, BaselineHellosCarryNoLoad) {
  ClnlrBed tb({{0, 0}, {150, 0}}, Protocol::kAodvFlood);
  for (int i = 0; i < 2000; ++i) {
    tb.sim.schedule_at(sim::Time::millis(500.0 + i * 1.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(4.0));
  const routing::NeighborInfo* info =
      tb.agents[1]->neighbors().info(net::Address(0));
  ASSERT_NE(info, nullptr);
  EXPECT_DOUBLE_EQ(info->load_index, 0.0);
  EXPECT_DOUBLE_EQ(tb.agents[1]->neighbourhood_load(), 0.0);
}

TEST(Clnlr, NeighbourhoodLoadIsWeightedBlend) {
  ClnlrBed tb({{0, 0}, {150, 0}});
  tb.sim.run_until(sim::Time::seconds(3.0));
  // Idle network: both own load and neighbour loads ~0.
  EXPECT_LT(tb.agents[0]->neighbourhood_load(), 0.05);
}

TEST(ProtocolFactory, NamesAreStable) {
  EXPECT_EQ(protocol_name(Protocol::kAodvFlood), "AODV-BF");
  EXPECT_EQ(protocol_name(Protocol::kAodvGossip), "AODV-GOSSIP");
  EXPECT_EQ(protocol_name(Protocol::kAodvCounter), "AODV-CB");
  EXPECT_EQ(protocol_name(Protocol::kAodvAp), "AODV-AP");
  EXPECT_EQ(protocol_name(Protocol::kAodvVap), "AODV-VAP");
  EXPECT_EQ(protocol_name(Protocol::kClnlr), "CLNLR");
  EXPECT_EQ(protocol_name(Protocol::kClnlrRdOnly), "CLNLR-RD");
  EXPECT_EQ(protocol_name(Protocol::kClnlrRsOnly), "CLNLR-RS");
}

TEST(ProtocolFactory, CatalogueContents) {
  EXPECT_EQ(all_protocols().size(), 8u);
  EXPECT_EQ(headline_protocols().size(), 4u);
}

TEST(ProtocolFactory, ClnlrEnablesLoadMachinery) {
  ClnlrBed tb({{0, 0}, {150, 0}}, Protocol::kClnlr);
  EXPECT_TRUE(tb.agents[0]->config().use_load_metric);
  EXPECT_TRUE(tb.agents[0]->config().hello_carries_load);
  EXPECT_EQ(tb.agents[0]->policy_name(), "clnlr");
}

TEST(ProtocolFactory, BaselinesDisableLoadMachinery) {
  ClnlrBed tb({{0, 0}, {150, 0}}, Protocol::kAodvGossip);
  EXPECT_FALSE(tb.agents[0]->config().use_load_metric);
  EXPECT_FALSE(tb.agents[0]->config().hello_carries_load);
}

TEST(ProtocolFactory, AblationsSplitTheMechanisms) {
  ClnlrBed rd({{0, 0}, {150, 0}}, Protocol::kClnlrRdOnly);
  EXPECT_FALSE(rd.agents[0]->config().use_load_metric);
  EXPECT_TRUE(rd.agents[0]->config().hello_carries_load);
  EXPECT_EQ(rd.agents[0]->policy_name(), "clnlr");

  ClnlrBed rs({{0, 0}, {150, 0}}, Protocol::kClnlrRsOnly);
  EXPECT_TRUE(rs.agents[0]->config().use_load_metric);
  EXPECT_EQ(rs.agents[0]->policy_name(), "flood");
}

TEST(Clnlr, EndToEndDeliveryWorks) {
  ClnlrBed tb({{0, 0}, {200, 0}, {400, 0}, {600, 0}}, Protocol::kClnlr);
  int delivered = 0;
  tb.agents[3]->set_deliver_callback(
      [&](net::Packet, net::Address) { ++delivered; });
  tb.sim.schedule(sim::Time::seconds(1.0), [&] {
    tb.agents[0]->send(tb.factory.make(256, tb.sim.now()), net::Address(3));
  });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace wmn::core
