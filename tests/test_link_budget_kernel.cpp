// Batch link-budget kernel: the bit-identity contract under test.
//
// The kernel (phy/link_budget_kernel.hpp) promises that batched
// evaluation — scalar loop or explicit SIMD — performs the same
// IEEE-754 operations as the per-pair scalar path, so fingerprints can
// never depend on which path ran. These tests compare batch vs scalar
// outputs bit for bit across every built-in model (including the edge
// geometries: co-located pair at the 0.05 m floor, sub-reference
// distances, the two-ray crossover), force kScalar vs kAuto against
// each other, pin the base-class fallback for custom models, and close
// with scenario-level fingerprint equality. The max_range_m inversion
// sweeps re-run the spatial-index cull-soundness property through the
// batched kernel at shadowing sigma in {2, 6, 12}.
#include "phy/link_budget_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"

namespace wmn::phy {
namespace {

using mobility::Vec2;

// Geometry that exercises every numeric regime: the 0.05 m distance
// floor (co-located and sub-floor pairs), sub-reference distances
// (LogDistance clamps to d0), the two-ray crossover region, and far
// field out to beyond typical detection range.
std::vector<Vec2> edge_positions(Vec2 tx) {
  std::vector<Vec2> out = {
      tx,                            // co-located -> floored distance
      {tx.x + 0.01, tx.y},           // below the 0.05 m floor
      {tx.x + 0.05, tx.y - 0.05},    // at the floor scale
      {tx.x + 0.5, tx.y + 0.2},      // below reference distance
      {tx.x + 1.0, tx.y},            // at reference distance
      {tx.x - 30.0, tx.y + 40.0},    // near field
      {tx.x + 200.0, tx.y - 150.0},  // two-ray crossover region
      {tx.x - 700.0, tx.y + 10.0},   // far field
      {tx.x + 2000.0, tx.y + 2000.0},
  };
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-1500.0, 1500.0);
  for (int i = 0; i < 64; ++i) out.push_back({tx.x + u(rng), tx.y + u(rng)});
  return out;
}

void expect_batch_matches_scalar(const PropagationModel& model,
                                 const char* label) {
  const Vec2 tx_pos{123.25, -7.5};
  const double tx_dbm = 15.0;
  const std::uint32_t tx_id = 3;
  const auto positions = edge_positions(tx_pos);

  for (const auto mode :
       {LinkBudgetKernel::Mode::kScalar, LinkBudgetKernel::Mode::kAuto}) {
    LinkBudgetKernel::Batch batch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      batch.push(positions[i], static_cast<std::uint32_t>(i + 10),
                 static_cast<std::uint32_t>(i));
    }
    LinkBudgetKernel::evaluate(model, tx_dbm, tx_pos, tx_id, batch, mode);
    ASSERT_EQ(batch.size(), positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double scalar = model.rx_power_dbm(
          tx_dbm, tx_pos, positions[i], tx_id,
          static_cast<std::uint32_t>(i + 10));
      // EXPECT_EQ on doubles is exact ==; this is the bit-identity
      // contract, not a tolerance check.
      EXPECT_EQ(batch.power_dbm[i], scalar)
          << label << " diverges at element " << i << " (mode "
          << (mode == LinkBudgetKernel::Mode::kScalar ? "scalar" : "auto")
          << ")";
      const double d = link_distance_m(tx_pos, positions[i]);
      EXPECT_EQ(batch.distance_m[i], d)
          << label << " distance diverges at element " << i;
    }
  }
}

TEST(LinkBudgetKernel, FriisBatchMatchesScalarBitwise) {
  expect_batch_matches_scalar(FriisModel{}, "Friis");
}

TEST(LinkBudgetKernel, LogDistanceBatchMatchesScalarBitwise) {
  expect_batch_matches_scalar(LogDistanceModel{}, "LogDistance");
}

TEST(LinkBudgetKernel, TwoRayBatchMatchesScalarBitwise) {
  expect_batch_matches_scalar(TwoRayGroundModel{}, "TwoRay");
}

TEST(LinkBudgetKernel, ShadowingBatchMatchesScalarBitwise) {
  for (const double sigma : {2.0, 6.0, 12.0}) {
    LogNormalShadowing m(std::make_unique<LogDistanceModel>(), sigma, 1234);
    expect_batch_matches_scalar(m, "LogNormalShadowing");
  }
}

TEST(LinkBudgetKernel, AutoModeMatchesForcedScalar) {
  // When the AVX2 path is compiled in and the CPU has it, this pits
  // the vector lanes directly against the scalar loop; otherwise it
  // degenerates to scalar-vs-scalar (still a valid no-divergence run —
  // the SIMD-off CI leg exercises exactly this).
  const Vec2 tx_pos{0.0, 0.0};
  const auto positions = edge_positions(tx_pos);
  LinkBudgetKernel::Batch scalar_batch;
  LinkBudgetKernel::Batch auto_batch;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    scalar_batch.push(positions[i], static_cast<std::uint32_t>(i), 0);
    auto_batch.push(positions[i], static_cast<std::uint32_t>(i), 0);
  }
  LinkBudgetKernel::compute_distances(scalar_batch, tx_pos,
                                      LinkBudgetKernel::Mode::kScalar);
  LinkBudgetKernel::compute_distances(auto_batch, tx_pos,
                                      LinkBudgetKernel::Mode::kAuto);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(scalar_batch.distance_m[i], auto_batch.distance_m[i])
        << "distance lane " << i;
  }
}

TEST(LinkBudgetKernel, BaseClassBatchFallbackLoopsScalarOverride) {
  // A model that only implements the scalar virtual must still batch
  // correctly through the base-class default (one scalar call per
  // element) — custom models get batching for free, bit-identically.
  class Custom final : public PropagationModel {
   public:
    [[nodiscard]] double rx_power_dbm(double tx, Vec2 a, Vec2 b,
                                      std::uint32_t tx_id,
                                      std::uint32_t rx_id) const override {
      return tx - link_distance_m(a, b) * 0.25 -
             static_cast<double>(tx_id ^ rx_id);
    }
  };
  expect_batch_matches_scalar(Custom{}, "Custom");
}

// ----- max_range_m inversion under the batched kernel -----------------------
//
// The channel's full-scan prefilter and the spatial index both cull on
// "distance > max_range_m implies below floor". Re-prove it through the
// batch path: a 40x40 field of receivers placed just beyond the bound
// must all come back under the floor, for every model.

void expect_batched_cull_sound(const PropagationModel& m, const char* label) {
  const double tx_dbm = 15.0;
  const double floor_dbm = -98.0;
  const double r = m.max_range_m(tx_dbm, floor_dbm);
  ASSERT_TRUE(std::isfinite(r)) << label;
  ASSERT_GT(r, 0.0) << label;
  const Vec2 tx_pos{0.0, 0.0};
  LinkBudgetKernel::Batch batch;
  // 40x40 grid of link ids at distances fanned just beyond the bound —
  // the same id sweep the scalar inversion tests use, so the shadowing
  // hash sees every (tx, rx) pair the scenario harness would.
  for (std::uint32_t gx = 0; gx < 40; ++gx) {
    for (std::uint32_t gy = 0; gy < 40; ++gy) {
      const double angle = static_cast<double>(gx * 40 + gy) * 0.003927;
      const double factor = 1.0001 + static_cast<double>(gx) * 0.05;
      batch.push({tx_pos.x + r * factor * std::cos(angle),
                  tx_pos.y + r * factor * std::sin(angle)},
                 gx * 40 + gy + 1, gx * 40 + gy);
    }
  }
  LinkBudgetKernel::evaluate(m, tx_dbm, tx_pos, 0, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_GT(batch.distance_m[i], r) << label << " element " << i;
    EXPECT_LT(batch.power_dbm[i], floor_dbm)
        << label << " leaks power beyond max_range_m at element " << i;
  }
}

TEST(LinkBudgetKernelMaxRange, FriisInversionHoldsBatched) {
  expect_batched_cull_sound(FriisModel{}, "Friis");
}

TEST(LinkBudgetKernelMaxRange, LogDistanceInversionHoldsBatched) {
  expect_batched_cull_sound(LogDistanceModel{}, "LogDistance");
}

TEST(LinkBudgetKernelMaxRange, TwoRayInversionHoldsBatched) {
  expect_batched_cull_sound(TwoRayGroundModel{}, "TwoRay");
}

TEST(LinkBudgetKernelMaxRange, ShadowingInversionHoldsBatchedAcrossSigma) {
  for (const double sigma : {2.0, 6.0, 12.0}) {
    LogNormalShadowing m(std::make_unique<LogDistanceModel>(), sigma, 77);
    expect_batched_cull_sound(m, "LogNormalShadowing");
  }
}

// ----- scenario-level fingerprint equivalence -------------------------------

exp::ScenarioConfig scenario_config(std::uint64_t seed, bool mobile,
                                    double sigma) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 36;
  cfg.area_width_m = 900.0;
  cfg.area_height_m = 900.0;
  cfg.traffic.n_flows = 5;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.shadowing_sigma_db = sigma;
  if (mobile) cfg.mobility.max_speed_mps = 10.0;
  cfg.seed = seed;
  return cfg;
}

std::uint64_t run_fingerprint(exp::ScenarioConfig cfg,
                              LinkBudgetKernel::Mode mode, bool indexed,
                              WirelessChannel::Counters* counters = nullptr) {
  cfg.spatial_index = indexed;
  exp::Scenario s(cfg);
  s.channel().set_link_eval_mode(mode);
  s.run();
  if (counters != nullptr) *counters = s.channel().counters();
  return exp::fingerprint(s.metrics());
}

TEST(LinkBudgetKernelEquivalence, ScenarioFingerprintScalarVsAuto) {
  for (const bool mobile : {false, true}) {
    const exp::ScenarioConfig cfg = scenario_config(42, mobile, 4.0);
    WirelessChannel::Counters scalar{}, fast{};
    const std::uint64_t fp_scalar = run_fingerprint(
        cfg, LinkBudgetKernel::Mode::kScalar, true, &scalar);
    const std::uint64_t fp_auto =
        run_fingerprint(cfg, LinkBudgetKernel::Mode::kAuto, true, &fast);
    EXPECT_EQ(fp_scalar, fp_auto) << (mobile ? "mobile" : "static");
    EXPECT_EQ(scalar.copies_delivered, fast.copies_delivered);
    EXPECT_EQ(scalar.copies_dropped_floor, fast.copies_dropped_floor);
  }
}

TEST(LinkBudgetKernelEquivalence, ScenarioFingerprintScalarFullScanVsAutoIndexed) {
  // The cross product of both contracts: forced-scalar full scan vs
  // SIMD-eligible indexed run must still agree bit for bit.
  const exp::ScenarioConfig cfg = scenario_config(7, true, 6.0);
  WirelessChannel::Counters plain{}, fast{};
  const std::uint64_t fp_plain = run_fingerprint(
      cfg, LinkBudgetKernel::Mode::kScalar, false, &plain);
  const std::uint64_t fp_fast =
      run_fingerprint(cfg, LinkBudgetKernel::Mode::kAuto, true, &fast);
  EXPECT_EQ(fp_plain, fp_fast);
  EXPECT_EQ(plain.copies_delivered, fast.copies_delivered);
  EXPECT_EQ(plain.copies_dropped_floor, fast.copies_dropped_floor);
}

}  // namespace
}  // namespace wmn::phy
