#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.hpp"

namespace wmn::sim {
namespace {

TEST(Scheduler, StartsEmpty) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.next_time(), Time::max());
}

TEST(Scheduler, PopsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::seconds(3.0), [&] { order.push_back(3); });
  s.schedule(Time::seconds(1.0), [&] { order.push_back(1); });
  s.schedule(Time::seconds(2.0), [&] { order.push_back(2); });
  while (!s.empty()) s.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Time::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  while (!s.empty()) s.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule(Time::seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  EXPECT_FALSE(s.pending(id));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), Time::max());
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelMiddleKeepsOthers) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::seconds(1.0), [&] { order.push_back(1); });
  const EventId mid = s.schedule(Time::seconds(2.0), [&] { order.push_back(2); });
  s.schedule(Time::seconds(3.0), [&] { order.push_back(3); });
  s.cancel(mid);
  EXPECT_EQ(s.size(), 2u);
  while (!s.empty()) s.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  const EventId id = s.schedule(Time::seconds(1.0), [] {});
  s.schedule(Time::seconds(2.0), [] {});
  (void)s.pop();
  s.cancel(id);  // already fired
  EXPECT_EQ(s.size(), 1u);  // the second event must survive
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(EventId{});
  s.cancel(EventId{999});
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, DoubleCancelIsNoop) {
  Scheduler s;
  const EventId id = s.schedule(Time::seconds(1.0), [] {});
  s.schedule(Time::seconds(2.0), [] {});
  s.cancel(id);
  s.cancel(id);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Scheduler, NextTimeSkipsCancelledTop) {
  Scheduler s;
  const EventId early = s.schedule(Time::seconds(1.0), [] {});
  s.schedule(Time::seconds(5.0), [] {});
  s.cancel(early);
  EXPECT_EQ(s.next_time(), Time::seconds(5.0));
}

TEST(Scheduler, ClearDropsEverything) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) s.schedule(Time::seconds(i), [] {});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), Time::max());
}

TEST(Scheduler, TotalScheduledCounts) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::zero(), [] {});
  EXPECT_EQ(s.total_scheduled(), 5u);
}

// EventIds carry a generation tag: an id whose slot was recycled must
// go stale rather than aliasing the event now occupying the slot.
TEST(Scheduler, StaleIdAfterFireCannotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule(Time::seconds(1.0), [] {});
  (void)s.pop();  // fires, releasing the slot to the free list
  bool ran = false;
  const EventId new_id = s.schedule(Time::seconds(2.0), [&] { ran = true; });
  s.cancel(old_id);  // stale: must NOT hit the recycled slot
  EXPECT_FALSE(s.pending(old_id));
  EXPECT_TRUE(s.pending(new_id));
  ASSERT_EQ(s.size(), 1u);
  s.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, StaleIdAfterCancelCannotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule(Time::seconds(1.0), [] {});
  s.cancel(old_id);
  bool ran = false;
  const EventId new_id = s.schedule(Time::seconds(2.0), [&] { ran = true; });
  EXPECT_NE(old_id.value(), 0u);
  s.cancel(old_id);  // second cancel through a recycled slot
  EXPECT_TRUE(s.pending(new_id));
  ASSERT_EQ(s.size(), 1u);
  s.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, GenerationsSurviveManyRecycles) {
  Scheduler s;
  // Cycle one slot a thousand times; each retired id must stay dead.
  std::vector<EventId> dead;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = s.schedule(Time::nanos(i), [] {});
    for (const EventId old_id : dead) EXPECT_FALSE(s.pending(old_id));
    EXPECT_TRUE(s.pending(id));
    (void)s.pop();
    dead.push_back(id);
    if (dead.size() > 8) dead.erase(dead.begin());  // keep the loop O(n)
  }
}

TEST(Scheduler, CancelDestroysCallableEagerly) {
  // O(1) cancel must release the capture immediately, not at pop time:
  // a cancelled retransmit timer should drop its packet reference now.
  Scheduler s;
  auto token = std::make_shared<int>(42);
  const EventId id = s.schedule(Time::seconds(1.0), [token] {});
  EXPECT_EQ(token.use_count(), 2);
  s.cancel(id);
  EXPECT_EQ(token.use_count(), 1);
  s.clear();
}

// Property: random inserts with random cancellations still pop sorted.
class SchedulerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStress, RandomWorkloadPopsSorted) {
  Scheduler s;
  RngStream rng(GetParam(), 0);
  std::vector<EventId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(s.schedule(
        Time::nanos(static_cast<std::int64_t>(rng.uniform_u64(0, 1'000'000))),
        [] {}));
  }
  // Cancel a random third.
  for (const EventId id : ids) {
    if (rng.bernoulli(1.0 / 3.0)) s.cancel(id);
  }
  Time prev = Time::zero();
  std::size_t popped = 0;
  while (!s.empty()) {
    const auto fired = s.pop();
    EXPECT_GE(fired.at, prev);
    prev = fired.at;
    ++popped;
  }
  EXPECT_GT(popped, 2500u);
  EXPECT_LT(popped, 4500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace wmn::sim
