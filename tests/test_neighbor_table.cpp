#include "routing/neighbor_table.hpp"

#include <gtest/gtest.h>

namespace wmn::routing {
namespace {

TEST(NeighborTable, HeardAddsNeighbor) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  t.heard(net::Address(3), 1, 0.25, 7);
  EXPECT_TRUE(t.contains(net::Address(3)));
  EXPECT_EQ(t.count(), 1u);
  const NeighborInfo* info = t.info(net::Address(3));
  ASSERT_NE(info, nullptr);
  EXPECT_DOUBLE_EQ(info->load_index, 0.25);
  EXPECT_EQ(info->degree, 7);
}

TEST(NeighborTable, MeanLoadAveragesNeighbors) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  EXPECT_DOUBLE_EQ(t.mean_neighbor_load(), 0.0);  // alone
  t.heard(net::Address(1), 1, 0.2, 1);
  t.heard(net::Address(2), 1, 0.6, 1);
  EXPECT_DOUBLE_EQ(t.mean_neighbor_load(), 0.4);
}

TEST(NeighborTable, SilentNeighborExpiresAndFiresCallback) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  std::vector<net::Address> lost;
  t.set_loss_callback([&](net::Address a) { lost.push_back(a); });

  s.schedule(sim::Time::zero(), [&] { t.heard(net::Address(3), 1, 0.0, 0); });
  s.run_until(sim::Time::seconds(10.0));
  EXPECT_FALSE(t.contains(net::Address(3)));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], net::Address(3));
}

TEST(NeighborTable, RefreshedNeighborSurvives) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  std::vector<net::Address> lost;
  t.set_loss_callback([&](net::Address a) { lost.push_back(a); });

  // Re-beacon every second for 10 seconds.
  for (int i = 0; i <= 10; ++i) {
    s.schedule_at(sim::Time::seconds(static_cast<double>(i)),
                  [&] { t.heard(net::Address(3), 1, 0.0, 0); });
  }
  s.run_until(sim::Time::seconds(10.5));
  EXPECT_TRUE(t.contains(net::Address(3)));
  EXPECT_TRUE(lost.empty());
}

TEST(NeighborTable, RefreshUpdatesLivenessOnly) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  s.schedule(sim::Time::zero(), [&] { t.heard(net::Address(3), 1, 0.5, 4); });
  // Refresh (data frame overheard) at 2 s keeps it alive past 2.5 s.
  s.schedule(sim::Time::seconds(2.0), [&] { t.refresh(net::Address(3)); });
  s.schedule(sim::Time::seconds(4.0), [&] {
    EXPECT_TRUE(t.contains(net::Address(3)));
    // Load/degree unchanged by refresh.
    EXPECT_DOUBLE_EQ(t.info(net::Address(3))->load_index, 0.5);
  });
  s.run_until(sim::Time::seconds(4.1));
}

TEST(NeighborTable, RefreshUnknownIsNoop) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  t.refresh(net::Address(42));
  EXPECT_EQ(t.count(), 0u);
}

TEST(NeighborTable, SnapshotListsAll) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  t.heard(net::Address(1), 1, 0.1, 1);
  t.heard(net::Address(2), 2, 0.2, 2);
  t.heard(net::Address(3), 3, 0.3, 3);
  EXPECT_EQ(t.snapshot().size(), 3u);
}

}  // namespace
}  // namespace wmn::routing
