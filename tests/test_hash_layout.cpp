// Hash-layout independence: the orders that escape the routing layer
// (RERR destination lists, neighbour-loss fan-out, neighbour snapshots)
// must be a function of *logical* table content only — never of
// std::unordered_{map,set} bucket layout, which varies with
// reserve/rehash history and insertion order. These are the runtime
// twins of the `wmn-unordered-iteration` static check in
// tools/wmn-tidy (see docs/TOOLING.md, "Custom static analysis").
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/neighbor_table.hpp"
#include "routing/route_table.hpp"
#include "sim/simulator.hpp"

namespace wmn::routing {
namespace {

RouteEntry entry(std::uint32_t dest, std::uint32_t via, std::uint8_t hops,
                 sim::Time expires, std::uint32_t seqno = 1) {
  RouteEntry e;
  e.dest = net::Address(dest);
  e.next_hop = net::Address(via);
  e.hop_count = hops;
  e.dest_seqno = seqno;
  e.valid_seqno = true;
  e.state = RouteState::kValid;
  e.expires = expires;
  return e;
}

// Give a table a very different bucket history: grow it far past the
// final size with short-lived routes, then reclaim them. The surviving
// logical content is untouched but the rehash history is not.
void churn_buckets(RouteTable& t, std::uint32_t base, int n) {
  const sim::Time life = sim::Time::seconds(1.0);
  for (int i = 0; i < n; ++i) {
    t.upsert(entry(base + static_cast<std::uint32_t>(i), 99, 1, life));
  }
  for (int i = 0; i < n; ++i) {
    t.invalidate(net::Address(base + static_cast<std::uint32_t>(i)),
                 sim::Time::seconds(2.0));
  }
  t.purge(sim::Time::seconds(100.0), sim::Time::seconds(1.0));
}

TEST(HashLayout, DestsViaIgnoresInsertionOrderAndRehashHistory) {
  const std::vector<std::uint32_t> dests = {17, 3, 42, 8, 29, 5, 11};
  const sim::Time life = sim::Time::seconds(50.0);

  RouteTable plain;
  for (std::uint32_t d : dests) plain.upsert(entry(d, 2, 3, life));

  RouteTable churned;
  churn_buckets(churned, 1000, 256);
  for (auto it = dests.rbegin(); it != dests.rend(); ++it) {
    churned.upsert(entry(*it, 2, 3, life));
  }

  const auto a = plain.dests_via(net::Address(2), sim::Time::seconds(1.0));
  const auto b = churned.dests_via(net::Address(2), sim::Time::seconds(1.0));
  ASSERT_EQ(a.size(), dests.size());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()))
      << "RERR destination order must not depend on bucket layout";
}

TEST(HashLayout, DestsViaFiltersByNextHopThenSorts) {
  RouteTable t;
  const sim::Time life = sim::Time::seconds(50.0);
  t.upsert(entry(9, 2, 3, life));
  t.upsert(entry(4, 7, 3, life));  // different next hop: excluded
  t.upsert(entry(1, 2, 3, life));
  const auto via2 = t.dests_via(net::Address(2), sim::Time::seconds(1.0));
  ASSERT_EQ(via2.size(), 2u);
  EXPECT_EQ(via2[0], net::Address(1));
  EXPECT_EQ(via2[1], net::Address(9));
}

TEST(HashLayout, NeighborLossCallbacksFireInAddressOrder) {
  const std::vector<std::uint32_t> addrs = {31, 2, 19, 7, 44, 3};

  auto run = [&](bool reversed) {
    sim::Simulator s;
    NeighborTable t(s, sim::Time::seconds(1.0), 2);
    std::vector<net::Address> lost;
    t.set_loss_callback([&](net::Address a) { lost.push_back(a); });
    s.schedule(sim::Time::zero(), [&] {
      auto order = addrs;
      if (reversed) std::reverse(order.begin(), order.end());
      for (std::uint32_t a : order) t.heard(net::Address(a), 1, 0.0, 0);
    });
    s.run_until(sim::Time::seconds(10.0));
    return lost;
  };

  const auto forward = run(false);
  const auto backward = run(true);
  ASSERT_EQ(forward.size(), addrs.size());
  EXPECT_EQ(forward, backward)
      << "loss fan-out order leaked the neighbour map's bucket layout";
  EXPECT_TRUE(std::is_sorted(forward.begin(), forward.end()));
}

TEST(HashLayout, NeighborSnapshotSortedByAddress) {
  sim::Simulator s;
  NeighborTable t(s, sim::Time::seconds(1.0), 2);
  for (std::uint32_t a : {12u, 5u, 33u, 1u}) {
    t.heard(net::Address(a), 1, 0.1, 0);
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const NeighborInfo& x, const NeighborInfo& y) {
        return x.addr < y.addr;
      }));
}

}  // namespace
}  // namespace wmn::routing
