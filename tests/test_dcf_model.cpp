// Analytical DCF model: internal consistency and validation against
// the simulator's MAC in a saturated single collision domain.
#include "stats/dcf_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mac/dcf_mac.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::stats {
namespace {

TEST(DcfModel, ConvergesAndIsPhysical) {
  for (std::uint32_t n : {2u, 5u, 10u, 20u, 50u}) {
    DcfModelParams params;
    params.n_stations = n;
    const DcfModelResult r = solve_dcf_saturation(params);
    EXPECT_GT(r.tau, 0.0);
    EXPECT_LT(r.tau, 1.0);
    EXPECT_GE(r.p_collision, 0.0);
    EXPECT_LT(r.p_collision, 1.0);
    EXPECT_GT(r.throughput_bps, 0.0);
    EXPECT_LT(r.throughput_bps, params.bit_rate_bps);
    EXPECT_LT(r.iterations, 10000);
  }
}

TEST(DcfModel, CollisionsIncreaseWithStations) {
  double prev_p = 0.0;
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    DcfModelParams params;
    params.n_stations = n;
    const DcfModelResult r = solve_dcf_saturation(params);
    EXPECT_GT(r.p_collision, prev_p);
    prev_p = r.p_collision;
  }
}

TEST(DcfModel, ThroughputDecreasesAtHighContention) {
  DcfModelParams few;
  few.n_stations = 5;
  DcfModelParams many;
  many.n_stations = 50;
  EXPECT_GT(solve_dcf_saturation(few).throughput_bps,
            solve_dcf_saturation(many).throughput_bps);
}

TEST(DcfModel, LargerPayloadIsMoreEfficient) {
  DcfModelParams small;
  small.payload_bytes = 128;
  DcfModelParams large;
  large.payload_bytes = 1024;
  EXPECT_GT(solve_dcf_saturation(large).throughput_bps,
            solve_dcf_saturation(small).throughput_bps);
}

// Validation: n saturated stations in one collision domain, simulator
// vs model, within the fidelity expected of the Bianchi family.
class DcfModelValidation : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DcfModelValidation, SimulatorMatchesModel) {
  using mobility::ConstantPositionModel;
  using mobility::Vec2;

  const std::uint32_t n = GetParam();
  sim::Simulator simr(7);
  phy::WirelessChannel channel(simr,
                               std::make_unique<phy::LogDistanceModel>());
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mob;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::uint64_t delivered_bytes = 0;

  // Stations on a small circle (everyone hears everyone).
  for (std::uint32_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265 * i / n;
    mob.push_back(std::make_unique<ConstantPositionModel>(
        Vec2{25.0 * std::cos(a), 25.0 * std::sin(a)}));
    phys.push_back(
        std::make_unique<phy::WifiPhy>(simr, phy::PhyConfig{}, i, mob.back().get()));
    channel.attach(phys.back().get());
    macs.push_back(std::make_unique<mac::DcfMac>(simr, mac::MacConfig{},
                                                 net::Address(i), *phys.back(),
                                                 factory));
    macs.back()->set_rx_callback(
        [&delivered_bytes](net::Packet p, net::Address) {
          delivered_bytes += p.payload_bytes();
        });
  }
  // Saturate every station toward its ring neighbour.
  const double sim_seconds = 20.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    // 250 pkt/s per station: above per-station capacity even for the
    // smallest population, so the queue never drains (true saturation).
    for (int k = 0; k < static_cast<int>(sim_seconds * 250); ++k) {
      simr.schedule_at(sim::Time::millis(k * 4.0), [&, i] {
        macs[i]->enqueue(factory.make(512, simr.now()),
                         net::Address((i + 1) % n));
      });
    }
  }
  simr.run_until(sim::Time::seconds(sim_seconds));

  const double sim_bps = static_cast<double>(delivered_bytes) * 8.0 / sim_seconds;
  DcfModelParams params;
  params.n_stations = n;
  const double model_bps = solve_dcf_saturation(params).throughput_bps;
  EXPECT_NEAR(sim_bps / model_bps, 1.0, 0.15)
      << "sim=" << sim_bps << " model=" << model_bps;
}

INSTANTIATE_TEST_SUITE_P(StationCounts, DcfModelValidation,
                         ::testing::Values(3, 6, 10));

}  // namespace
}  // namespace wmn::stats
