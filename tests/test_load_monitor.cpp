#include "mac/load_monitor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mac/dcf_mac.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::mac {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct MonitorBed {
  MonitorBed() : sim(1), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    for (std::uint32_t id = 0; id < 2; ++id) {
      mob.push_back(std::make_unique<ConstantPositionModel>(
          Vec2{static_cast<double>(id) * 150.0, 0.0}));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mob.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<DcfMac>(sim, MacConfig{}, net::Address(id),
                                              *phys.back(), factory));
    }
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mob;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<DcfMac>> macs;
};

TEST(LoadMonitor, IdleChannelReadsZero) {
  MonitorBed tb;
  tb.sim.run_until(sim::Time::seconds(3.0));
  EXPECT_DOUBLE_EQ(tb.macs[0]->busy_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(tb.macs[0]->retry_ratio(), 0.0);
}

TEST(LoadMonitor, BusyRatioTracksAirTimeOnBothSides) {
  MonitorBed tb;
  // Saturate node 0 -> node 1 for 3 seconds.
  for (int i = 0; i < 1500; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 2.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(3.0));
  // Sender and receiver both see a mostly-busy medium.
  EXPECT_GT(tb.macs[0]->busy_ratio(), 0.5);
  EXPECT_GT(tb.macs[1]->busy_ratio(), 0.5);
}

TEST(LoadMonitor, BusyRatioDecaysAfterTrafficStops) {
  MonitorBed tb;
  for (int i = 0; i < 500; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 2.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(512, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(1.0));
  const double during = tb.macs[1]->busy_ratio();
  tb.sim.run_until(sim::Time::seconds(8.0));
  const double after = tb.macs[1]->busy_ratio();
  EXPECT_GT(during, 0.3);
  EXPECT_LT(after, 0.05);  // EWMA decayed over ~24 idle windows
}

TEST(LoadMonitor, RetryRatioZeroWithoutCollisions) {
  MonitorBed tb;
  for (int i = 0; i < 100; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 20.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(256, tb.sim.now()), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(4.0));
  EXPECT_DOUBLE_EQ(tb.macs[0]->retry_ratio(), 0.0);
}

TEST(LoadMonitor, RetryRatioRisesWhenAcksNeverCome) {
  MonitorBed tb;
  // Unicast into the void: every attempt is a retry after the first.
  for (int i = 0; i < 20; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 100.0), [&] {
      tb.macs[0]->enqueue(tb.factory.make(256, tb.sim.now()), net::Address(99));
    });
  }
  // Read while the retry storm is still inside the EWMA window.
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_GT(tb.macs[0]->retry_ratio(), 0.5);
}

TEST(LoadMonitor, CountTxWindowsIndependently) {
  // Direct unit test of the windowing logic via count_tx.
  sim::Simulator s(1);
  ConstantPositionModel pos(Vec2{0, 0});
  phy::WifiPhy radio(s, phy::PhyConfig{}, 0, &pos);
  LoadMonitorConfig cfg;
  cfg.window = sim::Time::millis(100.0);
  cfg.ewma_alpha = 1.0;  // no smoothing: read the raw window
  LoadMonitor mon(s, cfg, radio);

  s.schedule(sim::Time::millis(50.0), [&] {
    mon.count_tx(false);
    mon.count_tx(true);
    mon.count_tx(true);
    mon.count_tx(true);
  });
  s.run_until(sim::Time::millis(150.0));
  EXPECT_DOUBLE_EQ(mon.retry_ratio(), 0.75);

  // Next window has no transmissions: ratio resets (alpha = 1).
  s.run_until(sim::Time::millis(350.0));
  EXPECT_DOUBLE_EQ(mon.retry_ratio(), 0.0);
}

}  // namespace
}  // namespace wmn::mac
