// Run-supervision tests: watchdog leases, the deadline→cancel→
// kDeadlineExceeded path through SweepEngine, the transient-vs-
// deterministic retry policy, and the failure taxonomy counts.
#include "exp/supervision.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>

#include "core/check.hpp"
#include "exp/failure.hpp"
#include "exp/sweep.hpp"
#include "sim/cancel_token.hpp"
#include "sim/simulator.hpp"

namespace wmn::exp {
namespace {

// Test bodies get the slot config and the attempt's cancel token
// (null when the watchdog is off), exactly like the real execute().
class FakeEngine : public SweepEngine {
 public:
  using SweepEngine::SweepEngine;
  std::function<RunMetrics(const ScenarioConfig&, sim::CancelToken*)> body;

 protected:
  RunMetrics execute(const ScenarioConfig& cfg,
                     sim::CancelToken* cancel) override {
    return body(cfg, cancel);
  }
};

ScenarioConfig tiny_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  return cfg;
}

RunMetrics fake_metrics(std::uint64_t events) {
  RunMetrics m;
  m.sim_event_count = static_cast<double>(events);
  return m;
}

TEST(Watchdog, LeaseExpiresAndFlipsToken) {
  Watchdog dog;
  sim::CancelToken token;
  auto lease = dog.watch(token, 0.02);
  EXPECT_EQ(dog.active(), 1u);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token.cancelled() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(dog.expired_count(), 1u);
  EXPECT_EQ(dog.active(), 0u);  // expired leases are withdrawn
  lease.release();              // idempotent on an already-expired lease
}

TEST(Watchdog, ReleasedLeaseNeverFires) {
  Watchdog dog;
  sim::CancelToken token;
  {
    auto lease = dog.watch(token, 0.02);
    lease.release();
    EXPECT_EQ(dog.active(), 0u);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(3 * Watchdog::kTickMillis));
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(dog.expired_count(), 0u);
}

TEST(Watchdog, LeaseDestructorWithdraws) {
  Watchdog dog;
  sim::CancelToken token;
  { auto lease = dog.watch(token, 100.0); }
  EXPECT_EQ(dog.active(), 0u);
  EXPECT_FALSE(token.cancelled());
}

TEST(Supervision, HungReplicationReportedAsDeadlineExceeded) {
  FakeEngine sweep(2);
  sweep.set_rep_deadline(0.05);
  sweep.set_retry_limit(0);
  // A livelocked replication: the simulator spins through an endless
  // event chain until the watchdog flips the token, then surfaces the
  // abort exactly like Scenario::run() does.
  sweep.body = [](const ScenarioConfig&, sim::CancelToken* cancel) {
    EXPECT_NE(cancel, nullptr);
    sim::Simulator s;
    s.set_cancel_token(cancel, 64);
    std::function<void()> chain = [&] { s.schedule(sim::Time::seconds(1), chain); };
    s.schedule(sim::Time::seconds(1), chain);
    s.run_until(sim::Time::max());
    if (s.abort_reason() == sim::Simulator::AbortReason::kCancelled) {
      throw RunAborted(FailureKind::kDeadlineExceeded, "cancelled");
    }
    return fake_metrics(s.events_executed());
  };
  const std::size_t id = sweep.add_cell(tiny_config(7), 2, "hung");
  sweep.run();
  for (const RepOutcome& slot : sweep.cell(id)) {
    EXPECT_FALSE(slot.ok());
    EXPECT_EQ(slot.kind, FailureKind::kDeadlineExceeded);
    EXPECT_EQ(slot.attempts, 1u);
  }
  EXPECT_EQ(sweep.failed_count(), 2u);
  EXPECT_EQ(sweep.failure_counts()[static_cast<std::size_t>(
                FailureKind::kDeadlineExceeded)],
            2u);
}

TEST(Supervision, TransientFailureRetriedSameSeed) {
  FakeEngine sweep(1);
  sweep.set_retry_limit(2);
  std::atomic<int> calls{0};
  std::atomic<std::uint64_t> first_seed{0};
  sweep.body = [&](const ScenarioConfig& cfg, sim::CancelToken*) {
    const int n = ++calls;
    if (n == 1) {
      first_seed = cfg.seed;
      throw RunAborted(FailureKind::kDeadlineExceeded, "transient blip");
    }
    EXPECT_EQ(cfg.seed, first_seed.load());  // retry reuses the seed
    return fake_metrics(10);
  };
  const std::size_t id = sweep.add_cell(tiny_config(11), 1);
  sweep.run();
  const RepOutcome& slot = sweep.cell(id)[0];
  EXPECT_TRUE(slot.ok());
  EXPECT_EQ(slot.attempts, 2u);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(sweep.failed_count(), 0u);
}

TEST(Supervision, DeterministicFailureNeverRetried) {
  FakeEngine sweep(1);
  sweep.set_retry_limit(5);  // generous budget that must not be spent
  std::atomic<int> calls{0};
  sweep.body = [&](const ScenarioConfig&, sim::CancelToken*) -> RunMetrics {
    ++calls;
    throw std::runtime_error("same trace every time");
  };
  const std::size_t id = sweep.add_cell(tiny_config(13), 1);
  sweep.run();
  const RepOutcome& slot = sweep.cell(id)[0];
  EXPECT_FALSE(slot.ok());
  EXPECT_EQ(slot.kind, FailureKind::kException);
  EXPECT_EQ(slot.attempts, 1u);
  EXPECT_EQ(calls.load(), 1);
}

TEST(Supervision, RetriesExhaustedKeepsTransientKind) {
  FakeEngine sweep(1);
  sweep.set_retry_limit(2);
  std::atomic<int> calls{0};
  sweep.body = [&](const ScenarioConfig&, sim::CancelToken*) -> RunMetrics {
    ++calls;
    throw RunAborted(FailureKind::kDeadlineExceeded, "always hung");
  };
  const std::size_t id = sweep.add_cell(tiny_config(17), 1);
  sweep.run();
  const RepOutcome& slot = sweep.cell(id)[0];
  EXPECT_FALSE(slot.ok());
  EXPECT_EQ(slot.kind, FailureKind::kDeadlineExceeded);
  EXPECT_EQ(slot.attempts, 3u);  // initial + 2 retries
  EXPECT_EQ(calls.load(), 3);
}

TEST(Supervision, CheckTaintClassifiedAndKeepsMetrics) {
  FakeEngine sweep(1);
  sweep.body = [](const ScenarioConfig&, sim::CancelToken*) {
    RunMetrics m = fake_metrics(5);
    m.check_violations = 3;
    return m;
  };
  const std::size_t id = sweep.add_cell(tiny_config(19), 1);
  sweep.run();
  const RepOutcome& slot = sweep.cell(id)[0];
  EXPECT_FALSE(slot.ok());
  EXPECT_EQ(slot.kind, FailureKind::kCheckTaint);
  ASSERT_TRUE(slot.metrics.has_value());  // kept for inspection
  EXPECT_EQ(slot.metrics->check_violations, 3u);
  EXPECT_TRUE(sweep.cell_metrics(id).empty());  // excluded from stats
}

TEST(Supervision, SweepEventBudgetStopsLaterSlots) {
  FakeEngine sweep(1);  // 1 thread: slots complete in index order
  sweep.set_sweep_event_budget(250);
  sweep.body = [](const ScenarioConfig&, sim::CancelToken*) {
    return fake_metrics(100);
  };
  const std::size_t id = sweep.add_cell(tiny_config(23), 5);
  sweep.run();
  const auto slots = sweep.cell(id);
  // 100+100 < 250, third slot crosses the ceiling at 300: slots 0-2
  // ran, 3-4 were refused without executing.
  EXPECT_TRUE(slots[0].ok());
  EXPECT_TRUE(slots[1].ok());
  EXPECT_TRUE(slots[2].ok());
  for (std::size_t i = 3; i < 5; ++i) {
    EXPECT_FALSE(slots[i].ok());
    EXPECT_EQ(slots[i].kind, FailureKind::kEventBudgetExhausted);
    EXPECT_EQ(slots[i].attempts, 0u);  // never executed
  }
  EXPECT_EQ(sweep.failure_counts()[static_cast<std::size_t>(
                FailureKind::kEventBudgetExhausted)],
            2u);
}

TEST(Supervision, FailureCountsCoverEveryKind) {
  FakeEngine sweep(1);
  sweep.set_retry_limit(0);
  sweep.body = [](const ScenarioConfig& cfg, sim::CancelToken*) -> RunMetrics {
    switch (cfg.n_nodes) {
      case 1: return fake_metrics(1);
      case 2: throw std::runtime_error("boom");
      case 3: throw RunAborted(FailureKind::kDeadlineExceeded, "hung");
      case 4: throw RunAborted(FailureKind::kEventBudgetExhausted, "budget");
      default: throw std::bad_alloc();
    }
  };
  for (std::size_t n = 1; n <= 5; ++n) {
    ScenarioConfig cfg = tiny_config(29 + n);
    cfg.n_nodes = n;
    sweep.add_cell(cfg, 1);
  }
  sweep.run();
  const FailureCounts counts = sweep.failure_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(FailureKind::kNone)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FailureKind::kException)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FailureKind::kDeadlineExceeded)],
            1u);
  EXPECT_EQ(
      counts[static_cast<std::size_t>(FailureKind::kEventBudgetExhausted)],
      1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FailureKind::kBadAlloc)], 1u);
  EXPECT_EQ(sweep.failed_count(), 4u);
  const std::string report = sweep.failure_report();
  EXPECT_NE(report.find("deadline_exceeded"), std::string::npos);
  EXPECT_NE(report.find("bad_alloc"), std::string::npos);
}

TEST(Supervision, NoDeadlineMeansNoTokenAndNoWatchdog) {
  FakeEngine sweep(1);
  sweep.body = [](const ScenarioConfig&, sim::CancelToken* cancel) {
    EXPECT_EQ(cancel, nullptr);  // watchdog off: kernel stays untouched
    return fake_metrics(1);
  };
  sweep.add_cell(tiny_config(31), 1);
  sweep.run();
  EXPECT_EQ(sweep.failed_count(), 0u);
}

}  // namespace
}  // namespace wmn::exp
