// Pins the sharded engine's determinism contract pieces one at a time
// (DESIGN.md §3e): the geometry -> region map, the conservative
// lookahead formula (and its infinite-range downgrade), the fixed
// cross-region merge order, the lowest-cell-id home-region rule for
// trajectories that span regions, and the FaultTimeline's
// replay-vs-injector equivalence. tests/test_determinism.cpp checks
// the end-to-end consequence (bit-identical fingerprints across shard
// counts); this file checks each ingredient, so a contract break
// points at the guilty layer instead of just flipping a fingerprint.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/protocols.hpp"
#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_timeline.hpp"
#include "fault/injector.hpp"
#include "mobility/mobility_model.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "phy/shard_router.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/fingerprint.hpp"
#include "sim/shard_map.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using namespace wmn;

// --- region assignment ------------------------------------------------

sim::ShardGrid grid16() { return sim::ShardGrid{16, 16, 10.0}; }

TEST(ShardMap, SquareGridTilesEightRegions) {
  const auto map = sim::ShardMap::build(grid16(), 8);
  // 8 = 4x2 on a square grid: (2,4) and (4,2) tie on aspect mismatch
  // and the documented tie-break prefers more columns.
  EXPECT_EQ(map.region_count(), 8u);
  EXPECT_EQ(map.tiles_x(), 4u);
  EXPECT_EQ(map.tiles_y(), 2u);
}

TEST(ShardMap, RegionsAreContiguousEqualTiles) {
  const auto map = sim::ShardMap::build(grid16(), 8);
  // Proportional partition on 16 cells / 4 tiles: cell column c lands
  // in tile c/4, row r in tile r/8; region id is row-major over tiles.
  std::vector<std::uint32_t> cells_per_region(map.region_count(), 0);
  for (std::uint32_t cy = 0; cy < 16; ++cy) {
    for (std::uint32_t cx = 0; cx < 16; ++cx) {
      const std::uint32_t region = map.region_of_cell(cy * 16 + cx);
      EXPECT_EQ(region, (cy / 8) * 4 + cx / 4) << "cell (" << cx << "," << cy << ")";
      ++cells_per_region[region];
    }
  }
  for (std::uint32_t r = 0; r < map.region_count(); ++r) {
    EXPECT_EQ(cells_per_region[r], 32u) << "region " << r;
  }
}

TEST(ShardMap, TargetRoundsDownToFeasibleCount) {
  // A 1xN grid cannot tile 8 as anything but 8x1; with only 4 columns
  // the build walks the target down to the largest feasible count.
  const auto map = sim::ShardMap::build(sim::ShardGrid{4, 1, 25.0}, 8);
  EXPECT_EQ(map.region_count(), 4u);
  EXPECT_EQ(map.tiles_x(), 4u);
  EXPECT_EQ(map.tiles_y(), 1u);
}

TEST(ShardMap, SingleIsOneRegion) {
  const auto map = sim::ShardMap::single(grid16());
  EXPECT_EQ(map.region_count(), 1u);
  for (std::uint32_t cell = 0; cell < 16 * 16; ++cell) {
    EXPECT_EQ(map.region_of_cell(cell), 0u);
  }
}

TEST(ShardMap, PositionMappingClampsEdgesAndNan) {
  const auto map = sim::ShardMap::build(grid16(), 8);
  EXPECT_EQ(map.region_of_position(0.0, 0.0), 0u);
  EXPECT_EQ(map.region_of_position(159.9, 0.0), 3u);
  EXPECT_EQ(map.region_of_position(0.0, 159.9), 4u);
  EXPECT_EQ(map.region_of_position(159.9, 159.9), 7u);
  // Outside the area and non-finite coordinates clamp into the grid —
  // same rule as phy::SpatialIndex, so map and index always agree.
  EXPECT_EQ(map.region_of_position(-50.0, -50.0), 0u);
  EXPECT_EQ(map.region_of_position(1e9, 1e9), 7u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(map.region_of_position(nan, nan), 0u);
}

// --- home region: the lowest-cell-id rule (mobility satellite) --------

TEST(ShardMap, HomeRegionIsLoCornerOfTrajectoryBounds) {
  const auto map = sim::ShardMap::build(grid16(), 8);
  // A trajectory box spanning cells (3..4, 7..8) overlaps all four
  // regions around the grid centre. The home is the region of the
  // box's lo corner — the lowest overlapped cell id in row-major
  // order, so the choice is deterministic and independent of shard
  // count or visit order.
  const mobility::TrajectoryBounds b =
      mobility::TrajectoryBounds::box({35.0, 75.0}, {45.0, 85.0});
  EXPECT_EQ(map.home_region(b.lo.x, b.lo.y), 0u);
  EXPECT_EQ(map.home_region(b.lo.x, b.lo.y),
            map.region_of_position(b.lo.x, b.lo.y));
  // The same box's other corners land in the three other regions —
  // i.e. the rule genuinely picks among several candidates.
  EXPECT_EQ(map.region_of_position(b.hi.x, b.lo.y), 1u);
  EXPECT_EQ(map.region_of_position(b.lo.x, b.hi.y), 4u);
  EXPECT_EQ(map.region_of_position(b.hi.x, b.hi.y), 5u);
}

// --- lookahead --------------------------------------------------------

TEST(ShardMap, LookaheadIsPropagationPlusTurnaround) {
  const sim::Time turnaround = sim::Time::micros(30.0);
  const sim::Time la = sim::ShardMap::lookahead(300.0, 3.0e8, turnaround);
  EXPECT_EQ(la, sim::Time::seconds(300.0 / 3.0e8) + turnaround);
  EXPECT_GT(la, turnaround);
}

TEST(ShardMap, LookaheadInfiniteRangeIsSentinel) {
  const sim::Time turnaround = sim::Time::micros(30.0);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(sim::ShardMap::lookahead(inf, 3.0e8, turnaround), sim::Time::max());
  EXPECT_EQ(sim::ShardMap::lookahead(nan, 3.0e8, turnaround), sim::Time::max());
  // Degenerate ranges clamp to zero propagation, not negative time.
  EXPECT_EQ(sim::ShardMap::lookahead(-5.0, 3.0e8, turnaround), turnaround);
}

// --- cross-region inbox merge order -----------------------------------

// Hand-built two-source, one-destination rig: three regions, posts
// with assorted (arrival, src region), then one merge. The trace must
// come out in (release, src region, row seq) order with every release
// clamped to the barrier.
TEST(ShardRouter, MergeOrderIsReleaseThenSrcRegionThenSeq) {
  sim::Simulator sim0(1), sim1(1), sim2(1);
  phy::WirelessChannel ch0(sim0, std::make_unique<phy::LogDistanceModel>());
  phy::WirelessChannel ch1(sim1, std::make_unique<phy::LogDistanceModel>());
  phy::WirelessChannel ch2(sim2, std::make_unique<phy::LogDistanceModel>());
  net::PacketFactory f0, f1, f2;
  phy::ShardRouter router({0, 1, 2}, {&ch0, &ch1, &ch2}, {&f0, &f1, &f2});
  router.set_trace(true);

  mobility::ConstantPositionModel pos({0.0, 0.0});
  phy::WifiPhy rx(sim2, phy::PhyConfig{}, 2, &pos);

  const sim::Time boundary = sim::Time::micros(10.0);
  const sim::Time duration = sim::Time::micros(100.0);
  // Two rows into dst 2. Row (0,2): arrivals 5us then 15us. Row (1,2):
  // arrivals 5us then 12us. Barrier at 10us.
  const net::Packet a = f0.make(64, sim::Time::zero());  // release clamps to 10us
  const net::Packet b = f1.make(64, sim::Time::zero());  // release clamps to 10us
  const net::Packet c = f0.make(64, sim::Time::zero());  // release 15us
  const net::Packet d = f1.make(64, sim::Time::zero());  // release 12us
  router.post(0, 2, &rx, a, -60.0, 1e-6, sim::Time::micros(5.0), duration);
  router.post(1, 2, &rx, b, -60.0, 1e-6, sim::Time::micros(5.0), duration);
  router.post(0, 2, &rx, c, -60.0, 1e-6, sim::Time::micros(15.0), duration);
  router.post(1, 2, &rx, d, -60.0, 1e-6, sim::Time::micros(12.0), duration);
  EXPECT_EQ(router.posted(), 4u);

  EXPECT_TRUE(router.merge_epoch(boundary));
  EXPECT_EQ(router.merged(), 4u);

  const auto& trace = router.last_merge_trace();
  ASSERT_EQ(trace.size(), 4u);
  // Ties on release break by src region; within a row, by seq.
  EXPECT_EQ(trace[0].uid, a.uid());
  EXPECT_EQ(trace[1].uid, b.uid());
  EXPECT_EQ(trace[2].uid, d.uid());
  EXPECT_EQ(trace[3].uid, c.uid());
  EXPECT_EQ(trace[0].release, boundary);  // clamped, never early
  EXPECT_EQ(trace[1].release, boundary);
  EXPECT_EQ(trace[2].release, sim::Time::micros(12.0));
  EXPECT_EQ(trace[3].release, sim::Time::micros(15.0));
  EXPECT_EQ(trace[0].src_region, 0u);
  EXPECT_EQ(trace[1].src_region, 1u);
  EXPECT_EQ(trace[0].seq, 0u);
  EXPECT_EQ(trace[3].seq, 1u);

  // Every entry became a parked delivery on the destination calendar.
  EXPECT_EQ(ch2.deliveries_in_flight(), 4u);
  EXPECT_EQ(sim2.events_pending(), 4u);
  EXPECT_EQ(sim0.events_pending(), 0u);

  // A second merge with nothing posted is quiet.
  EXPECT_FALSE(router.merge_epoch(boundary + sim::Time::micros(30.0)));
  EXPECT_TRUE(router.last_merge_trace().empty());
}

// --- scenario-level downgrades ---------------------------------------

exp::ScenarioConfig small_sharded_config(std::uint32_t shards) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 25;
  cfg.area_width_m = 500.0;
  cfg.area_height_m = 500.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.traffic.n_flows = 4;
  cfg.traffic.rate_pps = 2.0;
  cfg.warmup = sim::Time::seconds(1.0);
  cfg.traffic_time = sim::Time::seconds(2.0);
  cfg.drain = sim::Time::seconds(1.0);
  cfg.seed = 7;
  cfg.protocol = core::Protocol::kClnlr;
  cfg.intra_run_shards = shards;
  return cfg;
}

TEST(ShardedScenario, NoSpatialIndexDowngradesToOneRegion) {
  auto cfg = small_sharded_config(4);
  cfg.spatial_index = false;
  exp::Scenario s(cfg);
  ASSERT_TRUE(s.sharded());
  ASSERT_NE(s.shard_map(), nullptr);
  EXPECT_EQ(s.shard_map()->region_count(), 1u);
  // One region means one epoch spanning the whole horizon: the run
  // must still complete with the serial engine's semantics.
  s.run();
  EXPECT_GT(s.metrics().data_delivered, 0u);
}

TEST(ShardedScenario, MobilityDowngradesToOneRegion) {
  auto cfg = small_sharded_config(4);
  cfg.mobility.max_speed_mps = 2.0;
  exp::Scenario s(cfg);
  ASSERT_TRUE(s.sharded());
  EXPECT_EQ(s.shard_map()->region_count(), 1u);
  s.run();
  EXPECT_GT(s.metrics().data_delivered, 0u);
}

TEST(ShardedScenario, StaticNodesGetGeometricHomeRegions) {
  auto cfg = small_sharded_config(2);
  exp::Scenario s(cfg);
  ASSERT_TRUE(s.sharded());
  ASSERT_GT(s.shard_map()->region_count(), 1u);
  const auto& homes = s.home_regions();
  ASSERT_EQ(homes.size(), static_cast<std::size_t>(cfg.n_nodes));
  bool multiple = false;
  for (std::size_t i = 1; i < homes.size(); ++i) {
    if (homes[i] != homes[0]) multiple = true;
  }
  EXPECT_TRUE(multiple) << "all nodes in one region defeats the point";
}

TEST(ShardedScenario, SameSeedSameFingerprintAfterDowngrade) {
  auto cfg = small_sharded_config(4);
  cfg.spatial_index = false;
  exp::Scenario a(cfg), b(cfg);
  a.run();
  b.run();
  EXPECT_EQ(exp::fingerprint(a.metrics()), exp::fingerprint(b.metrics()));
}

// --- FaultTimeline replay equivalence ---------------------------------

// The timeline claims to be the injector's realized history, frozen.
// Run a classic (serial) scenario with churn + static outages + a
// blackout, then replay the same plan with a FaultTimeline and compare
// counters, downtime, and window membership instant by instant.
TEST(FaultTimeline, ReplayMatchesInjector) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 36;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.placement = exp::Placement::kPerturbedGrid;
  cfg.traffic.n_flows = 6;
  cfg.traffic.rate_pps = 2.0;
  cfg.warmup = sim::Time::seconds(2.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.drain = sim::Time::seconds(1.0);
  cfg.seed = 99;
  cfg.protocol = core::Protocol::kClnlr;
  cfg.fault.churn.rate_per_s = 0.5;
  cfg.fault.churn.mean_downtime = sim::Time::seconds(2.0);
  cfg.fault.churn.start = cfg.warmup;
  cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
  cfg.fault.outages.push_back({3, sim::Time::seconds(4.0), sim::Time::seconds(6.0)});
  cfg.fault.blackouts.push_back(
      {1, 2, sim::Time::seconds(3.0), sim::Time::seconds(5.0), 200.0, true});

  const sim::Time horizon = cfg.warmup + cfg.traffic_time + cfg.drain;
  exp::Scenario s(cfg);
  s.run();
  ASSERT_NE(s.injector(), nullptr);
  const auto& live = *s.injector();

  fault::FaultTimeline replay(cfg.seed, cfg.fault, cfg.n_nodes, horizon);
  EXPECT_EQ(replay.counters().crashes, live.counters().crashes);
  EXPECT_EQ(replay.counters().rejoins, live.counters().rejoins);
  EXPECT_EQ(replay.counters().blackouts, live.counters().blackouts);
  EXPECT_GT(replay.counters().crashes, 0u) << "plan realized no churn; test is vacuous";
  EXPECT_EQ(replay.total_node_downtime(horizon), live.total_node_downtime(horizon));
  for (double t = 0.0; t <= 11.0; t += 0.05) {
    const sim::Time at = sim::Time::seconds(t);
    EXPECT_EQ(replay.in_fault_window(at), live.in_fault_window(at)) << "t=" << t;
  }
  // The static blackout is in the frozen windows too: the severed link
  // carries the plan's attenuation mid-window and none outside it.
  EXPECT_EQ(replay.link_loss_db(1, 2, sim::Time::seconds(4.0)), 200.0);
  EXPECT_EQ(replay.link_loss_db(2, 1, sim::Time::seconds(4.0)), 200.0);
  EXPECT_EQ(replay.link_loss_db(1, 2, sim::Time::seconds(6.0)), 0.0);
}

}  // namespace
