// Wire-format invariants for the routing control plane.
#include "routing/messages.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace wmn::routing {
namespace {

TEST(Messages, WireSizesMatchRfcLayouts) {
  EXPECT_EQ(DataHeader::kWireSize, 20u);   // IP-like
  EXPECT_EQ(RreqHeader::kWireSize, 24u);   // RFC 3561 section 5.1
  EXPECT_EQ(RrepHeader::kWireSize, 20u);   // RFC 3561 section 5.2
  EXPECT_EQ(RerrHeader::kWireSize, 12u);   // single-destination RERR
  EXPECT_EQ(HelloHeader::kWireSize, 20u);  // TTL-1 RREP equivalent
  EXPECT_EQ(LoadTlv::kWireSize, 8u);       // CLNLR extension
}

TEST(Messages, RerrCarriesMultipleDestinations) {
  RerrHeader h;
  ASSERT_EQ(RerrHeader::kMaxUnreachable, 5u);
  for (std::uint8_t i = 0; i < RerrHeader::kMaxUnreachable; ++i) {
    h.unreachable[i] = net::Address(i + 10);
    h.seqno[i] = 100u + i;
    ++h.count;
  }
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.unreachable[4], net::Address(14));
  EXPECT_EQ(h.seqno[4], 104u);
}

TEST(Messages, DefaultsAreSane) {
  RreqHeader rreq;
  EXPECT_TRUE(rreq.unknown_dest_seqno);
  EXPECT_EQ(rreq.hop_count, 0);
  DataHeader data;
  EXPECT_EQ(data.ttl, 64);
  LoadTlv tlv;
  EXPECT_DOUBLE_EQ(tlv.load, 0.0);
}

TEST(Messages, HeadersRoundTripThroughPacket) {
  net::PacketFactory f;
  net::Packet p = f.make(0, sim::Time::zero());

  RreqHeader rreq;
  rreq.rreq_id = 42;
  rreq.origin = net::Address(1);
  rreq.origin_seqno = 7;
  rreq.dest = net::Address(9);
  rreq.dest_seqno = 3;
  rreq.unknown_dest_seqno = false;
  rreq.hop_count = 2;
  rreq.ttl = 30;

  p.push(LoadTlv{0.42});
  p.push(rreq);

  const RreqHeader out = p.pop<RreqHeader>();
  EXPECT_EQ(out.rreq_id, 42u);
  EXPECT_EQ(out.origin, net::Address(1));
  EXPECT_EQ(out.origin_seqno, 7u);
  EXPECT_EQ(out.dest, net::Address(9));
  EXPECT_EQ(out.dest_seqno, 3u);
  EXPECT_FALSE(out.unknown_dest_seqno);
  EXPECT_EQ(out.hop_count, 2);
  EXPECT_EQ(out.ttl, 30);
  EXPECT_DOUBLE_EQ(p.pop<LoadTlv>().load, 0.42);
}

TEST(Messages, SeqnoComparisonIsCircularPerRfc3561) {
  // RFC 3561 section 6.1: sequence numbers live on a signed-rollover
  // circle. Plain unsigned comparison inverts freshness at the
  // 0xFFFFFFFF -> 0 wrap; the helpers must not.
  EXPECT_TRUE(seqno_newer(1, 0));
  EXPECT_FALSE(seqno_newer(0, 1));
  EXPECT_FALSE(seqno_newer(5, 5));

  // Across the wrap: small numbers are *newer* than numbers just
  // below 2^32, exactly where `a > b` on uint32_t gets it backwards.
  EXPECT_TRUE(seqno_newer(0, 0xFFFFFFFFu));
  EXPECT_TRUE(seqno_newer(3, 0xFFFFFFF0u));
  EXPECT_FALSE(seqno_newer(0xFFFFFFFFu, 0));
  EXPECT_FALSE(seqno_newer(0xFFFFFFF0u, 3));

  EXPECT_TRUE(seqno_newer_or_equal(5, 5));
  EXPECT_TRUE(seqno_newer_or_equal(0, 0xFFFFFFFFu));
  EXPECT_FALSE(seqno_newer_or_equal(0xFFFFFFFFu, 0));

  EXPECT_EQ(seqno_max(0, 0xFFFFFFFFu), 0u);
  EXPECT_EQ(seqno_max(0xFFFFFFFFu, 0), 0u);
  EXPECT_EQ(seqno_max(7, 9), 9u);
}

TEST(Messages, ControlPacketsAreSmallerThanData) {
  // The on-demand overhead economy only makes sense if control frames
  // are an order of magnitude smaller than 512-byte data packets.
  EXPECT_LT(RreqHeader::kWireSize + LoadTlv::kWireSize, 64u);
  EXPECT_LT(RrepHeader::kWireSize, 64u);
  EXPECT_LT(HelloHeader::kWireSize + LoadTlv::kWireSize, 64u);
}

}  // namespace
}  // namespace wmn::routing
