#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace wmn::sim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_FALSE(t.is_negative());
}

TEST(Time, NamedConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(Time::millis(1.0).ns(), 1'000'000);
  EXPECT_EQ(Time::micros(1.0).ns(), 1'000);
  EXPECT_EQ(Time::nanos(1).ns(), 1);
  EXPECT_EQ(Time::seconds(2.5).ns(), 2'500'000'000);
}

TEST(Time, RoundsToNearestNanosecond) {
  EXPECT_EQ(Time::seconds(1e-9 * 0.4).ns(), 0);
  EXPECT_EQ(Time::seconds(1e-9 * 0.6).ns(), 1);
  EXPECT_EQ(Time::seconds(-1e-9 * 0.6).ns(), -1);
}

TEST(Time, Arithmetic) {
  const Time a = Time::seconds(3.0);
  const Time b = Time::seconds(1.5);
  EXPECT_EQ((a + b).to_seconds(), 4.5);
  EXPECT_EQ((a - b).to_seconds(), 1.5);
  EXPECT_EQ((b - a).to_seconds(), -1.5);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 2).to_seconds(), 6.0);
  EXPECT_EQ((2 * a).to_seconds(), 6.0);
  EXPECT_EQ((a / 3).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1.0);
  t += Time::seconds(2.0);
  EXPECT_EQ(t, Time::seconds(3.0));
  t -= Time::seconds(0.5);
  EXPECT_EQ(t, Time::seconds(2.5));
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::millis(1.0), Time::millis(2.0));
  EXPECT_GT(Time::seconds(1.0), Time::millis(999.0));
  EXPECT_EQ(Time::micros(1000.0), Time::millis(1.0));
  EXPECT_LE(Time::zero(), Time::zero());
}

TEST(Time, MaxDominatesEverything) {
  EXPECT_GT(Time::max(), Time::seconds(1e9));
  EXPECT_GT(Time::max(), Time::zero());
}

TEST(Time, ScaledFraction) {
  EXPECT_EQ(Time::seconds(10.0).scaled(0.5), Time::seconds(5.0));
  EXPECT_EQ(Time::seconds(10.0).scaled(0.0), Time::zero());
  EXPECT_EQ(Time::seconds(1.0).scaled(1.25), Time::millis(1250.0));
}

TEST(Time, UnitAccessors) {
  const Time t = Time::millis(1500.0);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.to_micros(), 1'500'000.0);
}

TEST(Time, StrRendersSeconds) {
  EXPECT_EQ(Time::seconds(1.0).str().back(), 's');
}

// Exactness property: integer-nanosecond arithmetic never drifts.
class TimeExactness : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeExactness, RepeatedAdditionIsExact) {
  const std::int64_t step_ns = GetParam();
  Time t;
  for (int i = 0; i < 10000; ++i) t += Time::nanos(step_ns);
  EXPECT_EQ(t.ns(), step_ns * 10000);
}

INSTANTIATE_TEST_SUITE_P(Steps, TimeExactness,
                         ::testing::Values(1, 3, 7, 333, 999'999'937));

}  // namespace
}  // namespace wmn::sim
