#!/usr/bin/env python3
"""Unit tests for bench/perf_gate.py (time and counter gating).

Run directly or via ctest (registered in tests/CMakeLists.txt). Uses
only the standard library; perf_gate is imported from bench/ relative
to this file, so the test is location-independent.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys
import tempfile
import unittest

_GATE_PATH = pathlib.Path(__file__).resolve().parent.parent / "bench" / "perf_gate.py"
_SPEC = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_gate)


def summary(benchmarks: list[dict]) -> dict:
    return {
        "schema_version": perf_gate.SCHEMA_VERSION,
        "suite": "test",
        "benchmarks": benchmarks,
    }


def bench(name: str, real_time_ns: float, counters: dict | None = None) -> dict:
    return {
        "name": name,
        "iterations": 1,
        "real_time_ns": real_time_ns,
        "cpu_time_ns": real_time_ns,
        "counters": counters or {},
    }


class GateHarness(unittest.TestCase):
    def setUp(self) -> None:
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self.root = pathlib.Path(self._dir.name)

    def write(self, name: str, data: dict) -> str:
        path = self.root / name
        path.write_text(json.dumps(data), encoding="utf-8")
        return str(path)

    def run_gate(self, baseline: dict, current: dict,
                 extra_args: list[str] | None = None) -> int:
        base = self.write("baseline.json", baseline)
        cur = self.write("current.json", current)
        return perf_gate.main(["--baseline", base, *(extra_args or []), cur])


class TimeGate(GateHarness):
    def test_within_tolerance_passes(self) -> None:
        rc = self.run_gate(summary([bench("BM_A", 100.0)]),
                           summary([bench("BM_A", 110.0)]))
        self.assertEqual(rc, 0)

    def test_time_regression_fails(self) -> None:
        rc = self.run_gate(summary([bench("BM_A", 100.0)]),
                           summary([bench("BM_A", 200.0)]))
        self.assertEqual(rc, 1)

    def test_faster_than_baseline_passes(self) -> None:
        rc = self.run_gate(summary([bench("BM_A", 100.0)]),
                           summary([bench("BM_A", 10.0)]))
        self.assertEqual(rc, 0)

    def test_missing_benchmark_is_skipped(self) -> None:
        rc = self.run_gate(summary([bench("BM_A", 100.0), bench("BM_B", 50.0)]),
                           summary([bench("BM_A", 100.0)]))
        self.assertEqual(rc, 0)


class CounterGate(GateHarness):
    def test_counter_regression_fails(self) -> None:
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1000.0})]),
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1200.0})]))
        self.assertEqual(rc, 1)

    def test_counter_within_tolerance_passes(self) -> None:
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1000.0})]),
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1050.0})]))
        self.assertEqual(rc, 0)

    def test_counter_only_in_current_is_skipped(self) -> None:
        # A counter added by a new commit must not fail the gate until
        # it is rebaselined in.
        rc = self.run_gate(
            summary([bench("BM_A", 100.0)]),
            summary([bench("BM_A", 100.0, {"bytes_per_node": 9e9})]))
        self.assertEqual(rc, 0)

    def test_ungated_counter_ignored(self) -> None:
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"events/s": 100.0})]),
            summary([bench("BM_A", 100.0, {"events/s": 1.0}),]))
        self.assertEqual(rc, 0)

    def test_extra_gated_counter_via_flag(self) -> None:
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"sim_events": 100.0})]),
            summary([bench("BM_A", 100.0, {"sim_events": 300.0})]),
            extra_args=["--gate-counter", "sim_events"])
        self.assertEqual(rc, 1)

    def test_counter_tolerance_flag(self) -> None:
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1000.0})]),
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1200.0})]),
            extra_args=["--counter-tolerance", "0.5"])
        self.assertEqual(rc, 0)


class Markdown(GateHarness):
    def test_markdown_table_written(self) -> None:
        md = self.root / "summary.md"
        rc = self.run_gate(
            summary([bench("BM_A", 100.0, {"bytes_per_node": 1000.0})]),
            summary([bench("BM_A", 120.0, {"bytes_per_node": 1300.0})]),
            extra_args=["--markdown-out", str(md)])
        self.assertEqual(rc, 1)  # counter regressed
        text = md.read_text(encoding="utf-8")
        self.assertIn("| benchmark | baseline | current | delta | verdict |", text)
        self.assertIn("| BM_A |", text)
        self.assertIn("| BM_A [bytes_per_node] |", text)
        self.assertIn("REGRESSION", text)

    def test_markdown_appends(self) -> None:
        md = self.root / "summary.md"
        md.write_text("# existing step summary\n", encoding="utf-8")
        self.run_gate(summary([bench("BM_A", 100.0)]),
                      summary([bench("BM_A", 100.0)]),
                      extra_args=["--markdown-out", str(md)])
        text = md.read_text(encoding="utf-8")
        self.assertTrue(text.startswith("# existing step summary\n"))
        self.assertIn("Perf gate: baseline vs current", text)


class MinSpeedup(GateHarness):
    """--min-speedup gates a ratio of two current-run entries."""

    SLOW = "BM_Sharded/1/iterations:1"
    FAST = "BM_Sharded/8/iterations:1"

    def speedup_args(self, ratio: str) -> list[str]:
        return ["--min-speedup", self.SLOW, self.FAST, ratio]

    def test_speedup_met_passes(self) -> None:
        rc = self.run_gate(
            summary([]),
            summary([bench(self.SLOW, 800.0), bench(self.FAST, 200.0)]),
            extra_args=self.speedup_args("3.0"))
        self.assertEqual(rc, 0)

    def test_speedup_miss_fails(self) -> None:
        rc = self.run_gate(
            summary([]),
            summary([bench(self.SLOW, 400.0), bench(self.FAST, 200.0)]),
            extra_args=self.speedup_args("3.0"))
        self.assertEqual(rc, 1)

    def test_missing_entry_is_skipped(self) -> None:
        # The sharded bench may not run on every machine; an absent
        # entry must skip the spec, not fail the gate.
        rc = self.run_gate(
            summary([]),
            summary([bench(self.SLOW, 800.0)]),
            extra_args=self.speedup_args("3.0"))
        self.assertEqual(rc, 0)

    def test_speedup_composes_with_baseline_gate(self) -> None:
        # Same invocation gates baseline times and the speedup: a
        # baseline regression still fails even when the speedup holds.
        rc = self.run_gate(
            summary([bench("BM_A", 100.0)]),
            summary([bench("BM_A", 200.0), bench(self.SLOW, 800.0),
                     bench(self.FAST, 200.0)]),
            extra_args=self.speedup_args("3.0"))
        self.assertEqual(rc, 1)

    def test_bad_ratio_exits(self) -> None:
        with self.assertRaises(SystemExit):
            self.run_gate(
                summary([]),
                summary([bench(self.SLOW, 800.0), bench(self.FAST, 200.0)]),
                extra_args=self.speedup_args("fast"))

    def test_markdown_row_written(self) -> None:
        md = self.root / "summary.md"
        rc = self.run_gate(
            summary([]),
            summary([bench(self.SLOW, 400.0), bench(self.FAST, 200.0)]),
            extra_args=[*self.speedup_args("3.0"), "--markdown-out", str(md)])
        self.assertEqual(rc, 1)
        text = md.read_text(encoding="utf-8")
        self.assertIn(f"| speedup {self.SLOW} / {self.FAST} |", text)
        self.assertIn(">= 3x", text)
        self.assertIn("2.00x", text)
        self.assertIn("REGRESSION", text)


class Rebaseline(GateHarness):
    def test_rebaseline_merges_counters(self) -> None:
        base = self.write("baseline.json", summary([bench("BM_A", 100.0)]))
        cur = self.write(
            "current.json",
            summary([bench("BM_A", 90.0, {"bytes_per_node": 1000.0}),
                     bench("BM_B", 50.0)]))
        rc = perf_gate.main(["--baseline", base, "--rebaseline", cur])
        self.assertEqual(rc, 0)
        merged = json.loads(pathlib.Path(base).read_text(encoding="utf-8"))
        by_name = {b["name"]: b for b in merged["benchmarks"]}
        self.assertEqual(by_name["BM_A"]["real_time_ns"], 90.0)
        self.assertEqual(by_name["BM_A"]["counters"]["bytes_per_node"], 1000.0)
        self.assertIn("BM_B", by_name)


if __name__ == "__main__":
    unittest.main()
