// RTS/CTS handshake and NAV (virtual carrier sense).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/dcf_mac.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::mac {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct RtsBed {
  explicit RtsBed(std::vector<Vec2> positions, MacConfig mac_cfg,
                  std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      mob.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mob.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<DcfMac>(sim, mac_cfg, net::Address(id),
                                              *phys.back(), factory));
      rx_counts.push_back(0);
      macs.back()->set_rx_callback([this, i](net::Packet, net::Address) {
        ++rx_counts[i];
      });
    }
  }
  net::Packet packet(std::uint32_t bytes) { return factory.make(bytes, sim.now()); }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mob;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<DcfMac>> macs;
  std::vector<int> rx_counts;
};

MacConfig rts_on(std::uint32_t threshold = 100) {
  MacConfig cfg;
  cfg.rts_threshold_bytes = threshold;
  return cfg;
}

TEST(RtsCts, HandshakeDeliversLargeFrame) {
  RtsBed tb({{0, 0}, {150, 0}}, rts_on());
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(512), net::Address(1)); });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx_counts[1], 1);
  EXPECT_EQ(tb.macs[0]->counters().tx_rts, 1u);
  EXPECT_EQ(tb.macs[1]->counters().tx_cts, 1u);
  EXPECT_EQ(tb.macs[1]->counters().tx_acks, 1u);
  EXPECT_EQ(tb.macs[0]->counters().cts_timeouts, 0u);
}

TEST(RtsCts, SmallFramesSkipHandshake) {
  RtsBed tb({{0, 0}, {150, 0}}, rts_on(/*threshold=*/400));
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(64), net::Address(1)); });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx_counts[1], 1);
  EXPECT_EQ(tb.macs[0]->counters().tx_rts, 0u);
  EXPECT_EQ(tb.macs[1]->counters().tx_cts, 0u);
}

TEST(RtsCts, BroadcastNeverUsesRts) {
  RtsBed tb({{0, 0}, {150, 0}}, rts_on(/*threshold=*/1));
  tb.sim.schedule(sim::Time::zero(), [&] {
    tb.macs[0]->enqueue(tb.packet(512), net::Address::broadcast());
  });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx_counts[1], 1);
  EXPECT_EQ(tb.macs[0]->counters().tx_rts, 0u);
}

TEST(RtsCts, DefaultConfigNeverUsesRts) {
  RtsBed tb({{0, 0}, {150, 0}}, MacConfig{});
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(1500), net::Address(1)); });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx_counts[1], 1);
  EXPECT_EQ(tb.macs[0]->counters().tx_rts, 0u);
}

TEST(RtsCts, AbsentReceiverCausesCtsTimeoutsThenDrop) {
  RtsBed tb({{0, 0}, {150, 0}}, rts_on());
  bool failed = false;
  tb.macs[0]->set_tx_failed_callback(
      [&](net::Address, net::Packet) { failed = true; });
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(512), net::Address(42)); });
  tb.sim.run_until(sim::Time::seconds(5.0));
  EXPECT_TRUE(failed);
  EXPECT_EQ(tb.macs[0]->counters().cts_timeouts, 1u + MacConfig{}.retry_limit);
  // The cheap RTS probes, not the 512-byte payload, burned the retries.
  EXPECT_EQ(tb.macs[0]->counters().tx_data_unicast, 0u);
}

TEST(RtsCts, HiddenTerminalsResolvedByNav) {
  // Classic geometry: 0 and 2 are hidden from each other, both send
  // large frames to 1. With RTS/CTS, the CTS from node 1 silences the
  // other contender (NAV), so data frames stop colliding.
  RtsBed tb({{0, 0}, {245, 0}, {490, 0}}, rts_on());
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 15; ++i) {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
      tb.macs[2]->enqueue(tb.packet(512), net::Address(1));
    }
  });
  tb.sim.run_until(sim::Time::seconds(30.0));
  EXPECT_EQ(tb.rx_counts[1], 30);  // everything arrives
  EXPECT_GT(tb.macs[1]->counters().tx_cts, 0u);
}

TEST(RtsCts, HandshakeReducesDataCollisionsVsBasicAccess) {
  const std::vector<Vec2> hidden{{0, 0}, {245, 0}, {490, 0}};
  auto run = [&](MacConfig cfg) {
    RtsBed tb(hidden, cfg);
    tb.sim.schedule(sim::Time::zero(), [&] {
      for (int i = 0; i < 20; ++i) {
        tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
        tb.macs[2]->enqueue(tb.packet(512), net::Address(1));
      }
    });
    tb.sim.run_until(sim::Time::seconds(30.0));
    // Retries measure how often the exchange had to be repeated.
    return tb.macs[0]->counters().retries + tb.macs[2]->counters().retries;
  };
  const auto with_rts = run(rts_on());
  const auto without = run(MacConfig{});
  EXPECT_LT(with_rts, without);
}

TEST(RtsCts, ThirdPartyDefersDuringExchange) {
  // Node 2 hears node 1's CTS and must hold its own traffic while the
  // 0 <-> 1 exchange runs; its frame still gets through afterwards.
  RtsBed tb({{0, 0}, {150, 0}, {300, 0}}, rts_on());
  tb.sim.schedule(sim::Time::zero(), [&] {
    tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
    tb.macs[2]->enqueue(tb.packet(512), net::Address(1));
  });
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_EQ(tb.rx_counts[1], 2);
}

}  // namespace
}  // namespace wmn::mac
