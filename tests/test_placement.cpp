#include "mobility/placement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wmn::mobility {
namespace {

TEST(GridPlacement, ProducesRequestedCount) {
  for (std::size_t n : {1u, 2u, 7u, 16u, 50u, 100u, 250u}) {
    EXPECT_EQ(grid_placement(n, 1000.0, 1000.0).size(), n);
  }
}

TEST(GridPlacement, AllInsideArea) {
  const auto pts = grid_placement(100, 800.0, 600.0);
  for (const Vec2& p : pts) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 800.0);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 600.0);
  }
}

TEST(GridPlacement, PerfectSquareIsRegular) {
  const auto pts = grid_placement(4, 100.0, 100.0);
  // 2x2 grid with half-cell margins: (25,25) (75,25) (25,75) (75,75).
  EXPECT_DOUBLE_EQ(pts[0].x, 25.0);
  EXPECT_DOUBLE_EQ(pts[0].y, 25.0);
  EXPECT_DOUBLE_EQ(pts[3].x, 75.0);
  EXPECT_DOUBLE_EQ(pts[3].y, 75.0);
}

TEST(GridPlacement, NoDuplicatePositions) {
  const auto pts = grid_placement(100, 1000.0, 1000.0);
  std::set<std::pair<double, double>> seen;
  for (const Vec2& p : pts) seen.insert({p.x, p.y});
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(UniformPlacement, BoundsAndDeterminism) {
  sim::RngStream rng1(5, 0);
  sim::RngStream rng2(5, 0);
  const auto a = uniform_placement(200, 500.0, 300.0, rng1);
  const auto b = uniform_placement(200, 500.0, 300.0, rng2);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, 500.0);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LT(a[i].y, 300.0);
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(PerturbedGrid, StaysClampedToArea) {
  sim::RngStream rng(9, 0);
  const auto pts = perturbed_grid_placement(100, 1000.0, 1000.0, 500.0, rng);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1000.0);
  }
}

TEST(PerturbedGrid, JitterIsBounded) {
  sim::RngStream rng(9, 0);
  const auto base = grid_placement(100, 1000.0, 1000.0);
  const auto pts = perturbed_grid_placement(100, 1000.0, 1000.0, 30.0, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LE(std::abs(pts[i].x - base[i].x), 30.0 + 1e-9);
    EXPECT_LE(std::abs(pts[i].y - base[i].y), 30.0 + 1e-9);
  }
}

TEST(PerturbedGrid, ZeroJitterEqualsGrid) {
  sim::RngStream rng(9, 0);
  const auto base = grid_placement(36, 600.0, 600.0);
  const auto pts = perturbed_grid_placement(36, 600.0, 600.0, 0.0, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(pts[i], base[i]);
}

TEST(LinePlacement, EquallySpaced) {
  const auto pts = line_placement(5, 200.0, 50.0);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i].x, static_cast<double>(i) * 200.0);
    EXPECT_DOUBLE_EQ(pts[i].y, 50.0);
  }
}

}  // namespace
}  // namespace wmn::mobility
