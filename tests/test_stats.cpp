#include <cmath>
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "core/check.hpp"
#include "stats/confidence.hpp"
#include "stats/fairness.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace wmn::stats {
namespace {

TEST(Summary, MeanVarianceMinMax) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValueHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 5.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, BinsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bin_count(0), 10u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.6);
}

TEST(Histogram, UnderOverflowBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(0.5);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
}

TEST(Fairness, JainKnownValues) {
  const double xs_even[] = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(xs_even), 1.0);
  const double xs_one[] = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(xs_one), 0.25);  // 1/n
  const double xs_mixed[] = {1.0, 2.0, 3.0};
  // (6)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jain_index(xs_mixed), 36.0 / 42.0, 1e-12);
}

TEST(Fairness, JainDegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Fairness, PeakToMean) {
  const double xs[] = {1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(peak_to_mean(xs), 2.0);
  const double even[] = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(peak_to_mean(even), 1.0);
}

TEST(Fairness, SingleElementIsPerfectlyFair) {
  const double one[] = {7.0};
  EXPECT_DOUBLE_EQ(jain_index(one), 1.0);
  EXPECT_DOUBLE_EQ(peak_to_mean(one), 1.0);
  EXPECT_DOUBLE_EQ(load_variance(one), 0.0);
}

TEST(Fairness, NegativeLoadGuardedAndClampedToZero) {
  // Loads must be non-negative; under kLogAndCount a negative element
  // is counted as a violation and treated as zero, keeping the indices
  // inside their documented ranges.
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  core::reset_check_violations();
  const double xs[] = {4.0, -4.0, 4.0};
  EXPECT_DOUBLE_EQ(jain_index(xs), 4.0 / 6.0);  // == {4, 0, 4}
  EXPECT_DOUBLE_EQ(peak_to_mean(xs), 1.5);
  EXPECT_DOUBLE_EQ(load_variance(xs),
                   load_variance(std::array{4.0, 0.0, 4.0}));
  EXPECT_GE(core::check_violations(), 3u);  // one per function at least
  core::reset_check_violations();
  core::set_check_policy(core::CheckPolicy::kAbort);
}

TEST(Fairness, LoadVarianceKnownValues) {
  EXPECT_DOUBLE_EQ(load_variance({}), 0.0);
  const double even[] = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(load_variance(even), 0.0);
  const double xs[] = {2.0, 4.0, 6.0};
  // Population variance about mean 4: (4 + 0 + 4) / 3.
  EXPECT_NEAR(load_variance(xs), 8.0 / 3.0, 1e-12);
  // Hotspot collapse: same total load, one gateway takes everything.
  const double hot[] = {12.0, 0.0, 0.0};
  EXPECT_GT(load_variance(hot), load_variance(xs));
  EXPECT_LT(jain_index(hot), jain_index(xs));
}

TEST(Confidence, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(9), 2.262, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
}

TEST(Confidence, KnownInterval) {
  // n=4, mean 10, sd 2 => hw = 3.182 * 2 / 2 = 3.182.
  const double xs[] = {8.0, 9.0, 11.0, 12.0};
  const auto ci = mean_ci_95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  EXPECT_NEAR(ci.half_width, 3.182 * std::sqrt(10.0 / 3.0) / 2.0, 1e-3);
  EXPECT_LT(ci.lo(), ci.mean);
  EXPECT_GT(ci.hi(), ci.mean);
}

TEST(Confidence, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_ci_95({}).mean, 0.0);
  const double one[] = {5.0};
  const auto ci = mean_ci_95(one);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream oss;
  t.write_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace wmn::stats
