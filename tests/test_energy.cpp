// Radio energy model accounting.
#include <gtest/gtest.h>

#include <memory>

#include "exp/scenario.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::phy {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct EnergyBed {
  explicit EnergyBed(std::vector<Vec2> positions)
      : sim(1), channel(sim, std::make_unique<LogDistanceModel>()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mob.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<WifiPhy>(
          sim, PhyConfig{}, static_cast<std::uint32_t>(i), mob.back().get()));
      channel.attach(phys.back().get());
    }
  }
  net::Packet packet(std::uint32_t bytes) { return factory.make(bytes, sim.now()); }

  sim::Simulator sim;
  WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mob;
  std::vector<std::unique_ptr<WifiPhy>> phys;
};

TEST(Energy, IdleRadioDrawsIdlePower) {
  EnergyBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::seconds(10.0), [] {});
  tb.sim.run();
  const PhyConfig cfg;
  EXPECT_NEAR(tb.phys[0]->energy_joules(), cfg.power_idle_w * 10.0, 1e-9);
}

TEST(Energy, TransmissionCostsTxMinusIdleDelta) {
  EnergyBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(512)); });
  tb.sim.schedule(sim::Time::seconds(10.0), [] {});
  tb.sim.run();
  const PhyConfig cfg;
  const double air_s = tb.phys[0]->tx_duration(512).to_seconds();
  const double expected =
      cfg.power_idle_w * (10.0 - air_s) + cfg.power_tx_w * air_s;
  EXPECT_NEAR(tb.phys[0]->energy_joules(), expected, 1e-9);
}

TEST(Energy, ReceptionCostsRxMinusIdleDelta) {
  EnergyBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] { tb.phys[0]->send(tb.packet(512)); });
  tb.sim.schedule(sim::Time::seconds(10.0), [] {});
  tb.sim.run();
  const PhyConfig cfg;
  const double air_s = tb.phys[1]->counters().rx_airtime.to_seconds();
  EXPECT_GT(air_s, 0.0);
  const double expected =
      cfg.power_idle_w * (10.0 - air_s) + cfg.power_rx_w * air_s;
  EXPECT_NEAR(tb.phys[1]->energy_joules(), expected, 1e-6);
}

TEST(Energy, MonotoneOverTime) {
  EnergyBed tb({{0, 0}, {150, 0}});
  std::vector<double> samples;
  for (int t = 1; t <= 5; ++t) {
    tb.sim.schedule_at(sim::Time::seconds(static_cast<double>(t)), [&] {
      samples.push_back(tb.phys[0]->energy_joules());
    });
  }
  tb.sim.schedule(sim::Time::millis(500.0),
                  [&] { tb.phys[0]->send(tb.packet(256)); });
  tb.sim.run();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i], samples[i - 1]);
  }
}

TEST(Energy, ScenarioMetricsExposeEnergy) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 16;
  cfg.area_width_m = 500.0;
  cfg.area_height_m = 500.0;
  cfg.traffic.n_flows = 3;
  cfg.warmup = sim::Time::seconds(2.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.seed = 4;
  exp::Scenario s(cfg);
  s.run();
  const exp::RunMetrics m = s.metrics();
  EXPECT_GT(m.total_energy_j, 0.0);
  EXPECT_NEAR(m.mean_node_energy_j, m.total_energy_j / 16.0, 1e-9);
  EXPECT_GT(m.energy_mj_per_kbit, 0.0);
  // Sanity scale: 16 radios for 12 s at ~0.8-1.4 W each.
  EXPECT_GT(m.total_energy_j, 16 * 0.8 * 11.0);
  EXPECT_LT(m.total_energy_j, 16 * 1.5 * 13.0);
}

TEST(Energy, BusierProtocolBurnsMore) {
  // Same scenario, higher offered load -> more TX/RX time -> more energy.
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 16;
  cfg.area_width_m = 500.0;
  cfg.area_height_m = 500.0;
  cfg.traffic.n_flows = 3;
  cfg.warmup = sim::Time::seconds(2.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.seed = 4;

  cfg.traffic.rate_pps = 1.0;
  exp::Scenario light(cfg);
  light.run();
  cfg.traffic.rate_pps = 20.0;
  exp::Scenario heavy(cfg);
  heavy.run();
  EXPECT_GT(heavy.metrics().total_energy_j, light.metrics().total_energy_j);
}

}  // namespace
}  // namespace wmn::phy
