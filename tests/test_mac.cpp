#include "mac/dcf_mac.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"

namespace wmn::mac {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct MacBed {
  explicit MacBed(std::vector<Vec2> positions, MacConfig mac_cfg = {},
                  std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      mobilities.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<DcfMac>(sim, mac_cfg, net::Address(id),
                                              *phys.back(), factory));
      rx.emplace_back();
      failures.emplace_back();
      successes.emplace_back();
      // Capture this+index, not element references: the log vectors
      // reallocate as nodes are added.
      macs.back()->set_rx_callback(
          [this, i](net::Packet p, net::Address src) {
            rx[i].push_back({std::move(p), src});
          });
      macs.back()->set_tx_failed_callback(
          [this, i](net::Address dst, net::Packet p) {
            failures[i].push_back({dst, std::move(p)});
          });
      macs.back()->set_tx_ok_callback(
          [this, i](net::Address dst) { successes[i].push_back(dst); });
    }
  }

  net::Packet packet(std::uint32_t bytes) { return factory.make(bytes, sim.now()); }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<DcfMac>> macs;
  std::vector<std::vector<std::pair<net::Packet, net::Address>>> rx;
  std::vector<std::vector<std::pair<net::Address, net::Packet>>> failures;
  std::vector<std::vector<net::Address>> successes;
};

TEST(DcfMac, UnicastDeliversAndAcks) {
  MacBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(512), net::Address(1)); });
  tb.sim.run_until(sim::Time::seconds(1.0));
  ASSERT_EQ(tb.rx[1].size(), 1u);
  EXPECT_EQ(tb.rx[1][0].second, net::Address(0));
  EXPECT_EQ(tb.successes[0].size(), 1u);
  EXPECT_TRUE(tb.failures[0].empty());
  EXPECT_EQ(tb.macs[1]->counters().tx_acks, 1u);
  EXPECT_EQ(tb.macs[0]->counters().tx_data_unicast, 1u);
}

TEST(DcfMac, UnicastToAbsentNodeFailsAfterRetries) {
  MacBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(512), net::Address(77)); });
  tb.sim.run_until(sim::Time::seconds(5.0));
  ASSERT_EQ(tb.failures[0].size(), 1u);
  EXPECT_EQ(tb.failures[0][0].first, net::Address(77));
  EXPECT_EQ(tb.macs[0]->counters().retry_drops, 1u);
  // retry_limit retries beyond the first attempt.
  EXPECT_EQ(tb.macs[0]->counters().retries, MacConfig{}.retry_limit);
  // The failed packet is returned intact (512-byte payload).
  EXPECT_EQ(tb.failures[0][0].second.size_bytes(), 512u);
}

TEST(DcfMac, BroadcastHasNoAckNoRetry) {
  MacBed tb({{0, 0}, {150, 0}, {150, 100}});
  tb.sim.schedule(sim::Time::zero(), [&] {
    tb.macs[0]->enqueue(tb.packet(64), net::Address::broadcast());
  });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx[1].size(), 1u);
  EXPECT_EQ(tb.rx[2].size(), 1u);
  EXPECT_EQ(tb.macs[0]->counters().tx_data_broadcast, 1u);
  EXPECT_EQ(tb.macs[0]->counters().retries, 0u);
  EXPECT_EQ(tb.macs[1]->counters().tx_acks, 0u);
  EXPECT_EQ(tb.macs[2]->counters().tx_acks, 0u);
}

TEST(DcfMac, QueueOverflowDrops) {
  MacConfig cfg;
  cfg.queue_capacity = 3;
  MacBed tb({{0, 0}, {150, 0}}, cfg);
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 10; ++i) {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
    }
  });
  tb.sim.run_until(sim::Time::seconds(5.0));
  EXPECT_GT(tb.macs[0]->counters().queue_drops, 0u);
  // Everything accepted must eventually be delivered.
  EXPECT_EQ(tb.rx[1].size(), tb.macs[0]->counters().enqueued);
}

TEST(DcfMac, ManyFramesAllDelivered) {
  MacBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 40; ++i) {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
    }
  });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.rx[1].size(), 40u);
  EXPECT_EQ(tb.successes[0].size(), 40u);
}

TEST(DcfMac, BidirectionalTrafficCompletes) {
  MacBed tb({{0, 0}, {150, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 20; ++i) {
      tb.macs[0]->enqueue(tb.packet(256), net::Address(1));
      tb.macs[1]->enqueue(tb.packet(256), net::Address(0));
    }
  });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.rx[1].size(), 20u);
  EXPECT_EQ(tb.rx[0].size(), 20u);
}

TEST(DcfMac, HiddenTerminalsEventuallyDeliverViaRetries) {
  // 0 and 2 cannot hear each other (480+ m apart) but both reach 1:
  // the classic hidden-terminal geometry. Retries must recover most
  // frames even though first attempts collide.
  MacBed tb({{0, 0}, {245, 0}, {490, 0}});
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 10; ++i) {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
      tb.macs[2]->enqueue(tb.packet(512), net::Address(1));
    }
  });
  tb.sim.run_until(sim::Time::seconds(30.0));
  EXPECT_GT(tb.macs[0]->counters().retries + tb.macs[2]->counters().retries, 0u);
  EXPECT_GE(tb.rx[1].size(), 16u);  // most of the 20 make it
}

TEST(DcfMac, OverhearsButDoesNotDeliverForeignUnicast) {
  MacBed tb({{0, 0}, {150, 0}, {75, 60}});
  tb.sim.schedule(sim::Time::zero(),
                  [&] { tb.macs[0]->enqueue(tb.packet(128), net::Address(1)); });
  tb.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_EQ(tb.rx[1].size(), 1u);
  EXPECT_TRUE(tb.rx[2].empty());
  EXPECT_GT(tb.macs[2]->counters().rx_overheard, 0u);
}

TEST(DcfMac, QueueRatioReflectsBacklog) {
  MacConfig cfg;
  cfg.queue_capacity = 10;
  MacBed tb({{0, 0}, {150, 0}}, cfg);
  EXPECT_DOUBLE_EQ(tb.macs[0]->queue_ratio(), 0.0);
  tb.sim.schedule(sim::Time::zero(), [&] {
    for (int i = 0; i < 5; ++i) {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
    }
    EXPECT_DOUBLE_EQ(tb.macs[0]->queue_ratio(), 0.5);
  });
  tb.sim.run_until(sim::Time::seconds(5.0));
  EXPECT_DOUBLE_EQ(tb.macs[0]->queue_ratio(), 0.0);
}

TEST(DcfMac, BusyRatioRisesUnderSaturation) {
  MacBed tb({{0, 0}, {150, 0}});
  // Saturate: a packet every 2 ms for 2 seconds (~2.2 ms air time each).
  for (int i = 0; i < 1000; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 2.0), [&] {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(1));
    });
  }
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_GT(tb.macs[1]->busy_ratio(), 0.5);  // neighbour sees busy air
}

TEST(DcfMac, FairnessBothSaturatedSendersShareChannel) {
  MacBed tb({{0, 0}, {100, 0}, {50, 80}});
  // Nodes 0 and 1 both saturate toward node 2.
  for (int i = 0; i < 500; ++i) {
    tb.sim.schedule_at(sim::Time::millis(i * 4.0), [&] {
      tb.macs[0]->enqueue(tb.packet(512), net::Address(2));
      tb.macs[1]->enqueue(tb.packet(512), net::Address(2));
    });
  }
  tb.sim.run_until(sim::Time::seconds(6.0));
  const auto d0 = static_cast<double>(tb.macs[0]->counters().tx_data_unicast);
  const auto d1 = static_cast<double>(tb.macs[1]->counters().tx_data_unicast);
  EXPECT_GT(d0, 0.0);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(std::abs(d0 - d1) / std::max(d0, d1), 0.3);  // within 30%
}

}  // namespace
}  // namespace wmn::mac
