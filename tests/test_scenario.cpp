// Scenario facade + sweep layer integration tests. These are the
// heaviest tests (full simulations), so the topologies are kept small.
#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/sweep.hpp"

namespace wmn::exp {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.n_nodes = 25;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.traffic.n_flows = 4;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(10.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Scenario, RunsAndDeliversTraffic) {
  Scenario s(small_config());
  s.run();
  const RunMetrics m = s.metrics();
  EXPECT_GT(m.data_sent, 30u);
  EXPECT_GT(m.pdr, 0.6);
  EXPECT_LE(m.pdr, 1.0);
  EXPECT_GT(m.mean_delay_ms, 0.0);
  EXPECT_GT(m.throughput_kbps, 0.0);
  EXPECT_GT(m.hello_tx, 0u);
  EXPECT_GT(m.control_tx, m.hello_tx);
}

TEST(Scenario, SameSeedIsBitReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Scenario s(small_config(seed));
    s.run();
    return s.metrics();
  };
  const RunMetrics a = run_once(5);
  const RunMetrics b = run_once(5);
  EXPECT_EQ(a.data_sent, b.data_sent);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.rreq_tx, b.rreq_tx);
  EXPECT_EQ(a.control_tx, b.control_tx);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_DOUBLE_EQ(a.sim_event_count, b.sim_event_count);
}

TEST(Scenario, DifferentSeedsDiffer) {
  Scenario a(small_config(1));
  a.run();
  Scenario b(small_config(2));
  b.run();
  EXPECT_NE(a.metrics().sim_event_count, b.metrics().sim_event_count);
}

TEST(Scenario, ConservationDeliveredNeverExceedsSent) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Scenario s(small_config(seed));
    s.run();
    const RunMetrics m = s.metrics();
    EXPECT_LE(m.data_delivered, m.data_sent);
  }
}

TEST(Scenario, FlowPairsMatchTrafficSpec) {
  ScenarioConfig cfg = small_config();
  cfg.traffic.n_flows = 6;
  Scenario s(cfg);
  EXPECT_EQ(s.flow_pairs().size(), 6u);
  for (const auto& [src, dst] : s.flow_pairs()) {
    EXPECT_LT(src, cfg.n_nodes);
    EXPECT_LT(dst, cfg.n_nodes);
    EXPECT_NE(src, dst);
  }
}

TEST(Scenario, GatewayTrafficTargetsNearestGateway) {
  ScenarioConfig cfg = small_config();
  cfg.traffic.pattern = TrafficSpec::Pattern::kGateway;
  cfg.traffic.n_gateways = 2;
  cfg.traffic.n_flows = 6;
  Scenario s(cfg);
  const auto& gws = s.gateways();
  ASSERT_EQ(gws.size(), 2u);
  EXPECT_NE(gws[0], gws[1]);
  for (const auto& [src, dst] : s.flow_pairs()) {
    // Every flow targets a gateway, and no gateway sources a flow.
    EXPECT_NE(std::find(gws.begin(), gws.end(), dst), gws.end());
    EXPECT_EQ(std::find(gws.begin(), gws.end(), src), gws.end());
  }
}

TEST(Scenario, ShadowingConfigurationRuns) {
  ScenarioConfig cfg = small_config();
  cfg.shadowing_sigma_db = 4.0;
  Scenario s(cfg);
  s.run();
  // Shadowing perturbs links but the mesh must still mostly work.
  EXPECT_GT(s.metrics().pdr, 0.3);
}

TEST(Scenario, ShadowingIsSeedDeterministic) {
  ScenarioConfig cfg = small_config(77);
  cfg.shadowing_sigma_db = 6.0;
  Scenario a(cfg);
  a.run();
  Scenario b(cfg);
  b.run();
  EXPECT_EQ(a.metrics().sim_event_count, b.metrics().sim_event_count);
}

TEST(Scenario, PoissonOnOffTrafficRuns) {
  ScenarioConfig cfg = small_config();
  cfg.traffic.model = TrafficSpec::Model::kPoissonOnOff;
  Scenario s(cfg);
  s.run();
  const RunMetrics m = s.metrics();
  EXPECT_GT(m.data_sent, 0u);
  EXPECT_LE(m.data_delivered, m.data_sent);
}

TEST(Scenario, RtsConfigurationRuns) {
  ScenarioConfig cfg = small_config();
  cfg.mac.rts_threshold_bytes = 256;
  Scenario s(cfg);
  s.run();
  EXPECT_GT(s.metrics().pdr, 0.5);
  // RTS frames actually flowed for the 512-byte data packets.
  std::uint64_t rts = 0;
  for (std::size_t i = 0; i < s.node_count(); ++i) {
    rts += s.node_mac(i).counters().tx_rts;
  }
  EXPECT_GT(rts, 0u);
}

TEST(Scenario, MobileConfigurationRuns) {
  ScenarioConfig cfg = small_config();
  cfg.mobility.max_speed_mps = 10.0;
  Scenario s(cfg);
  s.run();
  EXPECT_GT(s.metrics().data_sent, 0u);
}

TEST(Scenario, ComponentAccessorsExposeStacks) {
  Scenario s(small_config());
  EXPECT_EQ(s.node_count(), 25u);
  EXPECT_EQ(s.agent(3).address(), net::Address(3));
  EXPECT_EQ(s.node_mac(3).address(), net::Address(3));
  EXPECT_EQ(s.node_phy(3).node_id(), 3u);
  EXPECT_EQ(s.channel().radio_count(), 25u);
}

// Every protocol must run end-to-end on the same scenario.
class ScenarioPerProtocol : public ::testing::TestWithParam<core::Protocol> {};

TEST_P(ScenarioPerProtocol, DeliversTraffic) {
  ScenarioConfig cfg = small_config();
  cfg.protocol = GetParam();
  Scenario s(cfg);
  s.run();
  const RunMetrics m = s.metrics();
  EXPECT_GT(m.pdr, 0.5) << core::protocol_name(GetParam());
  EXPECT_GT(m.discoveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ScenarioPerProtocol,
    ::testing::ValuesIn(core::all_protocols()),
    [](const ::testing::TestParamInfo<core::Protocol>& param_info) {
      std::string n = core::protocol_name(param_info.param);
      for (char& ch : n) {
        if (ch == '-' || ch == '(' || ch == ')' || ch == '.' || ch == '=') {
          ch = '_';
        }
      }
      return n;
    });

// ----- sweep layer -----------------------------------------------------------

TEST(Sweep, ReplicationsUseDistinctDerivedSeeds) {
  // Seeds come from the pure (base, point, rep) derivation, not from
  // base+i counting — so they are independent of thread scheduling and
  // never collide with a neighbouring sweep point's seeds.
  const auto reps = run_replications(small_config(10), 3, 3);
  ASSERT_EQ(reps.size(), 3u);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_EQ(reps[i].seed, replication_seed(10, 0, i));
  }
  EXPECT_NE(reps[0].seed, reps[1].seed);
  EXPECT_NE(reps[1].seed, reps[2].seed);
  EXPECT_NE(reps[0].sim_event_count, reps[1].sim_event_count);
}

TEST(Sweep, ParallelMatchesSerial) {
  const auto serial = run_replications(small_config(20), 4, 1);
  const auto parallel = run_replications(small_config(20), 4, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].data_sent, parallel[i].data_sent);
    EXPECT_EQ(serial[i].data_delivered, parallel[i].data_delivered);
    EXPECT_EQ(serial[i].control_tx, parallel[i].control_tx);
    EXPECT_DOUBLE_EQ(serial[i].mean_delay_ms, parallel[i].mean_delay_ms);
  }
}

TEST(Sweep, CiAggregatesMetric) {
  const auto reps = run_replications(small_config(30), 3, 3);
  const auto c = ci(reps, [](const RunMetrics& m) { return m.pdr; });
  EXPECT_GT(c.mean, 0.5);
  EXPECT_LE(c.mean, 1.0);
  EXPECT_GE(c.half_width, 0.0);
}

TEST(ParallelMap, PreservesOrderAndCoversAll) {
  const auto out =
      parallel_map(100, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleThreadFallback) {
  const auto out = parallel_map(5, 1, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(ParallelMap, EmptyInput) {
  const auto out = parallel_map(0, 4, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace wmn::exp
