#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace wmn::sim {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngStream, SameSeedSameStreamIdentical) {
  RngStream a(42, 7);
  RngStream b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(RngStream, DifferentStreamIdsIndependent) {
  RngStream a(42, 1);
  RngStream b(42, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngStream, AdjacentStreamIdsDecorrelated) {
  // Mean of XOR-popcount between adjacent streams should be ~32.
  RngStream a(99, 1000);
  RngStream b(99, 1001);
  double popcount_sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    popcount_sum += static_cast<double>(std::popcount(a.bits() ^ b.bits()));
  }
  EXPECT_NEAR(popcount_sum / n, 32.0, 1.0);
}

TEST(RngStream, Uniform01InRange) {
  RngStream r(1, 1);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, Uniform01MeanAndVariance) {
  RngStream r(5, 5);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngStream, UniformU64CoversInclusiveRange) {
  RngStream r(3, 3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.uniform_u64(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit in 1000 draws
}

TEST(RngStream, UniformU64DegenerateRange) {
  RngStream r(3, 4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_u64(7, 7), 7u);
}

TEST(RngStream, UniformI64NegativeRange) {
  RngStream r(3, 5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngStream, BernoulliEdgeCases) {
  RngStream r(1, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.3));
    EXPECT_TRUE(r.bernoulli(1.7));
  }
}

TEST(RngStream, BernoulliFrequency) {
  RngStream r(1, 10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngStream, ExponentialMean) {
  RngStream r(1, 11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngStream, ExponentialNonNegative) {
  RngStream r(1, 12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(RngStream, NormalMoments) {
  RngStream r(1, 13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngStream, ParetoAboveScale) {
  RngStream r(1, 14);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 1.5);
}

TEST(RngStream, IndexWithinBounds) {
  RngStream r(1, 15);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.index(17), 17u);
}

// Property sweep: determinism holds for arbitrary (seed, stream) pairs.
class RngDeterminism
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(RngDeterminism, ReplaysExactly) {
  const auto [seed, stream] = GetParam();
  RngStream a(seed, stream);
  std::vector<double> first;
  for (int i = 0; i < 100; ++i) first.push_back(a.uniform01());
  RngStream b(seed, stream);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(first[static_cast<size_t>(i)], b.uniform01());
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RngDeterminism,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 0},
                      std::pair<std::uint64_t, std::uint64_t>{1, 0},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{42, 42},
                      std::pair<std::uint64_t, std::uint64_t>{~0ULL, 17}));

}  // namespace
}  // namespace wmn::sim
