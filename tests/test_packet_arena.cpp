#include "net/packet_arena.hpp"

// This TU replaces global operator new/delete with a counting pair that
// GCC can see call std::free. Its interprocedural use-after-free pass
// then flags every `delete this` + member-read sequence in the inlined
// arena refcounting as a use after free, and the optional<Packet>
// move-out below as maybe-uninitialized — both false positives unique
// to this TU's visible allocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuse-after-free"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "exp/scenario.hpp"
#include "mac/mac_header.hpp"
#include "net/packet.hpp"
#include "routing/messages.hpp"

namespace wmn::net {
namespace {

// Global operator-new hook (counting only) so tests can assert that a
// warmed-up arena serves the packet hot path without heap traffic.
std::size_t g_new_calls = 0;

struct AllocationCounter {
  std::size_t start;
  AllocationCounter() : start(g_new_calls) {}
  std::size_t count() const { return g_new_calls - start; }
};

}  // namespace
}  // namespace wmn::net

void* operator new(std::size_t size) {
  ++wmn::net::g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++wmn::net::g_new_calls;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace wmn::net {
namespace {

TEST(PacketArena, StartsEmpty) {
  PacketFactory factory;
  const PacketArena& arena = factory.arena();
  EXPECT_EQ(arena.chunk_count(), 0u);
  EXPECT_EQ(arena.capacity_nodes(), 0u);
  EXPECT_EQ(arena.live_nodes(), 0u);
}

TEST(PacketArena, HeaderPushGrowsOneChunk) {
  PacketFactory factory;
  Packet p = factory.make(512, sim::Time::zero());
  p.push(routing::DataHeader{});
  const PacketArena& arena = factory.arena();
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.capacity_nodes(), PacketArena::kNodesPerChunk);
  EXPECT_EQ(arena.live_nodes(), 1u);
}

TEST(PacketArena, PopReturnsNodeToFreeList) {
  PacketFactory factory;
  Packet p = factory.make(512, sim::Time::zero());
  p.push(routing::DataHeader{});
  p.push(mac::MacHeader{});
  EXPECT_EQ(factory.arena().live_nodes(), 2u);
  p.pop<mac::MacHeader>();
  EXPECT_EQ(factory.arena().live_nodes(), 1u);
  p.pop<routing::DataHeader>();
  EXPECT_EQ(factory.arena().live_nodes(), 0u);
  // The nodes went back to the free list, not to the heap.
  EXPECT_EQ(factory.arena().capacity_nodes(), PacketArena::kNodesPerChunk);
}

TEST(PacketArena, FreeListRecyclesNodes) {
  PacketFactory factory;
  // Churn far more headers than one chunk holds; recycling must keep
  // the arena at a single chunk.
  for (int i = 0; i < 10'000; ++i) {
    Packet p = factory.make(512, sim::Time::zero());
    p.push(routing::DataHeader{});
    p.push(mac::MacHeader{});
    p.pop<mac::MacHeader>();
    p.pop<routing::DataHeader>();
  }
  EXPECT_EQ(factory.arena().chunk_count(), 1u);
  EXPECT_EQ(factory.arena().live_nodes(), 0u);
  EXPECT_EQ(factory.arena().allocations(), 20'000u);
}

TEST(PacketArena, SteadyStateChurnDoesNotAllocate) {
  PacketFactory factory;
  {
    // Warm-up: force the chunk into existence.
    Packet p = factory.make(512, sim::Time::zero());
    p.push(routing::DataHeader{});
  }
  AllocationCounter allocs;
  for (int i = 0; i < 1'000; ++i) {
    Packet p = factory.make(512, sim::Time::zero());
    p.push(routing::DataHeader{});
    p.push(mac::MacHeader{});
    Packet copy = p;
    copy.pop<mac::MacHeader>();
    copy.pop<routing::DataHeader>();
  }
  EXPECT_EQ(allocs.count(), 0u)
      << "warm arena churn (make/push/copy/pop) must not hit the heap";
}

TEST(PacketArena, CopySharesNodesWithoutAllocating) {
  PacketFactory factory;
  Packet p = factory.make(512, sim::Time::zero());
  p.push(routing::DataHeader{});
  p.push(mac::MacHeader{});
  EXPECT_EQ(factory.arena().live_nodes(), 2u);
  {
    AllocationCounter allocs;
    Packet copy = p;
    EXPECT_EQ(allocs.count(), 0u) << "broadcast fan-out copy must be O(1)";
    // Shared, not duplicated.
    EXPECT_EQ(factory.arena().live_nodes(), 2u);
    EXPECT_EQ(copy.header_count(), 2u);
    EXPECT_EQ(copy.peek<mac::MacHeader>().seq, p.peek<mac::MacHeader>().seq);
  }
  // Copy death must not free nodes the original still references.
  EXPECT_EQ(factory.arena().live_nodes(), 2u);
  EXPECT_EQ(p.header_count(), 2u);
}

TEST(PacketArena, DivergingCopiesKeepIndependentStacks) {
  PacketFactory factory;
  Packet p = factory.make(256, sim::Time::zero());
  routing::DataHeader data{};
  data.ttl = 7;
  p.push(data);
  Packet copy = p;
  copy.pop<routing::DataHeader>();  // copy diverges
  EXPECT_EQ(copy.header_count(), 0u);
  ASSERT_EQ(p.header_count(), 1u);
  EXPECT_EQ(p.peek<routing::DataHeader>().ttl, 7u);
  // The popped node is still live because `p` references it.
  EXPECT_EQ(factory.arena().live_nodes(), 1u);
}

TEST(PacketArena, ArenaOutlivesPacketsAfterFactoryDeath) {
  std::optional<Packet> survivor;
  {
    PacketFactory factory;
    Packet p = factory.make(128, sim::Time::zero());
    p.push(routing::DataHeader{});
    survivor.emplace(std::move(p));
  }
  // Factory is gone; the refcounted arena must still back the packet.
  ASSERT_EQ(survivor->header_count(), 1u);
  EXPECT_EQ(survivor->size_bytes(), 128u + routing::DataHeader::kWireSize);
  survivor.reset();  // last reference frees the arena
}

// Pool reuse must be invisible to simulation results: two back-to-back
// runs in one process (second run reuses pooled arenas/slots) must
// fingerprint identically to a fresh first run.
TEST(PacketArena, PoolReuseAcrossRunsKeepsFingerprint) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 25;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.traffic.n_flows = 3;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(1.0);
  cfg.traffic_time = sim::Time::seconds(4.0);
  cfg.seed = 4242;

  auto run_fingerprint = [&cfg] {
    exp::Scenario s(cfg);
    s.run();
    return exp::fingerprint(s.metrics());
  };
  const std::uint64_t first = run_fingerprint();
  const std::uint64_t second = run_fingerprint();
  EXPECT_EQ(first, second)
      << "recycled arena state leaked into simulation results";
}

}  // namespace
}  // namespace wmn::net
