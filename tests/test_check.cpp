// CheckPolicy coverage: proves the invariant layer is live in the
// build type the experiments actually use. This test deliberately has
// no NDEBUG guards — if WMN_CHECK ever compiled out the way assert()
// does, the death tests below would fail in RelWithDebInfo and Release.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/check.hpp"

namespace wmn {
namespace {

// Restores the abort policy and a clean counter around each test so
// the global check state never leaks between tests.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::set_check_policy(core::CheckPolicy::kAbort);
    core::reset_check_violations();
  }
  void TearDown() override {
    core::set_check_policy(core::CheckPolicy::kAbort);
    core::reset_check_violations();
  }
};

using CheckDeathTest = CheckTest;

TEST_F(CheckTest, PassingCheckIsSilent) {
  WMN_CHECK(1 + 1 == 2, "arithmetic holds");
  WMN_CHECK_EQ(4, 4, "equal");
  WMN_CHECK_NE(4, 5, "not equal");
  WMN_CHECK_GE(5, 5, "greater-equal");
  WMN_CHECK_GT(6, 5, "greater");
  WMN_CHECK_LE(5, 5, "less-equal");
  WMN_CHECK_LT(4, 5, "less");
  const int x = 3;
  WMN_CHECK_NOTNULL(&x, "stack address");
  EXPECT_EQ(core::check_violations(), 0u);
}

TEST_F(CheckDeathTest, FailingCheckAbortsInThisBuildType) {
  // The core of the PR: this fires in Release/RelWithDebInfo, where
  // assert() would have been compiled out.
  EXPECT_DEATH(WMN_CHECK(false, "must abort under kAbort"), "must abort");
}

TEST_F(CheckDeathTest, ComparisonCheckAbortsAndNamesOperands) {
  EXPECT_DEATH(WMN_CHECK_GE(1, 2, "ordering broken"), "1 >= 2");
}

TEST_F(CheckDeathTest, UnreachableTerminatesUnderAbortPolicy) {
  EXPECT_DEATH(WMN_UNREACHABLE("impossible state"), "impossible state");
}

TEST_F(CheckDeathTest, UnreachableTerminatesEvenUnderLogAndCount) {
  // WMN_UNREACHABLE ignores the policy: there is no state to continue
  // from.
  EXPECT_DEATH(
      {
        core::set_check_policy(core::CheckPolicy::kLogAndCount);
        WMN_UNREACHABLE("impossible state");
      },
      "impossible state");
}

TEST_F(CheckTest, LogAndCountContinuesAndCounts) {
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  EXPECT_EQ(core::check_violations(), 0u);
  WMN_CHECK(false, "counted, not fatal");
  WMN_CHECK_EQ(1, 2, "also counted");
  // Reaching this line at all proves the policy did not abort.
  EXPECT_EQ(core::check_violations(), 2u);
  WMN_CHECK(true, "passing checks do not count");
  EXPECT_EQ(core::check_violations(), 2u);
}

TEST_F(CheckTest, ResetClearsTheCounter) {
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  WMN_CHECK(false, "one violation");
  EXPECT_EQ(core::check_violations(), 1u);
  core::reset_check_violations();
  EXPECT_EQ(core::check_violations(), 0u);
}

TEST_F(CheckTest, OperandsEvaluatedExactlyOnce) {
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  WMN_CHECK_EQ(bump(), 1, "side-effecting operand");
  EXPECT_EQ(evals, 1);
  WMN_CHECK_EQ(bump(), 999, "failing side-effecting operand");
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(core::check_violations(), 1u);
}

TEST_F(CheckTest, PolicyRoundTrips) {
  EXPECT_EQ(core::check_policy(), core::CheckPolicy::kAbort);
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  EXPECT_EQ(core::check_policy(), core::CheckPolicy::kLogAndCount);
}

}  // namespace
}  // namespace wmn
