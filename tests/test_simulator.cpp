#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.hpp"
#include "sim/cancel_token.hpp"

namespace wmn::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<double> times;
  s.schedule(Time::seconds(1.0), [&] { times.push_back(s.now().to_seconds()); });
  s.schedule(Time::seconds(2.5), [&] { times.push_back(s.now().to_seconds()); });
  s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(s.now(), Time::seconds(2.5));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule(Time::seconds(1.0), chain);
  };
  s.schedule(Time::seconds(1.0), chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), Time::seconds(5.0));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  bool ran = false;
  s.schedule(Time::seconds(1.0), [&] {
    s.schedule(Time::seconds(-5.0), [&] {
      ran = true;
      EXPECT_EQ(s.now(), Time::seconds(1.0));
    });
  });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule(Time::seconds(1.0), [&] { ++fired; });
  s.schedule(Time::seconds(10.0), [&] { ++fired; });
  s.run_until(Time::seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::seconds(5.0));
  // Continuing picks up the remaining event.
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsExactlyAtDeadlineExecute) {
  Simulator s;
  bool ran = false;
  s.schedule(Time::seconds(5.0), [&] { ran = true; });
  s.run_until(Time::seconds(5.0));
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator s;
  int fired = 0;
  s.schedule(Time::seconds(1.0), [&] {
    ++fired;
    s.stop();
  });
  s.schedule(Time::seconds(2.0), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, CancelPendingEvent) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(Time::seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(Time::seconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, MakeStreamIsDeterministicPerSeed) {
  Simulator a(123);
  Simulator b(123);
  auto sa = a.make_stream(9);
  auto sb = b.make_stream(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sa.bits(), sb.bits());
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.schedule(Time::seconds(1.0), [] {});
  s.run_until(Time::seconds(30.0));
  EXPECT_EQ(s.now(), Time::seconds(30.0));
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  bool ran = false;
  s.schedule_at(Time::seconds(4.0), [&] {
    ran = true;
    EXPECT_EQ(s.now(), Time::seconds(4.0));
  });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, ScheduleAtPastTimeClampsUnderLogAndCount) {
  // Regression: under kLogAndCount the failed WMN_CHECK_GE falls
  // through instead of aborting, so schedule_at must still clamp a
  // stale absolute timestamp to now() — otherwise the event lands in
  // the past and the clock runs backwards.
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  core::reset_check_violations();
  Simulator s;
  bool ran = false;
  s.schedule(Time::seconds(3.0), [&] {
    s.schedule_at(Time::seconds(1.0), [&] {
      ran = true;
      EXPECT_EQ(s.now(), Time::seconds(3.0));
    });
  });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(core::check_violations(), 1u);
  core::set_check_policy(core::CheckPolicy::kAbort);
}

TEST(Simulator, EventBudgetAbortsDeterministically) {
  struct Stopped {
    Simulator::AbortReason reason;
    std::uint64_t events;
    Time at;
    bool operator==(const Stopped&) const = default;
  };
  auto run_with_budget = [](std::uint64_t budget) {
    Simulator s;
    s.set_event_budget(budget);
    std::function<void()> chain = [&] { s.schedule(Time::seconds(1.0), chain); };
    s.schedule(Time::seconds(1.0), chain);
    s.run_until(Time::seconds(1000.0));
    return Stopped{s.abort_reason(), s.events_executed(), s.now()};
  };
  const Stopped a = run_with_budget(5);
  EXPECT_EQ(a.reason, Simulator::AbortReason::kEventBudget);
  EXPECT_EQ(a.events, 5u);
  // Pure function of the event count: a second run stops identically.
  EXPECT_EQ(run_with_budget(5), a);
}

TEST(Simulator, EventBudgetZeroMeansUnlimited) {
  Simulator s;
  EXPECT_EQ(s.event_budget(), 0u);
  for (int i = 0; i < 10; ++i) s.schedule(Time::seconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 10u);
  EXPECT_EQ(s.abort_reason(), Simulator::AbortReason::kNone);
  EXPECT_FALSE(s.aborted());
}

TEST(Simulator, CancelTokenStopsRunAtNextPoll) {
  Simulator s;
  CancelToken token;
  s.set_cancel_token(&token, /*poll_every=*/4);
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired == 2) token.cancel();
    s.schedule(Time::seconds(1.0), chain);
  };
  s.schedule(Time::seconds(1.0), chain);
  s.run_until(Time::seconds(1000.0));
  EXPECT_EQ(s.abort_reason(), Simulator::AbortReason::kCancelled);
  // Cancelled during event 2; the poll fires at the top of the 4th
  // dispatch, so exactly 3 events ran.
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, CancelTokenNeverFlippedIsFree) {
  Simulator s;
  CancelToken token;
  s.set_cancel_token(&token, 2);
  for (int i = 0; i < 9; ++i) s.schedule(Time::seconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 9u);
  EXPECT_EQ(s.abort_reason(), Simulator::AbortReason::kNone);
}

}  // namespace
}  // namespace wmn::sim
