#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wmn::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<double> times;
  s.schedule(Time::seconds(1.0), [&] { times.push_back(s.now().to_seconds()); });
  s.schedule(Time::seconds(2.5), [&] { times.push_back(s.now().to_seconds()); });
  s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(s.now(), Time::seconds(2.5));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule(Time::seconds(1.0), chain);
  };
  s.schedule(Time::seconds(1.0), chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), Time::seconds(5.0));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  bool ran = false;
  s.schedule(Time::seconds(1.0), [&] {
    s.schedule(Time::seconds(-5.0), [&] {
      ran = true;
      EXPECT_EQ(s.now(), Time::seconds(1.0));
    });
  });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule(Time::seconds(1.0), [&] { ++fired; });
  s.schedule(Time::seconds(10.0), [&] { ++fired; });
  s.run_until(Time::seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::seconds(5.0));
  // Continuing picks up the remaining event.
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsExactlyAtDeadlineExecute) {
  Simulator s;
  bool ran = false;
  s.schedule(Time::seconds(5.0), [&] { ran = true; });
  s.run_until(Time::seconds(5.0));
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator s;
  int fired = 0;
  s.schedule(Time::seconds(1.0), [&] {
    ++fired;
    s.stop();
  });
  s.schedule(Time::seconds(2.0), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, CancelPendingEvent) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(Time::seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(Time::seconds(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, MakeStreamIsDeterministicPerSeed) {
  Simulator a(123);
  Simulator b(123);
  auto sa = a.make_stream(9);
  auto sb = b.make_stream(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sa.bits(), sb.bits());
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.schedule(Time::seconds(1.0), [] {});
  s.run_until(Time::seconds(30.0));
  EXPECT_EQ(s.now(), Time::seconds(30.0));
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  bool ran = false;
  s.schedule_at(Time::seconds(4.0), [&] {
    ran = true;
    EXPECT_EQ(s.now(), Time::seconds(4.0));
  });
  s.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace wmn::sim
