#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/protocols.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "traffic/cbr_source.hpp"
#include "traffic/flow_builder.hpp"
#include "traffic/flow_registry.hpp"
#include "traffic/packet_sink.hpp"

namespace wmn::traffic {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

// Two adjacent nodes with full stacks and a sink on node 1.
struct TrafficBed {
  TrafficBed()
      : sim(1), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    core::ProtocolOptions options;
    for (std::uint32_t id = 0; id < 2; ++id) {
      mobilities.push_back(std::make_unique<ConstantPositionModel>(
          Vec2{static_cast<double>(id) * 150.0, 0.0}));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<mac::DcfMac>(
          sim, mac::MacConfig{}, net::Address(id), *phys.back(), factory));
      agents.push_back(core::make_agent(core::Protocol::kAodvFlood, options, sim,
                                        net::Address(id), *macs.back(), factory));
      sinks.push_back(std::make_unique<PacketSink>(sim, *agents.back(), registry));
    }
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  FlowRegistry registry;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<routing::AodvAgent>> agents;
  std::vector<std::unique_ptr<PacketSink>> sinks;
};

TEST(CbrSource, EmitsAtConfiguredRate) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 10.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(11.0);
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(13.0));
  // 10 s of 10 pps, +-1 for phase.
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 100.0, 1.0);
  const FlowRecord* r = tb.registry.find(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->sent, src.packets_sent());
}

TEST(CbrSource, DeliveredPacketsTracked) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 2;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 5.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(6.0);
  cfg.packet_bytes = 256;
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(8.0));
  const FlowRecord* r = tb.registry.find(2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->delivered, r->sent);  // adjacent nodes: nothing lost
  EXPECT_EQ(r->delivered_bytes, r->delivered * 256);
  EXPECT_GT(r->delay_mean_s, 0.0);
  EXPECT_LT(r->delay_mean_s, 0.5);
  EXPECT_DOUBLE_EQ(r->pdr(), 1.0);
}

TEST(OnOffSource, RespectsStartStopWindow) {
  TrafficBed tb;
  PoissonOnOffConfig cfg;
  cfg.flow_id = 3;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 20.0;
  cfg.mean_on = sim::Time::seconds(1.0);
  cfg.mean_off = sim::Time::seconds(1.0);
  cfg.start = sim::Time::seconds(2.0);
  cfg.stop = sim::Time::seconds(12.0);
  PoissonOnOffSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(15.0));
  // Roughly half duty cycle: well below the CBR-equivalent 200, above 0.
  EXPECT_GT(src.packets_sent(), 20u);
  EXPECT_LT(src.packets_sent(), 200u);
}

// ----- FlowRegistry unit behaviour ------------------------------------------

TEST(FlowRegistry, DelayStatistics) {
  FlowRegistry reg;
  reg.register_flow(1, net::Address(0), net::Address(1));
  reg.record_sent(1, 100);
  reg.record_sent(1, 100);
  reg.record_sent(1, 100);
  // Delays: 10 ms, 20 ms, 30 ms.
  reg.record_delivery(1, 1, 100, sim::Time::zero(), sim::Time::millis(10.0));
  reg.record_delivery(1, 2, 100, sim::Time::zero(), sim::Time::millis(20.0));
  reg.record_delivery(1, 3, 100, sim::Time::zero(), sim::Time::millis(30.0));
  const FlowRecord* r = reg.find(1);
  EXPECT_NEAR(r->delay_mean_s, 0.020, 1e-9);
  EXPECT_NEAR(r->delay_stddev_s(), 0.010, 1e-9);
  // Jitter: successive diffs are 10 ms, 10 ms.
  EXPECT_NEAR(r->jitter_mean_s, 0.010, 1e-9);
  EXPECT_DOUBLE_EQ(r->pdr(), 1.0);
}

TEST(FlowRegistry, DuplicateAndOutOfOrderDetection) {
  FlowRegistry reg;
  reg.register_flow(1, net::Address(0), net::Address(1));
  for (int i = 0; i < 4; ++i) reg.record_sent(1, 100);
  reg.record_delivery(1, 1, 100, sim::Time::zero(), sim::Time::millis(10.0));
  reg.record_delivery(1, 3, 100, sim::Time::zero(), sim::Time::millis(20.0));
  reg.record_delivery(1, 3, 100, sim::Time::zero(), sim::Time::millis(21.0));  // dup
  reg.record_delivery(1, 2, 100, sim::Time::zero(), sim::Time::millis(22.0));  // late
  const FlowRecord* r = reg.find(1);
  EXPECT_EQ(r->duplicates, 1u);
  EXPECT_EQ(r->out_of_order, 1u);
  EXPECT_EQ(r->delivered, 3u);  // dup not double-counted
}

TEST(FlowRegistry, AggregatesAcrossFlows) {
  FlowRegistry reg;
  reg.register_flow(1, net::Address(0), net::Address(1));
  reg.register_flow(2, net::Address(2), net::Address(3));
  reg.record_sent(1, 100);
  reg.record_sent(2, 100);
  reg.record_sent(2, 100);
  reg.record_delivery(1, 1, 100, sim::Time::zero(), sim::Time::millis(10.0));
  reg.record_delivery(2, 1, 100, sim::Time::zero(), sim::Time::millis(30.0));
  EXPECT_EQ(reg.total_sent(), 3u);
  EXPECT_EQ(reg.total_delivered(), 2u);
  EXPECT_NEAR(reg.aggregate_pdr(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(reg.mean_delay_s(), 0.020, 1e-9);
}

TEST(FlowRegistry, BurstyArrivalsAggregateCorrectly) {
  // Flows register over time (the seeded flow-arrival process) and send
  // in bursts; aggregates must reflect exactly what each flow offered,
  // independent of registration order or interleaving.
  FlowRegistry reg;
  reg.register_flow(1, net::Address(0), net::Address(9));
  for (int i = 0; i < 5; ++i) reg.record_sent(1, 100, sim::Time::seconds(1.0));
  // Second flow joins mid-run, after flow 1 already offered traffic.
  reg.register_flow(2, net::Address(3), net::Address(9));
  for (int i = 0; i < 3; ++i) reg.record_sent(2, 100, sim::Time::seconds(4.0));
  // Flow 1 bursts again after its quiet period.
  for (int i = 0; i < 5; ++i) reg.record_sent(1, 100, sim::Time::seconds(6.0));
  EXPECT_EQ(reg.total_sent(), 13u);
  EXPECT_EQ(reg.find(1)->sent, 10u);
  EXPECT_EQ(reg.find(2)->sent, 3u);
  // Deliveries land out of burst order across flows.
  reg.record_delivery(2, 1, 100, sim::Time::seconds(4.0),
                      sim::Time::seconds(4.1));
  reg.record_delivery(1, 1, 100, sim::Time::seconds(1.0),
                      sim::Time::seconds(1.2));
  reg.record_delivery(1, 6, 100, sim::Time::seconds(6.0),
                      sim::Time::seconds(6.1));
  EXPECT_EQ(reg.total_delivered(), 3u);
  EXPECT_NEAR(reg.find(1)->pdr(), 0.2, 1e-12);
  EXPECT_NEAR(reg.find(2)->pdr(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(reg.aggregate_pdr(), 3.0 / 13.0, 1e-12);
}

TEST(FlowRegistry, UnknownFlowDeliveryIgnored) {
  FlowRegistry reg;
  reg.record_delivery(99, 1, 100, sim::Time::zero(), sim::Time::millis(10.0));
  EXPECT_EQ(reg.total_delivered(), 0u);
}

// ----- Flow builders ---------------------------------------------------------

TEST(FlowBuilder, RandomPairsAreDistinctAndValid) {
  sim::RngStream rng(7, 0);
  const auto pairs = random_pairs(30, 50, rng);
  ASSERT_EQ(pairs.size(), 30u);
  std::set<NodePair> seen;
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, 50u);
    EXPECT_LT(b, 50u);
    EXPECT_TRUE(seen.insert({a, b}).second);
  }
}

TEST(FlowBuilder, RandomPairsDeterministic) {
  sim::RngStream rng1(7, 0);
  sim::RngStream rng2(7, 0);
  EXPECT_EQ(random_pairs(10, 20, rng1), random_pairs(10, 20, rng2));
}

TEST(FlowBuilder, GatewayPairsTargetGateways) {
  sim::RngStream rng(7, 0);
  const std::vector<std::uint32_t> gws{0, 1};
  const auto pairs = gateway_pairs(12, 50, gws, rng);
  ASSERT_EQ(pairs.size(), 12u);
  for (const auto& [src, dst] : pairs) {
    EXPECT_TRUE(dst == 0 || dst == 1);
    EXPECT_NE(src, dst);
  }
  // Round-robin: both gateways used.
  std::set<std::uint32_t> dsts;
  for (const auto& [src, dst] : pairs) dsts.insert(dst);
  EXPECT_EQ(dsts.size(), 2u);
}

}  // namespace
}  // namespace wmn::traffic
