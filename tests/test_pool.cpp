// Persistent pool + crash-safe sweep engine: the worker machinery every
// bench binary drains its flattened task list through. The TSan CI leg
// runs this binary (with test_scenario and test_determinism) to catch
// data races in the sweep layer at PR time.
#include "exp/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

#include "exp/parallel.hpp"
#include "exp/sweep.hpp"

namespace wmn::exp {
namespace {

// ----- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, FloorsThreadCountAtOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queue empties
  EXPECT_EQ(count.load(), 50);
}

// ----- parallel_try_map: crash containment -----------------------------------

TEST(ParallelTryMap, CapturesExceptionsPerTaskSlot) {
  ThreadPool pool(4);
  const auto results =
      parallel_try_map(pool, 16, 4, [](std::size_t i) -> std::size_t {
        if (i % 2 == 1) throw std::runtime_error("odd index " + std::to_string(i));
        return i * 10;
      });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_FALSE(results[i].ok());
      EXPECT_NE(results[i].error.find("odd index"), std::string::npos);
      EXPECT_TRUE(results[i].exception != nullptr);
    } else {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(*results[i].value, i * 10);
    }
  }
}

TEST(ParallelTryMap, SerialWidthAlsoContainsExceptions) {
  ThreadPool pool(4);
  const auto results =
      parallel_try_map(pool, 3, 1, [](std::size_t i) -> int {
        if (i == 1) throw std::runtime_error("boom");
        return static_cast<int>(i);
      });
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(ParallelMap, RethrowsFirstFailureInCaller) {
  EXPECT_THROW(parallel_map(8, 4,
                            [](std::size_t i) -> int {
                              if (i == 3) throw std::runtime_error("task 3");
                              return static_cast<int>(i);
                            }),
               std::runtime_error);
}

// ----- bool results: no std::vector<bool> bit-packing race -------------------

TEST(ParallelMap, BoolResultsAreRaceFreeAndCorrect) {
  // With results collected straight into std::vector<bool>, adjacent
  // slots share a word and concurrent writes race (TSan flags it).
  // TaskResult boxes each slot; this proves values survive boxing and
  // gives the TSan leg a dense workload over shared words. An explicit
  // 8-worker pool guarantees real concurrency even on 1-core hosts
  // (shared_pool() sizes itself to the hardware).
  const std::size_t n = 4096;
  ThreadPool pool(8);
  const auto boxed =
      parallel_try_map(pool, n, 8, [](std::size_t i) { return i % 3 == 0; });
  ASSERT_EQ(boxed.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(boxed[i].ok());
    EXPECT_EQ(*boxed[i].value, i % 3 == 0) << "index " << i;
  }
  // The public wrapper unboxes to plain std::vector<bool> values.
  const auto out =
      parallel_map(n, 8, [](std::size_t i) { return i % 3 == 0; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], i % 3 == 0) << "index " << i;
  }
}

// ----- seed derivation -------------------------------------------------------

TEST(ReplicationSeed, PureAndCollisionFreeAcrossTheGrid) {
  // Pure function of (base, point, rep): same inputs, same seed —
  // which is what makes sweep results independent of thread count and
  // task execution order.
  EXPECT_EQ(replication_seed(1000, 3, 2), replication_seed(1000, 3, 2));
  // No collisions across a bench-sized grid, including the adjacent
  // base seeds benches historically used (base, base+1, ...).
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base : {1000ull, 1001ull, 42ull}) {
    for (std::uint64_t point = 0; point < 24; ++point) {
      for (std::uint64_t rep = 0; rep < 16; ++rep) {
        seen.push_back(replication_seed(base, point, rep));
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// ----- SweepEngine -----------------------------------------------------------

// Engine with a substitutable replication body: tests inject crashes
// and taints without paying for full simulations.
class FakeEngine : public SweepEngine {
 public:
  using SweepEngine::SweepEngine;
  std::function<RunMetrics(const ScenarioConfig&)> body;

 protected:
  RunMetrics execute(const ScenarioConfig& cfg,
                     sim::CancelToken* /*cancel*/) override {
    return body(cfg);
  }
};

ScenarioConfig tiny_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(SweepEngine, ThrowingReplicationBecomesFailedSlotNotTermination) {
  FakeEngine engine(4);
  const std::uint64_t bad_seed = replication_seed(42, 0, 1);
  engine.body = [bad_seed](const ScenarioConfig& cfg) {
    if (cfg.seed == bad_seed) throw std::runtime_error("injected crash");
    RunMetrics m;
    m.seed = cfg.seed;
    return m;
  };
  const auto c0 = engine.add_cell(tiny_config(42), 3, "cell-zero");
  const auto c1 = engine.add_cell(tiny_config(43), 2, "cell-one");
  engine.run();  // must complete despite the throwing worker

  EXPECT_EQ(engine.task_count(), 5u);
  EXPECT_EQ(engine.failed_count(), 1u);
  const auto slots = engine.cell(c0);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_TRUE(slots[0].ok());
  EXPECT_FALSE(slots[1].ok());
  EXPECT_NE(slots[1].error.find("injected crash"), std::string::npos);
  EXPECT_TRUE(slots[2].ok());
  // Failed slot excluded from the cell's statistics input.
  EXPECT_EQ(engine.cell_metrics(c0).size(), 2u);
  EXPECT_EQ(engine.cell_metrics(c1).size(), 2u);
  // The report names the cell, the replication, and the cause.
  const std::string report = engine.failure_report();
  EXPECT_NE(report.find("cell-zero"), std::string::npos);
  EXPECT_NE(report.find("rep 1"), std::string::npos);
  EXPECT_NE(report.find("injected crash"), std::string::npos);
}

TEST(SweepEngine, CheckTaintMarksSlotFailedButKeepsMetrics) {
  FakeEngine engine(2);
  const std::uint64_t tainted_seed = replication_seed(7, 0, 0);
  engine.body = [tainted_seed](const ScenarioConfig& cfg) {
    RunMetrics m;
    m.seed = cfg.seed;
    if (cfg.seed == tainted_seed) m.check_violations = 3;
    return m;
  };
  const auto id = engine.add_cell(tiny_config(7), 2);
  engine.run();

  const auto slots = engine.cell(id);
  EXPECT_FALSE(slots[0].ok());
  ASSERT_TRUE(slots[0].metrics.has_value());  // kept for inspection
  EXPECT_NE(slots[0].error.find("invariant violation"), std::string::npos);
  EXPECT_TRUE(slots[1].ok());
  EXPECT_EQ(engine.cell_metrics(id).size(), 1u);
}

TEST(SweepEngine, SeedsAndResultsIndependentOfThreadCount) {
  const auto run_with = [](unsigned threads) {
    FakeEngine engine(threads);
    engine.body = [](const ScenarioConfig& cfg) {
      RunMetrics m;
      m.seed = cfg.seed;
      m.data_sent = cfg.seed % 1000;  // any pure function of the seed
      return m;
    };
    engine.add_cell(tiny_config(1000), 4, "a");
    engine.add_cell(tiny_config(1000), 4, "b");  // same base, distinct point
    engine.run();
    std::vector<std::uint64_t> seeds;
    for (std::size_t c = 0; c < 2; ++c) {
      for (const RepOutcome& rep : engine.cell(c)) seeds.push_back(rep.seed);
    }
    return seeds;
  };
  const auto serial = run_with(1);
  const auto pooled = run_with(8);
  EXPECT_EQ(serial, pooled);
  // Same base seed in different cells must still draw distinct seeds.
  EXPECT_NE(serial[0], serial[4]);
}

// ----- environment knob validation -------------------------------------------

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {}
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, 1); }
  const char* name_;
};

TEST(EnvKnobs, ValidValuesAreUsed) {
  EnvGuard reps("WMN_REPS");
  reps.set("5");
  EXPECT_EQ(env_reps(2), 5u);
  EnvGuard threads("WMN_THREADS");
  threads.set("3");
  EXPECT_EQ(env_threads(), 3u);
}

TEST(EnvKnobs, MalformedValuesFallBackToDefault) {
  EnvGuard reps("WMN_REPS");
  for (const char* bad : {"abc", "0", "-4", "3x", "", "0x10"}) {
    reps.set(bad);
    EXPECT_EQ(env_reps(7), 7u) << "WMN_REPS='" << bad << "'";
  }
  EnvGuard threads("WMN_THREADS");
  for (const char* bad : {"abc", "0", "-2", "2.5", ""}) {
    threads.set(bad);
    EXPECT_EQ(env_threads(), default_thread_count())
        << "WMN_THREADS='" << bad << "'";
  }
}

TEST(EnvKnobs, UnsetMeansDefault) {
  unsetenv("WMN_REPS");
  unsetenv("WMN_THREADS");
  EXPECT_EQ(env_reps(4), 4u);
  EXPECT_EQ(env_threads(), default_thread_count());
}

}  // namespace
}  // namespace wmn::exp
