// AODV engine integration tests on small deterministic topologies.
#include "routing/aodv.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/placement.hpp"
#include "phy/channel.hpp"

namespace wmn::routing {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

struct Delivery {
  std::uint64_t uid;
  net::Address origin;
  net::Address at;
};

// Full stacks (phy+mac+aodv) at fixed positions; default flood policy.
struct RoutingBed {
  explicit RoutingBed(std::vector<Vec2> positions, AodvConfig cfg = {},
                      std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      mobilities.push_back(std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<mac::DcfMac>(
          sim, mac::MacConfig{}, net::Address(id), *phys.back(), factory));
      agents.push_back(std::make_unique<AodvAgent>(
          sim, cfg, net::Address(id), *macs.back(), factory,
          std::make_unique<FloodPolicy>(),
          std::make_unique<FirstArrivalSelection>(),
          std::make_unique<ZeroLoadSource>()));
      agents.back()->set_deliver_callback(
          [this, id](net::Packet p, net::Address origin) {
            deliveries.push_back({p.uid(), origin, net::Address(id)});
          });
    }
  }

  // Moves node i effectively out of everyone's range.
  void exile(std::size_t i) {
    mobilities[i]->set_position(Vec2{1e7, 1e7});
  }

  void send(std::size_t from, std::size_t to, std::uint32_t bytes = 256) {
    net::Packet p = factory.make(bytes, sim.now());
    agents[from]->send(std::move(p), net::Address(static_cast<std::uint32_t>(to)));
  }

  [[nodiscard]] std::size_t delivered_at(std::size_t node) const {
    std::size_t n = 0;
    for (const auto& d : deliveries) {
      if (d.at == net::Address(static_cast<std::uint32_t>(node))) ++n;
    }
    return n;
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  std::vector<Delivery> deliveries;
};

// 5-node line with 200 m spacing: each node reaches only its direct
// neighbours (250 m range), so 0 -> 4 needs a 4-hop route.
std::vector<Vec2> line5() { return mobility::line_placement(5, 200.0); }

TEST(Aodv, DiscoversMultiHopRouteAndDelivers) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 1u);
  EXPECT_EQ(tb.agents[0]->counters().discovery_succeeded, 1u);
  // Intermediate nodes forwarded data.
  EXPECT_GE(tb.agents[1]->counters().data_forwarded, 1u);
  EXPECT_GE(tb.agents[3]->counters().data_forwarded, 1u);
}

TEST(Aodv, RouteIsReusedForSubsequentPackets) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  for (int i = 0; i < 10; ++i) {
    tb.sim.schedule(sim::Time::seconds(2.0 + i * 0.1), [&] { tb.send(0, 4); });
  }
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 11u);
  // One discovery serves all packets.
  EXPECT_EQ(tb.agents[0]->counters().discovery_started, 1u);
}

TEST(Aodv, PacketsBufferedDuringDiscovery) {
  RoutingBed tb(line5());
  // Burst before any route exists: all must arrive after discovery.
  tb.sim.schedule(sim::Time::seconds(1.0), [&] {
    for (int i = 0; i < 5; ++i) tb.send(0, 4);
  });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 5u);
  EXPECT_EQ(tb.agents[0]->counters().discovery_started, 1u);
}

TEST(Aodv, DeliveryToSelfIsImmediate) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(2, 2); });
  tb.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_EQ(tb.delivered_at(2), 1u);
  EXPECT_EQ(tb.agents[2]->counters().rreq_originated, 0u);
}

TEST(Aodv, HelloBuildsNeighborTables) {
  RoutingBed tb(line5());
  tb.sim.run_until(sim::Time::seconds(5.0));
  // Middle node hears both direct neighbours; end nodes hear one.
  EXPECT_EQ(tb.agents[2]->neighbors().count(), 2u);
  EXPECT_EQ(tb.agents[0]->neighbors().count(), 1u);
  EXPECT_EQ(tb.agents[4]->neighbors().count(), 1u);
}

TEST(Aodv, UnreachableDestinationFailsDiscovery) {
  RoutingBed tb(line5());
  tb.exile(4);
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(15.0));
  EXPECT_EQ(tb.delivered_at(4), 0u);
  EXPECT_EQ(tb.agents[0]->counters().discovery_failed, 1u);
  // All attempts were made (initial + retries).
  EXPECT_EQ(tb.agents[0]->counters().rreq_originated, 1u + AodvConfig{}.rreq_retries);
}

TEST(Aodv, LinkBreakTriggersRerrAndRediscovery) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  // Break the route: node 3 vanishes after the route is up.
  tb.sim.schedule(sim::Time::seconds(3.0), [&] { tb.exile(3); });
  // New traffic must fail over; 0->2 still works.
  tb.sim.schedule(sim::Time::seconds(6.0), [&] { tb.send(0, 2); });
  tb.sim.run_until(sim::Time::seconds(20.0));
  EXPECT_EQ(tb.delivered_at(2), 1u);
  // Someone detected the break and sent RERR.
  std::uint64_t rerrs = 0;
  for (const auto& a : tb.agents) rerrs += a->counters().rerr_sent;
  EXPECT_GE(rerrs, 1u);
}

TEST(Aodv, IntermediateNodeAnswersFromCache) {
  RoutingBed tb(line5());
  // First, 1 -> 4 builds state at nodes 1..4.
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(1, 4); });
  // Then 0 asks for 4: node 1 can answer from cache.
  tb.sim.schedule(sim::Time::seconds(3.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 2u);
  std::uint64_t cached = 0;
  for (const auto& a : tb.agents) cached += a->counters().rrep_intermediate;
  EXPECT_GE(cached, 1u);
}

TEST(Aodv, TtlLimitsDataPropagation) {
  AodvConfig cfg;
  cfg.data_ttl = 2;  // 0 -> 4 needs 4 hops; TTL 2 cannot make it
  RoutingBed tb(line5(), cfg);
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 0u);
  std::uint64_t ttl_drops = 0;
  for (const auto& a : tb.agents) ttl_drops += a->counters().data_dropped_ttl;
  EXPECT_GE(ttl_drops, 1u);
}

TEST(Aodv, BidirectionalFlowsBothDeliver) {
  RoutingBed tb(line5());
  // Staggered starts: simultaneous first RREQs from marginal-SINR
  // endpoints can legitimately collide (hidden-interferer geometry).
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.schedule(sim::Time::seconds(1.3), [&] { tb.send(4, 0); });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(4), 1u);
  EXPECT_EQ(tb.delivered_at(0), 1u);
}

TEST(Aodv, StarTopologyAllPairsThroughHub) {
  // Hub at centre, 4 leaves 200 m out in each direction: leaves cannot
  // hear each other (283-400 m apart), all pairs route via the hub.
  RoutingBed tb({{0, 0}, {200, 0}, {-200, 0}, {0, 200}, {0, -200}});
  tb.sim.schedule(sim::Time::seconds(1.0), [&] {
    tb.send(1, 2);
    tb.send(3, 4);
  });
  tb.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_EQ(tb.delivered_at(2), 1u);
  EXPECT_EQ(tb.delivered_at(4), 1u);
  EXPECT_GE(tb.agents[0]->counters().data_forwarded, 2u);
}

TEST(Aodv, NeighborLossViaHelloSilenceInvalidatesRoutes) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.schedule(sim::Time::seconds(3.0), [&] { tb.exile(1); });
  tb.sim.run_until(sim::Time::seconds(12.0));
  // Node 0 must have noticed neighbour 1 vanished.
  EXPECT_FALSE(tb.agents[0]->neighbors().contains(net::Address(1)));
  // And the route to 4 via 1 must no longer be valid.
  EXPECT_EQ(tb.agents[0]->routes().lookup(net::Address(4), tb.sim.now()),
            nullptr);
}

TEST(Aodv, CountersAreConsistent) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(10.0));
  const auto& c0 = tb.agents[0]->counters();
  EXPECT_EQ(c0.data_originated, 1u);
  EXPECT_EQ(c0.discovery_started, c0.discovery_succeeded + c0.discovery_failed);
  // Every node's RREQ receive count >= forward count.
  for (const auto& a : tb.agents) {
    const auto& c = a->counters();
    EXPECT_LE(c.rreq_forwarded + c.rreq_suppressed, c.rreq_received);
  }
}

TEST(Aodv, ExpandingRingFindsNearDestinationCheaply) {
  AodvConfig ers;
  ers.expanding_ring = true;
  ers.ers_ttl_start = 2;
  ers.ers_ttl_increment = 2;
  ers.ers_ttl_threshold = 4;
  // Destination one hop east; a long tail stretches west. A network-
  // wide RREQ floods the whole tail; a TTL-2 ring stops at the first
  // tail node.
  const std::vector<Vec2> branch{{0, 0},     {200, 0},   {-200, 0},
                                 {-400, 0},  {-600, 0},  {-800, 0}};
  RoutingBed with_ers(branch, ers);
  RoutingBed without(branch);
  // Send before the first HELLOs so a discovery is actually needed.
  with_ers.sim.schedule(sim::Time::millis(5.0), [&] { with_ers.send(0, 1); });
  without.sim.schedule(sim::Time::millis(5.0), [&] { without.send(0, 1); });
  with_ers.sim.run_until(sim::Time::seconds(8.0));
  without.sim.run_until(sim::Time::seconds(8.0));
  EXPECT_EQ(with_ers.delivered_at(1), 1u);
  EXPECT_EQ(without.delivered_at(1), 1u);
  auto total_rreq = [](RoutingBed& tb) {
    std::uint64_t n = 0;
    for (const auto& a : tb.agents) {
      n += a->counters().rreq_forwarded + a->counters().rreq_originated;
    }
    return n;
  };
  // The TTL-2 ring cannot storm the whole line; classic discovery does.
  EXPECT_LT(total_rreq(with_ers), total_rreq(without));
}

TEST(Aodv, ExpandingRingStillReachesFarDestination) {
  AodvConfig ers;
  ers.expanding_ring = true;
  ers.ers_ttl_start = 1;
  ers.ers_ttl_increment = 2;
  ers.ers_ttl_threshold = 3;
  RoutingBed tb(line5(), ers);
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(15.0));
  // Rings 1 and 3 fail; the network-wide attempt succeeds.
  EXPECT_EQ(tb.delivered_at(4), 1u);
  EXPECT_GE(tb.agents[0]->counters().rreq_originated, 3u);
}

TEST(Aodv, ExpandingRingFailureExhaustsAllRingsAndRetries) {
  AodvConfig ers;
  ers.expanding_ring = true;
  ers.ers_ttl_start = 2;
  ers.ers_ttl_increment = 2;
  ers.ers_ttl_threshold = 4;
  ers.rreq_retries = 1;
  RoutingBed tb(line5(), ers);
  tb.exile(4);
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(20.0));
  EXPECT_EQ(tb.agents[0]->counters().discovery_failed, 1u);
  // Rings {2, 4} + (1 + retries) network-wide attempts = 4 RREQs.
  EXPECT_EQ(tb.agents[0]->counters().rreq_originated, 4u);
}

TEST(Aodv, RerrPropagatesUpstreamOverMultipleHops) {
  RoutingBed tb(line5());
  // Steady traffic 0 -> 4 keeps the whole chain's routes alive.
  for (int i = 0; i < 30; ++i) {
    tb.sim.schedule(sim::Time::seconds(1.0 + i * 0.2), [&] { tb.send(0, 4); });
  }
  // Break the last link mid-stream.
  tb.sim.schedule(sim::Time::seconds(3.05), [&] { tb.exile(4); });
  tb.sim.run_until(sim::Time::seconds(12.0));
  // The break was detected at node 3 and the error reached node 0:
  // its route to 4 is gone even though node 0 never saw the break.
  EXPECT_EQ(tb.agents[0]->routes().lookup(net::Address(4), tb.sim.now()),
            nullptr);
  EXPECT_GE(tb.agents[3]->counters().rerr_sent, 1u);
  std::uint64_t rerr_rx = 0;
  for (const auto& a : tb.agents) rerr_rx += a->counters().rerr_received;
  EXPECT_GE(rerr_rx, 1u);
}

TEST(Aodv, BufferOverflowDropsOldest) {
  AodvConfig cfg;
  cfg.buffer_capacity = 3;
  RoutingBed tb(line5(), cfg);
  tb.exile(4);  // discovery will fail; buffer fills meanwhile
  tb.sim.schedule(sim::Time::seconds(1.0), [&] {
    for (int i = 0; i < 8; ++i) tb.send(0, 4);
  });
  tb.sim.run_until(sim::Time::seconds(15.0));
  const auto& c = tb.agents[0]->counters();
  // 8 offered, capacity 3: at least 5 displaced from the buffer, the
  // remaining 3 dropped when discovery failed.
  EXPECT_GE(c.data_dropped_buffer, 5u);
  EXPECT_GE(c.data_dropped_no_route, 3u);
  EXPECT_EQ(tb.delivered_at(4), 0u);
}

TEST(Aodv, BufferedPacketsExpireOnTimeout) {
  AodvConfig cfg;
  cfg.buffer_timeout = sim::Time::seconds(2.0);
  cfg.rreq_retries = 30;  // discovery keeps trying past buffer expiry
  RoutingBed tb(line5(), cfg);
  tb.exile(4);
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(8.0));
  EXPECT_GE(tb.agents[0]->counters().data_dropped_buffer, 1u);
}

TEST(Aodv, SeqnoMonotonicityPreventsStaleRoutes) {
  RoutingBed tb(line5());
  tb.sim.schedule(sim::Time::seconds(1.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(5.0));
  RouteEntry* e = tb.agents[0]->routes().find(net::Address(4));
  ASSERT_NE(e, nullptr);
  const std::uint32_t seq_before = e->dest_seqno;
  EXPECT_TRUE(e->valid_seqno);
  // Later discovery yields a strictly fresher seqno.
  tb.sim.schedule(sim::Time::seconds(5.5), [&] { tb.exile(3); });
  tb.sim.schedule(sim::Time::seconds(9.0), [&] {
    // Reconnect 3 at a new position still bridging 2 and 4.
    tb.mobilities[3]->set_position(Vec2{600.0, 30.0});
  });
  tb.sim.schedule(sim::Time::seconds(12.0), [&] { tb.send(0, 4); });
  tb.sim.run_until(sim::Time::seconds(25.0));
  RouteEntry* e2 = tb.agents[0]->routes().find(net::Address(4));
  ASSERT_NE(e2, nullptr);
  EXPECT_GT(e2->dest_seqno, seq_before);
}

TEST(Aodv, SeqnoWraparoundAcceptsPostRolloverRoutes) {
  // RFC 3561 section 6.1 regression: a destination whose sequence
  // number rolled over past 0xFFFFFFFF advertises a small seqno that
  // is *fresher* than the huge pre-wrap value. Plain unsigned
  // comparison rejects the update and pins the stale route forever;
  // circular comparison must accept it.
  RoutingBed tb({{0, 0}, {200, 0}});

  tb.sim.schedule(sim::Time::millis(100.0), [&] {
    // Node 0 holds a pre-wrap route to (fictional) destination 9.
    RouteEntry stale;
    stale.dest = net::Address(9);
    stale.next_hop = net::Address(1);
    stale.hop_count = 5;
    stale.dest_seqno = 0xFFFFFFF0u;
    stale.valid_seqno = true;
    stale.state = RouteState::kValid;
    stale.expires = sim::Time::seconds(100.0);
    tb.agents[0]->routes().upsert(stale);
  });

  tb.sim.schedule(sim::Time::millis(200.0), [&] {
    // Node 1 relays an RREP for destination 9 whose seqno wrapped.
    RrepHeader hdr;
    hdr.dest = net::Address(9);
    hdr.dest_seqno = 2;  // post-rollover: circularly newer than 0xFFFFFFF0
    hdr.origin = net::Address(0);
    hdr.hop_count = 1;
    hdr.lifetime_ms = 5000;
    net::Packet pkt = tb.factory.make(0, tb.sim.now());
    pkt.push(hdr);
    tb.macs[1]->enqueue(std::move(pkt), net::Address(0));
  });

  tb.sim.run_until(sim::Time::seconds(1.0));

  RouteEntry* e = tb.agents[0]->routes().find(net::Address(9));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dest_seqno, 2u) << "post-wrap seqno rejected as stale";
  EXPECT_EQ(e->hop_count, 2u);  // the fresher 2-hop path replaced 5 hops
}

}  // namespace
}  // namespace wmn::routing
