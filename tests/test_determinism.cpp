// Determinism auditor: the contract every F1-F9 result depends on.
//
// One (config, seed) pair must produce exactly one event trace. These
// tests run a mid-size scenario twice with the same seed and require
// bit-identical fingerprints over event counts and every headline
// metric — and a *different* fingerprint for a different seed, so a
// fingerprint that stopped depending on the RNG would be caught too.
#include <gtest/gtest.h>

#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "sim/fingerprint.hpp"

namespace wmn {
namespace {

exp::ScenarioConfig mid_size_config(std::uint64_t seed,
                                    core::Protocol protocol) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 36;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.traffic.n_flows = 6;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(10.0);
  cfg.drain = sim::Time::seconds(1.0);
  cfg.protocol = protocol;
  cfg.seed = seed;
  return cfg;
}

struct RunResult {
  std::uint64_t metrics_fp = 0;
  std::uint64_t events = 0;
};

RunResult run_once(std::uint64_t seed, core::Protocol protocol) {
  exp::Scenario s(mid_size_config(seed, protocol));
  s.run();
  RunResult r;
  r.metrics_fp = exp::fingerprint(s.metrics());
  r.events = s.simulator().events_executed();
  return r;
}

TEST(Determinism, SameSeedSameFingerprintClnlr) {
  const RunResult a = run_once(42, core::Protocol::kClnlr);
  const RunResult b = run_once(42, core::Protocol::kClnlr);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics_fp, b.metrics_fp);
}

TEST(Determinism, SameSeedSameFingerprintAodvFlood) {
  const RunResult a = run_once(7, core::Protocol::kAodvFlood);
  const RunResult b = run_once(7, core::Protocol::kAodvFlood);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics_fp, b.metrics_fp);
}

TEST(Determinism, SameSeedSameFingerprintGossipMobile) {
  // Gossip + mobility exercises the probabilistic rebroadcast and the
  // random-waypoint streams, the two most RNG-hungry subsystems.
  auto cfg = mid_size_config(13, core::Protocol::kAodvGossip);
  cfg.mobility.max_speed_mps = 5.0;
  exp::Scenario a(cfg);
  a.run();
  exp::Scenario b(cfg);
  b.run();
  EXPECT_EQ(a.simulator().events_executed(), b.simulator().events_executed());
  EXPECT_EQ(exp::fingerprint(a.metrics()), exp::fingerprint(b.metrics()));
}

TEST(Determinism, DifferentSeedDifferentFingerprint) {
  const RunResult a = run_once(42, core::Protocol::kClnlr);
  const RunResult b = run_once(43, core::Protocol::kClnlr);
  // Event counts for different seeds could in principle collide, but
  // the metric digest folds dozens of RNG-driven quantities — equality
  // would mean the seed no longer reaches the simulation.
  EXPECT_NE(a.metrics_fp, b.metrics_fp);
}

// The tentpole contract of the persistent-pool sweep engine: a sweep
// drained by N long-lived workers must yield the same per-replication
// fingerprints as the same sweep run on one thread. Seeds are a pure
// function of (base, point, rep), so thread count and task execution
// order cannot leak into the results.
TEST(Determinism, PoolVsSerialFingerprintsPerReplication) {
  for (core::Protocol protocol :
       {core::Protocol::kClnlr, core::Protocol::kAodvFlood}) {
    exp::ScenarioConfig cfg;
    cfg.n_nodes = 25;
    cfg.area_width_m = 600.0;
    cfg.area_height_m = 600.0;
    cfg.traffic.n_flows = 4;
    cfg.traffic.rate_pps = 4.0;
    cfg.warmup = sim::Time::seconds(3.0);
    cfg.traffic_time = sim::Time::seconds(8.0);
    cfg.protocol = protocol;
    cfg.seed = 42;
    const auto serial = exp::run_replications(cfg, 3, 1);
    const auto pooled = exp::run_replications(cfg, 3, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].seed, exp::replication_seed(42, 0, i));
      EXPECT_EQ(exp::fingerprint(serial[i]), exp::fingerprint(pooled[i]))
          << core::protocol_name(protocol) << " rep " << i;
    }
  }
}

// Same contract with the fault layer live: seeded churn (crash times,
// victims, downtimes, and the rejoin jitter they trigger) must be a
// pure function of (config, seed), so pooled execution of replications
// reproduces the serial fingerprints — including the resilience
// fields, which join the digest for fault-enabled runs.
TEST(Determinism, PoolVsSerialFingerprintsWithChurn) {
  exp::ScenarioConfig cfg = mid_size_config(42, core::Protocol::kClnlr);
  cfg.n_nodes = 25;
  cfg.traffic.n_flows = 4;
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.fault.churn.rate_per_s = 0.25;
  cfg.fault.churn.mean_downtime = sim::Time::seconds(2.0);
  cfg.fault.churn.start = cfg.warmup;
  cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
  const auto serial = exp::run_replications(cfg, 3, 1);
  const auto pooled = exp::run_replications(cfg, 3, 4);
  ASSERT_EQ(serial.size(), pooled.size());
  bool any_crashes = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].fault_enabled);
    any_crashes = any_crashes || serial[i].fault_crashes > 0;
    EXPECT_EQ(exp::fingerprint(serial[i]), exp::fingerprint(pooled[i]))
        << "rep " << i;
  }
  EXPECT_TRUE(any_crashes);
}

// The RERR fan-out path made hash-layout-independent in PR 6 (sorted
// precursor normalisation in emit_rerr, sorted dests_via, sorted
// neighbour-loss callbacks): drive it hard — churn plus every graceful-
// degradation feature on — and require pooled replications to
// reproduce the serial fingerprints bit for bit. RERRs must actually
// flow for this to mean anything, so that is asserted too.
TEST(Determinism, PoolVsSerialFingerprintsWithChurnAndGracefulRerr) {
  exp::ScenarioConfig cfg = mid_size_config(1337, core::Protocol::kClnlr);
  cfg.options.aodv.local_repair = true;
  cfg.options.aodv.rrep_blacklist = true;
  cfg.options.aodv.rerr_to_precursors = true;
  cfg.fault.churn.rate_per_s = 1.0;
  cfg.fault.churn.mean_downtime = sim::Time::seconds(2.0);
  cfg.fault.churn.start = cfg.warmup;
  cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
  const auto serial = exp::run_replications(cfg, 3, 1);
  const auto pooled = exp::run_replications(cfg, 3, 4);
  ASSERT_EQ(serial.size(), pooled.size());
  std::uint64_t rerrs = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    rerrs += serial[i].rerr_tx;
    EXPECT_EQ(exp::fingerprint(serial[i]), exp::fingerprint(pooled[i]))
        << "rep " << i;
  }
  EXPECT_GT(rerrs, 0u) << "scenario never exercised the RERR fan-out";
}

// The F11 production workload — gateway pattern, per-user session
// aggregation, heavy-tailed bursts, staggered flow arrivals — runs
// every new RNG consumer at once. Each source's draw sequence is a pure
// function of its own history, so pooled replications must reproduce
// the serial fingerprints bit for bit, including the gateway and
// session metric blocks (asserted populated, so the gated digest
// fields are actually exercised).
TEST(Determinism, PoolVsSerialFingerprintsProductionWorkload) {
  for (const auto model : {exp::TrafficSpec::Model::kSessions,
                           exp::TrafficSpec::Model::kHeavyTailOnOff}) {
    exp::ScenarioConfig cfg = mid_size_config(42, core::Protocol::kClnlr);
    cfg.n_nodes = 25;
    cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
    cfg.traffic.n_gateways = 2;
    cfg.traffic.n_flows = 5;
    cfg.traffic.model = model;
    cfg.traffic.mean_arrival_gap_s = 1.0;  // flows join over time
    cfg.traffic.users_per_node = 500;
    cfg.traffic.session_rate_per_user_per_s = 0.004;
    cfg.traffic.mean_session_pkts = 8.0;
    cfg.traffic_time = sim::Time::seconds(8.0);
    const auto serial = exp::run_replications(cfg, 3, 1);
    const auto pooled = exp::run_replications(cfg, 3, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].gateway_count, 2u);
      EXPECT_EQ(serial[i].per_gateway_delivered.size(), 2u);
      if (model == exp::TrafficSpec::Model::kSessions) {
        EXPECT_GT(serial[i].sessions_started, 0u);
      }
      EXPECT_EQ(exp::fingerprint(serial[i]), exp::fingerprint(pooled[i]))
          << "model " << static_cast<int>(model) << " rep " << i;
    }
  }
}

// The sharded engine's tentpole contract (DESIGN.md §3e): the region
// decomposition and epoch schedule are pure functions of the scenario
// config, shard count only sets the worker-thread count over them —
// so the same seed must produce bit-identical fingerprints for every
// shard count, including 1. The macro-style geometry here actually
// tiles into multiple regions (asserted), so cross-region inbox
// merging is genuinely exercised.
TEST(Determinism, ShardCountInvarianceMacro) {
  std::uint64_t fp = 0;
  std::uint64_t events = 0;
  bool first = true;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    exp::ScenarioConfig cfg;
    cfg.n_nodes = 400;
    cfg.area_width_m = 2000.0;
    cfg.area_height_m = 2000.0;
    cfg.traffic.n_flows = 40;
    cfg.traffic.rate_pps = 4.0;
    cfg.warmup = sim::Time::seconds(2.0);
    cfg.traffic_time = sim::Time::seconds(2.0);
    cfg.drain = sim::Time::seconds(1.0);
    cfg.seed = 1000;
    cfg.intra_run_shards = shards;
    exp::Scenario s(cfg);
    ASSERT_TRUE(s.sharded());
    ASSERT_GT(s.shard_map()->region_count(), 1u) << "geometry must shard";
    s.run();
    const std::uint64_t run_fp = exp::fingerprint(s.metrics());
    const std::uint64_t run_events = s.sharded_engine()->events_executed();
    if (first) {
      fp = run_fp;
      events = run_events;
      first = false;
      EXPECT_GT(run_events, 0u);
    } else {
      EXPECT_EQ(run_fp, fp) << "shards=" << shards;
      EXPECT_EQ(run_events, events) << "shards=" << shards;
    }
  }
}

// Same contract over the F11 production workload: gateway pattern,
// per-user session aggregation, a flash-crowd rate envelope, and
// seeded churn (which the sharded engine precomputes into a
// fault::FaultTimeline) all running at once.
TEST(Determinism, ShardCountInvarianceProductionWorkload) {
  std::uint64_t fp = 0;
  bool first = true;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    exp::ScenarioConfig cfg = mid_size_config(42, core::Protocol::kClnlr);
    cfg.n_nodes = 49;
    cfg.area_width_m = 700.0;
    cfg.area_height_m = 700.0;
    cfg.traffic.pattern = exp::TrafficSpec::Pattern::kGateway;
    cfg.traffic.n_gateways = 2;
    cfg.traffic.n_flows = 5;
    cfg.traffic.model = exp::TrafficSpec::Model::kSessions;
    cfg.traffic.mean_arrival_gap_s = 1.0;
    cfg.traffic.users_per_node = 500;
    cfg.traffic.session_rate_per_user_per_s = 0.004;
    cfg.traffic.mean_session_pkts = 8.0;
    cfg.traffic.rate_envelope = {{0.0, 1.0}, {2.0, 1.0}, {3.0, 6.0},
                                 {5.0, 6.0}, {6.0, 1.0}};
    cfg.traffic_time = sim::Time::seconds(8.0);
    cfg.fault.churn.rate_per_s = 0.5;
    cfg.fault.churn.mean_downtime = sim::Time::seconds(2.0);
    cfg.fault.churn.start = cfg.warmup;
    cfg.fault.churn.stop = cfg.warmup + cfg.traffic_time;
    cfg.intra_run_shards = shards;
    exp::Scenario s(cfg);
    ASSERT_TRUE(s.sharded());
    s.run();
    const exp::RunMetrics m = s.metrics();
    EXPECT_TRUE(m.fault_enabled);
    EXPECT_GT(m.sessions_started, 0u);
    const std::uint64_t run_fp = exp::fingerprint(m);
    if (first) {
      fp = run_fp;
      first = false;
    } else {
      EXPECT_EQ(run_fp, fp) << "shards=" << shards;
    }
  }
}

TEST(Determinism, FingerprintOrderSensitive) {
  sim::Fingerprint a;
  a.mix(std::uint64_t{1});
  a.mix(std::uint64_t{2});
  sim::Fingerprint b;
  b.mix(std::uint64_t{2});
  b.mix(std::uint64_t{1});
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Determinism, FingerprintStringBoundaries) {
  sim::Fingerprint a;
  a.mix("ab");
  a.mix("c");
  sim::Fingerprint b;
  b.mix("a");
  b.mix("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Determinism, FingerprintDistinguishesDoubleBitPatterns) {
  sim::Fingerprint a;
  a.mix(0.0);
  sim::Fingerprint b;
  b.mix(-0.0);
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace wmn
