// Cross-cutting property tests: invariants that must hold for every
// protocol and every seed, checked on a mid-size scenario via the full
// public API. These are the "laws of the simulator" — accounting
// consistency, boundedness, and determinism — as opposed to the
// behaviour-specific tests in the per-module suites.
#include <gtest/gtest.h>

#include "exp/scenario.hpp"

namespace wmn::exp {
namespace {

struct Param {
  core::Protocol protocol;
  std::uint64_t seed;
};

class ProtocolLaws : public ::testing::TestWithParam<Param> {
 protected:
  static ScenarioConfig config(const Param& p) {
    ScenarioConfig cfg;
    cfg.n_nodes = 36;
    cfg.area_width_m = 700.0;
    cfg.area_height_m = 700.0;
    cfg.traffic.n_flows = 5;
    cfg.traffic.rate_pps = 5.0;
    cfg.warmup = sim::Time::seconds(3.0);
    cfg.traffic_time = sim::Time::seconds(12.0);
    cfg.protocol = p.protocol;
    cfg.seed = p.seed;
    return cfg;
  }
};

TEST_P(ProtocolLaws, AccountingInvariants) {
  Scenario s(config(GetParam()));
  s.run();
  const RunMetrics m = s.metrics();

  // Delivered packets cannot exceed offered packets.
  EXPECT_LE(m.data_delivered, m.data_sent);
  // Discoveries resolve exactly once.
  std::uint64_t started = 0, resolved = 0;
  for (std::size_t i = 0; i < s.node_count(); ++i) {
    const auto& c = s.agent(i).counters();
    started += c.discovery_started;
    resolved += c.discovery_succeeded + c.discovery_failed;
    // A node never forwards or suppresses more first-copies than it saw.
    EXPECT_LE(c.rreq_forwarded + c.rreq_suppressed, c.rreq_received);
    // Data conservation per node: everything delivered here was
    // destined here (no phantom deliveries).
    EXPECT_LE(c.data_delivered, m.data_sent + c.data_originated);
  }
  // In-flight discoveries at cut-off may be unresolved; never negative.
  EXPECT_LE(resolved, started);
  EXPECT_LE(started - resolved, 10u);

  // Ratios bounded.
  EXPECT_GE(m.pdr, 0.0);
  EXPECT_LE(m.pdr, 1.0);
  EXPECT_GE(m.forwarding_jain, 0.0);
  EXPECT_LE(m.forwarding_jain, 1.0 + 1e-12);
  EXPECT_GE(m.forwarding_peak_to_mean, 1.0 - 1e-12);
  EXPECT_GE(m.mean_busy_ratio, 0.0);
  EXPECT_LE(m.mean_busy_ratio, 1.0);
}

TEST_P(ProtocolLaws, MacPhyAccountingConsistent) {
  Scenario s(config(GetParam()));
  s.run();
  for (std::size_t i = 0; i < s.node_count(); ++i) {
    const auto& mc = s.node_mac(i).counters();
    const auto& pc = s.node_phy(i).counters();
    // Every MAC transmission (data + acks) hit the radio exactly once.
    EXPECT_EQ(mc.tx_data_unicast + mc.tx_data_broadcast + mc.tx_acks,
              pc.tx_frames);
    // Retries are a subset of unicast transmissions.
    EXPECT_LE(mc.retries, mc.tx_data_unicast);
    // Deliveries + duplicates + overheard cannot exceed decoded frames.
    EXPECT_LE(mc.rx_delivered + mc.rx_duplicates + mc.rx_overheard, pc.rx_ok);
    // The cross-layer instruments stay in range.
    EXPECT_GE(s.node_mac(i).busy_ratio(), 0.0);
    EXPECT_LE(s.node_mac(i).busy_ratio(), 1.0);
    EXPECT_GE(s.node_mac(i).retry_ratio(), 0.0);
    EXPECT_LE(s.node_mac(i).retry_ratio(), 1.0);
    EXPECT_GE(s.node_mac(i).queue_ratio(), 0.0);
    EXPECT_LE(s.node_mac(i).queue_ratio(), 1.0);
  }
}

TEST_P(ProtocolLaws, DeterministicReplay) {
  Scenario a(config(GetParam()));
  a.run();
  Scenario b(config(GetParam()));
  b.run();
  EXPECT_EQ(a.metrics().sim_event_count, b.metrics().sim_event_count);
  EXPECT_EQ(a.metrics().data_delivered, b.metrics().data_delivered);
  EXPECT_EQ(a.metrics().control_tx, b.metrics().control_tx);
  EXPECT_DOUBLE_EQ(a.metrics().mean_delay_ms, b.metrics().mean_delay_ms);
}

std::vector<Param> make_params() {
  std::vector<Param> out;
  for (core::Protocol p : core::all_protocols()) {
    for (std::uint64_t seed : {11ull, 23ull}) out.push_back({p, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndSeeds, ProtocolLaws, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string n = core::protocol_name(param_info.param.protocol) + "_s" +
                      std::to_string(param_info.param.seed);
      for (char& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

// CLNLR-specific law: every node's load indices stay in [0,1] for the
// whole run, sampled mid-flight.
TEST(ClnlrLaws, LoadIndicesBoundedThroughoutRun) {
  ScenarioConfig cfg;
  cfg.n_nodes = 36;
  cfg.area_width_m = 700.0;
  cfg.area_height_m = 700.0;
  cfg.traffic.n_flows = 6;
  cfg.traffic.rate_pps = 10.0;  // push into congestion
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(12.0);
  cfg.protocol = core::Protocol::kClnlr;
  cfg.seed = 99;
  Scenario s(cfg);
  for (int t = 4; t <= 14; t += 2) {
    s.simulator().schedule_at(sim::Time::seconds(static_cast<double>(t)), [&s] {
      for (std::size_t i = 0; i < s.node_count(); ++i) {
        const double own = s.agent(i).own_load();
        const double nbhd = s.agent(i).neighbourhood_load();
        EXPECT_GE(own, 0.0);
        EXPECT_LE(own, 1.0);
        EXPECT_GE(nbhd, 0.0);
        EXPECT_LE(nbhd, 1.0);
      }
    });
  }
  s.run();
}

// Differential law: CLNLR's RREQ economy is never *worse* than blind
// flooding by more than the rescue slack on identical scenarios.
TEST(ClnlrLaws, DiscoveryEconomyVsFlooding) {
  ScenarioConfig cfg;
  cfg.n_nodes = 49;
  cfg.area_width_m = 700.0;
  cfg.area_height_m = 700.0;
  cfg.traffic.n_flows = 8;
  cfg.traffic.rate_pps = 8.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(15.0);
  cfg.seed = 7;

  cfg.protocol = core::Protocol::kAodvFlood;
  Scenario flood(cfg);
  flood.run();
  cfg.protocol = core::Protocol::kClnlr;
  Scenario clnlr(cfg);
  clnlr.run();

  const double flood_rpd = flood.metrics().rreq_per_discovery;
  const double clnlr_rpd = clnlr.metrics().rreq_per_discovery;
  EXPECT_GT(flood_rpd, 0.0);
  // Dense loaded mesh: CLNLR must not storm harder per discovery.
  EXPECT_LE(clnlr_rpd, flood_rpd * 1.1);
}

}  // namespace
}  // namespace wmn::exp
