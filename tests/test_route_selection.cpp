#include "routing/route_selection.hpp"

#include <gtest/gtest.h>

namespace wmn::routing {
namespace {

TEST(FirstArrival, PrefersFewerHops) {
  FirstArrivalSelection s;
  EXPECT_TRUE(s.better({0.0, 2}, {0.0, 3}));
  EXPECT_FALSE(s.better({0.0, 3}, {0.0, 2}));
  EXPECT_FALSE(s.better({0.0, 3}, {0.0, 3}));
}

TEST(FirstArrival, NoReplyWaitAllowsIntermediate) {
  FirstArrivalSelection s;
  EXPECT_TRUE(s.reply_wait().is_zero());
  EXPECT_TRUE(s.allow_intermediate_reply());
}

TEST(FirstArrival, ShouldReplaceFollowsBetter) {
  FirstArrivalSelection s;
  EXPECT_TRUE(s.should_replace({0.0, 5}, {0.0, 3}));
  EXPECT_FALSE(s.should_replace({0.0, 3}, {0.0, 5}));
}

TEST(BestMetric, PrefersLowerMetric) {
  BestMetricSelection s;
  EXPECT_TRUE(s.better({1.0, 9}, {2.0, 3}));
  EXPECT_FALSE(s.better({2.0, 3}, {1.0, 9}));
}

TEST(BestMetric, HopsBreakMetricTies) {
  BestMetricSelection s;
  EXPECT_TRUE(s.better({1.0, 3}, {1.0, 4}));
  EXPECT_FALSE(s.better({1.0, 4}, {1.0, 3}));
}

TEST(BestMetric, WaitsAndDisallowsIntermediate) {
  BestMetricSelection s(sim::Time::millis(50.0), 0.15);
  EXPECT_EQ(s.reply_wait(), sim::Time::millis(50.0));
  EXPECT_FALSE(s.allow_intermediate_reply());
}

TEST(BestMetric, HysteresisBlocksMarginalImprovement) {
  BestMetricSelection s(sim::Time::millis(50.0), 0.15);
  // 10% better: below the 15% hysteresis threshold.
  EXPECT_FALSE(s.should_replace({1.00, 4}, {0.90, 4}));
  // 20% better: replaces.
  EXPECT_TRUE(s.should_replace({1.00, 4}, {0.80, 4}));
}

TEST(BestMetric, EqualLoadShorterPathReplaces) {
  BestMetricSelection s;
  EXPECT_TRUE(s.should_replace({1.0, 6}, {1.0, 4}));
  EXPECT_FALSE(s.should_replace({1.0, 4}, {1.0, 6}));
}

TEST(BestMetric, WorseCandidateNeverReplaces) {
  BestMetricSelection s;
  EXPECT_FALSE(s.should_replace({1.0, 4}, {1.5, 3}));
}

}  // namespace
}  // namespace wmn::routing
