#include <gtest/gtest.h>

#include <cmath>

#include "core/check.hpp"
#include "core/clnlr_policy.hpp"
#include "routing/rebroadcast_policy.hpp"

namespace wmn {
namespace {

using core::ClnlrPolicyParams;
using core::ClnlrRebroadcastPolicy;
using routing::CounterPolicy;
using routing::FloodPolicy;
using routing::GossipPolicy;
using routing::RebroadcastAction;
using routing::RebroadcastContext;

RebroadcastContext ctx(std::uint8_t hops, std::size_t degree, double nbhd_load) {
  RebroadcastContext c;
  c.hop_count = hops;
  c.neighbor_count = degree;
  c.own_load = nbhd_load;
  c.neighbourhood_load = nbhd_load;
  return c;
}

TEST(FloodPolicy, AlwaysForwards) {
  FloodPolicy p;
  sim::RngStream rng(1, 1);
  for (int i = 0; i < 200; ++i) {
    const auto d = p.decide(ctx(3, 10, 0.9), rng);
    EXPECT_EQ(d.action, RebroadcastAction::kForward);
    EXPECT_GE(d.delay, sim::Time::zero());
    EXPECT_LE(d.delay, sim::Time::millis(10.0));
  }
}

TEST(GossipPolicy, ForwardRateMatchesP) {
  GossipPolicy p(0.6, /*always_forward_hops=*/0);
  sim::RngStream rng(1, 2);
  int fwd = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.decide(ctx(5, 10, 0.0), rng).action == RebroadcastAction::kForward) {
      ++fwd;
    }
  }
  EXPECT_NEAR(static_cast<double>(fwd) / n, 0.6, 0.02);
}

TEST(GossipPolicy, FirstHopsAlwaysForward) {
  GossipPolicy p(0.01, /*always_forward_hops=*/2);
  sim::RngStream rng(1, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.decide(ctx(0, 10, 0.0), rng).action, RebroadcastAction::kForward);
    EXPECT_EQ(p.decide(ctx(1, 10, 0.0), rng).action, RebroadcastAction::kForward);
  }
}

TEST(CounterPolicy, AlwaysDefers) {
  CounterPolicy p(3, sim::Time::millis(8.0));
  sim::RngStream rng(1, 4);
  for (int i = 0; i < 100; ++i) {
    const auto d = p.decide(ctx(2, 10, 0.0), rng);
    EXPECT_EQ(d.action, RebroadcastAction::kDefer);
    EXPECT_LE(d.delay, sim::Time::millis(8.0));
  }
}

TEST(CounterPolicy, AssessComparesTotalCopiesToThreshold) {
  CounterPolicy p(3);
  sim::RngStream rng(1, 5);
  RebroadcastContext c = ctx(2, 10, 0.0);
  c.duplicates_seen = 0;  // 1 copy total
  EXPECT_TRUE(p.assess(c, rng));
  c.duplicates_seen = 1;  // 2 copies
  EXPECT_TRUE(p.assess(c, rng));
  c.duplicates_seen = 2;  // 3 copies = threshold -> suppress
  EXPECT_FALSE(p.assess(c, rng));
  c.duplicates_seen = 10;
  EXPECT_FALSE(p.assess(c, rng));
}

TEST(DefaultAssess, NonDeferringPoliciesSayForward) {
  FloodPolicy p;
  sim::RngStream rng(1, 6);
  EXPECT_TRUE(p.assess(ctx(1, 5, 0.0), rng));
}

TEST(DensityGossipPolicy, ProbabilityInverselyScalesWithDegree) {
  routing::DensityGossipPolicy p(0.65, 8.0, 0.25);
  // At the reference degree p equals p_base; sparse nodes flood.
  EXPECT_DOUBLE_EQ(p.forward_probability(8), 0.65);
  EXPECT_DOUBLE_EQ(p.forward_probability(4), 1.0);   // clamped up
  EXPECT_DOUBLE_EQ(p.forward_probability(0), 1.0);   // alone
  EXPECT_NEAR(p.forward_probability(16), 0.325, 1e-12);
  EXPECT_DOUBLE_EQ(p.forward_probability(100), 0.25);  // floor
}

TEST(DensityGossipPolicy, ForwardRateMatchesDegreeScaledP) {
  routing::DensityGossipPolicy p(0.65, 8.0, 0.25, /*always_forward_hops=*/0);
  sim::RngStream rng(1, 20);
  int fwd = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.decide(ctx(5, 16, 0.0), rng).action == RebroadcastAction::kForward) {
      ++fwd;
    }
  }
  EXPECT_NEAR(static_cast<double>(fwd) / n, 0.325, 0.02);
}

TEST(DensityGossipPolicy, FirstHopsAlwaysForward) {
  routing::DensityGossipPolicy p(0.1, 8.0, 0.05, /*always_forward_hops=*/1);
  sim::RngStream rng(1, 21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.decide(ctx(0, 40, 0.0), rng).action,
              RebroadcastAction::kForward);
  }
}

// ----- CLNLR probability formula -------------------------------------------

TEST(ClnlrPolicy, IdleNetworkFloodsRegardlessOfDensity) {
  ClnlrRebroadcastPolicy p;
  // Zero load: density damping is gated off.
  EXPECT_DOUBLE_EQ(p.forward_probability(ctx(5, 30, 0.0)), 1.0);
  EXPECT_DOUBLE_EQ(p.forward_probability(ctx(5, 5, 0.0)), 1.0);
}

TEST(ClnlrPolicy, ProbabilityDecreasesWithLoad) {
  ClnlrRebroadcastPolicy p;
  double prev = 2.0;
  for (double load = 0.0; load <= 1.0; load += 0.1) {
    const double prob = p.forward_probability(ctx(5, 8, load));
    EXPECT_LE(prob, prev);
    prev = prob;
  }
}

TEST(ClnlrPolicy, ProbabilityDecreasesWithDensityUnderLoad) {
  ClnlrRebroadcastPolicy p;
  const double sparse = p.forward_probability(ctx(5, 8, 0.3));
  const double dense = p.forward_probability(ctx(5, 24, 0.3));
  EXPECT_GT(sparse, dense);
}

TEST(ClnlrPolicy, ProbabilityClampedToBounds) {
  ClnlrPolicyParams params;
  params.p_min = 0.35;
  ClnlrRebroadcastPolicy p(params);
  for (double load = 0.0; load <= 1.0; load += 0.05) {
    for (std::size_t deg = 1; deg <= 60; deg += 7) {
      const double prob = p.forward_probability(ctx(5, deg, load));
      EXPECT_GE(prob, params.p_min);
      EXPECT_LE(prob, params.p_max);
    }
  }
}

TEST(ClnlrPolicy, SparseNodesAlwaysForward) {
  ClnlrRebroadcastPolicy p;
  sim::RngStream rng(1, 7);
  for (int i = 0; i < 100; ++i) {
    // Degree 2 with extreme load: still forwards (cut-vertex guard).
    EXPECT_EQ(p.decide(ctx(5, 2, 1.0), rng).action, RebroadcastAction::kForward);
  }
}

TEST(ClnlrPolicy, FirstHopAlwaysForwards) {
  ClnlrRebroadcastPolicy p;
  sim::RngStream rng(1, 8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.decide(ctx(0, 30, 1.0), rng).action, RebroadcastAction::kForward);
  }
}

TEST(ClnlrPolicy, LosingCoinFlipDefersNotDrops) {
  ClnlrPolicyParams params;
  params.p_min = 0.0;
  params.load_weight = 10.0;  // force p to p_min under load
  ClnlrRebroadcastPolicy p(params);
  sim::RngStream rng(1, 9);
  for (int i = 0; i < 100; ++i) {
    const auto d = p.decide(ctx(5, 20, 0.9), rng);
    EXPECT_EQ(d.action, RebroadcastAction::kDefer);
    EXPECT_GT(d.delay, sim::Time::zero());
  }
}

TEST(ClnlrPolicy, ZeroDivisorParamsGuardedAndClamped) {
  // degree_ref and density_gate divide the density term: zero must trip
  // the construction-time check, and under kLogAndCount (the bench
  // policy, where execution continues) the divisors are clamped so the
  // probability stays finite instead of going NaN.
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  core::reset_check_violations();
  ClnlrPolicyParams params;
  params.degree_ref = 0.0;
  params.density_gate = 0.0;
  ClnlrRebroadcastPolicy p(params);
  EXPECT_EQ(core::check_violations(), 2u);
  for (double load : {0.0, 0.5, 1.0}) {
    const double prob = p.forward_probability(ctx(5, 20, load));
    EXPECT_TRUE(std::isfinite(prob));
    EXPECT_GE(prob, params.p_min);
    EXPECT_LE(prob, params.p_max);
  }
  core::reset_check_violations();
  core::set_check_policy(core::CheckPolicy::kAbort);
}

TEST(ClnlrPolicy, InvertedProbabilityBoundsGuarded) {
  core::set_check_policy(core::CheckPolicy::kLogAndCount);
  core::reset_check_violations();
  ClnlrPolicyParams params;
  params.p_min = 0.9;
  params.p_max = 0.5;  // p_min > p_max trips the ordering check
  ClnlrRebroadcastPolicy p(params);
  EXPECT_EQ(core::check_violations(), 1u);
  core::reset_check_violations();
  core::set_check_policy(core::CheckPolicy::kAbort);
}

TEST(ClnlrPolicy, RescueForwardsOnlyWhenNoDuplicates) {
  ClnlrRebroadcastPolicy p;
  sim::RngStream rng(1, 10);
  RebroadcastContext c = ctx(5, 20, 0.9);
  c.duplicates_seen = 0;
  EXPECT_TRUE(p.assess(c, rng));
  c.duplicates_seen = 1;
  EXPECT_FALSE(p.assess(c, rng));
}

TEST(ClnlrPolicy, JitterGrowsWithLoad) {
  // Statistical check: mean delay at high load > mean delay when idle.
  ClnlrRebroadcastPolicy p;
  sim::RngStream rng(1, 11);
  auto mean_delay = [&](double load) {
    double sum = 0;
    int n = 0;
    for (int i = 0; i < 3000; ++i) {
      const auto d = p.decide(ctx(0, 8, load), rng);  // hop 0: always fwd
      sum += d.delay.to_seconds();
      ++n;
    }
    return sum / n;
  };
  EXPECT_GT(mean_delay(0.9), mean_delay(0.0) * 2.0);
}

// Property sweep: forward probability is monotone non-increasing in
// load for every density.
class ClnlrMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClnlrMonotone, NonIncreasingInLoad) {
  ClnlrRebroadcastPolicy p;
  const std::size_t degree = GetParam();
  double prev = 2.0;
  for (double load = 0.0; load <= 1.0001; load += 0.02) {
    const double prob = p.forward_probability(ctx(5, degree, load));
    EXPECT_LE(prob, prev + 1e-12);
    prev = prob;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, ClnlrMonotone,
                         ::testing::Values(3, 8, 12, 20, 40));

}  // namespace
}  // namespace wmn
