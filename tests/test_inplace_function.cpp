#include "sim/inplace_function.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/event.hpp"
#include "sim/scheduler.hpp"

namespace wmn::sim {
namespace {

// Global operator-new hook: counts heap allocations so tests can assert
// a region of code performed none. Counting only — never changes
// behaviour — so it is safe under ASan/TSan too.
std::size_t g_new_calls = 0;

struct AllocationCounter {
  std::size_t start;
  AllocationCounter() : start(g_new_calls) {}
  std::size_t count() const { return g_new_calls - start; }
};

}  // namespace
}  // namespace wmn::sim

void* operator new(std::size_t size) {
  ++wmn::sim::g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++wmn::sim::g_new_calls;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace wmn::sim {
namespace {

using Fn = InplaceFunction<int(int), 48>;

TEST(InplaceFunction, EmptyByDefault) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, InvokesStatelessLambda) {
  Fn f = [](int x) { return x * 2; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(21), 42);
}

TEST(InplaceFunction, InvokesCapturingLambda) {
  int base = 100;
  Fn f = [base](int x) { return base + x; };
  EXPECT_EQ(f(7), 107);
}

TEST(InplaceFunction, ConstructionDoesNotAllocate) {
  std::uint64_t a = 1, b = 2, c = 3, d = 4;  // 32 bytes of captures
  AllocationCounter allocs;
  Fn f = [a, b, c, d](int x) {
    return static_cast<int>(a + b + c + d) + x;
  };
  EXPECT_EQ(f(0), 10);
  EXPECT_EQ(allocs.count(), 0u)
      << "an inplace function must never touch the heap";
}

TEST(InplaceFunction, MovePreservesStateAndEmptiesSource) {
  int base = 5;
  Fn f = [base](int x) { return base + x; };
  Fn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(1), 6);
}

TEST(InplaceFunction, MoveAssignDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceFunction<void(), 48> f = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
    InplaceFunction<void(), 48> g = [] {};
    f = std::move(g);  // old capture must be destroyed now
    EXPECT_EQ(counter.use_count(), 1);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceFunction<void(), 48> f = [counter] { ++*counter; };
    f();
    EXPECT_EQ(*counter, 1);
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// The size constraint is part of the overload set (a requires-clause,
// not an internal static_assert), so a too-large capture is visible to
// is_constructible_v instead of being a hard error: this is what keeps
// "capture must fit in kEventCaptureBytes" testable.
TEST(InplaceFunction, RejectsOversizedCapturesAtCompileTime) {
  struct Big {
    unsigned char blob[kEventCaptureBytes + 1];
    void operator()() const {}
  };
  struct Fits {
    unsigned char blob[kEventCaptureBytes];
    void operator()() const {}
  };
  static_assert(!std::is_constructible_v<EventFn, Big>,
                "captures over kEventCaptureBytes must not compile");
  static_assert(std::is_constructible_v<EventFn, Fits>,
                "captures of exactly kEventCaptureBytes must compile");
  SUCCEED();
}

TEST(InplaceFunction, EventFnCapacityMatchesContract) {
  static_assert(std::is_same_v<EventFn, InplaceFunction<void(), kEventCaptureBytes>>);
  static_assert(kEventCaptureBytes == 48);
  SUCCEED();
}

TEST(InplaceFunction, SchedulingDoesNotAllocatePerEventAfterWarmup) {
  Scheduler s;
  // Warm up: let the slot slab and heap vector reach steady-state size.
  for (int i = 0; i < 64; ++i) {
    s.schedule(Time::nanos(i), [] {});
  }
  while (!s.empty()) s.pop().fn();

  int fired = 0;
  AllocationCounter allocs;
  for (int i = 0; i < 64; ++i) {
    s.schedule(Time::nanos(i), [&fired] { ++fired; });
  }
  while (!s.empty()) s.pop().fn();
  EXPECT_EQ(fired, 64);
  EXPECT_EQ(allocs.count(), 0u)
      << "steady-state schedule/pop must not allocate";
}

}  // namespace
}  // namespace wmn::sim
