#include "net/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace wmn::net {
namespace {

TEST(Address, DefaultIsInvalid) {
  Address a;
  EXPECT_FALSE(a.is_valid());
  EXPECT_FALSE(a.is_broadcast());
}

TEST(Address, BroadcastIsDistinct) {
  EXPECT_TRUE(Address::broadcast().is_broadcast());
  EXPECT_TRUE(Address::broadcast().is_valid());
  EXPECT_NE(Address::broadcast(), Address::invalid());
}

TEST(Address, ValueRoundTrip) {
  const Address a(42);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_TRUE(a.is_valid());
  EXPECT_FALSE(a.is_broadcast());
}

TEST(Address, Ordering) {
  EXPECT_LT(Address(1), Address(2));
  EXPECT_EQ(Address(7), Address(7));
  EXPECT_NE(Address(7), Address(8));
}

TEST(Address, HashUsableInSets) {
  std::unordered_set<Address> set;
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(Address(i));
  set.insert(Address(50));  // duplicate
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(Address(99)));
  EXPECT_FALSE(set.contains(Address(100)));
}

TEST(Address, StringRendering) {
  EXPECT_EQ(Address(5).str(), "5");
  EXPECT_EQ(Address::broadcast().str(), "*");
  EXPECT_EQ(Address::invalid().str(), "-");
}

}  // namespace
}  // namespace wmn::net
