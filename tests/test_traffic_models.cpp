// Traffic-source timing and production-workload model tests.
//
// Pins the timing contract shared by every traffic:: source (see
// cbr_source.hpp): absolute-base pacing (no cumulative rounding drift)
// and no events scheduled at or past `stop`. Also exercises the F11
// workload family: heavy-tailed on/off bursts, the per-user session
// aggregation model, and the seeded flow-arrival process.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/protocols.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "traffic/cbr_source.hpp"
#include "traffic/flow_builder.hpp"
#include "traffic/flow_registry.hpp"
#include "traffic/heavy_tail_source.hpp"
#include "traffic/packet_sink.hpp"
#include "traffic/rate_envelope.hpp"
#include "traffic/session_source.hpp"

namespace wmn::traffic {
namespace {

using mobility::ConstantPositionModel;
using mobility::Vec2;

// Two adjacent nodes with full stacks and a sink on node 1.
struct TrafficBed {
  explicit TrafficBed(std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::make_unique<phy::LogDistanceModel>()) {
    core::ProtocolOptions options;
    for (std::uint32_t id = 0; id < 2; ++id) {
      mobilities.push_back(std::make_unique<ConstantPositionModel>(
          Vec2{static_cast<double>(id) * 150.0, 0.0}));
      phys.push_back(std::make_unique<phy::WifiPhy>(sim, phy::PhyConfig{}, id,
                                                    mobilities.back().get()));
      channel.attach(phys.back().get());
      macs.push_back(std::make_unique<mac::DcfMac>(
          sim, mac::MacConfig{}, net::Address(id), *phys.back(), factory));
      agents.push_back(core::make_agent(core::Protocol::kAodvFlood, options, sim,
                                        net::Address(id), *macs.back(), factory));
      sinks.push_back(std::make_unique<PacketSink>(sim, *agents.back(), registry));
    }
  }

  sim::Simulator sim;
  phy::WirelessChannel channel;
  net::PacketFactory factory;
  FlowRegistry registry;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<routing::AodvAgent>> agents;
  std::vector<std::unique_ptr<PacketSink>> sinks;
};

// ----- CBR pacing drift (regression) ----------------------------------------
//
// 3 pps has a period of 1/3 s, which rounds DOWN to 333333333 ns. The
// old per-tick rescheduling lost 1/3 ns per packet, so over 100 s the
// schedule ran ~100 ns early and a 301st packet slipped in before the
// stop boundary. Absolute-base pacing puts tick k at start + k/3 s with
// error below one rounding ulp independent of k: exactly 300 packets.
TEST(CbrTiming, NonDyadicRateSendsExactCount) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 3.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(101.0);
  cfg.randomize_start_phase = false;
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(102.0));
  EXPECT_EQ(src.packets_sent(), 300u);
}

TEST(CbrTiming, DyadicRateSendsExactCount) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 4.0;
  cfg.start = sim::Time::seconds(2.0);
  cfg.stop = sim::Time::seconds(12.0);
  cfg.randomize_start_phase = false;
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(14.0));
  EXPECT_EQ(src.packets_sent(), 40u);
}

// With a random phase the count may only shift by the one packet the
// phase offset displaces across the stop boundary.
TEST(CbrTiming, RandomPhaseCountWithinOne) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 3.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(31.0);
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(33.0));
  EXPECT_GE(src.packets_sent(), 89u);
  EXPECT_LE(src.packets_sent(), 90u);
}

// ----- stop-boundary guards (regression) ------------------------------------

TEST(CbrTiming, NoEventsAfterStop) {
  TrafficBed tb;
  CbrConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 10.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(5.0);
  CbrSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(6.0));
  EXPECT_FALSE(src.timer_armed());
  const std::uint64_t at_stop = src.packets_sent();
  tb.sim.run_until(sim::Time::seconds(20.0));
  EXPECT_EQ(src.packets_sent(), at_stop);
  EXPECT_FALSE(src.timer_armed());
}

TEST(OnOffTiming, NoEventsAfterStop) {
  TrafficBed tb;
  PoissonOnOffConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 20.0;
  cfg.mean_on = sim::Time::seconds(0.5);
  cfg.mean_off = sim::Time::seconds(0.5);
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(8.0);
  PoissonOnOffSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(9.0));
  EXPECT_FALSE(src.timer_armed());
  const std::uint64_t at_stop = src.packets_sent();
  tb.sim.run_until(sim::Time::seconds(25.0));
  EXPECT_EQ(src.packets_sent(), at_stop);
  EXPECT_FALSE(src.timer_armed());
}

// An OFF period that would end past `stop` must not re-arm the burst
// cycle (the stale off->on wakeup bug).
TEST(OnOffTiming, OffPeriodCrossingStopGoesQuiet) {
  TrafficBed tb;
  PoissonOnOffConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 50.0;
  cfg.mean_on = sim::Time::seconds(0.2);
  cfg.mean_off = sim::Time::seconds(30.0);  // OFF gaps dwarf the window
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(5.0);
  PoissonOnOffSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(40.0));
  EXPECT_FALSE(src.timer_armed());
}

// ----- heavy-tailed on/off source -------------------------------------------

TEST(HeavyTailSource, EmitsBurstsWithinWindow) {
  TrafficBed tb;
  HeavyTailOnOffConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.rate_pps = 20.0;
  cfg.mean_on = sim::Time::seconds(1.0);
  cfg.mean_off = sim::Time::seconds(1.0);
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(21.0);
  HeavyTailOnOffSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(23.0));
  EXPECT_GT(src.bursts_started(), 0u);
  EXPECT_GT(src.packets_sent(), 0u);
  // Roughly half duty cycle: well below the CBR-equivalent 400.
  EXPECT_LT(src.packets_sent(), 400u);
  EXPECT_FALSE(src.timer_armed());
  const std::uint64_t at_stop = src.packets_sent();
  tb.sim.run_until(sim::Time::seconds(60.0));
  EXPECT_EQ(src.packets_sent(), at_stop);
}

TEST(HeavyTailSource, SameSeedSameSchedule) {
  auto run_once = [] {
    TrafficBed tb(42);
    HeavyTailOnOffConfig cfg;
    cfg.flow_id = 7;
    cfg.dest = net::Address(1);
    cfg.rate_pps = 20.0;
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(15.0);
    HeavyTailOnOffSource src(tb.sim, cfg, *tb.agents[0], tb.factory,
                             tb.registry);
    tb.sim.run_until(sim::Time::seconds(16.0));
    return std::pair{src.packets_sent(), src.bursts_started()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ----- per-user session aggregation -----------------------------------------

TEST(SessionSource, SessionsArriveAndComplete) {
  TrafficBed tb;
  SessionSourceConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.users = 1000;
  cfg.session_rate_per_user_per_s = 0.002;  // 2 sessions/s aggregate
  cfg.session_rate_pps = 16.0;
  cfg.mean_session_pkts = 8.0;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(21.0);
  SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(23.0));
  EXPECT_GT(src.sessions_started(), 5u);
  EXPECT_GT(src.sessions_completed(), 0u);
  EXPECT_LE(src.sessions_completed(), src.sessions_started());
  EXPECT_GT(src.packets_sent(), src.sessions_started());
  // After stop every session and the arrival process are quiet.
  EXPECT_FALSE(src.timer_armed());
  EXPECT_EQ(src.active_sessions(), 0u);
  // All packets share the node's one aggregate flow.
  const FlowRecord* r = tb.registry.find(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->sent, src.packets_sent());
}

TEST(SessionSource, ConcurrencyCapRejectsNotTruncates) {
  TrafficBed tb;
  SessionSourceConfig cfg;
  cfg.flow_id = 1;
  cfg.dest = net::Address(1);
  cfg.users = 1000;
  cfg.session_rate_per_user_per_s = 0.05;  // 50 arrivals/s
  cfg.session_rate_pps = 16.0;
  cfg.mean_session_pkts = 20.0;  // ~1.25 s per session
  cfg.max_active_sessions = 1;
  cfg.start = sim::Time::seconds(1.0);
  cfg.stop = sim::Time::seconds(6.0);
  SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
  tb.sim.run_until(sim::Time::seconds(8.0));
  EXPECT_GT(src.sessions_rejected(), 0u);
  EXPECT_GT(src.sessions_started(), 0u);
  EXPECT_FALSE(src.timer_armed());
}

// Rejected arrivals still consume their RNG draws, so the arrival
// process (and everything after it) is identical whether or not the
// cap bites — same seed, different caps, same arrival count.
TEST(SessionSource, RejectionDoesNotPerturbArrivalProcess) {
  auto arrivals_with_cap = [](std::uint32_t cap) {
    TrafficBed tb(9);
    SessionSourceConfig cfg;
    cfg.flow_id = 3;
    cfg.dest = net::Address(1);
    cfg.users = 1000;
    cfg.session_rate_per_user_per_s = 0.02;  // 20 arrivals/s
    cfg.session_rate_pps = 16.0;
    cfg.mean_session_pkts = 20.0;
    cfg.max_active_sessions = cap;
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(11.0);
    SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
    tb.sim.run_until(sim::Time::seconds(12.0));
    return src.sessions_started() + src.sessions_rejected();
  };
  EXPECT_EQ(arrivals_with_cap(1), arrivals_with_cap(64));
}

TEST(SessionSource, SameSeedSameWorkload) {
  auto run_once = [] {
    TrafficBed tb(123);
    SessionSourceConfig cfg;
    cfg.flow_id = 2;
    cfg.dest = net::Address(1);
    cfg.users = 500;
    cfg.session_rate_per_user_per_s = 0.004;
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(16.0);
    SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
    tb.sim.run_until(sim::Time::seconds(18.0));
    return std::tuple{src.packets_sent(), src.sessions_started(),
                      src.sessions_completed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ----- seeded flow-arrival process ------------------------------------------

TEST(ArrivalOffsets, FirstIsZeroAndNonDecreasing) {
  sim::RngStream rng(7, 0);
  const auto offs = arrival_offsets(8, sim::Time::seconds(2.0),
                                    sim::Time::seconds(60.0), rng);
  ASSERT_EQ(offs.size(), 8u);
  EXPECT_EQ(offs[0], sim::Time::zero());
  for (std::size_t i = 1; i < offs.size(); ++i) {
    EXPECT_GE(offs[i], offs[i - 1]);
    EXPECT_LE(offs[i], sim::Time::seconds(60.0));
  }
}

TEST(ArrivalOffsets, ClampedToHorizon) {
  sim::RngStream rng(7, 1);
  const sim::Time horizon = sim::Time::seconds(1.0);
  const auto offs =
      arrival_offsets(32, sim::Time::seconds(10.0), horizon, rng);
  for (const sim::Time t : offs) EXPECT_LE(t, horizon);
  EXPECT_EQ(offs.back(), horizon);  // mean gap >> horizon: clamp must bite
}

TEST(ArrivalOffsets, Deterministic) {
  sim::RngStream a(11, 3);
  sim::RngStream b(11, 3);
  EXPECT_EQ(arrival_offsets(10, sim::Time::seconds(1.0),
                            sim::Time::seconds(30.0), a),
            arrival_offsets(10, sim::Time::seconds(1.0),
                            sim::Time::seconds(30.0), b));
}

TEST(ArrivalOffsets, ZeroFlows) {
  sim::RngStream rng(1, 0);
  EXPECT_TRUE(arrival_offsets(0, sim::Time::seconds(1.0),
                              sim::Time::seconds(10.0), rng)
                  .empty());
}

// ----- piecewise-linear rate envelope (flash crowd / diurnal) ---------------

TEST(RateEnvelope, InterpolatesAndClampsEnds) {
  const RateEnvelope env({{10.0, 1.0}, {20.0, 5.0}, {30.0, 5.0}, {40.0, 1.0}});
  EXPECT_TRUE(env.active());
  EXPECT_DOUBLE_EQ(env.multiplier_at(0.0), 1.0);   // before first knot
  EXPECT_DOUBLE_EQ(env.multiplier_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(env.multiplier_at(15.0), 3.0);  // linear ramp
  EXPECT_DOUBLE_EQ(env.multiplier_at(25.0), 5.0);  // plateau
  EXPECT_DOUBLE_EQ(env.multiplier_at(35.0), 3.0);  // ramp down
  EXPECT_DOUBLE_EQ(env.multiplier_at(99.0), 1.0);  // after last knot
}

TEST(RateEnvelope, EmptyIsInactiveIdentity) {
  const RateEnvelope env;
  EXPECT_FALSE(env.active());
  EXPECT_DOUBLE_EQ(env.multiplier_at(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(env.multiplier_at(123.0), 1.0);
}

TEST(RateEnvelope, OriginShiftsKnotTimes) {
  // Knots are relative to the envelope origin (the traffic start), so
  // a source that begins at t=5 sees knot "0" at absolute t=5.
  const RateEnvelope env({{0.0, 2.0}, {10.0, 4.0}}, /*origin_s=*/5.0);
  EXPECT_DOUBLE_EQ(env.multiplier_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(env.multiplier_at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(env.multiplier_at(15.0), 4.0);
}

TEST(RateEnvelope, ZeroMultiplierFlooredNotDivByZero) {
  const RateEnvelope env({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_GE(env.multiplier_at(0.0), RateEnvelope::kMinMultiplier);
}

TEST(SessionSource, EnvelopeDeterministic) {
  auto run_once = [] {
    TrafficBed tb(77);
    SessionSourceConfig cfg;
    cfg.flow_id = 2;
    cfg.dest = net::Address(1);
    cfg.users = 1000;
    cfg.session_rate_per_user_per_s = 0.002;
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(21.0);
    // Flash crowd: 8x surge in the middle of the window.
    cfg.envelope = RateEnvelope({{0.0, 1.0}, {8.0, 1.0}, {9.0, 8.0},
                                 {14.0, 8.0}, {15.0, 1.0}},
                                /*origin_s=*/1.0);
    SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
    tb.sim.run_until(sim::Time::seconds(23.0));
    return std::tuple{src.packets_sent(), src.sessions_started(),
                      src.sessions_completed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SessionSource, FlashCrowdRaisesArrivals) {
  auto arrivals = [](const RateEnvelope& env) {
    TrafficBed tb(31);
    SessionSourceConfig cfg;
    cfg.flow_id = 2;
    cfg.dest = net::Address(1);
    cfg.users = 1000;
    cfg.session_rate_per_user_per_s = 0.002;  // 2/s baseline
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(21.0);
    cfg.envelope = env;
    SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
    tb.sim.run_until(sim::Time::seconds(23.0));
    return src.sessions_started() + src.sessions_rejected();
  };
  const std::uint64_t flat = arrivals(RateEnvelope{});
  const std::uint64_t surged = arrivals(RateEnvelope(
      {{0.0, 1.0}, {5.0, 1.0}, {6.0, 10.0}, {14.0, 10.0}, {15.0, 1.0}},
      /*origin_s=*/1.0));
  EXPECT_GT(surged, flat + flat / 2);  // clear surge, not noise
}

// A constant-1 envelope multiplies every rate by exactly 1.0, which is
// bit-exact: the workload must be identical to no envelope at all —
// the overload knob cannot perturb baseline results just by existing.
TEST(SessionSource, UnitEnvelopeBitIdenticalToNone) {
  auto workload = [](const RateEnvelope& env) {
    TrafficBed tb(55);
    SessionSourceConfig cfg;
    cfg.flow_id = 2;
    cfg.dest = net::Address(1);
    cfg.users = 1000;
    cfg.session_rate_per_user_per_s = 0.003;
    cfg.start = sim::Time::seconds(1.0);
    cfg.stop = sim::Time::seconds(16.0);
    cfg.envelope = env;
    SessionSource src(tb.sim, cfg, *tb.agents[0], tb.factory, tb.registry);
    tb.sim.run_until(sim::Time::seconds(18.0));
    return std::tuple{src.packets_sent(), src.sessions_started(),
                      tb.sim.events_executed()};
  };
  EXPECT_EQ(workload(RateEnvelope{}),
            workload(RateEnvelope({{0.0, 1.0}, {10.0, 1.0}})));
}

TEST(ArrivalOffsets, EnvelopeOverloadDeterministicAndDenser) {
  const RateEnvelope surge({{0.0, 1.0}, {10.0, 6.0}});
  sim::RngStream a(13, 2);
  sim::RngStream b(13, 2);
  const auto offs_a = arrival_offsets(12, sim::Time::seconds(2.0),
                                      sim::Time::seconds(60.0), a, surge);
  const auto offs_b = arrival_offsets(12, sim::Time::seconds(2.0),
                                      sim::Time::seconds(60.0), b, surge);
  EXPECT_EQ(offs_a, offs_b);
  // Rising rate squeezes the later gaps: the surged schedule finishes
  // no later than the flat one drawn from the same stream.
  sim::RngStream c(13, 2);
  const auto flat = arrival_offsets(12, sim::Time::seconds(2.0),
                                    sim::Time::seconds(60.0), c);
  EXPECT_LE(offs_a.back(), flat.back());
}

TEST(ArrivalOffsets, EmptyEnvelopeMatchesLegacyOverload) {
  sim::RngStream a(17, 4);
  sim::RngStream b(17, 4);
  EXPECT_EQ(arrival_offsets(9, sim::Time::seconds(1.5),
                            sim::Time::seconds(40.0), a),
            arrival_offsets(9, sim::Time::seconds(1.5),
                            sim::Time::seconds(40.0), b, RateEnvelope{}));
}

}  // namespace
}  // namespace wmn::traffic
