#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "mac/mac_header.hpp"
#include "routing/messages.hpp"

namespace wmn::net {
namespace {

struct TestHeaderA {
  static constexpr std::uint32_t kWireSize = 10;
  int value = 0;
};
struct TestHeaderB {
  static constexpr std::uint32_t kWireSize = 6;
  double weight = 0.0;
};

TEST(Packet, SizeIsPayloadPlusHeaders) {
  PacketFactory f;
  Packet p = f.make(512, sim::Time::zero());
  EXPECT_EQ(p.size_bytes(), 512u);
  p.push(TestHeaderA{1});
  EXPECT_EQ(p.size_bytes(), 522u);
  p.push(TestHeaderB{2.0});
  EXPECT_EQ(p.size_bytes(), 528u);
  (void)p.pop<TestHeaderB>();
  EXPECT_EQ(p.size_bytes(), 522u);
}

TEST(Packet, HeaderStackLifo) {
  PacketFactory f;
  Packet p = f.make(0, sim::Time::zero());
  p.push(TestHeaderA{7});
  p.push(TestHeaderB{3.5});
  EXPECT_TRUE(p.top_is<TestHeaderB>());
  EXPECT_FALSE(p.top_is<TestHeaderA>());
  EXPECT_DOUBLE_EQ(p.peek<TestHeaderB>().weight, 3.5);
  const TestHeaderB b = p.pop<TestHeaderB>();
  EXPECT_DOUBLE_EQ(b.weight, 3.5);
  EXPECT_TRUE(p.top_is<TestHeaderA>());
  EXPECT_EQ(p.pop<TestHeaderA>().value, 7);
  EXPECT_EQ(p.header_count(), 0u);
}

TEST(Packet, CopySharesHeadersSafely) {
  PacketFactory f;
  Packet a = f.make(100, sim::Time::zero());
  a.push(TestHeaderA{1});
  Packet b = a;  // shallow header share
  EXPECT_EQ(b.size_bytes(), a.size_bytes());
  // Popping from the copy must not affect the original.
  (void)b.pop<TestHeaderA>();
  EXPECT_EQ(b.header_count(), 0u);
  EXPECT_EQ(a.header_count(), 1u);
  EXPECT_EQ(a.peek<TestHeaderA>().value, 1);
}

TEST(Packet, FactoryAssignsUniqueUids) {
  PacketFactory f;
  Packet a = f.make(0, sim::Time::zero());
  Packet b = f.make(0, sim::Time::zero());
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_EQ(f.packets_created(), 2u);
}

TEST(Packet, CopyKeepsUid) {
  PacketFactory f;
  Packet a = f.make(0, sim::Time::zero());
  Packet b = a;
  EXPECT_EQ(a.uid(), b.uid());
}

TEST(Packet, FlowInfoRoundTrip) {
  PacketFactory f;
  Packet p = f.make(512, sim::Time::seconds(1.0));
  EXPECT_FALSE(p.flow_info().valid);
  p.set_flow_info(Packet::FlowInfo{9, 1234, sim::Time::seconds(2.0), true});
  Packet copy = p;
  EXPECT_TRUE(copy.flow_info().valid);
  EXPECT_EQ(copy.flow_info().flow_id, 9u);
  EXPECT_EQ(copy.flow_info().seq, 1234u);
  EXPECT_EQ(copy.flow_info().sent_at, sim::Time::seconds(2.0));
}

TEST(Packet, CreatedTimePreserved) {
  PacketFactory f;
  Packet p = f.make(0, sim::Time::millis(123.0));
  EXPECT_EQ(p.created(), sim::Time::millis(123.0));
}

TEST(Packet, RealHeaderSizesMatchWireAccounting) {
  PacketFactory f;
  Packet p = f.make(512, sim::Time::zero());
  p.push(routing::DataHeader{});
  EXPECT_EQ(p.size_bytes(), 512u + 20u);
  p.push(mac::MacHeader{});
  EXPECT_EQ(p.size_bytes(), 512u + 20u + 28u);
}

TEST(Packet, RreqWithLoadTlvBillsExtension) {
  PacketFactory f;
  Packet baseline = f.make(0, sim::Time::zero());
  baseline.push(routing::RreqHeader{});
  Packet extended = f.make(0, sim::Time::zero());
  extended.push(routing::LoadTlv{0.4});
  extended.push(routing::RreqHeader{});
  EXPECT_EQ(extended.size_bytes(), baseline.size_bytes() + routing::LoadTlv::kWireSize);
}

}  // namespace
}  // namespace wmn::net
