#include "mobility/mobility_model.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace wmn::mobility {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, 1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 5.0}));
  EXPECT_EQ((a - b), (Vec2{2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{6.0, 8.0}));
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.distance_to(b), std::hypot(2.0, 3.0));
}

TEST(Vec2, DirectionToIsUnit) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  EXPECT_EQ(a.direction_to(b), (Vec2{1.0, 0.0}));
  EXPECT_EQ(a.direction_to(a), (Vec2{0.0, 0.0}));  // coincident
}

TEST(ConstantPosition, NeverMoves) {
  ConstantPositionModel m(Vec2{5.0, 7.0});
  EXPECT_EQ(m.position(sim::Time::zero()), (Vec2{5.0, 7.0}));
  EXPECT_EQ(m.position(sim::Time::seconds(1e6)), (Vec2{5.0, 7.0}));
  EXPECT_DOUBLE_EQ(m.speed(sim::Time::seconds(3.0)), 0.0);
}

TEST(ConstantVelocity, LinearMotion) {
  ConstantVelocityModel m(Vec2{0.0, 0.0}, Vec2{2.0, -1.0}, sim::Time::zero());
  const Vec2 p = m.position(sim::Time::seconds(3.0));
  EXPECT_DOUBLE_EQ(p.x, 6.0);
  EXPECT_DOUBLE_EQ(p.y, -3.0);
  EXPECT_EQ(m.velocity(sim::Time::zero()), (Vec2{2.0, -1.0}));
}

TEST(ConstantVelocity, RespectsStartTime) {
  ConstantVelocityModel m(Vec2{10.0, 0.0}, Vec2{1.0, 0.0}, sim::Time::seconds(5.0));
  EXPECT_DOUBLE_EQ(m.position(sim::Time::seconds(7.0)).x, 12.0);
}

class RandomWaypointTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWaypointTest, StaysInsideArea) {
  sim::Simulator s(GetParam());
  RandomWaypointConfig cfg;
  cfg.area_width_m = 300.0;
  cfg.area_height_m = 200.0;
  cfg.min_speed_mps = 1.0;
  cfg.max_speed_mps = 20.0;
  cfg.pause = sim::Time::seconds(0.5);
  RandomWaypointModel m(s, cfg, Vec2{150.0, 100.0}, 7);

  // Sample the position as the simulation advances.
  for (int i = 1; i <= 600; ++i) {
    s.schedule_at(sim::Time::seconds(i * 0.5), [&m, &s, &cfg] {
      const Vec2 p = m.position(s.now());
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, cfg.area_width_m);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, cfg.area_height_m);
      EXPECT_LE(m.speed(s.now()), cfg.max_speed_mps + 1e-9);
    });
  }
  s.run_until(sim::Time::seconds(301.0));
}

TEST_P(RandomWaypointTest, ActuallyMoves) {
  sim::Simulator s(GetParam());
  RandomWaypointConfig cfg;
  cfg.pause = sim::Time::seconds(0.1);
  cfg.min_speed_mps = 5.0;
  cfg.max_speed_mps = 10.0;
  RandomWaypointModel m(s, cfg, Vec2{500.0, 500.0}, 3);
  const Vec2 start = m.position(s.now());
  double max_dist = 0.0;
  for (int i = 1; i <= 200; ++i) {
    s.schedule_at(sim::Time::seconds(i * 1.0), [&] {
      max_dist = std::max(max_dist, start.distance_to(m.position(s.now())));
    });
  }
  s.run_until(sim::Time::seconds(201.0));
  EXPECT_GT(max_dist, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWaypointTest, ::testing::Values(1, 7, 1234));

TEST(RandomWaypoint, DeterministicPerStream) {
  auto trace = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    RandomWaypointConfig cfg;
    RandomWaypointModel m(s, cfg, Vec2{10.0, 10.0}, 5);
    std::vector<Vec2> points;
    for (int i = 1; i <= 50; ++i) {
      s.schedule_at(sim::Time::seconds(i * 2.0),
                    [&] { points.push_back(m.position(s.now())); });
    }
    s.run_until(sim::Time::seconds(101.0));
    return points;
  };
  const auto a = trace(77);
  const auto b = trace(77);
  const auto c = trace(78);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (!(a[i] == c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace wmn::mobility
