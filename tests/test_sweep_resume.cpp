// Checkpoint/resume journal tests: bit-exact record round-trips, the
// kill-mid-sweep → resume → bit-identical-aggregate contract, refusal
// on identity mismatch, and tolerance of damaged journal lines.
#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "sim/cancel_token.hpp"

namespace wmn::exp {
namespace {

// Fast real scenario: small mesh, short traffic window (~a second of
// wall time per replication), same shape test_fault.cpp uses.
ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n_nodes = 25;
  cfg.area_width_m = 600.0;
  cfg.area_height_m = 600.0;
  cfg.traffic.n_flows = 4;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.drain = sim::Time::seconds(1.0);
  cfg.seed = seed;
  return cfg;
}

std::string temp_journal(const char* tag) {
  return testing::TempDir() + "wmn_journal_" + tag + ".jsonl";
}

RunMetrics awkward_metrics() {
  RunMetrics m;
  m.seed = 0xDEADBEEFCAFE1234ULL;
  m.data_sent = 1'000'000'007;
  m.data_delivered = 999'999'937;
  m.pdr = 0.1 + 0.2;                    // classic non-representable sum
  m.mean_delay_ms = 1.0 / 3.0;
  m.mean_jitter_ms = 5e-324;            // smallest denormal
  m.throughput_kbps = -0.0;             // signed zero must survive
  m.nrl = 1e308;
  m.forwarding_jain = 0.9999999999999999;
  m.per_node_forwarded = {0.0, 1.5, 2.25, 1.0 / 7.0};
  m.gateway_count = 2;
  m.per_gateway_delivered = {10.0, 12.5};
  m.fault_enabled = true;
  m.fault_downtime_s = 3.14159265358979;
  m.sim_event_count = 123456.0;
  m.wall_seconds = 0.875;
  m.check_violations = 0;
  return m;
}

TEST(Journal, RoundTripIsBitExact) {
  JournalRecord rec;
  rec.cell = 3;
  rec.rep = 7;
  rec.cfg_digest = 0x0123456789ABCDEFULL;
  rec.metrics = awkward_metrics();
  rec.fingerprint = fingerprint(rec.metrics);

  const std::string line = journal_line(rec);
  const auto parsed = parse_journal_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, rec.cell);
  EXPECT_EQ(parsed->rep, rec.rep);
  EXPECT_EQ(parsed->cfg_digest, rec.cfg_digest);
  EXPECT_EQ(parsed->fingerprint, rec.fingerprint);
  // The fingerprint recomputed from the parsed metrics matches the one
  // computed from the originals: every double survived bit-exactly.
  EXPECT_TRUE(journal_record_consistent(*parsed));
  EXPECT_EQ(fingerprint(parsed->metrics), fingerprint(rec.metrics));
  EXPECT_EQ(parsed->metrics.per_node_forwarded, rec.metrics.per_node_forwarded);
  EXPECT_EQ(parsed->metrics.per_gateway_delivered,
            rec.metrics.per_gateway_delivered);
  EXPECT_EQ(parsed->metrics.fault_enabled, rec.metrics.fault_enabled);
  // And serializing the parse reproduces the identical line.
  EXPECT_EQ(journal_line(*parsed), line);
}

TEST(Journal, DamagedLinesRejected) {
  JournalRecord rec;
  rec.cell = 1;
  rec.metrics = awkward_metrics();
  rec.fingerprint = fingerprint(rec.metrics);
  const std::string line = journal_line(rec);

  EXPECT_FALSE(parse_journal_line("").has_value());
  EXPECT_FALSE(parse_journal_line("{").has_value());
  EXPECT_FALSE(parse_journal_line("not json at all").has_value());
  // Truncation anywhere inside the record.
  EXPECT_FALSE(parse_journal_line(
                   std::string_view(line).substr(0, line.size() / 2))
                   .has_value());
  EXPECT_FALSE(parse_journal_line(
                   std::string_view(line).substr(0, line.size() - 1))
                   .has_value());
  // Trailing garbage after a well-formed record.
  EXPECT_FALSE(parse_journal_line(line + "x").has_value());
  // A flipped metrics byte parses but fails the consistency check.
  std::string flipped = line;
  const std::size_t pos = flipped.find("\"pdr\":\"");
  ASSERT_NE(pos, std::string::npos);
  // "pdr":"0x1.3333333333334p-2" — flip a mantissa digit so the value
  // still parses but its bits changed.
  flipped[pos + 12] = flipped[pos + 12] == '1' ? '2' : '1';
  const auto parsed = parse_journal_line(flipped);
  if (parsed.has_value()) {
    EXPECT_FALSE(journal_record_consistent(*parsed));
  }
}

TEST(Journal, ConfigDigestSeparatesConfigs) {
  const ScenarioConfig a = small_config(42);
  ScenarioConfig b = a;
  EXPECT_EQ(config_digest(a), config_digest(b));  // pure
  b.traffic.rate_pps = 5.0;
  EXPECT_NE(config_digest(a), config_digest(b));
  ScenarioConfig c = a;
  c.traffic.rate_envelope = {{0.0, 1.0}, {5.0, 4.0}};
  EXPECT_NE(config_digest(a), config_digest(c));
  ScenarioConfig d = a;
  d.event_budget = 1000;
  EXPECT_NE(config_digest(a), config_digest(d));
}

// The tentpole integration contract: a sweep killed partway (via the
// deterministic sweep event budget), resumed in a fresh engine, yields
// per-slot metrics bit-identical to an uninterrupted run.
TEST(SweepResume, KilledSweepResumesBitIdentical) {
  const std::string path = temp_journal("resume");
  std::remove(path.c_str());

  auto add_cells = [](SweepEngine& sweep) {
    for (std::uint64_t seed : {101, 202}) {
      sweep.add_cell(small_config(seed), 2, "cell" + std::to_string(seed));
    }
  };

  // Reference: uninterrupted, no journal.
  SweepEngine reference(1);
  add_cells(reference);
  reference.run();
  std::vector<std::uint64_t> want_fp;
  for (std::size_t c = 0; c < 2; ++c) {
    for (const RepOutcome& slot : reference.cell(c)) {
      ASSERT_TRUE(slot.ok());
      want_fp.push_back(fingerprint(*slot.metrics));
    }
  }

  // "Killed" run: the cumulative budget lets roughly half the slots
  // finish (threads=1 → deterministic cut point), journaling as it goes.
  const auto ref_events =
      static_cast<std::uint64_t>(reference.cell(0)[0].metrics->sim_event_count);
  SweepEngine killed(1);
  add_cells(killed);
  killed.enable_journal(path, /*resume=*/false);
  killed.set_sweep_event_budget(2 * ref_events - ref_events / 2);
  killed.run();
  ASSERT_GT(killed.failed_count(), 0u);          // something was cut off
  ASSERT_LT(killed.failed_count(), 4u);          // something completed

  // Resume: fresh engine, budget off, journal reloaded.
  SweepEngine resumed(1);
  add_cells(resumed);
  resumed.enable_journal(path, /*resume=*/true);
  resumed.run();
  EXPECT_EQ(resumed.resumed_count(), 4u - killed.failed_count());
  EXPECT_EQ(resumed.failed_count(), 0u);

  std::size_t i = 0;
  std::size_t restored = 0;
  for (std::size_t c = 0; c < 2; ++c) {
    for (const RepOutcome& slot : resumed.cell(c)) {
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(fingerprint(*slot.metrics), want_fp[i]) << "slot " << i;
      EXPECT_EQ(slot.seed, reference.cell(c)[i % 2].seed);
      restored += slot.restored ? 1 : 0;
      ++i;
    }
  }
  EXPECT_EQ(restored, resumed.resumed_count());

  // Second resume: now the journal covers everything; nothing re-runs.
  SweepEngine again(1);
  add_cells(again);
  again.enable_journal(path, /*resume=*/true);
  again.run();
  EXPECT_EQ(again.resumed_count(), 4u);
  std::remove(path.c_str());
}

TEST(SweepResume, RefusesJournalOfDifferentExperiment) {
  const std::string path = temp_journal("mismatch");
  std::remove(path.c_str());

  SweepEngine writer(1);
  writer.add_cell(small_config(77), 1);
  writer.enable_journal(path, false);
  writer.run();
  ASSERT_EQ(writer.failed_count(), 0u);

  // Same slot layout, different config → digest mismatch → refuse.
  SweepEngine other(1);
  ScenarioConfig cfg = small_config(77);
  cfg.traffic.rate_pps = 6.0;
  other.add_cell(cfg, 1);
  other.enable_journal(path, true);
  EXPECT_THROW(other.run(), std::runtime_error);

  // A journal with more slots than the sweep is a different experiment
  // too (out-of-range slot → refuse).
  SweepEngine shrunk(1);
  shrunk.add_cell(small_config(99), 1);  // wrong seed as well
  shrunk.enable_journal(path, true);
  EXPECT_THROW(shrunk.run(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SweepResume, DamagedLineSkippedAndSlotReRun) {
  const std::string path = temp_journal("damaged");
  std::remove(path.c_str());

  SweepEngine writer(1);
  writer.add_cell(small_config(55), 2);
  writer.enable_journal(path, false);
  writer.run();
  ASSERT_EQ(writer.failed_count(), 0u);

  // Truncate the second record mid-line, as a crash during a write
  // would, and append a line of garbage.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  {
    std::ofstream out(path, std::ios::trunc);
    out << lines[0] << "\n";
    out << lines[1].substr(0, lines[1].size() / 3);  // torn write
  }

  SweepEngine resumed(1);
  resumed.add_cell(small_config(55), 2);
  resumed.enable_journal(path, true);
  resumed.run();  // must not throw: damage is recoverable
  EXPECT_EQ(resumed.resumed_count(), 1u);  // intact record restored
  EXPECT_EQ(resumed.failed_count(), 0u);   // damaged slot re-ran clean
  for (const RepOutcome& slot : resumed.cell(0)) {
    EXPECT_TRUE(slot.ok());
  }
  // The journal healed: both slots are covered again.
  SweepEngine verify(1);
  verify.add_cell(small_config(55), 2);
  verify.enable_journal(path, true);
  verify.run();
  EXPECT_EQ(verify.resumed_count(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wmn::exp
