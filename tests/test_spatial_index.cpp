// Spatial neighbourhood index: the determinism contract under test.
//
// The index (phy/spatial_index.hpp) and the link-budget cache
// (phy/channel.cpp) promise *bit-identical* results with the index on
// or off: same delivered sets, same channel counters, same run
// fingerprints — serial or pooled. These tests drive random
// placements, RWP mobility, shadowing, and explicit repositioning
// through both paths and compare everything observable, plus the
// range-inversion property each propagation model's max_range_m()
// must satisfy (a distance beyond the bound is provably below the
// floor — the index's licence to cull without looking).
#include "phy/spatial_index.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "phy/wifi_phy.hpp"

namespace wmn::phy {
namespace {

using mobility::ConstantPositionModel;
using mobility::RandomWaypointConfig;
using mobility::RandomWaypointModel;
using mobility::Vec2;

// ----- max_range_m inversion contract ---------------------------------------
//
// For every model: any distance strictly beyond max_range_m(tx, floor)
// must yield rx_power_dbm < floor. (The converse — in-range pairs above
// the floor — need not hold; the bound may be loose, never tight the
// wrong way.)

void expect_cull_sound(const PropagationModel& m, double tx_dbm,
                       double floor_dbm) {
  const double r = m.max_range_m(tx_dbm, floor_dbm);
  ASSERT_GT(r, 0.0);
  ASSERT_TRUE(std::isfinite(r));
  for (const double factor : {1.0001, 1.01, 1.5, 4.0, 64.0}) {
    const double d = r * factor;
    const double p =
        m.rx_power_dbm(tx_dbm, {0.0, 0.0}, {d, 0.0}, 1, 2);
    EXPECT_LT(p, floor_dbm) << "model leaks power at " << factor
                            << "x its own max range";
  }
  // Sanity the other way: the bound is not uselessly small — just
  // inside it the signal is at or above the floor for deterministic
  // models (shadowing is exempt; its bound is deliberately padded).
}

TEST(MaxRange, FriisInversionIsSound) {
  FriisModel m;
  expect_cull_sound(m, 15.0, -98.0);
  expect_cull_sound(m, 20.0, -85.0);
  // Deterministic model: just inside the bound the power clears the floor.
  const double r = m.max_range_m(15.0, -98.0);
  EXPECT_GE(m.rx_power_dbm(15.0, {0, 0}, {r * 0.999, 0}, 1, 2), -98.0);
}

TEST(MaxRange, LogDistanceInversionIsSound) {
  LogDistanceModel m;
  expect_cull_sound(m, 15.0, -98.0);
  expect_cull_sound(m, 10.0, -90.0);
  const double r = m.max_range_m(15.0, -98.0);
  EXPECT_GE(m.rx_power_dbm(15.0, {0, 0}, {r * 0.999, 0}, 1, 2), -98.0);
}

TEST(MaxRange, TwoRayInversionIsSound) {
  TwoRayGroundModel m;
  expect_cull_sound(m, 15.0, -98.0);
  expect_cull_sound(m, 24.0, -95.0);
}

TEST(MaxRange, BasePropagationModelReportsUnbounded) {
  // A model that does not override max_range_m must advertise infinity
  // (the transparent full-scan fallback), never a finite guess.
  class Opaque final : public PropagationModel {
    [[nodiscard]] double rx_power_dbm(double tx, Vec2, Vec2, std::uint32_t,
                                      std::uint32_t) const override {
      return tx - 50.0;
    }
  };
  const Opaque m;
  EXPECT_TRUE(std::isinf(m.max_range_m(15.0, -98.0)));
}

TEST(MaxRange, ShadowingBoundHoldsOverManyLinks) {
  // The shadowing pad (kSigmaBound sigma) must dominate every draw the
  // per-link hash can produce. Hammer the bound with many link ids at a
  // distance just beyond the padded range: every one must stay below
  // the floor.
  for (const double sigma : {2.0, 6.0, 12.0}) {
    LogNormalShadowing m(std::make_unique<LogDistanceModel>(), sigma, 1234);
    const double r = m.max_range_m(15.0, -98.0);
    ASSERT_TRUE(std::isfinite(r));
    for (std::uint32_t tx = 0; tx < 40; ++tx) {
      for (std::uint32_t rx = 0; rx < 40; ++rx) {
        if (tx == rx) continue;
        const double p =
            m.rx_power_dbm(15.0, {0.0, 0.0}, {r * 1.0001, 0.0}, tx, rx);
        EXPECT_LT(p, -98.0) << "sigma=" << sigma << " link " << tx << "->"
                            << rx;
      }
    }
  }
}

TEST(MaxRange, ShadowingDelegatesToInnerWithPaddedFloor) {
  LogDistanceModel inner;
  LogNormalShadowing m(std::make_unique<LogDistanceModel>(), 6.0, 7);
  EXPECT_DOUBLE_EQ(
      m.max_range_m(15.0, -98.0),
      inner.max_range_m(15.0, -98.0 - LogNormalShadowing::kSigmaBound * 6.0));
}

// ----- channel-level equivalence --------------------------------------------

// Two identical radio fields over the same propagation model; one with
// the spatial index, one with the plain O(N^2) scan. Any observable
// divergence is a contract violation.
struct Bed {
  Bed(const std::vector<Vec2>& positions, double area_w, double area_h,
      bool indexed, double shadowing_sigma, std::uint64_t seed)
      : sim(seed) {
    std::unique_ptr<PropagationModel> prop =
        std::make_unique<LogDistanceModel>();
    if (shadowing_sigma > 0.0) {
      prop = std::make_unique<LogNormalShadowing>(std::move(prop),
                                                  shadowing_sigma, seed);
    }
    channel = std::make_unique<WirelessChannel>(sim, std::move(prop));
    if (indexed) channel->enable_spatial_index(area_w, area_h);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mobilities.push_back(
          std::make_unique<ConstantPositionModel>(positions[i]));
      phys.push_back(std::make_unique<WifiPhy>(
          sim, PhyConfig{}, static_cast<std::uint32_t>(i),
          mobilities.back().get()));
      channel->attach(phys.back().get());
    }
  }

  // Round-robin broadcast: every node transmits once, staggered so the
  // air is clear between frames.
  void broadcast_round(int rounds) {
    net::PacketFactory factory;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < phys.size(); ++i) {
        const sim::Time at = sim::Time::millis(
            5.0 * (static_cast<double>(r) * static_cast<double>(phys.size()) +
                   static_cast<double>(i)));
        sim.schedule(at, [this, i, &factory] {
          net::Packet p = factory.make(64, sim.now());
          channel->transmit(*phys[i], p, phys[i]->tx_duration(64));
        });
      }
    }
    sim.run();
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<ConstantPositionModel>> mobilities;
  std::vector<std::unique_ptr<WifiPhy>> phys;
  std::unique_ptr<WirelessChannel> channel;  // dies before the models
};

std::vector<Vec2> random_positions(std::size_t n, double w, double h,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(0.0, w), uy(0.0, h);
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({ux(rng), uy(rng)});
  return out;
}

void expect_beds_identical(const Bed& a, const Bed& b) {
  const auto& ca = a.channel->counters();
  const auto& cb = b.channel->counters();
  EXPECT_EQ(ca.transmissions, cb.transmissions);
  EXPECT_EQ(ca.copies_delivered, cb.copies_delivered);
  EXPECT_EQ(ca.copies_dropped_floor, cb.copies_dropped_floor);
  EXPECT_EQ(ca.copies_dropped_fault, cb.copies_dropped_fault);
  ASSERT_EQ(a.phys.size(), b.phys.size());
  for (std::size_t i = 0; i < a.phys.size(); ++i) {
    const auto& pa = a.phys[i]->counters();
    const auto& pb = b.phys[i]->counters();
    EXPECT_EQ(pa.rx_ok, pb.rx_ok) << "node " << i;
    EXPECT_EQ(pa.rx_failed_sinr, pb.rx_failed_sinr) << "node " << i;
    EXPECT_EQ(pa.rx_missed_busy, pb.rx_missed_busy) << "node " << i;
    EXPECT_EQ(pa.rx_below_sensitivity, pb.rx_below_sensitivity)
        << "node " << i;
    EXPECT_EQ(pa.busy_time, pb.busy_time) << "node " << i;
  }
}

TEST(SpatialIndexEquivalence, RandomStaticPlacements) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    const auto pos = random_positions(60, 3000.0, 3000.0, seed);
    Bed plain(pos, 3000.0, 3000.0, false, 0.0, seed);
    Bed fast(pos, 3000.0, 3000.0, true, 0.0, seed);
    plain.broadcast_round(3);
    fast.broadcast_round(3);
    expect_beds_identical(plain, fast);
    // The sparse field must actually exercise the cull path.
    ASSERT_NE(fast.channel->spatial_index(), nullptr);
    EXPECT_GT(fast.channel->counters().copies_dropped_floor, 0u);
  }
}

TEST(SpatialIndexEquivalence, RandomPlacementsWithShadowing) {
  // Shadowing adds the per-link hash draw to every budget; the culled
  // set must still match because the pad provably covers every draw.
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    const auto pos = random_positions(50, 2500.0, 2500.0, seed);
    Bed plain(pos, 2500.0, 2500.0, false, 6.0, seed);
    Bed fast(pos, 2500.0, 2500.0, true, 6.0, seed);
    plain.broadcast_round(2);
    fast.broadcast_round(2);
    expect_beds_identical(plain, fast);
  }
}

TEST(SpatialIndexEquivalence, CounterIdentityPerTransmission) {
  // Without a fault overlay every one of the N-1 copies is either
  // delivered or floor-dropped — the identity the bulk cull accounting
  // must preserve exactly.
  const auto pos = random_positions(40, 2500.0, 2500.0, 5);
  Bed fast(pos, 2500.0, 2500.0, true, 0.0, 5);
  fast.broadcast_round(2);
  const auto& c = fast.channel->counters();
  EXPECT_EQ(c.copies_delivered + c.copies_dropped_floor,
            c.transmissions * (pos.size() - 1));
  EXPECT_EQ(c.copies_dropped_fault, 0u);
}

TEST(SpatialIndexEquivalence, SetPositionInvalidatesCaches) {
  // Move a receiver out of range after the caches warmed up: the next
  // transmission must see the new position (epoch bump -> re-bin ->
  // cache rebuild), and moving it back must restore delivery.
  const std::vector<Vec2> pos = {{0.0, 0.0}, {100.0, 0.0}};
  Bed bed(pos, 5000.0, 5000.0, true, 0.0, 1);
  net::PacketFactory factory;
  auto send = [&] {
    net::Packet p = factory.make(64, bed.sim.now());
    bed.channel->transmit(*bed.phys[0], p, bed.phys[0]->tx_duration(64));
  };
  bed.sim.schedule(sim::Time::millis(0), send);
  bed.sim.schedule(sim::Time::millis(10),
                   [&] { bed.mobilities[1]->set_position({4900.0, 4900.0}); });
  bed.sim.schedule(sim::Time::millis(20), send);
  bed.sim.schedule(sim::Time::millis(30),
                   [&] { bed.mobilities[1]->set_position({150.0, 0.0}); });
  bed.sim.schedule(sim::Time::millis(40), send);
  bed.sim.run();
  const auto& c = bed.channel->counters();
  EXPECT_EQ(c.transmissions, 3u);
  EXPECT_EQ(c.copies_delivered, 2u);      // first and third reach the node
  EXPECT_EQ(c.copies_dropped_floor, 1u);  // second is out of range
  EXPECT_EQ(bed.phys[1]->counters().rx_ok, 2u);
}

// RWP endpoints: leg boxes, pauses (pinned), epoch churn. The indexed
// bed must track every leg boundary and still match the full scan.
TEST(SpatialIndexEquivalence, RandomWaypointMobility) {
  for (const std::uint64_t seed : {2ULL, 13ULL}) {
    auto build_and_run = [seed](bool indexed) {
      auto bed = std::make_unique<sim::Simulator>(seed);
      std::unique_ptr<PropagationModel> prop =
          std::make_unique<LogDistanceModel>();
      auto channel = std::make_unique<WirelessChannel>(*bed, std::move(prop));
      if (indexed) channel->enable_spatial_index(2500.0, 2500.0);
      RandomWaypointConfig rwp;
      rwp.area_width_m = 2500.0;
      rwp.area_height_m = 2500.0;
      rwp.min_speed_mps = 5.0;
      rwp.max_speed_mps = 25.0;
      rwp.pause = sim::Time::seconds(0.5);
      std::vector<std::unique_ptr<RandomWaypointModel>> models;
      std::vector<std::unique_ptr<WifiPhy>> phys;
      const auto pos = random_positions(30, 2500.0, 2500.0, seed);
      for (std::size_t i = 0; i < pos.size(); ++i) {
        models.push_back(std::make_unique<RandomWaypointModel>(
            *bed, rwp, pos[i], 1000 + i));
        phys.push_back(std::make_unique<WifiPhy>(
            *bed, PhyConfig{}, static_cast<std::uint32_t>(i),
            models.back().get()));
        channel->attach(phys.back().get());
      }
      net::PacketFactory factory;
      for (int r = 0; r < 40; ++r) {
        for (std::size_t i = 0; i < phys.size(); ++i) {
          const sim::Time at = sim::Time::millis(
              50.0 * (static_cast<double>(r) *
                          static_cast<double>(phys.size()) +
                      static_cast<double>(i)));
          bed->schedule(at, [&channel, &phys, &factory, &bed, i] {
            net::Packet p = factory.make(64, bed->now());
            channel->transmit(*phys[i], p, phys[i]->tx_duration(64));
          });
        }
      }
      // run_until, not run(): RWP models schedule leg events forever.
      bed->run_until(sim::Time::seconds(65.0));
      WirelessChannel::Counters out = channel->counters();
      std::vector<std::uint64_t> rx_ok;
      for (const auto& p : phys) rx_ok.push_back(p->counters().rx_ok);
      channel.reset();  // detach listeners while models are alive
      return std::pair{out, rx_ok};
    };
    const auto [plain, plain_rx] = build_and_run(false);
    const auto [fast, fast_rx] = build_and_run(true);
    EXPECT_EQ(plain.transmissions, fast.transmissions);
    EXPECT_EQ(plain.copies_delivered, fast.copies_delivered);
    EXPECT_EQ(plain.copies_dropped_floor, fast.copies_dropped_floor);
    EXPECT_EQ(plain_rx, fast_rx);
  }
}

// ----- scenario-level fingerprint equivalence -------------------------------

exp::ScenarioConfig scenario_config(std::uint64_t seed, bool mobile,
                                    double sigma) {
  exp::ScenarioConfig cfg;
  cfg.n_nodes = 36;
  cfg.area_width_m = 900.0;
  cfg.area_height_m = 900.0;
  cfg.traffic.n_flows = 5;
  cfg.traffic.rate_pps = 4.0;
  cfg.warmup = sim::Time::seconds(3.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.shadowing_sigma_db = sigma;
  if (mobile) cfg.mobility.max_speed_mps = 10.0;
  cfg.seed = seed;
  return cfg;
}

std::uint64_t run_fingerprint(exp::ScenarioConfig cfg, bool indexed,
                              WirelessChannel::Counters* counters = nullptr) {
  cfg.spatial_index = indexed;
  exp::Scenario s(cfg);
  s.run();
  if (counters != nullptr) *counters = s.channel().counters();
  return exp::fingerprint(s.metrics());
}

TEST(SpatialIndexEquivalence, ScenarioFingerprintStaticMesh) {
  const exp::ScenarioConfig cfg = scenario_config(42, false, 0.0);
  WirelessChannel::Counters plain{}, fast{};
  const std::uint64_t fp_plain = run_fingerprint(cfg, false, &plain);
  const std::uint64_t fp_fast = run_fingerprint(cfg, true, &fast);
  EXPECT_EQ(fp_plain, fp_fast);
  EXPECT_EQ(plain.transmissions, fast.transmissions);
  EXPECT_EQ(plain.copies_delivered, fast.copies_delivered);
  EXPECT_EQ(plain.copies_dropped_floor, fast.copies_dropped_floor);
}

TEST(SpatialIndexEquivalence, ScenarioFingerprintMobileShadowed) {
  const exp::ScenarioConfig cfg = scenario_config(7, true, 4.0);
  WirelessChannel::Counters plain{}, fast{};
  const std::uint64_t fp_plain = run_fingerprint(cfg, false, &plain);
  const std::uint64_t fp_fast = run_fingerprint(cfg, true, &fast);
  EXPECT_EQ(fp_plain, fp_fast);
  EXPECT_EQ(plain.copies_delivered, fast.copies_delivered);
  EXPECT_EQ(plain.copies_dropped_floor, fast.copies_dropped_floor);
}

TEST(SpatialIndexEquivalence, PooledIndexedMatchesSerialFullScan) {
  // The strongest cross-check: replications drained by a 4-thread pool
  // with the index on must reproduce, bit for bit, a single-threaded
  // sweep with the index off.
  exp::ScenarioConfig on = scenario_config(42, true, 0.0);
  on.spatial_index = true;
  exp::ScenarioConfig off = on;
  off.spatial_index = false;
  const auto pooled_on = exp::run_replications(on, 3, 4);
  const auto serial_off = exp::run_replications(off, 3, 1);
  ASSERT_EQ(pooled_on.size(), serial_off.size());
  for (std::size_t i = 0; i < pooled_on.size(); ++i) {
    EXPECT_EQ(exp::fingerprint(pooled_on[i]), exp::fingerprint(serial_off[i]))
        << "rep " << i;
  }
}

// ----- index internals ------------------------------------------------------

TEST(SpatialIndexUnit, GatherExcludesOnlyProvablyFarNodes) {
  ConstantPositionModel a({100.0, 100.0});
  ConstantPositionModel b({150.0, 100.0});   // 50 m from a
  ConstantPositionModel c({900.0, 900.0});   // ~1131 m from a
  SpatialIndex index(1000.0, 1000.0, 100.0);
  index.add_node(&a);
  index.add_node(&b);
  index.add_node(&c);
  std::vector<std::uint32_t> out;
  index.gather(0, 200.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
  index.gather(0, 2000.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 2}));
  // Infinite range: transparent full fallback, attach order.
  index.gather(0, std::numeric_limits<double>::infinity(), out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 2}));
}

TEST(SpatialIndexUnit, RebinsOnEpochBumpOnly) {
  ConstantPositionModel a({100.0, 100.0});
  ConstantPositionModel b({900.0, 900.0});
  SpatialIndex index(1000.0, 1000.0, 50.0);
  index.add_node(&a);
  index.add_node(&b);
  const std::uint64_t v0 = index.version();
  index.refresh();                    // nothing moved
  EXPECT_EQ(index.version(), v0);
  b.set_position({120.0, 100.0});     // epoch bump -> dirty
  index.refresh();
  EXPECT_GT(index.version(), v0);
  std::vector<std::uint32_t> out;
  index.gather(0, 100.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(SpatialIndexUnit, PinnedReflectsBoundsShape) {
  ConstantPositionModel a({10.0, 10.0});
  SpatialIndex index(100.0, 100.0, 10.0);
  index.add_node(&a);
  EXPECT_TRUE(index.pinned(0));
  EXPECT_EQ(index.roamer_count(), 0u);
}

}  // namespace
}  // namespace wmn::phy
