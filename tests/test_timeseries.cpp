#include "exp/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace wmn::exp {
namespace {

ScenarioConfig probe_config() {
  ScenarioConfig cfg;
  cfg.n_nodes = 16;
  cfg.area_width_m = 500.0;
  cfg.area_height_m = 500.0;
  cfg.traffic.n_flows = 3;
  cfg.traffic.rate_pps = 6.0;
  cfg.warmup = sim::Time::seconds(2.0);
  cfg.traffic_time = sim::Time::seconds(8.0);
  cfg.seed = 3;
  return cfg;
}

TEST(TimeseriesProbe, SamplesAtConfiguredCadence) {
  Scenario s(probe_config());
  TimeseriesProbe probe(s, sim::Time::seconds(1.0));
  s.run();
  // 12 s total run (2 warmup + 8 traffic + 2 drain), 1 Hz from t=0.
  EXPECT_GE(probe.samples().size(), 12u);
  EXPECT_LE(probe.samples().size(), 14u);
  for (std::size_t i = 1; i < probe.samples().size(); ++i) {
    EXPECT_NEAR(probe.samples()[i].t_s - probe.samples()[i - 1].t_s, 1.0, 1e-9);
  }
}

TEST(TimeseriesProbe, CumulativeCountersAreMonotone) {
  Scenario s(probe_config());
  TimeseriesProbe probe(s, sim::Time::seconds(1.0));
  s.run();
  for (std::size_t i = 1; i < probe.samples().size(); ++i) {
    EXPECT_GE(probe.samples()[i].delivered_cum,
              probe.samples()[i - 1].delivered_cum);
    EXPECT_GE(probe.samples()[i].sent_cum, probe.samples()[i - 1].sent_cum);
    EXPECT_GE(probe.samples()[i].control_tx_cum,
              probe.samples()[i - 1].control_tx_cum);
  }
  // Traffic flowed: final counters nonzero.
  EXPECT_GT(probe.samples().back().sent_cum, 0u);
  EXPECT_GT(probe.samples().back().control_tx_cum, 0u);
}

TEST(TimeseriesProbe, RatiosBounded) {
  Scenario s(probe_config());
  TimeseriesProbe probe(s, sim::Time::seconds(1.0));
  s.run();
  for (const TimeSample& ts : probe.samples()) {
    EXPECT_GE(ts.mean_busy_ratio, 0.0);
    EXPECT_LE(ts.mean_busy_ratio, ts.max_busy_ratio + 1e-12);
    EXPECT_LE(ts.max_busy_ratio, 1.0);
    EXPECT_LE(ts.max_queue_ratio, 1.0);
    EXPECT_GE(ts.mean_nbhd_load, 0.0);
    EXPECT_LE(ts.mean_nbhd_load, 1.0);
  }
}

TEST(TimeseriesProbe, CsvExportRoundTrips) {
  Scenario s(probe_config());
  TimeseriesProbe probe(s, sim::Time::seconds(2.0));
  s.run();
  const std::string path = "timeseries_test_tmp.csv";
  ASSERT_TRUE(probe.save_csv(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_NE(header.find("t_s,delivered_cum"), std::string::npos);
  std::size_t lines = 0;
  for (std::string line; std::getline(f, line);) ++lines;
  EXPECT_EQ(lines, probe.samples().size());
  f.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wmn::exp
