// Link-layer frame header.
#pragma once

#include <cstdint>

#include "net/address.hpp"

namespace wmn::mac {

enum class FrameType : std::uint8_t { kData = 0, kAck = 1 };

struct MacHeader {
  // 802.11 data header + FCS is 28-34 bytes; we bill the common case.
  static constexpr std::uint32_t kWireSize = 28;

  net::Address src;
  net::Address dst;
  FrameType type = FrameType::kData;
  std::uint16_t seq = 0;
  bool retry = false;
};

// A standalone ACK frame is 14 bytes on the air; we model it as a
// zero-payload packet carrying this header.
struct AckHeader {
  static constexpr std::uint32_t kWireSize = 14;

  net::Address src;   // the ACK sender (original receiver)
  net::Address dst;   // the station being acknowledged
  std::uint16_t seq = 0;
};

// RTS frame (20 bytes). `duration_us` covers the rest of the exchange
// (CTS + SIFS + data + SIFS + ACK): every station overhearing it sets
// its NAV accordingly — virtual carrier sense past the hidden-terminal
// boundary.
struct RtsHeader {
  static constexpr std::uint32_t kWireSize = 20;

  net::Address src;
  net::Address dst;
  std::uint32_t duration_us = 0;
};

// CTS frame (14 bytes); `dst` is the station granted the medium.
struct CtsHeader {
  static constexpr std::uint32_t kWireSize = 14;

  net::Address src;
  net::Address dst;
  std::uint32_t duration_us = 0;
};

}  // namespace wmn::mac
