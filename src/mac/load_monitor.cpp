#include "mac/load_monitor.hpp"

#include <algorithm>

#include "phy/wifi_phy.hpp"

namespace wmn::mac {

LoadMonitor::LoadMonitor(sim::Simulator& simulator, const LoadMonitorConfig& cfg,
                         const phy::WifiPhy& phy)
    : sim_(simulator), cfg_(cfg), phy_(phy) {
  last_sample_time_ = sim_.now();
  last_busy_total_ = phy_.cumulative_busy_time();
  timer_ = sim_.schedule(cfg_.window, [this] { sample(); });
}

LoadMonitor::~LoadMonitor() { sim_.cancel(timer_); }

void LoadMonitor::count_tx(bool is_retry) {
  ++window_tx_;
  if (is_retry) ++window_retries_;
}

void LoadMonitor::sample() {
  const sim::Time now = sim_.now();
  const sim::Time busy_total = phy_.cumulative_busy_time();
  const sim::Time wall = now - last_sample_time_;

  if (wall > sim::Time::zero()) {
    const double busy = std::clamp((busy_total - last_busy_total_) / wall, 0.0, 1.0);
    busy_ewma_ = cfg_.ewma_alpha * busy + (1.0 - cfg_.ewma_alpha) * busy_ewma_;

    const double retry =
        window_tx_ == 0 ? 0.0
                        : static_cast<double>(window_retries_) /
                              static_cast<double>(window_tx_);
    retry_ewma_ = cfg_.ewma_alpha * retry + (1.0 - cfg_.ewma_alpha) * retry_ewma_;
  }

  last_sample_time_ = now;
  last_busy_total_ = busy_total;
  window_tx_ = 0;
  window_retries_ = 0;
  timer_ = sim_.schedule(cfg_.window, [this] { sample(); });
}

}  // namespace wmn::mac
