// Windowed MAC/PHY load measurement — the cross-layer half of CLNLR.
//
// Every `window` the monitor samples the PHY's cumulative busy time and
// the MAC's transmission/retry counters, converts the deltas to ratios,
// and folds them into exponentially weighted moving averages. The EWMAs
// are what the routing layer reads: smooth enough to be stable, fresh
// enough to track congestion onset within a couple of windows.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::phy {
class WifiPhy;
}

namespace wmn::mac {

struct LoadMonitorConfig {
  sim::Time window = sim::Time::millis(250.0);
  double ewma_alpha = 0.5;  // weight of the newest window
};

class LoadMonitor {
 public:
  LoadMonitor(sim::Simulator& simulator, const LoadMonitorConfig& cfg,
              const phy::WifiPhy& phy);
  ~LoadMonitor();

  LoadMonitor(const LoadMonitor&) = delete;
  LoadMonitor& operator=(const LoadMonitor&) = delete;

  // Fraction of the recent past the medium was busy (CCA busy or own
  // TX), in [0, 1].
  [[nodiscard]] double busy_ratio() const { return busy_ewma_; }

  // Fraction of recent transmissions that were retries, in [0, 1].
  [[nodiscard]] double retry_ratio() const { return retry_ewma_; }

  // The MAC reports each transmission attempt (is_retry for
  // retransmissions) so the monitor can window them.
  void count_tx(bool is_retry);

 private:
  void sample();

  sim::Simulator& sim_;
  LoadMonitorConfig cfg_;
  const phy::WifiPhy& phy_;

  sim::Time last_sample_time_{};
  sim::Time last_busy_total_{};
  std::uint64_t window_tx_ = 0;
  std::uint64_t window_retries_ = 0;

  double busy_ewma_ = 0.0;
  double retry_ewma_ = 0.0;
  sim::EventId timer_{};
};

}  // namespace wmn::mac
