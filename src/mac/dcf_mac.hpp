// CSMA/CA MAC in the style of IEEE 802.11 DCF (basic access, no
// RTS/CTS — the configuration the source papers use for 512-byte CBR
// traffic).
//
// Channel access: a station with a pending frame waits for the medium
// to be idle for DIFS, then counts down a backoff of uniform[0, CW]
// slots, freezing whenever the medium goes busy and resuming after the
// next idle DIFS. Unicast frames are acknowledged after SIFS; a missing
// ACK doubles CW (binary exponential backoff) and retries up to the
// retry limit, after which the frame is dropped and the upper layer is
// told the link failed (AODV's link-break trigger). Broadcast frames
// get one shot, no ACK — which is exactly why RREQ storms hurt.
//
// Cross-layer instruments exposed to the routing layer:
//   * queue_ratio()  — interface-queue occupancy in [0,1]
//   * busy_ratio()   — windowed medium busy-time fraction (see
//                      LoadMonitor), the "channel load" signal
//   * retry_ratio()  — windowed fraction of transmissions that were
//                      retries, a contention/collision proxy
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "mac/load_monitor.hpp"
#include "mac/mac_header.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace wmn::mac {

struct MacConfig {
  sim::Time slot = sim::Time::micros(20.0);
  sim::Time sifs = sim::Time::micros(10.0);
  // DIFS = SIFS + 2 * slot.
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  std::uint32_t retry_limit = 7;
  std::size_t queue_capacity = 50;   // ns-2 default IFQ length
  sim::Time ack_timeout_slack = sim::Time::micros(60.0);
  // RTS/CTS handshake for unicast frames larger than this (bytes,
  // including the MAC header). Default: off, matching the source
  // papers' basic-access configuration.
  std::uint32_t rts_threshold_bytes = 0xFFFFFFFFu;
  sim::Time cts_timeout_slack = sim::Time::micros(60.0);
};

class DcfMac final : public phy::PhyListener {
 public:
  // Delivered frame destined to this station (or broadcast).
  using RxCallback = std::function<void(net::Packet, net::Address src)>;
  // Unicast delivery outcome after all MAC retries. On failure the
  // undeliverable packet is handed back for the upper layer to salvage.
  using TxFailedCallback = std::function<void(net::Address dst, net::Packet)>;
  using TxOkCallback = std::function<void(net::Address dst)>;

  DcfMac(sim::Simulator& simulator, const MacConfig& cfg, net::Address self,
         phy::WifiPhy& phy, net::PacketFactory& factory);

  DcfMac(const DcfMac&) = delete;
  DcfMac& operator=(const DcfMac&) = delete;

  void set_rx_callback(RxCallback cb) { rx_cb_ = std::move(cb); }
  void set_tx_failed_callback(TxFailedCallback cb) { tx_failed_cb_ = std::move(cb); }
  void set_tx_ok_callback(TxOkCallback cb) { tx_ok_cb_ = std::move(cb); }

  // Queue a frame for `dst` (unicast address or Address::broadcast()).
  // Returns false (and drops) when the interface queue is full.
  bool enqueue(net::Packet packet, net::Address dst);

  [[nodiscard]] net::Address address() const { return self_; }

  // --- fault-injection API ---------------------------------------------
  // Crash/recover this station (fault::Injector). power_down() cancels
  // every MAC timer, discards the interface queue and the in-service
  // frame *without* invoking the tx-failed callback (a crashed router
  // must not trigger its own link-break handling), and gates enqueue()
  // and all PhyListener callbacks. power_up() is a cold restart: CW and
  // duplicate-detection state come back as on construction. Call order
  // for a crash is mac.power_down() then phy.set_up(false); for a
  // rejoin phy.set_up(true) then mac.power_up().
  void power_down();
  void power_up();
  [[nodiscard]] bool is_down() const { return down_; }

  // --- cross-layer instruments ----------------------------------------
  [[nodiscard]] double queue_ratio() const {
    // The in-service frame counts as backlog, so a full queue plus a
    // frame in flight would read 51/50; clamp to the unit interval.
    const double r = static_cast<double>(queue_.size() + (current_ ? 1u : 0u)) /
                     static_cast<double>(cfg_.queue_capacity);
    return r > 1.0 ? 1.0 : r;
  }
  [[nodiscard]] double busy_ratio() const { return monitor_.busy_ratio(); }
  [[nodiscard]] double retry_ratio() const { return monitor_.retry_ratio(); }
  [[nodiscard]] LoadMonitor& monitor() { return monitor_; }

  // --- counters ---------------------------------------------------------
  struct Counters {
    std::uint64_t enqueued = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t tx_data_unicast = 0;
    std::uint64_t tx_data_broadcast = 0;
    std::uint64_t tx_acks = 0;
    std::uint64_t tx_rts = 0;
    std::uint64_t tx_cts = 0;
    std::uint64_t cts_timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t retry_drops = 0;      // frames dead after retry limit
    std::uint64_t rx_delivered = 0;     // handed to the upper layer
    std::uint64_t rx_duplicates = 0;    // MAC-level retransmission dups
    std::uint64_t rx_overheard = 0;     // frames for someone else
    std::uint64_t down_drops = 0;       // frames discarded by power_down
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Dynamic footprint (tx queue + duplicate-detection map) — feeds the
  // bytes_per_node bench counter.
  [[nodiscard]] std::size_t memory_bytes() const {
    using Node = std::pair<const net::Address, std::uint16_t>;
    return sizeof(*this) + queue_.size() * sizeof(OutFrame) +
           last_rx_seq_.bucket_count() * sizeof(void*) +
           last_rx_seq_.size() * (sizeof(Node) + 16);
  }

  // --- PhyListener -------------------------------------------------------
  void on_rx_start() override;
  void on_rx_end(std::optional<net::Packet> packet, double rx_power_dbm) override;
  void on_tx_end() override;
  void on_cca_change(bool busy) override;

 private:
  enum class TxState {
    kIdle,      // nothing to send
    kAccess,    // waiting for idle DIFS / counting down backoff
    kSending,   // frame (data or RTS) on the air
    kAwaitCts,  // RTS sent, CTS timer running
    kAwaitAck,  // unicast sent, ACK timer running
  };

  struct OutFrame {
    net::Packet packet;
    net::Address dst;
    std::uint32_t attempts = 0;
    std::uint16_t seq = 0;
  };

  [[nodiscard]] sim::Time difs() const { return cfg_.sifs + cfg_.slot * 2; }

  // Begin/continue the channel-access procedure for current_.
  void start_access(bool new_backoff);
  void on_difs_elapsed();
  void pause_backoff();
  void resume_access();
  void backoff_expired();
  void transmit_current();
  void send_data_frame();
  void on_ack_timeout();
  // Shared BEB retry/drop path for missing CTS or ACK responses.
  void handle_no_response();
  void on_cts_timeout();
  void transmit_data_after_cts();
  [[nodiscard]] bool medium_busy() const;
  void set_nav(sim::Time until);
  void on_nav_expired();
  void finish_current(bool success);
  void send_ack(net::Address to, std::uint16_t seq);
  void handle_data(net::Packet packet, const MacHeader& hdr);

  sim::Simulator& sim_;
  MacConfig cfg_;
  net::Address self_;
  phy::WifiPhy& phy_;
  net::PacketFactory& factory_;
  sim::RngStream rng_;
  LoadMonitor monitor_;

  RxCallback rx_cb_;
  TxFailedCallback tx_failed_cb_;
  TxOkCallback tx_ok_cb_;

  std::deque<OutFrame> queue_;
  std::optional<OutFrame> current_;
  TxState state_ = TxState::kIdle;

  std::uint32_t cw_ = 31;
  std::uint32_t backoff_slots_ = 0;
  sim::Time backoff_started_{};
  sim::EventId difs_timer_{};
  sim::EventId backoff_timer_{};
  sim::EventId ack_timer_{};

  // Our own ACK/CTS is on the air (responses bypass the access queue
  // at SIFS priority, so they interleave with a paused access
  // procedure).
  bool ack_in_flight_ = false;
  bool cts_in_flight_ = false;
  sim::EventId ack_tx_timer_{};
  sim::EventId cts_tx_timer_{};

  // RTS/CTS exchange state.
  bool sending_rts_ = false;
  sim::EventId cts_timer_{};
  sim::EventId data_after_cts_timer_{};

  // Virtual carrier sense: medium reserved until this instant.
  sim::Time nav_until_{};
  sim::EventId nav_timer_{};

  std::uint16_t next_seq_ = 0;
  // MAC-level duplicate detection: last seq seen per source.
  std::unordered_map<net::Address, std::uint16_t> last_rx_seq_;

  // Fault-injection power state.
  bool down_ = false;

  Counters counters_;
};

}  // namespace wmn::mac
