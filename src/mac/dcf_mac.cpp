#include "mac/dcf_mac.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"

namespace wmn::mac {

namespace {
// Per-node MAC stream ids live in their own namespace so they cannot
// collide with other components' streams for the same node.
constexpr std::uint64_t kMacStreamSalt = 0x3AC0'0000'0000'0000ULL;
}  // namespace

DcfMac::DcfMac(sim::Simulator& simulator, const MacConfig& cfg, net::Address self,
               phy::WifiPhy& phy, net::PacketFactory& factory)
    : sim_(simulator),
      cfg_(cfg),
      self_(self),
      phy_(phy),
      factory_(factory),
      rng_(simulator.make_stream(kMacStreamSalt ^ self.value())),
      monitor_(simulator, LoadMonitorConfig{}, phy),
      cw_(cfg.cw_min) {
  phy_.set_listener(this);
}

void DcfMac::power_down() {
  if (down_) return;
  down_ = true;
  sim_.cancel(difs_timer_);
  sim_.cancel(backoff_timer_);
  sim_.cancel(ack_timer_);
  sim_.cancel(ack_tx_timer_);
  sim_.cancel(cts_tx_timer_);
  sim_.cancel(cts_timer_);
  sim_.cancel(data_after_cts_timer_);
  sim_.cancel(nav_timer_);
  counters_.down_drops += queue_.size() + (current_ ? 1u : 0u);
  queue_.clear();
  current_.reset();
  state_ = TxState::kIdle;
  ack_in_flight_ = false;
  cts_in_flight_ = false;
  sending_rts_ = false;
  nav_until_ = sim::Time{};
  backoff_slots_ = 0;
  cw_ = cfg_.cw_min;
}

void DcfMac::power_up() {
  if (!down_) return;
  down_ = false;
  // Cold restart: a rebooted station has no memory of peer sequence
  // numbers, so duplicate detection starts from scratch.
  last_rx_seq_.clear();
}

bool DcfMac::enqueue(net::Packet packet, net::Address dst) {
  if (down_) {
    ++counters_.down_drops;
    return false;
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    ++counters_.queue_drops;
    return false;
  }
  ++counters_.enqueued;
  queue_.push_back(OutFrame{std::move(packet), dst, 0, 0});
  if (!current_) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    cw_ = cfg_.cw_min;
    start_access(/*new_backoff=*/true);
  }
  return true;
}

void DcfMac::start_access(bool new_backoff) {
  WMN_CHECK(current_.has_value(), "channel access without a frame to send");
  state_ = TxState::kAccess;
  if (new_backoff) {
    backoff_slots_ = static_cast<std::uint32_t>(rng_.uniform_u64(0, cw_));
  }
  if (!medium_busy() && !sim_.pending(difs_timer_)) {
    difs_timer_ = sim_.schedule(difs(), [this] { on_difs_elapsed(); });
  }
  // Otherwise on_cca_change(false) / on_nav_expired() restarts the
  // DIFS wait.
}

void DcfMac::on_difs_elapsed() {
  if (state_ != TxState::kAccess || !current_) return;
  if (backoff_slots_ == 0) {
    transmit_current();
    return;
  }
  backoff_started_ = sim_.now();
  backoff_timer_ = sim_.schedule(cfg_.slot * static_cast<std::int64_t>(backoff_slots_),
                                 [this] { backoff_expired(); });
}

void DcfMac::pause_backoff() {
  if (!sim_.pending(backoff_timer_)) return;
  sim_.cancel(backoff_timer_);
  const auto elapsed_slots = static_cast<std::uint32_t>(
      (sim_.now() - backoff_started_).ns() / cfg_.slot.ns());
  backoff_slots_ -= std::min(elapsed_slots, backoff_slots_);
}

void DcfMac::backoff_expired() {
  backoff_slots_ = 0;
  transmit_current();
}

void DcfMac::on_cca_change(bool busy) {
  if (down_) return;
  if (busy) {
    if (sim_.pending(difs_timer_)) sim_.cancel(difs_timer_);
    pause_backoff();
  } else if (state_ == TxState::kAccess && current_ && !medium_busy() &&
             !sim_.pending(difs_timer_) && !sim_.pending(backoff_timer_)) {
    difs_timer_ = sim_.schedule(difs(), [this] { on_difs_elapsed(); });
  }
}

bool DcfMac::medium_busy() const {
  return phy_.cca_busy() || nav_until_ > sim_.now();
}

void DcfMac::set_nav(sim::Time until) {
  if (until <= nav_until_) return;
  nav_until_ = until;
  // A fresh reservation interrupts any access countdown in progress.
  if (sim_.pending(difs_timer_)) sim_.cancel(difs_timer_);
  pause_backoff();
  sim_.cancel(nav_timer_);
  nav_timer_ = sim_.schedule_at(until, [this] { on_nav_expired(); });
}

void DcfMac::on_nav_expired() {
  if (state_ == TxState::kAccess && current_ && !medium_busy() &&
      !sim_.pending(difs_timer_) && !sim_.pending(backoff_timer_)) {
    difs_timer_ = sim_.schedule(difs(), [this] { on_difs_elapsed(); });
  }
}

void DcfMac::transmit_current() {
  WMN_CHECK(current_.has_value(), "transmit without a frame to send");
  // DCF legality: data/RTS transmissions come only out of the access
  // countdown; ACK/CTS responses bypass this path entirely.
  WMN_CHECK(state_ == TxState::kAccess,
            "transmit_current outside the access procedure");
  if (!phy_.can_transmit()) {
    // Raced with an arrival below the CCA threshold that locked the
    // radio at this instant; behave as if the medium were busy.
    state_ = TxState::kAccess;
    return;
  }
  const bool is_retry = current_->attempts > 0;
  if (!is_retry) current_->seq = ++next_seq_;
  ++current_->attempts;
  monitor_.count_tx(is_retry);
  if (is_retry) ++counters_.retries;

  const std::uint32_t frame_bytes =
      current_->packet.size_bytes() + MacHeader::kWireSize;
  const bool use_rts =
      !current_->dst.is_broadcast() && frame_bytes > cfg_.rts_threshold_bytes;

  if (use_rts) {
    // Reserve the medium for the whole exchange:
    // SIFS + CTS + SIFS + DATA + SIFS + ACK after the RTS ends.
    const sim::Time reserve =
        cfg_.sifs * 3 + phy_.tx_duration(CtsHeader::kWireSize) +
        phy_.tx_duration(frame_bytes) + phy_.tx_duration(AckHeader::kWireSize);
    net::Packet rts = factory_.make(0, sim_.now());
    rts.push(RtsHeader{self_, current_->dst,
                       static_cast<std::uint32_t>(reserve.to_micros())});
    ++counters_.tx_rts;
    sending_rts_ = true;
    state_ = TxState::kSending;
    phy_.send(std::move(rts));
    return;
  }
  send_data_frame();
}

void DcfMac::send_data_frame() {
  const bool is_retry = current_->attempts > 1;
  net::Packet frame = current_->packet;  // headers shared, cheap
  frame.push(MacHeader{self_, current_->dst, FrameType::kData, current_->seq,
                       is_retry});
  if (current_->dst.is_broadcast()) {
    ++counters_.tx_data_broadcast;
  } else {
    ++counters_.tx_data_unicast;
  }
  state_ = TxState::kSending;
  phy_.send(std::move(frame));
}

void DcfMac::on_tx_end() {
  // A frame that was on the air when we crashed finishes into a dead MAC.
  if (down_) return;
  if (ack_in_flight_ || cts_in_flight_) {
    ack_in_flight_ = false;
    cts_in_flight_ = false;
    // Resume whatever access procedure the response interrupted.
    if (state_ == TxState::kAccess && current_) start_access(false);
    return;
  }
  if (state_ != TxState::kSending || !current_) return;

  if (sending_rts_) {
    sending_rts_ = false;
    state_ = TxState::kAwaitCts;
    const sim::Time cts_air = phy_.tx_duration(CtsHeader::kWireSize);
    cts_timer_ = sim_.schedule(cfg_.sifs + cts_air + cfg_.cts_timeout_slack,
                               [this] { on_cts_timeout(); });
    return;
  }

  if (current_->dst.is_broadcast()) {
    finish_current(true);
    return;
  }
  state_ = TxState::kAwaitAck;
  const sim::Time ack_air = phy_.tx_duration(AckHeader::kWireSize);
  ack_timer_ = sim_.schedule(cfg_.sifs + ack_air + cfg_.ack_timeout_slack,
                             [this] { on_ack_timeout(); });
}

void DcfMac::on_ack_timeout() {
  if (state_ != TxState::kAwaitAck || !current_) return;
  handle_no_response();
}

void DcfMac::on_cts_timeout() {
  if (state_ != TxState::kAwaitCts || !current_) return;
  ++counters_.cts_timeouts;
  handle_no_response();
}

void DcfMac::handle_no_response() {
  if (current_->attempts <= cfg_.retry_limit) {
    cw_ = std::min((cw_ + 1) * 2 - 1, cfg_.cw_max);
    start_access(/*new_backoff=*/true);
    return;
  }
  ++counters_.retry_drops;
  finish_current(false);
}

void DcfMac::transmit_data_after_cts() {
  if (state_ != TxState::kAwaitCts || !current_) return;
  if (!phy_.can_transmit()) {
    // CTS granted but the radio got locked meanwhile: retry the cycle.
    handle_no_response();
    return;
  }
  send_data_frame();
}

void DcfMac::finish_current(bool success) {
  WMN_CHECK(current_.has_value(), "finishing a frame that was never started");
  WMN_CHECK(state_ != TxState::kIdle,
            "finish_current from idle: double completion");
  sim_.cancel(ack_timer_);
  sim_.cancel(difs_timer_);
  sim_.cancel(backoff_timer_);

  sim_.cancel(cts_timer_);
  sim_.cancel(data_after_cts_timer_);
  sending_rts_ = false;

  OutFrame done = std::move(*current_);
  current_.reset();
  state_ = TxState::kIdle;
  cw_ = cfg_.cw_min;

  if (success) {
    if (!done.dst.is_broadcast() && tx_ok_cb_) tx_ok_cb_(done.dst);
  } else if (tx_failed_cb_) {
    tx_failed_cb_(done.dst, std::move(done.packet));
  }

  if (!queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    start_access(/*new_backoff=*/true);
  }
}

void DcfMac::on_rx_start() {
  // Carrier sense already covers this via on_cca_change; nothing extra.
}

void DcfMac::on_rx_end(std::optional<net::Packet> packet, double) {
  if (down_) return;
  if (!packet) return;  // clobbered frame: energy only

  if (packet->top_is<RtsHeader>()) {
    const RtsHeader rts = packet->pop<RtsHeader>();
    if (rts.dst == self_) {
      // Grant after SIFS if the radio is free then.
      const std::uint32_t remaining =
          rts.duration_us > static_cast<std::uint32_t>(
                                (cfg_.sifs + phy_.tx_duration(CtsHeader::kWireSize))
                                    .to_micros())
              ? rts.duration_us -
                    static_cast<std::uint32_t>(
                        (cfg_.sifs + phy_.tx_duration(CtsHeader::kWireSize))
                            .to_micros())
              : 0;
      cts_tx_timer_ = sim_.schedule(cfg_.sifs, [this, rts, remaining] {
        if (!phy_.can_transmit()) return;  // sender will retry
        net::Packet cts = factory_.make(0, sim_.now());
        cts.push(CtsHeader{self_, rts.src, remaining});
        ++counters_.tx_cts;
        cts_in_flight_ = true;
        phy_.send(std::move(cts));
      });
    } else {
      set_nav(sim_.now() + sim::Time::micros(static_cast<double>(rts.duration_us)));
    }
    return;
  }

  if (packet->top_is<CtsHeader>()) {
    const CtsHeader cts = packet->pop<CtsHeader>();
    if (cts.dst == self_ && state_ == TxState::kAwaitCts && current_) {
      sim_.cancel(cts_timer_);
      data_after_cts_timer_ =
          sim_.schedule(cfg_.sifs, [this] { transmit_data_after_cts(); });
    } else if (cts.dst != self_) {
      set_nav(sim_.now() + sim::Time::micros(static_cast<double>(cts.duration_us)));
    }
    return;
  }

  if (packet->top_is<AckHeader>()) {
    const AckHeader ack = packet->pop<AckHeader>();
    if (ack.dst == self_ && state_ == TxState::kAwaitAck && current_ &&
        ack.seq == current_->seq) {
      sim_.cancel(ack_timer_);
      finish_current(true);
    }
    return;
  }

  if (!packet->top_is<MacHeader>()) return;
  const MacHeader hdr = packet->pop<MacHeader>();
  if (hdr.dst != self_ && !hdr.dst.is_broadcast()) {
    ++counters_.rx_overheard;
    return;
  }
  handle_data(std::move(*packet), hdr);
}

void DcfMac::handle_data(net::Packet packet, const MacHeader& hdr) {
  if (!hdr.dst.is_broadcast()) {
    // Always acknowledge — the sender's retransmission means our
    // previous ACK was lost.
    send_ack(hdr.src, hdr.seq);
    const auto it = last_rx_seq_.find(hdr.src);
    if (it != last_rx_seq_.end() && it->second == hdr.seq && hdr.retry) {
      ++counters_.rx_duplicates;
      return;
    }
    last_rx_seq_[hdr.src] = hdr.seq;
  }
  ++counters_.rx_delivered;
  if (rx_cb_) rx_cb_(std::move(packet), hdr.src);
}

void DcfMac::send_ack(net::Address to, std::uint16_t seq) {
  // SIFS priority: fire before anyone's DIFS can elapse.
  ack_tx_timer_ = sim_.schedule(cfg_.sifs, [this, to, seq] {
    if (!phy_.can_transmit()) return;  // give up; sender will retry
    net::Packet ack = factory_.make(0, sim_.now());
    ack.push(AckHeader{self_, to, seq});
    ++counters_.tx_acks;
    ack_in_flight_ = true;
    phy_.send(std::move(ack));
  });
}

}  // namespace wmn::mac
