#include "routing/route_table.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::routing {

const RouteEntry* RouteTable::lookup(net::Address dest, sim::Time now) {
  auto it = table_.find(dest);
  if (it == table_.end()) return nullptr;
  RouteEntry& e = it->second;
  if (e.state == RouteState::kValid && e.expires <= now) {
    e.state = RouteState::kInvalid;
    // Hold the dead entry for its seqno; purge() reclaims it later.
    e.expires = now;
  }
  return e.state == RouteState::kValid ? &e : nullptr;
}

RouteEntry* RouteTable::find(net::Address dest) {
  auto it = table_.find(dest);
  return it == table_.end() ? nullptr : &it->second;
}

RouteEntry& RouteTable::upsert(const RouteEntry& entry) {
  // Next-hop validity: a usable route must point at a concrete
  // neighbour. A broadcast or null next hop would silently blackhole
  // every packet sent along it.
  WMN_CHECK(entry.dest.is_valid() && !entry.dest.is_broadcast(),
            "route entries are keyed by unicast destinations");
  if (entry.state == RouteState::kValid) {
    WMN_CHECK(entry.next_hop.is_valid() && !entry.next_hop.is_broadcast(),
              "valid route with an unusable next hop");
    WMN_CHECK_GE(entry.hop_count, std::uint8_t{1},
                 "a valid route spans at least one hop");
  }
  return table_[entry.dest] = entry;
}

void RouteTable::touch(net::Address dest, sim::Time expires) {
  auto it = table_.find(dest);
  if (it == table_.end() || it->second.state != RouteState::kValid) return;
  if (it->second.expires < expires) it->second.expires = expires;
}

std::optional<RouteEntry> RouteTable::invalidate(net::Address dest,
                                                 sim::Time now) {
  auto it = table_.find(dest);
  if (it == table_.end() || it->second.state != RouteState::kValid) {
    return std::nullopt;
  }
  RouteEntry& e = it->second;
  e.state = RouteState::kInvalid;
  // RFC 3561 section 6.11: increment the seqno of an invalidated route.
  if (e.valid_seqno) ++e.dest_seqno;
  e.expires = now;
  return e;
}

std::vector<net::Address> RouteTable::dests_via(net::Address via, sim::Time now) {
  std::vector<net::Address> out;
  // Collection order is normalised by the sort below; nothing escapes
  // in hash order.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto& [dest, e] : table_) {
    if (e.state == RouteState::kValid && e.expires > now && e.next_hop == via) {
      out.push_back(dest);
    }
  }
  // The result feeds RERR destination lists — wire-visible packet
  // contents — so its order must be a function of the table's *logical*
  // content, not of unordered_map bucket layout (which depends on
  // reserve/rehash history and would couple the event stream to the
  // standard library's hash internals).
  std::sort(out.begin(), out.end());
  return out;
}

void RouteTable::add_precursor(net::Address dest, net::Address precursor) {
  auto it = table_.find(dest);
  if (it == table_.end()) return;
  auto& prec = it->second.precursors;
  const auto pos = std::lower_bound(prec.begin(), prec.end(), precursor);
  if (pos == prec.end() || *pos != precursor) prec.insert(pos, precursor);
}

void RouteTable::remove_precursor(net::Address precursor) {
  // Erasing one key from every per-entry list is commutative: the final
  // state is identical for any visit order and no events are emitted.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto& [dest, e] : table_) {
    const auto pos =
        std::lower_bound(e.precursors.begin(), e.precursors.end(), precursor);
    if (pos != e.precursors.end() && *pos == precursor) {
      e.precursors.erase(pos);
    }
  }
}

std::size_t RouteTable::memory_bytes() const {
  std::size_t bytes = sizeof(*this) + table_.bucket_count() * sizeof(void*);
  // libstdc++ node overhead: hash node = value + next pointer + cached
  // hash; 16 bytes is the measured per-node cost on LP64.
  using Node = std::pair<const net::Address, RouteEntry>;
  bytes += table_.size() * (sizeof(Node) + 16);
  // NOLINTNEXTLINE(wmn-unordered-iteration) — pure accumulation
  for (const auto& [dest, e] : table_) {
    bytes += e.precursors.capacity() * sizeof(net::Address);
  }
  return bytes;
}

void RouteTable::purge(sim::Time now, sim::Time dead_retention) {
  // Per-entry expiry test + erase; entries are judged independently
  // against `now`, so the visit order cannot change the surviving set,
  // and nothing here schedules events or sends packets.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = table_.begin(); it != table_.end();) {
    const RouteEntry& e = it->second;
    const bool expired_valid =
        e.state == RouteState::kValid && e.expires <= now;
    if (expired_valid) {
      it->second.state = RouteState::kInvalid;
      it->second.expires = now;
      ++it;
      continue;
    }
    if (e.state == RouteState::kInvalid && e.expires + dead_retention <= now) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wmn::routing
