// Cross-layer load access for the routing plane.
//
// The AODV engine consults a LoadSource for the node's scalar load
// index: what HELLOs advertise and what RREQ forwarding accumulates.
// Baselines wire in ZeroLoadSource (load plays no role); CLNLR wires in
// core::NodeLoadIndex, which blends the MAC/PHY instruments.
#pragma once

namespace wmn::routing {

class LoadSource {
 public:
  virtual ~LoadSource() = default;

  // Node load index in [0, 1].
  [[nodiscard]] virtual double load_index() const = 0;
};

class ZeroLoadSource final : public LoadSource {
 public:
  [[nodiscard]] double load_index() const override { return 0.0; }
};

}  // namespace wmn::routing
