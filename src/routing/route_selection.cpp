#include "routing/route_selection.hpp"

namespace wmn::routing {

bool RouteSelectionPolicy::should_replace(const RouteCandidate& incumbent,
                                          const RouteCandidate& candidate) const {
  return better(candidate, incumbent);
}

bool FirstArrivalSelection::better(const RouteCandidate& a,
                                   const RouteCandidate& b) const {
  return a.hop_count < b.hop_count;
}

bool BestMetricSelection::better(const RouteCandidate& a,
                                 const RouteCandidate& b) const {
  if (a.metric != b.metric) return a.metric < b.metric;
  return a.hop_count < b.hop_count;
}

bool BestMetricSelection::should_replace(const RouteCandidate& incumbent,
                                         const RouteCandidate& candidate) const {
  // Same-seqno replacement needs a clear win, not a marginal one;
  // without hysteresis routes flap between near-equal alternatives.
  if (candidate.metric < incumbent.metric * (1.0 - hysteresis_)) return true;
  // Always accept strictly shorter equal-load paths.
  return candidate.metric <= incumbent.metric &&
         candidate.hop_count < incumbent.hop_count;
}

}  // namespace wmn::routing
