// Route-selection policies: which RREQ copy does the destination
// answer, and when may intermediate nodes answer from cache?
//
// FirstArrival reproduces stock AODV (reply to the first copy; hop
// count is implicitly minimized because the first arrival usually took
// the shortest path). BestMetric holds a short collection window after
// the first copy and replies to the copy with the smallest accumulated
// path metric — the mechanism CLNLR's load-aware selection rides on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.hpp"

namespace wmn::routing {

// A candidate route offer, as seen in an arriving RREQ copy.
struct RouteCandidate {
  double metric = 0.0;       // accumulated path metric (load or hops)
  std::uint8_t hop_count = 0;
};

class RouteSelectionPolicy {
 public:
  virtual ~RouteSelectionPolicy() = default;

  // Strict "candidate a beats candidate b".
  [[nodiscard]] virtual bool better(const RouteCandidate& a,
                                    const RouteCandidate& b) const = 0;

  // How long the destination collects copies before replying.
  // Zero = reply to the first copy immediately.
  [[nodiscard]] virtual sim::Time reply_wait() const = 0;

  // May intermediate nodes with a fresh cached route answer the RREQ?
  // (Cached hop counts exist; cached load metrics would be stale, so
  // metric-based selection disables this.)
  [[nodiscard]] virtual bool allow_intermediate_reply() const = 0;

  // Should an established route be replaced by a same-seqno candidate?
  // Hysteresis lives here: CLNLR demands a significant improvement.
  [[nodiscard]] virtual bool should_replace(const RouteCandidate& incumbent,
                                            const RouteCandidate& candidate) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Stock AODV: first copy wins, intermediate replies allowed.
class FirstArrivalSelection final : public RouteSelectionPolicy {
 public:
  [[nodiscard]] bool better(const RouteCandidate& a,
                            const RouteCandidate& b) const override;
  [[nodiscard]] sim::Time reply_wait() const override { return {}; }
  [[nodiscard]] bool allow_intermediate_reply() const override { return true; }
  [[nodiscard]] std::string name() const override { return "first-arrival"; }
};

// Collect copies for `window`, reply to the minimum-metric one
// (hop count breaks ties); replace routes only on `hysteresis`
// relative improvement.
class BestMetricSelection final : public RouteSelectionPolicy {
 public:
  explicit BestMetricSelection(sim::Time window = sim::Time::millis(50.0),
                               double hysteresis = 0.15)
      : window_(window), hysteresis_(hysteresis) {}

  [[nodiscard]] bool better(const RouteCandidate& a,
                            const RouteCandidate& b) const override;
  [[nodiscard]] sim::Time reply_wait() const override { return window_; }
  [[nodiscard]] bool allow_intermediate_reply() const override { return false; }
  [[nodiscard]] bool should_replace(const RouteCandidate& incumbent,
                                    const RouteCandidate& candidate) const override;
  [[nodiscard]] std::string name() const override { return "best-metric"; }

 private:
  sim::Time window_;
  double hysteresis_;
};

}  // namespace wmn::routing
