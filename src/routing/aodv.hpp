// AODV routing engine (RFC 3561 message economy) with pluggable
// rebroadcast and route-selection policies.
//
// One AodvAgent per node, layered on DcfMac. The engine implements:
//   * on-demand route discovery (RREQ broadcast / RREP unicast),
//     destination sequence numbers, RREQ-id duplicate cache;
//   * data forwarding with TTL, packet buffering during discovery,
//     bounded discovery retries with binary-exponential RREP wait;
//   * link-failure handling from two triggers (MAC retry exhaustion
//     and HELLO loss), RERR propagation, route invalidation;
//   * periodic HELLO beacons maintaining the neighbour table — and,
//     when configured, advertising the node's cross-layer load index
//     (the CLNLR neighbourhood dissemination mechanism);
//   * optional accumulated path metric in RREQs (LoadTlv), feeding
//     metric-based route selection.
//
// Every protocol in the evaluation (AODV-BF, AODV-GOSSIP, AODV-CB,
// CLNLR and its ablations) is this engine with different policy and
// config wiring — so control-packet overhead comparisons are strictly
// like-for-like.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "mac/dcf_mac.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "routing/load_source.hpp"
#include "routing/messages.hpp"
#include "routing/neighbor_table.hpp"
#include "routing/rebroadcast_policy.hpp"
#include "routing/route_selection.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace wmn::routing {

struct AodvConfig {
  sim::Time hello_interval = sim::Time::seconds(1.0);
  std::uint32_t allowed_hello_loss = 2;
  sim::Time active_route_timeout = sim::Time::seconds(6.0);
  sim::Time rreq_cache_timeout = sim::Time::seconds(5.0);
  std::uint32_t rreq_retries = 2;  // network-wide attempts = retries + 1
  sim::Time net_traversal_time = sim::Time::seconds(1.0);
  std::uint8_t rreq_ttl = 30;

  // Expanding-ring search (RFC 3561 section 6.4): probe with growing
  // TTL rings before going network-wide. Off by default — the source
  // papers' overhead comparisons are against network-wide discovery.
  bool expanding_ring = false;
  std::uint8_t ers_ttl_start = 5;
  std::uint8_t ers_ttl_increment = 2;
  std::uint8_t ers_ttl_threshold = 7;  // last ring before full TTL

  std::uint8_t data_ttl = 64;
  std::size_t buffer_capacity = 64;       // per-destination
  sim::Time buffer_timeout = sim::Time::seconds(8.0);
  sim::Time housekeeping_interval = sim::Time::seconds(1.0);
  sim::Time dead_route_retention = sim::Time::seconds(10.0);

  // CLNLR switches.
  bool use_load_metric = false;     // RREQs accumulate neighbourhood load
  bool hello_carries_load = false;  // HELLOs advertise node load
  double nbhd_self_weight = 0.5;    // own weight in neighbourhood load

  // Graceful degradation (RFC 3561 optional machinery). All of it is
  // OFF by default: the baseline protocols — and therefore the seed
  // determinism fingerprints — run the stock engine.
  //
  // Local repair (section 6.12): an intermediate node whose next hop
  // died may re-discover the destination itself instead of RERR-ing to
  // the source, when the destination was close (few hops) — the repair
  // RREQ's TTL is last-known hops + slack.
  bool local_repair = false;
  std::uint8_t local_repair_max_dest_hops = 3;
  std::uint8_t local_repair_ttl_slack = 2;
  // Unidirectional-neighbour blacklist (section 6.8): a failed RREP
  // unicast means the reverse link the RREQ arrived over doesn't work
  // in our direction; ignore that neighbour's RREQs for a while so the
  // next discovery picks a bidirectional path.
  bool rrep_blacklist = false;
  sim::Time blacklist_timeout = sim::Time::seconds(3.0);
  // RERR delivery (section 6.11): unicast to the single precursor when
  // there is exactly one, suppress entirely when there are none —
  // instead of always broadcasting.
  bool rerr_to_precursors = false;
};

class AodvAgent {
 public:
  // Data packet that reached its destination (us): handed to the
  // application with its network-layer origin.
  using DeliverCallback = std::function<void(net::Packet, net::Address origin)>;

  AodvAgent(sim::Simulator& simulator, const AodvConfig& cfg, net::Address self,
            mac::DcfMac& mac, net::PacketFactory& factory,
            std::unique_ptr<RebroadcastPolicy> rebroadcast,
            std::unique_ptr<RouteSelectionPolicy> selection,
            std::unique_ptr<LoadSource> load);
  ~AodvAgent();

  AodvAgent(const AodvAgent&) = delete;
  AodvAgent& operator=(const AodvAgent&) = delete;

  void set_deliver_callback(DeliverCallback cb) { deliver_cb_ = std::move(cb); }

  // Application entry point: route (discovering if needed) and send.
  void send(net::Packet packet, net::Address dest);

  // --- fault-injection API ---------------------------------------------
  // Crash/recover this router (fault::Injector). pause() cancels every
  // outstanding agent event (HELLO, housekeeping, RREQ-cache timers,
  // discovery timeouts), drops buffered packets, and forgets all
  // routing state — a crashed router keeps nothing. resume() is a cold
  // restart: empty tables, fresh HELLO/housekeeping timers (jittered
  // from the agent's own RNG stream; the stream is only consumed when
  // faults actually fire, so fault-free runs stay bit-identical).
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  [[nodiscard]] net::Address address() const { return self_; }

  // Neighbourhood load index: weighted blend of own load and the mean
  // advertised load of 1-hop neighbours. The quantity CLNLR routes on.
  [[nodiscard]] double neighbourhood_load() const;

  [[nodiscard]] double own_load() const { return load_->load_index(); }
  [[nodiscard]] const NeighborTable& neighbors() const { return neighbors_; }
  [[nodiscard]] RouteTable& routes() { return routes_; }
  [[nodiscard]] const AodvConfig& config() const { return cfg_; }
  [[nodiscard]] std::string policy_name() const { return rebroadcast_->name(); }

  struct Counters {
    // Control plane.
    std::uint64_t rreq_originated = 0;   // discovery attempts we started
    std::uint64_t rreq_forwarded = 0;    // rebroadcasts we performed
    std::uint64_t rreq_received = 0;     // first copies processed
    std::uint64_t rreq_duplicates = 0;
    std::uint64_t rreq_suppressed = 0;   // policy said drop
    std::uint64_t rrep_originated = 0;
    std::uint64_t rrep_intermediate = 0; // cached-route replies
    std::uint64_t rrep_forwarded = 0;
    std::uint64_t rrep_dropped = 0;      // no reverse route
    std::uint64_t rerr_sent = 0;
    std::uint64_t rerr_received = 0;
    std::uint64_t hello_sent = 0;
    // Discovery outcomes.
    std::uint64_t discovery_started = 0;  // distinct (dest) discoveries
    std::uint64_t discovery_succeeded = 0;
    std::uint64_t discovery_failed = 0;
    // Data plane.
    std::uint64_t data_originated = 0;
    std::uint64_t data_forwarded = 0;
    std::uint64_t data_delivered = 0;
    std::uint64_t data_dropped_no_route = 0;
    std::uint64_t data_dropped_ttl = 0;
    std::uint64_t data_dropped_link_break = 0;
    std::uint64_t data_dropped_buffer = 0;  // buffer overflow/timeout
    std::uint64_t link_breaks = 0;
    // Resilience / graceful degradation.
    std::uint64_t data_dropped_node_down = 0;  // offered while crashed
    std::uint64_t local_repair_attempted = 0;
    std::uint64_t local_repair_succeeded = 0;
    std::uint64_t blacklist_adds = 0;
    std::uint64_t rreq_ignored_blacklist = 0;
    std::uint64_t rerr_suppressed_no_precursor = 0;
    // Route-recovery latency: break-to-reinstall, per destination.
    std::uint64_t route_recoveries = 0;
    std::uint64_t route_recovery_ns_total = 0;
    std::uint64_t route_recovery_abandoned = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Dynamic footprint of the agent's routing state (route + neighbour
  // tables, RREQ cache, discovery/buffer maps) — feeds the
  // bytes_per_node bench counter.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct RreqKey {
    std::uint64_t v;
    bool operator==(const RreqKey&) const = default;
  };
  struct RreqKeyHash {
    std::size_t operator()(const RreqKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.v);
    }
  };
  static RreqKey make_key(net::Address origin, std::uint32_t id) {
    return RreqKey{(static_cast<std::uint64_t>(origin.value()) << 32) | id};
  }

  // Per-RREQ bookkeeping: duplicate counting, deferred forwarding
  // (counter policy), and destination-side copy collection.
  struct RreqRecord {
    sim::Time first_seen{};
    std::uint32_t copies = 1;
    bool forward_decided = false;
    // Deferred forward (kDefer) state.
    std::optional<RreqHeader> pending_forward;
    double pending_path_load = 0.0;
    sim::EventId assess_timer{};
    // Destination-side selection state.
    bool replied = false;
    std::optional<RouteCandidate> best;
    net::Address best_prev_hop;  // where the best copy came from
    sim::EventId reply_timer{};
    // Jittered rebroadcast of a kForward decision. Tracked so teardown
    // and crash injection can cancel it — an untracked forward event
    // would fire into a destroyed or paused agent.
    sim::EventId forward_timer{};
  };

  struct Discovery {
    std::uint32_t attempts = 0;
    sim::EventId timer{};
    // Local repair: a single attempt with a hop-bounded TTL, run by an
    // intermediate node on behalf of the broken route.
    bool repair = false;
    std::uint8_t repair_ttl = 0;
  };

  struct BufferedPacket {
    net::Packet packet;
    sim::Time enqueued{};
    // Present for transit packets parked during local repair: their
    // original network header (origin, remaining TTL) must survive the
    // repair rather than being re-stamped as our own traffic.
    std::optional<DataHeader> transit_hdr;
  };

  // --- RX dispatch -----------------------------------------------------
  void on_mac_receive(net::Packet packet, net::Address src);
  void handle_rreq(net::Packet packet, net::Address src);
  void handle_rrep(net::Packet packet, net::Address src);
  void handle_rerr(net::Packet packet, net::Address src);
  void handle_hello(net::Packet packet, net::Address src);
  void handle_data(net::Packet packet, net::Address src);

  // --- discovery --------------------------------------------------------
  void start_discovery(net::Address dest);
  void send_rreq(net::Address dest, std::uint32_t attempt);
  // TTL for the given attempt index (ring sequence, then network-wide),
  // or nullopt when the attempt budget is exhausted.
  [[nodiscard]] std::optional<std::uint8_t> ttl_for_attempt(
      std::uint32_t attempt) const;
  void on_discovery_timeout(net::Address dest);
  void forward_rreq(const RreqHeader& hdr, double path_load);
  void send_rrep_as_destination(const RreqHeader& hdr, const RouteCandidate& cand);
  void send_rrep_from_cache(const RreqHeader& hdr, const RouteEntry& route);
  void finish_defer(RreqKey key);
  void destination_reply_due(RreqKey key);

  // --- routes -----------------------------------------------------------
  // Update the route to `dest` from evidence (seqno, candidate, via).
  // Returns true if the table changed.
  bool update_route(net::Address dest, net::Address via, std::uint32_t seqno,
                    bool seqno_valid, const RouteCandidate& cand,
                    sim::Time lifetime);
  void upsert_neighbor_route(net::Address neighbor);
  void flush_buffer(net::Address dest);
  void drop_buffer(net::Address dest, const char* reason);

  // --- failures -----------------------------------------------------------
  void on_mac_tx_failed(net::Address next_hop, net::Packet packet);
  void on_neighbor_lost(net::Address neighbor);
  // Invalidate routes via `next_hop` and report them. `repair_dest`
  // (when valid) is excluded from the RERR: we are repairing it locally.
  void handle_link_break(net::Address next_hop,
                         net::Address repair_dest = net::Address{});
  // Decide the RERR recipient (precursor unicast / broadcast /
  // suppression, per cfg_.rerr_to_precursors) and send. `precursor_list`
  // may arrive in any order with duplicates; it is normalised (sorted,
  // unique) internally so the fan-out never depends on the hash layout
  // of the unordered precursor sets it was collected from.
  void emit_rerr(const std::vector<net::Address>& dests,
                 const std::vector<std::uint32_t>& seqnos,
                 std::vector<net::Address> precursor_list);
  void send_rerr(const std::vector<net::Address>& dests,
                 const std::vector<std::uint32_t>& seqnos, net::Address target);
  void start_local_repair(net::Address dest, std::uint8_t last_hops);
  // Recovery-latency bookkeeping around route invalidation/reinstall.
  void note_route_broken(net::Address dest);
  void note_route_restored(net::Address dest);

  // --- periodic -----------------------------------------------------------
  void send_hello();
  void housekeeping();
  void cancel_all_timers();

  [[nodiscard]] sim::Time now() const { return sim_.now(); }

  sim::Simulator& sim_;
  AodvConfig cfg_;
  net::Address self_;
  mac::DcfMac& mac_;
  net::PacketFactory& factory_;
  std::unique_ptr<RebroadcastPolicy> rebroadcast_;
  std::unique_ptr<RouteSelectionPolicy> selection_;
  std::unique_ptr<LoadSource> load_;
  sim::RngStream rng_;

  RouteTable routes_;
  NeighborTable neighbors_;
  DeliverCallback deliver_cb_;

  std::uint32_t seqno_ = 0;
  std::uint32_t rreq_id_ = 0;
  std::uint32_t hello_seqno_ = 0;

  std::unordered_map<RreqKey, RreqRecord, RreqKeyHash> rreq_cache_;
  std::unordered_map<net::Address, Discovery> discoveries_;
  std::unordered_map<net::Address, std::deque<BufferedPacket>> buffers_;

  sim::EventId hello_timer_{};
  sim::EventId housekeeping_timer_{};

  // Fault injection: true while crashed.
  bool paused_ = false;
  // Blacklisted RREQ sources (section 6.8) -> ignore-until time.
  std::unordered_map<net::Address, sim::Time> blacklist_;
  // Destinations whose route broke (link break / RERR) and has not been
  // reinstalled yet -> break time. Feeds the recovery-latency metric.
  std::unordered_map<net::Address, sim::Time> broken_at_;

  Counters counters_;
};

}  // namespace wmn::routing
