#include "routing/rebroadcast_policy.hpp"

#include <algorithm>

namespace wmn::routing {

bool RebroadcastPolicy::assess(const RebroadcastContext&, sim::RngStream&) {
  // Policies that never defer never get asked.
  return true;
}

RebroadcastDecision FloodPolicy::decide(const RebroadcastContext&,
                                        sim::RngStream& rng) {
  return {RebroadcastAction::kForward,
          sim::Time::nanos(static_cast<std::int64_t>(
              rng.uniform01() * static_cast<double>(max_jitter_.ns())))};
}

RebroadcastDecision GossipPolicy::decide(const RebroadcastContext& ctx,
                                         sim::RngStream& rng) {
  const sim::Time jitter = sim::Time::nanos(static_cast<std::int64_t>(
      rng.uniform01() * static_cast<double>(max_jitter_.ns())));
  if (ctx.hop_count < k_ || rng.bernoulli(p_)) {
    return {RebroadcastAction::kForward, jitter};
  }
  return {RebroadcastAction::kDrop, {}};
}

std::string GossipPolicy::name() const {
  return "gossip(p=" + std::to_string(p_).substr(0, 4) + ")";
}

double DensityGossipPolicy::forward_probability(std::size_t degree) const {
  if (degree == 0) return 1.0;
  const double p = p_base_ * degree_ref_ / static_cast<double>(degree);
  return std::clamp(p, p_min_, 1.0);
}

RebroadcastDecision DensityGossipPolicy::decide(const RebroadcastContext& ctx,
                                                sim::RngStream& rng) {
  const sim::Time jitter = sim::Time::nanos(static_cast<std::int64_t>(
      rng.uniform01() * static_cast<double>(max_jitter_.ns())));
  if (ctx.hop_count < k_ ||
      rng.bernoulli(forward_probability(ctx.neighbor_count))) {
    return {RebroadcastAction::kForward, jitter};
  }
  return {RebroadcastAction::kDrop, {}};
}

std::string DensityGossipPolicy::name() const {
  return "density-gossip(p=" + std::to_string(p_base_).substr(0, 4) + ")";
}

RebroadcastDecision CounterPolicy::decide(const RebroadcastContext&,
                                          sim::RngStream& rng) {
  return {RebroadcastAction::kDefer,
          sim::Time::nanos(static_cast<std::int64_t>(
              rng.uniform01() * static_cast<double>(max_rad_.ns())))};
}

bool CounterPolicy::assess(const RebroadcastContext& ctx, sim::RngStream&) {
  // duplicates_seen counts copies *beyond the first*; the classic
  // counter compares total copies heard against the threshold.
  return ctx.duplicates_seen + 1 < threshold_;
}

std::string CounterPolicy::name() const {
  return "counter(c=" + std::to_string(threshold_) + ")";
}

}  // namespace wmn::routing
