#include "routing/aodv.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace wmn::routing {

namespace {
constexpr std::uint64_t kAodvStreamSalt = 0xA0D0'0000'0000'0000ULL;

// Milliseconds clamp for the RREP lifetime field.
std::uint32_t to_lifetime_ms(sim::Time t) {
  const auto ms = t.ns() / 1'000'000;
  return ms < 0 ? 0u : static_cast<std::uint32_t>(ms);
}
}  // namespace

AodvAgent::AodvAgent(sim::Simulator& simulator, const AodvConfig& cfg,
                     net::Address self, mac::DcfMac& mac,
                     net::PacketFactory& factory,
                     std::unique_ptr<RebroadcastPolicy> rebroadcast,
                     std::unique_ptr<RouteSelectionPolicy> selection,
                     std::unique_ptr<LoadSource> load)
    : sim_(simulator),
      cfg_(cfg),
      self_(self),
      mac_(mac),
      factory_(factory),
      rebroadcast_(std::move(rebroadcast)),
      selection_(std::move(selection)),
      load_(std::move(load)),
      rng_(simulator.make_stream(kAodvStreamSalt ^ self.value())),
      neighbors_(simulator, cfg.hello_interval, cfg.allowed_hello_loss) {
  WMN_CHECK(rebroadcast_ && selection_ && load_,
            "agent needs rebroadcast, selection, and load policies");

  mac_.set_rx_callback(
      [this](net::Packet p, net::Address src) { on_mac_receive(std::move(p), src); });
  mac_.set_tx_failed_callback([this](net::Address dst, net::Packet p) {
    on_mac_tx_failed(dst, std::move(p));
  });
  neighbors_.set_loss_callback(
      [this](net::Address n) { on_neighbor_lost(n); });

  // Desynchronize periodic timers across nodes.
  hello_timer_ = sim_.schedule(
      cfg_.hello_interval.scaled(rng_.uniform01()), [this] { send_hello(); });
  housekeeping_timer_ =
      sim_.schedule(cfg_.housekeeping_interval.scaled(rng_.uniform01()),
                    [this] { housekeeping(); });
}

AodvAgent::~AodvAgent() { cancel_all_timers(); }

void AodvAgent::cancel_all_timers() {
  sim_.cancel(hello_timer_);
  sim_.cancel(housekeeping_timer_);
  // Cancel is per-timer and idempotent; no event is scheduled or sent,
  // so the unordered visit order is unobservable.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto& [key, rec] : rreq_cache_) {
    sim_.cancel(rec.assess_timer);
    sim_.cancel(rec.reply_timer);
    sim_.cancel(rec.forward_timer);
  }
  // NOLINTNEXTLINE(wmn-unordered-iteration): same argument as above.
  for (auto& [dest, d] : discoveries_) sim_.cancel(d.timer);
}

void AodvAgent::pause() {
  if (paused_) return;
  paused_ = true;
  cancel_all_timers();
  // Integer-sum over the buffered queues: commutative, no events.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (const auto& [dest, q] : buffers_) {
    counters_.data_dropped_buffer += q.size();
  }
  buffers_.clear();
  rreq_cache_.clear();
  discoveries_.clear();
  routes_.clear();
  neighbors_.pause();
  blacklist_.clear();
  broken_at_.clear();
}

void AodvAgent::resume() {
  if (!paused_) return;
  paused_ = false;
  neighbors_.resume();
  // Rejoin with fresh, desynchronized periodic timers. These draws only
  // happen when a fault plan actually crashes the node, so fault-free
  // runs consume the agent stream exactly as before.
  hello_timer_ = sim_.schedule(
      cfg_.hello_interval.scaled(rng_.uniform01()), [this] { send_hello(); });
  housekeeping_timer_ =
      sim_.schedule(cfg_.housekeeping_interval.scaled(rng_.uniform01()),
                    [this] { housekeeping(); });
}

double AodvAgent::neighbourhood_load() const {
  const double own = load_->load_index();
  if (neighbors_.count() == 0) return own;
  const double w = cfg_.nbhd_self_weight;
  return w * own + (1.0 - w) * neighbors_.mean_neighbor_load();
}

// --------------------------------------------------------------------------
// Application plane
// --------------------------------------------------------------------------

void AodvAgent::send(net::Packet packet, net::Address dest) {
  WMN_CHECK(dest.is_valid() && !dest.is_broadcast(),
            "application traffic needs a valid unicast destination");
  // Header-stack balance: the application hands over a bare payload;
  // a leftover header here means some layer forgot to pop its header
  // before re-submitting (e.g. on the salvage path).
  WMN_CHECK_EQ(packet.header_count(), std::size_t{0},
               "application packet entered the agent with headers attached");
  ++counters_.data_originated;
  if (paused_) {
    // The application keeps offering traffic while we are crashed; it
    // evaporates here (and counts against PDR, as it should).
    ++counters_.data_dropped_node_down;
    return;
  }
  if (dest == self_) {
    ++counters_.data_delivered;
    if (deliver_cb_) deliver_cb_(std::move(packet), self_);
    return;
  }

  const RouteEntry* r = routes_.lookup(dest, now());
  if (r != nullptr) {
    packet.push(DataHeader{self_, dest, cfg_.data_ttl});
    routes_.touch(dest, now() + cfg_.active_route_timeout);
    mac_.enqueue(std::move(packet), r->next_hop);
    return;
  }

  // No route: buffer and (if not already running) discover.
  auto& buf = buffers_[dest];
  if (buf.size() >= cfg_.buffer_capacity) {
    buf.pop_front();
    ++counters_.data_dropped_buffer;
  }
  buf.push_back(BufferedPacket{std::move(packet), now(), std::nullopt});
  if (!discoveries_.contains(dest)) start_discovery(dest);
}

void AodvAgent::flush_buffer(net::Address dest) {
  auto it = buffers_.find(dest);
  if (it == buffers_.end()) return;
  std::deque<BufferedPacket> pending = std::move(it->second);
  buffers_.erase(it);
  for (auto& bp : pending) {
    const RouteEntry* r = routes_.lookup(dest, now());
    if (r == nullptr) {
      ++counters_.data_dropped_no_route;
      continue;
    }
    if (bp.transit_hdr.has_value()) {
      // Transit packet parked during local repair: resume forwarding
      // under its original origin and remaining TTL.
      if (bp.transit_hdr->ttl <= 1) {
        ++counters_.data_dropped_ttl;
        continue;
      }
      DataHeader fwd = *bp.transit_hdr;
      --fwd.ttl;
      bp.packet.push(fwd);
      ++counters_.data_forwarded;
    } else {
      bp.packet.push(DataHeader{self_, dest, cfg_.data_ttl});
    }
    mac_.enqueue(std::move(bp.packet), r->next_hop);
  }
}

void AodvAgent::drop_buffer(net::Address dest, const char*) {
  auto it = buffers_.find(dest);
  if (it == buffers_.end()) return;
  counters_.data_dropped_no_route += it->second.size();
  buffers_.erase(it);
}

// --------------------------------------------------------------------------
// Route discovery
// --------------------------------------------------------------------------

void AodvAgent::start_discovery(net::Address dest) {
  ++counters_.discovery_started;
  Discovery d;
  d.attempts = 0;
  discoveries_[dest] = d;
  send_rreq(dest, 0);
}

std::optional<std::uint8_t> AodvAgent::ttl_for_attempt(
    std::uint32_t attempt) const {
  std::uint32_t rings = 0;
  if (cfg_.expanding_ring) {
    for (std::uint32_t t = cfg_.ers_ttl_start; t <= cfg_.ers_ttl_threshold;
         t += cfg_.ers_ttl_increment) {
      if (attempt == rings) return static_cast<std::uint8_t>(t);
      ++rings;
    }
  }
  // Network-wide attempts: 1 + rreq_retries of them.
  if (attempt < rings + 1 + cfg_.rreq_retries) return cfg_.rreq_ttl;
  return std::nullopt;
}

void AodvAgent::send_rreq(net::Address dest, std::uint32_t attempt) {
  auto it = discoveries_.find(dest);
  WMN_CHECK(it != discoveries_.end(), "RREQ sent without an open discovery");
  const bool repair = it->second.repair;
  std::uint8_t ttl_value;
  if (repair) {
    // Local repair is one hop-bounded attempt; no retry schedule.
    WMN_CHECK_EQ(attempt, 0u, "local repair retried its RREQ");
    ttl_value = it->second.repair_ttl;
  } else {
    const auto ttl = ttl_for_attempt(attempt);
    WMN_CHECK(ttl.has_value(), "RREQ attempt past the retry schedule");
    ttl_value = *ttl;
  }
  ++counters_.rreq_originated;
  ++seqno_;
  ++rreq_id_;

  RreqHeader hdr;
  hdr.rreq_id = rreq_id_;
  hdr.origin = self_;
  hdr.origin_seqno = seqno_;
  hdr.dest = dest;
  hdr.hop_count = 0;
  hdr.ttl = ttl_value;
  if (RouteEntry* e = routes_.find(dest); e != nullptr && e->valid_seqno) {
    hdr.dest_seqno = e->dest_seqno;
    hdr.unknown_dest_seqno = false;
  }

  net::Packet pkt = factory_.make(0, now());
  if (cfg_.use_load_metric) {
    // The origin contributes its own neighbourhood load so paths
    // leaving a congested source are penalized too.
    pkt.push(LoadTlv{neighbourhood_load()});
  }
  pkt.push(hdr);
  mac_.enqueue(std::move(pkt), net::Address::broadcast());

  it->second.attempts = attempt + 1;
  // RREP wait scales with the ring radius (ring traversal time) and
  // doubles per network-wide retry, randomized by up to +50%: two
  // nodes whose first RREQs collided must not re-collide on every
  // retry.
  sim::Time wait;
  if (repair) {
    const double frac = std::min(
        1.0, static_cast<double>(ttl_value + 2) / static_cast<double>(cfg_.rreq_ttl));
    wait = cfg_.net_traversal_time.scaled(frac);
  } else if (ttl_value < cfg_.rreq_ttl) {
    wait = cfg_.net_traversal_time.scaled(
        static_cast<double>(ttl_value + 2) / static_cast<double>(cfg_.rreq_ttl));
  } else {
    const std::uint32_t full_attempt =
        attempt - (cfg_.expanding_ring
                       ? (cfg_.ers_ttl_threshold - cfg_.ers_ttl_start) /
                                 cfg_.ers_ttl_increment +
                             1
                       : 0);
    wait = cfg_.net_traversal_time * (std::int64_t{1} << std::min(full_attempt, 4u));
  }
  wait = wait.scaled(rng_.uniform(1.0, 1.5));
  it->second.timer =
      sim_.schedule(wait, [this, dest] { on_discovery_timeout(dest); });
}

void AodvAgent::on_discovery_timeout(net::Address dest) {
  auto it = discoveries_.find(dest);
  if (it == discoveries_.end()) return;
  const bool repair = it->second.repair;
  if (routes_.lookup(dest, now()) != nullptr) {
    // Route appeared without us noticing a RREP (e.g. learned from a
    // passing RREQ); treat as success.
    ++counters_.discovery_succeeded;
    if (repair) ++counters_.local_repair_succeeded;
    discoveries_.erase(it);
    flush_buffer(dest);
    return;
  }
  if (!repair && ttl_for_attempt(it->second.attempts).has_value()) {
    send_rreq(dest, it->second.attempts);
    return;
  }
  ++counters_.discovery_failed;
  discoveries_.erase(it);
  if (repair) {
    // The repair failed: deliver the RERR we withheld when the link
    // broke, so upstream nodes stop sending through us.
    std::uint32_t s = 0;
    std::vector<net::Address> prec;
    if (RouteEntry* e = routes_.find(dest); e != nullptr) {
      s = e->dest_seqno;
      prec.assign(e->precursors.begin(), e->precursors.end());
    }
    emit_rerr({dest}, {s}, std::move(prec));
  }
  drop_buffer(dest, "discovery failed");
}

void AodvAgent::handle_rreq(net::Packet packet, net::Address src) {
  RreqHeader hdr = packet.pop<RreqHeader>();
  const double path_load =
      cfg_.use_load_metric ? packet.pop<LoadTlv>().load : 0.0;

  if (hdr.origin == self_) return;  // echo of our own flood

  if (cfg_.rrep_blacklist && !blacklist_.empty()) {
    // Section 6.8: RREQs over a link we know to be unidirectional are
    // ignored entirely — answering them would just fail again.
    auto bl = blacklist_.find(src);
    if (bl != blacklist_.end()) {
      if (bl->second > now()) {
        ++counters_.rreq_ignored_blacklist;
        return;
      }
      blacklist_.erase(bl);
    }
  }

  neighbors_.refresh(src);
  upsert_neighbor_route(src);

  // Reverse route toward the origin (used to source the RREP back).
  const RouteCandidate rev{path_load,
                           static_cast<std::uint8_t>(hdr.hop_count + 1)};
  update_route(hdr.origin, src, hdr.origin_seqno, true, rev,
               cfg_.active_route_timeout);

  const RreqKey key = make_key(hdr.origin, hdr.rreq_id);
  auto it = rreq_cache_.find(key);
  if (it != rreq_cache_.end()) {
    ++counters_.rreq_duplicates;
    RreqRecord& rec = it->second;
    ++rec.copies;
    // A destination collecting copies considers this one too.
    if (self_ == hdr.dest && !rec.replied && sim_.pending(rec.reply_timer)) {
      const RouteCandidate cand{path_load, hdr.hop_count};
      if (!rec.best || selection_->better(cand, *rec.best)) {
        rec.best = cand;
        rec.best_prev_hop = src;
        rec.pending_forward = hdr;
      }
    }
    return;
  }

  ++counters_.rreq_received;
  RreqRecord rec;
  rec.first_seen = now();

  if (self_ == hdr.dest) {
    const RouteCandidate cand{path_load, hdr.hop_count};
    rec.best = cand;
    rec.best_prev_hop = src;
    rec.pending_forward = hdr;
    const sim::Time wait = selection_->reply_wait();
    if (wait.is_zero()) {
      rec.replied = true;
      rreq_cache_.emplace(key, std::move(rec));
      send_rrep_as_destination(hdr, cand);
    } else {
      rec.reply_timer =
          sim_.schedule(wait, [this, key] { destination_reply_due(key); });
      rreq_cache_.emplace(key, std::move(rec));
    }
    return;
  }

  // Intermediate node with a fresh-enough cached route may answer.
  if (selection_->allow_intermediate_reply()) {
    const RouteEntry* r = routes_.lookup(hdr.dest, now());
    if (r != nullptr && r->valid_seqno &&
        (hdr.unknown_dest_seqno ||
         seqno_newer_or_equal(r->dest_seqno, hdr.dest_seqno))) {
      rec.forward_decided = true;
      rreq_cache_.emplace(key, std::move(rec));
      ++counters_.rrep_intermediate;
      send_rrep_from_cache(hdr, *r);
      return;
    }
  }

  if (hdr.ttl <= 1) {
    rec.forward_decided = true;
    rreq_cache_.emplace(key, std::move(rec));
    return;
  }

  RebroadcastContext ctx;
  ctx.hop_count = hdr.hop_count;
  ctx.neighbor_count = neighbors_.count();
  ctx.own_load = load_->load_index();
  ctx.neighbourhood_load = neighbourhood_load();
  ctx.duplicates_seen = 0;

  const RebroadcastDecision dec = rebroadcast_->decide(ctx, rng_);
  switch (dec.action) {
    case RebroadcastAction::kForward: {
      rec.forward_decided = true;
      auto [pos, inserted] = rreq_cache_.emplace(key, std::move(rec));
      WMN_CHECK(inserted, "RREQ record already cached on first copy");
      pos->second.forward_timer = sim_.schedule(
          dec.delay, [this, hdr, path_load] { forward_rreq(hdr, path_load); });
      break;
    }
    case RebroadcastAction::kDrop:
      rec.forward_decided = true;
      ++counters_.rreq_suppressed;
      rreq_cache_.emplace(key, std::move(rec));
      break;
    case RebroadcastAction::kDefer:
      rec.pending_forward = hdr;
      rec.pending_path_load = path_load;
      rec.assess_timer =
          sim_.schedule(dec.delay, [this, key] { finish_defer(key); });
      rreq_cache_.emplace(key, std::move(rec));
      break;
  }
}

void AodvAgent::finish_defer(RreqKey key) {
  auto it = rreq_cache_.find(key);
  if (it == rreq_cache_.end()) return;
  RreqRecord& rec = it->second;
  if (rec.forward_decided || !rec.pending_forward) return;
  rec.forward_decided = true;

  RebroadcastContext ctx;
  ctx.hop_count = rec.pending_forward->hop_count;
  ctx.neighbor_count = neighbors_.count();
  ctx.own_load = load_->load_index();
  ctx.neighbourhood_load = neighbourhood_load();
  ctx.duplicates_seen = rec.copies - 1;

  if (rebroadcast_->assess(ctx, rng_)) {
    forward_rreq(*rec.pending_forward, rec.pending_path_load);
  } else {
    ++counters_.rreq_suppressed;
  }
  rec.pending_forward.reset();
}

void AodvAgent::forward_rreq(const RreqHeader& hdr, double path_load) {
  ++counters_.rreq_forwarded;
  RreqHeader fwd = hdr;
  ++fwd.hop_count;
  --fwd.ttl;

  net::Packet pkt = factory_.make(0, now());
  if (cfg_.use_load_metric) {
    pkt.push(LoadTlv{path_load + neighbourhood_load()});
  }
  pkt.push(fwd);
  mac_.enqueue(std::move(pkt), net::Address::broadcast());
}

void AodvAgent::destination_reply_due(RreqKey key) {
  auto it = rreq_cache_.find(key);
  if (it == rreq_cache_.end()) return;
  RreqRecord& rec = it->second;
  if (rec.replied || !rec.best || !rec.pending_forward) return;
  rec.replied = true;
  send_rrep_as_destination(*rec.pending_forward, *rec.best);
}

void AodvAgent::send_rrep_as_destination(const RreqHeader& hdr,
                                         const RouteCandidate& cand) {
  // Destination sequence-number maintenance (RFC 3561 section 6.6.1,
  // simplified: never answer with a seqno circularly older than the
  // request's).
  ++seqno_;
  if (!hdr.unknown_dest_seqno && seqno_newer(hdr.dest_seqno, seqno_)) {
    seqno_ = hdr.dest_seqno;
  }

  RrepHeader rep;
  rep.dest = self_;
  rep.dest_seqno = seqno_;
  rep.origin = hdr.origin;
  rep.hop_count = 0;
  rep.metric = cand.metric;
  rep.lifetime_ms = to_lifetime_ms(cfg_.active_route_timeout);

  const RouteEntry* rev = routes_.lookup(hdr.origin, now());
  if (rev == nullptr) {
    ++counters_.rrep_dropped;
    return;
  }
  ++counters_.rrep_originated;
  net::Packet pkt = factory_.make(0, now());
  pkt.push(rep);
  mac_.enqueue(std::move(pkt), rev->next_hop);
}

void AodvAgent::send_rrep_from_cache(const RreqHeader& hdr,
                                     const RouteEntry& route) {
  RrepHeader rep;
  rep.dest = hdr.dest;
  rep.dest_seqno = route.dest_seqno;
  rep.origin = hdr.origin;
  rep.hop_count = route.hop_count;
  rep.metric = route.metric;
  rep.lifetime_ms = to_lifetime_ms(route.expires - now());

  const RouteEntry* rev = routes_.lookup(hdr.origin, now());
  if (rev == nullptr) {
    ++counters_.rrep_dropped;
    return;
  }
  net::Packet pkt = factory_.make(0, now());
  pkt.push(rep);
  mac_.enqueue(std::move(pkt), rev->next_hop);
}

void AodvAgent::handle_rrep(net::Packet packet, net::Address src) {
  RrepHeader hdr = packet.pop<RrepHeader>();
  neighbors_.refresh(src);
  upsert_neighbor_route(src);

  // RREPs carry no TTL; transient reverse-route loops (reverse routes
  // can be replaced while an RREP is in flight) would otherwise
  // circulate one forever and wrap hop_count to 0 at 255.
  if (hdr.hop_count == std::numeric_limits<std::uint8_t>::max()) {
    ++counters_.rrep_dropped;
    return;
  }
  const auto my_hops = static_cast<std::uint8_t>(hdr.hop_count + 1);
  const RouteCandidate cand{hdr.metric, my_hops};
  const sim::Time lifetime = sim::Time::millis(
      static_cast<double>(std::max<std::uint32_t>(hdr.lifetime_ms, 1000)));
  update_route(hdr.dest, src, hdr.dest_seqno, true, cand, lifetime);

  if (hdr.origin == self_) {
    auto it = discoveries_.find(hdr.dest);
    if (it != discoveries_.end()) {
      sim_.cancel(it->second.timer);
      ++counters_.discovery_succeeded;
      if (it->second.repair) ++counters_.local_repair_succeeded;
      discoveries_.erase(it);
    }
    flush_buffer(hdr.dest);
    return;
  }

  // Forward toward the origin along the reverse route.
  const RouteEntry* rev = routes_.lookup(hdr.origin, now());
  if (rev == nullptr) {
    ++counters_.rrep_dropped;
    return;
  }
  RrepHeader fwd = hdr;
  fwd.hop_count = my_hops;
  // Precursor bookkeeping: the reverse next hop routes through us to
  // `dest`; the RREP sender routes through us to `origin`.
  routes_.add_precursor(hdr.dest, rev->next_hop);
  routes_.add_precursor(hdr.origin, src);

  ++counters_.rrep_forwarded;
  net::Packet pkt = factory_.make(0, now());
  pkt.push(fwd);
  mac_.enqueue(std::move(pkt), rev->next_hop);
}

// --------------------------------------------------------------------------
// Route maintenance
// --------------------------------------------------------------------------

bool AodvAgent::update_route(net::Address dest, net::Address via,
                             std::uint32_t seqno, bool seqno_valid,
                             const RouteCandidate& cand, sim::Time lifetime) {
  if (dest == self_) return false;
  RouteEntry* e = routes_.find(dest);

  bool accept;
  if (e == nullptr) {
    accept = true;
  } else if (e->valid_seqno && seqno_valid &&
             seqno_newer(e->dest_seqno, seqno)) {
    accept = false;  // stale information never overrides fresher state
  } else if (e->state == RouteState::kInvalid) {
    accept = true;
  } else if (!e->valid_seqno) {
    accept = true;
  } else if (seqno_valid && seqno_newer(seqno, e->dest_seqno)) {
    accept = true;
  } else {
    accept = selection_->should_replace(RouteCandidate{e->metric, e->hop_count},
                                        cand);
  }
  if (!accept) {
    // Same-next-hop updates still refresh the lifetime.
    if (e != nullptr && e->state == RouteState::kValid && e->next_hop == via) {
      routes_.touch(dest, now() + lifetime);
    }
    return false;
  }

  RouteEntry entry;
  entry.dest = dest;
  entry.next_hop = via;
  entry.hop_count = cand.hop_count;
  entry.dest_seqno = seqno;
  entry.valid_seqno = seqno_valid;
  entry.metric = cand.metric;
  entry.state = RouteState::kValid;
  entry.expires = now() + lifetime;
  if (e != nullptr) entry.precursors = std::move(e->precursors);
  routes_.upsert(entry);
  note_route_restored(dest);
  return true;
}

void AodvAgent::note_route_broken(net::Address dest) {
  // First break wins: a route that breaks again mid-recovery is still
  // one outage from the traffic's point of view.
  broken_at_.try_emplace(dest, now());
}

void AodvAgent::note_route_restored(net::Address dest) {
  if (broken_at_.empty()) return;  // common case: nothing broken
  auto it = broken_at_.find(dest);
  if (it == broken_at_.end()) return;
  counters_.route_recovery_ns_total +=
      static_cast<std::uint64_t>((now() - it->second).ns());
  ++counters_.route_recoveries;
  broken_at_.erase(it);
}

void AodvAgent::upsert_neighbor_route(net::Address neighbor) {
  RouteEntry* e = routes_.find(neighbor);
  if (e != nullptr && e->state == RouteState::kValid) {
    routes_.touch(neighbor, now() + cfg_.active_route_timeout);
    return;
  }
  RouteEntry entry;
  entry.dest = neighbor;
  entry.next_hop = neighbor;
  entry.hop_count = 1;
  entry.valid_seqno = false;
  entry.metric = 0.0;
  entry.state = RouteState::kValid;
  entry.expires = now() + cfg_.active_route_timeout;
  if (e != nullptr) {
    entry.dest_seqno = e->dest_seqno;
    entry.valid_seqno = e->valid_seqno;
    entry.precursors = std::move(e->precursors);
  }
  routes_.upsert(entry);
  note_route_restored(neighbor);
}

// --------------------------------------------------------------------------
// Data plane
// --------------------------------------------------------------------------

void AodvAgent::handle_data(net::Packet packet, net::Address src) {
  DataHeader hdr = packet.pop<DataHeader>();
  neighbors_.refresh(src);

  if (hdr.dest == self_) {
    ++counters_.data_delivered;
    // Header-stack balance at node egress: every header pushed along
    // the path must have been popped by its owning layer by now.
    WMN_CHECK_EQ(packet.header_count(), std::size_t{0},
                 "packet delivered to the application with headers left");
    // Active routes are refreshed by the traffic they carry.
    routes_.touch(hdr.origin, now() + cfg_.active_route_timeout);
    routes_.touch(src, now() + cfg_.active_route_timeout);
    if (deliver_cb_) deliver_cb_(std::move(packet), hdr.origin);
    return;
  }

  if (hdr.ttl <= 1) {
    ++counters_.data_dropped_ttl;
    return;
  }

  const RouteEntry* r = routes_.lookup(hdr.dest, now());
  if (r == nullptr) {
    if (auto d = discoveries_.find(hdr.dest);
        d != discoveries_.end() && d->second.repair) {
      // We are mid-local-repair for this destination (section 6.12):
      // park the packet with the repair's adoptees instead of bouncing
      // a RERR upstream for a break we expect to heal.
      auto& buf = buffers_[hdr.dest];
      if (buf.size() >= cfg_.buffer_capacity) {
        buf.pop_front();
        ++counters_.data_dropped_buffer;
      }
      buf.push_back(BufferedPacket{std::move(packet), now(), hdr});
      return;
    }
    ++counters_.data_dropped_no_route;
    // Tell upstream nodes the route through us is dead. The upstream
    // sender is a precursor by construction — it just routed data
    // through us — so it is always among the candidate recipients.
    std::uint32_t s = 0;
    std::vector<net::Address> prec;
    if (RouteEntry* e = routes_.find(hdr.dest); e != nullptr) {
      s = e->dest_seqno;
      prec.assign(e->precursors.begin(), e->precursors.end());
    }
    prec.push_back(src);
    emit_rerr({hdr.dest}, {s}, std::move(prec));
    return;
  }

  DataHeader fwd = hdr;
  --fwd.ttl;
  packet.push(fwd);
  routes_.touch(hdr.dest, now() + cfg_.active_route_timeout);
  routes_.touch(hdr.origin, now() + cfg_.active_route_timeout);
  routes_.touch(src, now() + cfg_.active_route_timeout);
  routes_.touch(r->next_hop, now() + cfg_.active_route_timeout);
  ++counters_.data_forwarded;
  mac_.enqueue(std::move(packet), r->next_hop);
}

// --------------------------------------------------------------------------
// Failure handling
// --------------------------------------------------------------------------

void AodvAgent::on_mac_tx_failed(net::Address next_hop, net::Packet packet) {
  if (paused_) return;  // crashed between MAC failure and callback
  ++counters_.link_breaks;

  if (cfg_.rrep_blacklist && packet.top_is<RrepHeader>()) {
    // A failed RREP unicast is the section 6.8 unidirectionality
    // signal: the RREQ reached us over this link, our reply cannot get
    // back. Ignore the neighbour's RREQs for blacklist_timeout.
    WMN_CHECK(next_hop.is_valid() && !next_hop.is_broadcast(),
              "RREP tx-failure against a non-unicast next hop");
    blacklist_[next_hop] = now() + cfg_.blacklist_timeout;
    ++counters_.blacklist_adds;
  }

  // Local-repair eligibility must be judged before invalidation wipes
  // the broken route: transit data, destination close by, and no
  // discovery for it already running.
  net::Address repair_dest;  // default-invalid: no repair
  std::uint8_t repair_hops = 0;
  if (cfg_.local_repair && packet.top_is<DataHeader>()) {
    const auto& hdr = packet.peek<DataHeader>();
    if (hdr.origin != self_ && !discoveries_.contains(hdr.dest)) {
      if (const RouteEntry* e = routes_.lookup(hdr.dest, now());
          e != nullptr && e->next_hop == next_hop &&
          e->hop_count <= cfg_.local_repair_max_dest_hops) {
        repair_dest = hdr.dest;
        repair_hops = e->hop_count;
      }
    }
  }

  handle_link_break(next_hop, repair_dest);

  // Salvage: packets we originated can re-enter the send path (which
  // re-discovers); transit packets are lost here — unless a local
  // repair is adopting them.
  if (packet.top_is<DataHeader>()) {
    DataHeader hdr = packet.pop<DataHeader>();
    const auto open = discoveries_.find(hdr.dest);
    const bool repair_running =
        open != discoveries_.end() && open->second.repair;
    if (hdr.origin == self_) {
      --counters_.data_originated;  // send() will count it again
      send(std::move(packet), hdr.dest);
    } else if (repair_dest == hdr.dest || repair_running) {
      // Either this failure triggers a repair, or one is already in
      // flight for the destination: the repair adopts the packet.
      auto& buf = buffers_[hdr.dest];
      if (buf.size() >= cfg_.buffer_capacity) {
        buf.pop_front();
        ++counters_.data_dropped_buffer;
      }
      buf.push_back(BufferedPacket{std::move(packet), now(), hdr});
      if (repair_dest == hdr.dest) start_local_repair(hdr.dest, repair_hops);
    } else {
      ++counters_.data_dropped_link_break;
    }
  } else if (packet.top_is<RrepHeader>()) {
    ++counters_.rrep_dropped;
  }
}

void AodvAgent::start_local_repair(net::Address dest, std::uint8_t last_hops) {
  WMN_CHECK(cfg_.local_repair, "local repair started while disabled");
  WMN_CHECK(!discoveries_.contains(dest),
            "local repair over an already-open discovery");
  ++counters_.local_repair_attempted;
  ++counters_.discovery_started;
  Discovery d;
  d.repair = true;
  const std::uint32_t ttl =
      static_cast<std::uint32_t>(last_hops) + cfg_.local_repair_ttl_slack;
  d.repair_ttl = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(std::max<std::uint32_t>(ttl, 1), cfg_.rreq_ttl));
  discoveries_[dest] = d;
  send_rreq(dest, 0);
}

void AodvAgent::on_neighbor_lost(net::Address neighbor) {
  // The neighbour is gone; it can no longer be a useful RERR recipient.
  routes_.remove_precursor(neighbor);
  handle_link_break(neighbor);
}

void AodvAgent::handle_link_break(net::Address next_hop,
                                  net::Address repair_dest) {
  // dests_via covers the route to next_hop itself when it goes over
  // the broken link; a route to next_hop through some *other* neighbour
  // (e.g. installed by a local repair) is unaffected by this break.
  const std::vector<net::Address> affected = routes_.dests_via(next_hop, now());

  std::vector<net::Address> dests;
  std::vector<std::uint32_t> seqnos;
  std::vector<net::Address> precursors;
  for (net::Address d : affected) {
    if (auto inv = routes_.invalidate(d, now()); inv.has_value()) {
      note_route_broken(d);
      if (d == repair_dest) continue;  // repaired locally, no RERR yet
      dests.push_back(d);
      seqnos.push_back(inv->dest_seqno);
      precursors.insert(precursors.end(), inv->precursors.begin(),
                        inv->precursors.end());
    }
  }
  if (!dests.empty()) emit_rerr(dests, seqnos, std::move(precursors));
}

void AodvAgent::emit_rerr(const std::vector<net::Address>& dests,
                          const std::vector<std::uint32_t>& seqnos,
                          std::vector<net::Address> precursor_list) {
  if (!cfg_.rerr_to_precursors) {
    send_rerr(dests, seqnos, net::Address::broadcast());
    return;
  }
  // Precursors were collected from unordered sets; normalise to a
  // sorted unique list so the fan-out below is a function of the
  // logical precursor set, never of hash-bucket layout (which varies
  // with reserve/rehash history).
  std::sort(precursor_list.begin(), precursor_list.end());
  precursor_list.erase(
      std::unique(precursor_list.begin(), precursor_list.end()),
      precursor_list.end());
  // Section 6.11 delivery discipline: nobody routes through us ->
  // nothing to say; exactly one live precursor -> unicast (gets MAC
  // ACK/retries); otherwise broadcast.
  net::Address sole;
  std::size_t live = 0;
  for (net::Address p : precursor_list) {
    if (!neighbors_.contains(p)) continue;
    ++live;
    sole = p;
    if (live > 1) break;
  }
  if (live == 0) {
    ++counters_.rerr_suppressed_no_precursor;
    return;
  }
  send_rerr(dests, seqnos, live == 1 ? sole : net::Address::broadcast());
}

void AodvAgent::send_rerr(const std::vector<net::Address>& dests,
                          const std::vector<std::uint32_t>& seqnos,
                          net::Address target) {
  WMN_CHECK_EQ(dests.size(), seqnos.size(),
               "RERR destination and seqno lists must pair up");
  std::size_t i = 0;
  while (i < dests.size()) {
    RerrHeader hdr;
    hdr.count = 0;
    while (i < dests.size() && hdr.count < RerrHeader::kMaxUnreachable) {
      hdr.unreachable[hdr.count] = dests[i];
      hdr.seqno[hdr.count] = seqnos[i];
      ++hdr.count;
      ++i;
    }
    ++counters_.rerr_sent;
    net::Packet pkt = factory_.make(0, now());
    pkt.push(hdr);
    mac_.enqueue(std::move(pkt), target);
  }
}

void AodvAgent::handle_rerr(net::Packet packet, net::Address src) {
  RerrHeader hdr = packet.pop<RerrHeader>();
  ++counters_.rerr_received;
  neighbors_.refresh(src);

  std::vector<net::Address> propagate;
  std::vector<std::uint32_t> seqnos;
  std::vector<net::Address> precursors;
  for (std::uint8_t i = 0; i < hdr.count; ++i) {
    const net::Address d = hdr.unreachable[i];
    RouteEntry* e = routes_.find(d);
    if (e == nullptr || e->state != RouteState::kValid || e->next_hop != src) {
      continue;
    }
    auto inv = routes_.invalidate(d, now());
    if (!inv.has_value()) continue;
    note_route_broken(d);
    // Adopt the (possibly circularly newer) unreachable seqno.
    if (RouteEntry* dead = routes_.find(d);
        dead != nullptr && seqno_newer(hdr.seqno[i], dead->dest_seqno)) {
      dead->dest_seqno = hdr.seqno[i];
      dead->valid_seqno = true;
    }
    propagate.push_back(d);
    seqnos.push_back(seqno_max(inv->dest_seqno, hdr.seqno[i]));
    precursors.insert(precursors.end(), inv->precursors.begin(),
                      inv->precursors.end());
  }
  if (!propagate.empty()) emit_rerr(propagate, seqnos, std::move(precursors));
}

// --------------------------------------------------------------------------
// Periodic machinery
// --------------------------------------------------------------------------

void AodvAgent::send_hello() {
  ++counters_.hello_sent;
  HelloHeader hdr;
  hdr.origin = self_;
  hdr.seqno = ++hello_seqno_;
  hdr.degree = static_cast<std::uint16_t>(
      std::min<std::size_t>(neighbors_.count(), 0xFFFF));

  net::Packet pkt = factory_.make(0, now());
  if (cfg_.hello_carries_load) pkt.push(LoadTlv{load_->load_index()});
  pkt.push(hdr);
  mac_.enqueue(std::move(pkt), net::Address::broadcast());

  // +-25% jitter keeps the mesh from beaconing in lockstep.
  hello_timer_ = sim_.schedule(
      cfg_.hello_interval.scaled(rng_.uniform(0.75, 1.25)),
      [this] { send_hello(); });
}

void AodvAgent::handle_hello(net::Packet packet, net::Address src) {
  HelloHeader hdr = packet.pop<HelloHeader>();
  double load = 0.0;
  if (cfg_.hello_carries_load) load = packet.pop<LoadTlv>().load;
  neighbors_.heard(hdr.origin, hdr.seqno, load, hdr.degree);
  upsert_neighbor_route(src);
}

void AodvAgent::housekeeping() {
  routes_.purge(now(), cfg_.dead_route_retention);

  // The four purge loops below erase entries judged independently
  // against `now` (plus integer counter bumps): the surviving state is
  // identical for any visit order and nothing is scheduled or sent, so
  // unordered iteration cannot leak hash layout into the event stream.

  // Expired RREQ records.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = rreq_cache_.begin(); it != rreq_cache_.end();) {
    const RreqRecord& rec = it->second;
    const bool timers_live = sim_.pending(rec.assess_timer) ||
                             sim_.pending(rec.reply_timer) ||
                             sim_.pending(rec.forward_timer);
    if (!timers_live && rec.first_seen + cfg_.rreq_cache_timeout <= now()) {
      it = rreq_cache_.erase(it);
    } else {
      ++it;
    }
  }

  // Expired blacklist entries.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = blacklist_.begin(); it != blacklist_.end();) {
    it = it->second <= now() ? blacklist_.erase(it) : std::next(it);
  }

  // Breaks whose route never came back: stop waiting after the same
  // horizon that reclaims dead route entries.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = broken_at_.begin(); it != broken_at_.end();) {
    if (it->second + cfg_.dead_route_retention <= now()) {
      ++counters_.route_recovery_abandoned;
      it = broken_at_.erase(it);
    } else {
      ++it;
    }
  }

  // Stale buffered packets.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    auto& q = it->second;
    while (!q.empty() && q.front().enqueued + cfg_.buffer_timeout <= now()) {
      q.pop_front();
      ++counters_.data_dropped_buffer;
    }
    it = q.empty() ? buffers_.erase(it) : std::next(it);
  }

  housekeeping_timer_ =
      sim_.schedule(cfg_.housekeeping_interval, [this] { housekeeping(); });
}

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

void AodvAgent::on_mac_receive(net::Packet packet, net::Address src) {
  // Belt: the MAC is powered down with us, so nothing should arrive
  // while crashed; drop it if it somehow does.
  if (paused_) return;
  if (packet.top_is<RreqHeader>()) {
    handle_rreq(std::move(packet), src);
  } else if (packet.top_is<RrepHeader>()) {
    handle_rrep(std::move(packet), src);
  } else if (packet.top_is<RerrHeader>()) {
    handle_rerr(std::move(packet), src);
  } else if (packet.top_is<HelloHeader>()) {
    handle_hello(std::move(packet), src);
  } else if (packet.top_is<DataHeader>()) {
    handle_data(std::move(packet), src);
  }
  // Unknown top header: silently ignored (future protocol versions).
}

namespace {

// libstdc++ unordered_map footprint: one bucket pointer per bucket plus
// a node (value + next pointer + cached hash ≈ value + 16) per element.
template <typename Map>
std::size_t umap_bytes(const Map& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(typename Map::value_type) + 16);
}

}  // namespace

std::size_t AodvAgent::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += routes_.memory_bytes() - sizeof(RouteTable);
  bytes += neighbors_.memory_bytes() - sizeof(NeighborTable);
  bytes += umap_bytes(rreq_cache_);
  bytes += umap_bytes(discoveries_);
  bytes += umap_bytes(buffers_);
  // NOLINTNEXTLINE(wmn-unordered-iteration) — pure accumulation
  for (const auto& [dest, q] : buffers_) {
    bytes += q.size() * sizeof(BufferedPacket);
  }
  bytes += umap_bytes(blacklist_);
  bytes += umap_bytes(broken_at_);
  return bytes;
}

}  // namespace wmn::routing
