// Wire formats for the routing control plane (AODV family, RFC 3561
// message economy) and the network-layer data header.
//
// Byte sizes follow the RFC message layouts; the CLNLR load extension
// travels as a separate 8-byte TLV pushed under the RREQ/HELLO header,
// so baseline protocols are billed the unextended sizes and CLNLR
// honestly pays for its extra field.
#pragma once

#include <array>
#include <cstdint>

#include "net/address.hpp"

namespace wmn::routing {

// RFC 3561 §6.1 destination-sequence-number comparison. Seqnos live on
// a 32-bit circle, so "newer" means the signed two's-complement delta
// is positive: after wraparound, seqno 1 is newer than 0xFFFFFFFF even
// though it is numerically smaller. Plain unsigned <,> would declare
// every post-wrap seqno stale and freeze routes on the old state.
[[nodiscard]] constexpr bool seqno_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

[[nodiscard]] constexpr bool seqno_newer_or_equal(std::uint32_t a,
                                                  std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

// The circularly-newer of two seqnos (e.g. RERR propagation advertises
// the freshest unreachable seqno it knows).
[[nodiscard]] constexpr std::uint32_t seqno_max(std::uint32_t a,
                                                std::uint32_t b) {
  return seqno_newer(a, b) ? a : b;
}

// Network-layer header on every data packet (IP-like: 20 bytes).
struct DataHeader {
  static constexpr std::uint32_t kWireSize = 20;

  net::Address origin;
  net::Address dest;
  std::uint8_t ttl = 64;
};

// Route request (RFC 3561 section 5.1: 24 bytes).
struct RreqHeader {
  static constexpr std::uint32_t kWireSize = 24;

  std::uint32_t rreq_id = 0;
  net::Address origin;
  std::uint32_t origin_seqno = 0;
  net::Address dest;
  std::uint32_t dest_seqno = 0;
  bool unknown_dest_seqno = true;
  std::uint8_t hop_count = 0;
  std::uint8_t ttl = 0;
};

// Route reply (RFC 3561 section 5.2: 20 bytes). `metric` mirrors the
// chosen RREQ's accumulated path metric so forward routes installed by
// intermediate nodes carry it; for baselines it equals the hop count.
struct RrepHeader {
  static constexpr std::uint32_t kWireSize = 20;

  net::Address dest;
  std::uint32_t dest_seqno = 0;
  net::Address origin;
  std::uint8_t hop_count = 0;
  double metric = 0.0;
  std::uint32_t lifetime_ms = 0;
};

// Route error. Real RERRs are 4 + 8n bytes; we carry up to
// kMaxUnreachable destinations and bill the single-destination common
// case (12 bytes) — RERRs are a rounding error in the overhead budget
// next to RREQ storms, which is what the experiments measure.
struct RerrHeader {
  static constexpr std::uint32_t kWireSize = 12;
  static constexpr std::size_t kMaxUnreachable = 5;

  std::array<net::Address, kMaxUnreachable> unreachable{};
  std::array<std::uint32_t, kMaxUnreachable> seqno{};
  std::uint8_t count = 0;
};

// HELLO beacon. AODV encodes hellos as TTL-1 RREPs (20 bytes); ours is
// an explicit type of the same size carrying the neighbour degree used
// by density-aware policies.
struct HelloHeader {
  static constexpr std::uint32_t kWireSize = 20;

  net::Address origin;
  std::uint32_t seqno = 0;
  std::uint16_t degree = 0;  // sender's current neighbour count
};

// CLNLR cross-layer load extension: one float field plus TLV framing.
// Pushed beneath RREQ headers (accumulated path load) and HELLO headers
// (sender's node load index).
struct LoadTlv {
  static constexpr std::uint32_t kWireSize = 8;

  double load = 0.0;
};

}  // namespace wmn::routing
