// 1-hop neighbour table, fed by HELLO beacons.
//
// Besides liveness (a neighbour silent for `allowed_loss` hello
// intervals is declared gone, triggering link-break handling), the
// table stores each neighbour's advertised load index and degree — the
// inputs to CLNLR's neighbourhood load computation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::routing {

// Wide members first: 32 bytes instead of the 40 the declaration-order
// layout padded to — at CLNLR densities this table is sized by the node
// degree, so the entry layout shows up in bytes_per_node.
struct NeighborInfo {
  sim::Time last_heard{};
  double load_index = 0.0;   // sender's advertised cross-layer load
  net::Address addr;
  std::uint32_t last_seqno = 0;
  std::uint16_t degree = 0;  // sender's advertised neighbour count
};

class NeighborTable {
 public:
  using LossCallback = std::function<void(net::Address)>;

  NeighborTable(sim::Simulator& simulator, sim::Time hello_interval,
                std::uint32_t allowed_loss);
  ~NeighborTable();

  NeighborTable(const NeighborTable&) = delete;
  NeighborTable& operator=(const NeighborTable&) = delete;

  // Record a heard HELLO (or any frame proving the neighbour alive).
  void heard(net::Address addr, std::uint32_t seqno, double load_index,
             std::uint16_t degree);

  // Refresh liveness only (e.g. data frame overheard from neighbour).
  void refresh(net::Address addr);

  [[nodiscard]] bool contains(net::Address addr) const {
    return neighbors_.contains(addr);
  }

  [[nodiscard]] std::size_t count() const { return neighbors_.size(); }

  [[nodiscard]] const NeighborInfo* info(net::Address addr) const;

  [[nodiscard]] std::vector<NeighborInfo> snapshot() const;

  // Mean advertised load of current neighbours (0 when alone).
  [[nodiscard]] double mean_neighbor_load() const;

  // Called when a neighbour expires from the table.
  void set_loss_callback(LossCallback cb) { loss_cb_ = std::move(cb); }

  // Fault injection: pause() cancels the sweep and forgets every
  // neighbour (no loss callbacks — the owning agent is crashing, not
  // detecting failures); resume() restarts the sweep on an empty table.
  void pause();
  void resume();

  // Dynamic footprint (buckets + entries) — feeds the bytes_per_node
  // bench counter.
  [[nodiscard]] std::size_t memory_bytes() const {
    using Node = std::pair<const net::Address, NeighborInfo>;
    return sizeof(*this) + neighbors_.bucket_count() * sizeof(void*) +
           neighbors_.size() * (sizeof(Node) + 16);
  }

 private:
  void sweep();

  sim::Simulator& sim_;
  sim::Time lifetime_;
  std::unordered_map<net::Address, NeighborInfo> neighbors_;
  LossCallback loss_cb_;
  sim::EventId sweep_timer_{};
};

}  // namespace wmn::routing
