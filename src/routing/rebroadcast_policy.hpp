// RREQ rebroadcast policies — the broadcast-storm mitigation knob.
//
// The AODV engine asks the policy what to do with the *first* copy of
// each RREQ it would otherwise rebroadcast:
//   kForward — rebroadcast after `delay` (jitter decorrelates
//              neighbours that would otherwise collide);
//   kDrop    — suppress;
//   kDefer   — wait `delay` while the engine counts duplicate copies,
//              then ask `assess()` (counter-based schemes).
//
// Policies see a cross-layer context snapshot; baselines ignore the
// load fields, CLNLR (src/core) is built on them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace wmn::routing {

struct RebroadcastContext {
  std::uint8_t hop_count = 0;        // hops the RREQ has travelled
  std::size_t neighbor_count = 0;    // our current 1-hop degree
  double own_load = 0.0;             // our node load index, [0,1]
  double neighbourhood_load = 0.0;   // neighbourhood load index, [0,1]
  std::uint32_t duplicates_seen = 0; // copies of this RREQ so far
};

enum class RebroadcastAction : std::uint8_t { kForward, kDrop, kDefer };

struct RebroadcastDecision {
  RebroadcastAction action = RebroadcastAction::kForward;
  sim::Time delay{};
};

class RebroadcastPolicy {
 public:
  virtual ~RebroadcastPolicy() = default;

  // Decision for the first copy of a RREQ.
  virtual RebroadcastDecision decide(const RebroadcastContext& ctx,
                                     sim::RngStream& rng) = 0;

  // For kDefer decisions: final verdict once the defer window closed
  // (ctx.duplicates_seen now includes copies heard during the window).
  virtual bool assess(const RebroadcastContext& ctx, sim::RngStream& rng);

  [[nodiscard]] virtual std::string name() const = 0;
};

// Blind flooding (classic AODV): forward every first copy, with a small
// uniform jitter to break neighbour synchronization.
class FloodPolicy final : public RebroadcastPolicy {
 public:
  explicit FloodPolicy(sim::Time max_jitter = sim::Time::millis(10.0))
      : max_jitter_(max_jitter) {}

  RebroadcastDecision decide(const RebroadcastContext& ctx,
                             sim::RngStream& rng) override;
  [[nodiscard]] std::string name() const override { return "flood"; }

 private:
  sim::Time max_jitter_;
};

// GOSSIP1(p, k) (Haas, Halpern, Li): forward with fixed probability p,
// except within the first k hops where p = 1 (protects discovery
// take-off near the origin).
class GossipPolicy final : public RebroadcastPolicy {
 public:
  GossipPolicy(double p, std::uint8_t always_forward_hops = 1,
               sim::Time max_jitter = sim::Time::millis(10.0))
      : p_(p), k_(always_forward_hops), max_jitter_(max_jitter) {}

  RebroadcastDecision decide(const RebroadcastContext& ctx,
                             sim::RngStream& rng) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double p() const { return p_; }

 private:
  double p_;
  std::uint8_t k_;
  sim::Time max_jitter_;
};

// Density-adjusted probabilistic gossip (Bani-Yassein et al.'s
// "adjusted probabilistic" scheme): p is inversely scaled by local
// degree, p = clamp(p_base * deg_ref / degree, p_min, 1). Sparse nodes
// flood; dense ones throttle proportionally — density awareness without
// any cross-layer signal (the natural stepping stone toward CLNLR).
class DensityGossipPolicy final : public RebroadcastPolicy {
 public:
  DensityGossipPolicy(double p_base = 0.65, double degree_ref = 8.0,
                      double p_min = 0.25,
                      std::uint8_t always_forward_hops = 1,
                      sim::Time max_jitter = sim::Time::millis(10.0))
      : p_base_(p_base),
        degree_ref_(degree_ref),
        p_min_(p_min),
        k_(always_forward_hops),
        max_jitter_(max_jitter) {}

  RebroadcastDecision decide(const RebroadcastContext& ctx,
                             sim::RngStream& rng) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double forward_probability(std::size_t degree) const;

 private:
  double p_base_;
  double degree_ref_;
  double p_min_;
  std::uint8_t k_;
  sim::Time max_jitter_;
};

// Counter-based suppression (Tseng et al.; the Bani-Yassein/Al-Dubai
// baseline family): defer for a random assessment delay (RAD); forward
// only if fewer than `threshold` duplicate copies were heard meanwhile.
class CounterPolicy final : public RebroadcastPolicy {
 public:
  CounterPolicy(std::uint32_t threshold = 3,
                sim::Time max_rad = sim::Time::millis(10.0))
      : threshold_(threshold), max_rad_(max_rad) {}

  RebroadcastDecision decide(const RebroadcastContext& ctx,
                             sim::RngStream& rng) override;
  bool assess(const RebroadcastContext& ctx, sim::RngStream& rng) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::uint32_t threshold_;
  sim::Time max_rad_;
};

}  // namespace wmn::routing
