#include "routing/neighbor_table.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::routing {

NeighborTable::NeighborTable(sim::Simulator& simulator, sim::Time hello_interval,
                             std::uint32_t allowed_loss)
    : sim_(simulator),
      lifetime_(hello_interval * static_cast<std::int64_t>(allowed_loss) +
                hello_interval / 2) {
  WMN_CHECK_GT(lifetime_.ns(), std::int64_t{0},
               "neighbour lifetime must be positive or nothing ever expires");
  // Sweep at half the lifetime: detection latency is bounded by
  // lifetime * 1.5 while keeping the timer cheap.
  sweep_timer_ = sim_.schedule(lifetime_ / 2, [this] { sweep(); });
}

NeighborTable::~NeighborTable() { sim_.cancel(sweep_timer_); }

void NeighborTable::heard(net::Address addr, std::uint32_t seqno,
                          double load_index, std::uint16_t degree) {
  NeighborInfo& n = neighbors_[addr];
  // TTL ordering: liveness timestamps never move backwards — the
  // simulator clock is monotone, so a regression means a stale entry
  // escaped a sweep or an event fired out of order.
  WMN_CHECK_GE(sim_.now(), n.last_heard, "neighbour liveness went backwards");
  n.addr = addr;
  n.last_heard = sim_.now();
  n.last_seqno = seqno;
  n.load_index = load_index;
  n.degree = degree;
}

void NeighborTable::refresh(net::Address addr) {
  auto it = neighbors_.find(addr);
  if (it != neighbors_.end()) it->second.last_heard = sim_.now();
}

const NeighborInfo* NeighborTable::info(net::Address addr) const {
  auto it = neighbors_.find(addr);
  return it == neighbors_.end() ? nullptr : &it->second;
}

std::vector<NeighborInfo> NeighborTable::snapshot() const {
  std::vector<NeighborInfo> out;
  out.reserve(neighbors_.size());
  // Unordered iteration is safe here by construction: the snapshot is
  // sorted by address before it escapes, so callers never observe
  // bucket layout. (Allowlist policy: every NOLINT on this check must
  // state *why* hash order cannot leak — see docs/TOOLING.md.)
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (const auto& [addr, info] : neighbors_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const NeighborInfo& a, const NeighborInfo& b) {
              return a.addr < b.addr;
            });
  return out;
}

double NeighborTable::mean_neighbor_load() const {
  if (neighbors_.empty()) return 0.0;
  double sum = 0.0;
  // Commutative-by-construction for the determinism contract: this is
  // a load-index sum whose operands come from one node's serial event
  // stream, so for a given (binary, seed) the visit order — and hence
  // the floating-point rounding — is a pure function of the insertion
  // history. No event or packet is emitted per element. Revisit if the
  // event loop is ever sharded (insertion history would then depend on
  // shard count).
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (const auto& [addr, info] : neighbors_) sum += info.load_index;
  return sum / static_cast<double>(neighbors_.size());
}

void NeighborTable::pause() {
  sim_.cancel(sweep_timer_);
  neighbors_.clear();
}

void NeighborTable::resume() {
  if (sim_.pending(sweep_timer_)) return;  // already running
  sweep_timer_ = sim_.schedule(lifetime_ / 2, [this] { sweep(); });
}

void NeighborTable::sweep() {
  const sim::Time now = sim_.now();
  std::vector<net::Address> lost;
  // Expiry is judged per entry against `now`, so the visit order cannot
  // change *which* neighbours are lost, and the collection is sorted
  // below before any callback fires.
  // NOLINTNEXTLINE(wmn-unordered-iteration)
  for (auto it = neighbors_.begin(); it != neighbors_.end();) {
    if (it->second.last_heard + lifetime_ <= now) {
      lost.push_back(it->first);
      it = neighbors_.erase(it);
    } else {
      WMN_CHECK_LE(it->second.last_heard, now,
                   "surviving neighbour heard in the future");
      ++it;
    }
  }
  // Loss callbacks tear down routes and can emit RERRs; firing them in
  // hash order would leak unordered_map bucket layout into the event
  // stream. Sort so the fan-out order is a function of logical content.
  std::sort(lost.begin(), lost.end());
  for (net::Address a : lost) {
    if (loss_cb_) loss_cb_(a);
  }
  sweep_timer_ = sim_.schedule(lifetime_ / 2, [this] { sweep(); });
}

}  // namespace wmn::routing
