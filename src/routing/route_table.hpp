// AODV routing table: destination-sequenced distance-vector entries
// with lifetimes, precursor lists, and an optional path metric (used by
// metric-based route selection; equals hop count for baselines).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace wmn::routing {

enum class RouteState : std::uint8_t { kValid, kInvalid };

// Field order packs the entry to 56 bytes (wide members first, the
// byte-sized flags sharing one tail word) — at 400+ nodes the route
// tables are the largest per-node structure, so the layout is part of
// the bytes_per_node budget.
struct RouteEntry {
  double metric = 0.0;          // accumulated path metric (CLNLR load)
  sim::Time expires{};          // entry dies (or goes stale) at this time
  // Neighbours that route *through us* to `dest`; they get RERRs when
  // the route breaks. Sorted ascending and duplicate-free — a handful
  // of addresses at most, where a sorted vector is both smaller than a
  // hash set (24 bytes inline vs 56 + buckets) and already in the
  // normalised order the RERR path needs.
  std::vector<net::Address> precursors;
  net::Address dest;
  net::Address next_hop;
  std::uint32_t dest_seqno = 0;
  std::uint8_t hop_count = 0;
  bool valid_seqno = false;
  RouteState state = RouteState::kValid;
};

class RouteTable {
 public:
  // Valid (non-expired, kValid) entry for dest, if any. `now` drives
  // lazy expiry: expired entries flip to kInvalid on access.
  [[nodiscard]] const RouteEntry* lookup(net::Address dest, sim::Time now);

  // Entry regardless of state (e.g. to read the last known seqno).
  [[nodiscard]] RouteEntry* find(net::Address dest);

  // Insert or overwrite an entry.
  RouteEntry& upsert(const RouteEntry& entry);

  // Refresh the lifetime of an active route (data traffic keeps routes
  // alive, per RFC 3561 section 6.2).
  void touch(net::Address dest, sim::Time expires);

  // Invalidate the route to `dest` (if present), bumping its seqno so
  // stale information cannot resurrect it. Returns the invalidated
  // entry, if one existed and was valid.
  std::optional<RouteEntry> invalidate(net::Address dest, sim::Time now);

  // All valid routes whose next hop is `via` (link-break handling).
  [[nodiscard]] std::vector<net::Address> dests_via(net::Address via,
                                                    sim::Time now);

  void add_precursor(net::Address dest, net::Address precursor);

  // Remove `precursor` from every entry's precursor list — called when
  // the neighbour expires from the NeighborTable, so later RERRs are
  // not addressed to stations known to be gone.
  void remove_precursor(net::Address precursor);

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  // Drop long-dead invalid entries (housekeeping; called by the agent's
  // periodic timer).
  void purge(sim::Time now, sim::Time dead_retention);

  // Forget everything (node crash: a rebooted router has no table).
  void clear() { table_.clear(); }

  // Dynamic footprint (buckets + entries + precursor storage) — feeds
  // the bytes_per_node bench counter.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::unordered_map<net::Address, RouteEntry> table_;
};

}  // namespace wmn::routing
