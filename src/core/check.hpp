// Release-safe invariant checking.
//
// The simulator's correctness claims (every F1-F9 figure) depend on
// invariants that `assert()` would silently compile out of the default
// RelWithDebInfo build. WMN_CHECK stays live in ALL build types; the
// cost is a predictable branch per check, which is noise next to the
// hash-map traffic on the same paths.
//
// Two policies, switchable at runtime (see CheckPolicy):
//   * kAbort (default)    — print the violation and abort(). What CI,
//                           tests, and sanitizer runs want.
//   * kLogAndCount        — print (rate-limited), bump a global
//                           counter, continue. What a long experiment
//                           campaign wants: one bad replication taints
//                           its stats instead of killing the sweep.
//                           The counter is surfaced per-run through
//                           exp::RunMetrics::check_violations.
//
// WMN_UNREACHABLE ignores the policy and always terminates: by
// definition there is no sane state to continue from.
//
// When to use WMN_CHECK vs. returning an error: WMN_CHECK guards
// *programming errors* — states the code promises can never occur
// (caller contracts, state-machine legality, conservation laws).
// Conditions an operator or config file can produce (bad CLI values,
// unreachable destinations, full queues) are normal control flow and
// must stay error returns. See docs/TOOLING.md.
//
// Header-only on purpose: wmn_sim (the lowest layer) uses it, so it
// cannot live in any compiled library without inverting the layering.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace wmn::core {

enum class CheckPolicy : std::uint8_t {
  kAbort,        // report then abort()
  kLogAndCount,  // report (rate-limited), count, continue
};

namespace check_detail {

inline std::atomic<CheckPolicy>& policy_slot() {
  static std::atomic<CheckPolicy> policy{CheckPolicy::kAbort};
  return policy;
}

inline std::atomic<std::uint64_t>& violation_slot() {
  static std::atomic<std::uint64_t> violations{0};
  return violations;
}

// Cap on log-and-count stderr output; violations past the cap are
// still counted. Keeps a hot-loop invariant break from drowning a
// sweep's real output.
inline constexpr std::uint64_t kMaxLoggedViolations = 64;

}  // namespace check_detail

inline void set_check_policy(CheckPolicy p) {
  check_detail::policy_slot().store(p, std::memory_order_relaxed);
}

[[nodiscard]] inline CheckPolicy check_policy() {
  return check_detail::policy_slot().load(std::memory_order_relaxed);
}

// Total violations observed under kLogAndCount since process start (or
// the last reset). Monotone; scenarios snapshot-and-diff it.
[[nodiscard]] inline std::uint64_t check_violations() {
  return check_detail::violation_slot().load(std::memory_order_relaxed);
}

inline void reset_check_violations() {
  check_detail::violation_slot().store(0, std::memory_order_relaxed);
}

namespace check_detail {

inline void report(const char* kind, const char* expr, const char* msg,
                   const char* file, int line) {
  std::fprintf(stderr, "[wmn] %s: %s (%s) at %s:%d\n", kind, msg, expr, file,
               line);
}

inline void on_failure(const char* expr, const char* msg, const char* file,
                       int line) {
  if (policy_slot().load(std::memory_order_relaxed) == CheckPolicy::kAbort) {
    report("CHECK failed", expr, msg, file, line);
    std::fflush(stderr);
    // This IS the sanctioned failure path wmn-no-raw-assert points
    // everyone else at; the one place abort() may appear raw.
    std::abort();  // NOLINT(wmn-no-raw-assert)
  }
  const std::uint64_t n =
      violation_slot().fetch_add(1, std::memory_order_relaxed);
  if (n < kMaxLoggedViolations) {
    report("CHECK violated (continuing)", expr, msg, file, line);
  }
}

[[noreturn]] inline void on_unreachable(const char* msg, const char* file,
                                        int line) {
  report("UNREACHABLE reached", "-", msg, file, line);
  std::fflush(stderr);
  std::abort();  // NOLINT(wmn-no-raw-assert): WMN_UNREACHABLE's own exit
}

}  // namespace check_detail
}  // namespace wmn::core

// Core invariant check: live in every build type.
#define WMN_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::wmn::core::check_detail::on_failure(#cond, (msg), __FILE__,       \
                                            __LINE__);                    \
    }                                                                     \
  } while (false)

// Comparison flavors; arguments are evaluated exactly once.
#define WMN_CHECK_OP_(a, op, b, msg)                                      \
  do {                                                                    \
    const auto& wmn_chk_a_ = (a);                                         \
    const auto& wmn_chk_b_ = (b);                                         \
    if (!(wmn_chk_a_ op wmn_chk_b_)) [[unlikely]] {                       \
      ::wmn::core::check_detail::on_failure(#a " " #op " " #b, (msg),     \
                                            __FILE__, __LINE__);          \
    }                                                                     \
  } while (false)

#define WMN_CHECK_EQ(a, b, msg) WMN_CHECK_OP_(a, ==, b, msg)
#define WMN_CHECK_NE(a, b, msg) WMN_CHECK_OP_(a, !=, b, msg)
#define WMN_CHECK_GE(a, b, msg) WMN_CHECK_OP_(a, >=, b, msg)
#define WMN_CHECK_GT(a, b, msg) WMN_CHECK_OP_(a, >, b, msg)
#define WMN_CHECK_LE(a, b, msg) WMN_CHECK_OP_(a, <=, b, msg)
#define WMN_CHECK_LT(a, b, msg) WMN_CHECK_OP_(a, <, b, msg)

#define WMN_CHECK_NOTNULL(ptr, msg) \
  WMN_CHECK((ptr) != nullptr, msg)

// Marks control flow the surrounding logic proves impossible.
// Terminates under every policy: continuing from "impossible" state
// would corrupt results silently.
#define WMN_UNREACHABLE(msg) \
  ::wmn::core::check_detail::on_unreachable((msg), __FILE__, __LINE__)
