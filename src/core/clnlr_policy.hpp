// CLNLR's load-adaptive probabilistic RREQ rebroadcast policy.
//
// Forwarding probability falls with the *neighbourhood* load index and
// with excess local density:
//
//   p = clamp(p_max − a·N − b·ramp(N/gate)·max(0, deg − deg_ref)/deg_ref,
//             p_min, p_max)
//
// with N the neighbourhood load and ramp(x) = min(x, 1). The density
// term is *gated by load*: an idle dense mesh floods like stock AODV
// (suppression buys nothing when the air is free and costs
// reachability), while a loaded dense region throttles on both
// signals. Three protective rules:
//   * the first k hops always forward (discovery take-off, as in
//     GOSSIP1(p,k));
//   * sparse nodes (deg ≤ sparse_degree) always forward — a node with
//     two neighbours is likely a cut vertex, and suppressing it
//     partitions discovery;
//   * a node that loses the coin flip does not drop outright: it
//     defers for an assessment delay and forwards anyway if it heard
//     no duplicate meanwhile (counter-style rescue). Pure probabilistic
//     suppression deletes shortest paths from the candidate set, which
//     lengthens routes and multiplies link breaks; the rescue restores
//     coverage exactly where no neighbour stepped up, at near-zero
//     overhead cost in dense regions (where duplicates abound).
//
// The rebroadcast jitter grows with load: congested nodes hold their
// copy longer, so RREQs racing through lightly-loaded regions reach the
// destination first and win first-arrival ties — load awareness even
// before the metric is compared.
#pragma once

#include <cstdint>

#include "routing/rebroadcast_policy.hpp"

namespace wmn::core {

struct ClnlrPolicyParams {
  double p_min = 0.35;
  double p_max = 1.0;
  double load_weight = 0.8;     // a: probability lost per unit load
  double density_weight = 0.25; // b: probability lost per unit excess density
  double density_gate = 0.15;   // load level at which density damping is full
  double degree_ref = 8.0;      // "expected" mesh degree
  std::uint32_t sparse_degree = 2;
  std::uint8_t always_forward_hops = 1;
  sim::Time base_jitter = sim::Time::millis(10.0);
  double load_jitter_factor = 2.0;  // extra jitter at full load
};

class ClnlrRebroadcastPolicy final : public routing::RebroadcastPolicy {
 public:
  // Validates params at construction: degree_ref and density_gate are
  // divisors in the probability formula, so zero (representable in any
  // config file) would feed NaN/inf to rng.bernoulli(). Violations trip
  // WMN_CHECK; under kLogAndCount the offending divisor is additionally
  // clamped to a safe floor so the run stays finite.
  explicit ClnlrRebroadcastPolicy(const ClnlrPolicyParams& params = {});

  routing::RebroadcastDecision decide(const routing::RebroadcastContext& ctx,
                                      sim::RngStream& rng) override;

  // Rescue verdict for deferred copies: forward iff nobody else did.
  bool assess(const routing::RebroadcastContext& ctx,
              sim::RngStream& rng) override;

  [[nodiscard]] std::string name() const override { return "clnlr"; }

  // The probability formula, exposed for tests and ablation benches.
  [[nodiscard]] double forward_probability(
      const routing::RebroadcastContext& ctx) const;

 private:
  ClnlrPolicyParams params_;
};

}  // namespace wmn::core
