#include "core/node_load_index.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::core {

NodeLoadIndex::NodeLoadIndex(sim::Simulator& simulator,
                             const LoadIndexParams& params, mac::DcfMac& mac)
    : sim_(simulator), params_(params), mac_(mac) {
  WMN_CHECK(params_.weight_queue >= 0 && params_.weight_busy >= 0 &&
                params_.weight_retry >= 0,
            "load-index weights must be non-negative");
  timer_ = sim_.schedule(params_.queue_sample_interval, [this] { sample_queue(); });
}

NodeLoadIndex::~NodeLoadIndex() { sim_.cancel(timer_); }

void NodeLoadIndex::sample_queue() {
  const double q = std::clamp(mac_.queue_ratio(), 0.0, 1.0);
  queue_ewma_ = params_.queue_ewma_alpha * q +
                (1.0 - params_.queue_ewma_alpha) * queue_ewma_;
  timer_ = sim_.schedule(params_.queue_sample_interval, [this] { sample_queue(); });
}

double NodeLoadIndex::load_index() const {
  const double wsum =
      params_.weight_queue + params_.weight_busy + params_.weight_retry;
  if (wsum <= 0.0) return 0.0;
  const double l = (params_.weight_queue * queue_ewma_ +
                    params_.weight_busy * mac_.busy_ratio() +
                    params_.weight_retry * mac_.retry_ratio()) /
                   wsum;
  return std::clamp(l, 0.0, 1.0);
}

}  // namespace wmn::core
