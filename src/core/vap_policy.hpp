// Velocity-Aware Probabilistic (VAP) route discovery.
//
// Reconstruction of the research group's velocity-aware line (Bani
// Khalaf, Al-Dubai, Abed 2012): fast-moving nodes make fragile relays —
// a route through a node that is about to leave radio range breaks
// within seconds, forcing a re-discovery whose RREQ storm costs more
// than the original route was worth. VAP therefore *excludes unstable
// nodes from constructing routes*: a node rebroadcasts a RREQ with a
// probability that falls with its own current speed,
//
//   p = clamp(1 − speed / v_ref, p_min, 1)
//
// so stationary mesh routers always forward, slow clients usually do,
// and fast movers rarely inject themselves into paths. The same
// protective rules as CLNLR apply (first-hop and sparse-neighbourhood
// guards), because a fast node that is the only bridge is still better
// than no route.
//
// This policy composes with the stock AODV engine as Protocol::kAodvVap
// and is evaluated in the mobility experiment (F7b).
#pragma once

#include "mobility/mobility_model.hpp"
#include "routing/rebroadcast_policy.hpp"
#include "sim/simulator.hpp"

namespace wmn::core {

struct VapPolicyParams {
  double p_min = 0.2;          // floor for the fastest movers
  double v_ref_mps = 20.0;     // speed at which p would reach 0 unclamped
  std::uint32_t sparse_degree = 2;
  std::uint8_t always_forward_hops = 1;
  sim::Time max_jitter = sim::Time::millis(10.0);
};

class VapRebroadcastPolicy final : public routing::RebroadcastPolicy {
 public:
  VapRebroadcastPolicy(sim::Simulator& simulator,
                       const mobility::MobilityModel* self_mobility,
                       const VapPolicyParams& params = {})
      : sim_(simulator), mobility_(self_mobility), params_(params) {}

  routing::RebroadcastDecision decide(const routing::RebroadcastContext& ctx,
                                      sim::RngStream& rng) override;

  [[nodiscard]] std::string name() const override { return "vap"; }

  // The probability formula, exposed for tests.
  [[nodiscard]] double forward_probability(double speed_mps) const;

 private:
  sim::Simulator& sim_;
  const mobility::MobilityModel* mobility_;
  VapPolicyParams params_;
};

}  // namespace wmn::core
