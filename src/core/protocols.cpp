#include "core/protocols.hpp"

#include "core/check.hpp"


namespace wmn::core {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kAodvFlood: return "AODV-BF";
    case Protocol::kAodvGossip: return "AODV-GOSSIP";
    case Protocol::kAodvCounter: return "AODV-CB";
    case Protocol::kAodvAp: return "AODV-AP";
    case Protocol::kAodvVap: return "AODV-VAP";
    case Protocol::kClnlr: return "CLNLR";
    case Protocol::kClnlrRdOnly: return "CLNLR-RD";
    case Protocol::kClnlrRsOnly: return "CLNLR-RS";
  }
  return "?";
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> v{
      Protocol::kAodvFlood,   Protocol::kAodvGossip,  Protocol::kAodvCounter,
      Protocol::kAodvAp,      Protocol::kAodvVap,     Protocol::kClnlr,
      Protocol::kClnlrRdOnly, Protocol::kClnlrRsOnly};
  return v;
}

const std::vector<Protocol>& headline_protocols() {
  static const std::vector<Protocol> v{
      Protocol::kAodvFlood, Protocol::kAodvGossip, Protocol::kAodvCounter,
      Protocol::kClnlr};
  return v;
}

std::unique_ptr<routing::AodvAgent> make_agent(Protocol protocol,
                                               const ProtocolOptions& options,
                                               sim::Simulator& simulator,
                                               net::Address self,
                                               mac::DcfMac& mac,
                                               net::PacketFactory& factory,
                                               const mobility::MobilityModel* mobility) {
  routing::AodvConfig cfg = options.aodv;
  std::unique_ptr<routing::RebroadcastPolicy> rebroadcast;
  std::unique_ptr<routing::RouteSelectionPolicy> selection;
  std::unique_ptr<routing::LoadSource> load;

  const auto make_load_index = [&] {
    return std::make_unique<NodeLoadIndex>(simulator, options.load_index, mac);
  };

  switch (protocol) {
    case Protocol::kAodvFlood:
      rebroadcast = std::make_unique<routing::FloodPolicy>();
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = std::make_unique<routing::ZeroLoadSource>();
      break;
    case Protocol::kAodvGossip:
      rebroadcast = std::make_unique<routing::GossipPolicy>(options.gossip_p);
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = std::make_unique<routing::ZeroLoadSource>();
      break;
    case Protocol::kAodvCounter:
      rebroadcast =
          std::make_unique<routing::CounterPolicy>(options.counter_threshold);
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = std::make_unique<routing::ZeroLoadSource>();
      break;
    case Protocol::kAodvAp:
      rebroadcast =
          std::make_unique<routing::DensityGossipPolicy>(options.gossip_p);
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = std::make_unique<routing::ZeroLoadSource>();
      break;
    case Protocol::kAodvVap:
      WMN_CHECK_NOTNULL(mobility, "kAodvVap requires the mobility model");
      rebroadcast =
          std::make_unique<VapRebroadcastPolicy>(simulator, mobility, options.vap);
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = std::make_unique<routing::ZeroLoadSource>();
      break;
    case Protocol::kClnlr:
      cfg.use_load_metric = true;
      cfg.hello_carries_load = true;
      rebroadcast = std::make_unique<ClnlrRebroadcastPolicy>(options.clnlr);
      selection = std::make_unique<routing::BestMetricSelection>();
      load = make_load_index();
      break;
    case Protocol::kClnlrRdOnly:
      // Load-adaptive discovery, stock route selection: HELLOs must
      // still carry load (the policy reads neighbourhood load) but
      // RREQs stay unextended and routes are hop-count routes.
      cfg.use_load_metric = false;
      cfg.hello_carries_load = true;
      rebroadcast = std::make_unique<ClnlrRebroadcastPolicy>(options.clnlr);
      selection = std::make_unique<routing::FirstArrivalSelection>();
      load = make_load_index();
      break;
    case Protocol::kClnlrRsOnly:
      // Blind-flood discovery, load-aware selection.
      cfg.use_load_metric = true;
      cfg.hello_carries_load = true;
      rebroadcast = std::make_unique<routing::FloodPolicy>();
      selection = std::make_unique<routing::BestMetricSelection>();
      load = make_load_index();
      break;
  }
  WMN_CHECK(rebroadcast && selection && load,
            "every protocol must wire all three policies");
  return std::make_unique<routing::AodvAgent>(
      simulator, cfg, self, mac, factory, std::move(rebroadcast),
      std::move(selection), std::move(load));
}

}  // namespace wmn::core
