// CLNLR's cross-layer node load index.
//
// The scalar L ∈ [0,1] that a node advertises in HELLOs and folds into
// the RREQ path metric is a weighted blend of three MAC/PHY signals:
//
//   L = w_q * queue_ratio + w_b * busy_ratio + w_r * retry_ratio
//
//   queue_ratio — interface-queue occupancy (local backlog: this node
//                 is a bottleneck);
//   busy_ratio  — windowed medium busy fraction (regional congestion:
//                 the *air* around this node is saturated, including
//                 traffic the node merely overhears);
//   retry_ratio — windowed MAC retry fraction (collision pressure:
//                 contention is already destroying frames).
//
// The busy/retry signals are pre-smoothed by mac::LoadMonitor; the
// queue signal is instantaneous, so this class samples and EWMA-smooths
// it on the same cadence. The blend is re-evaluated lazily on read.
#pragma once

#include "mac/dcf_mac.hpp"
#include "routing/load_source.hpp"
#include "sim/simulator.hpp"

namespace wmn::core {

struct LoadIndexParams {
  double weight_queue = 0.4;
  double weight_busy = 0.4;
  double weight_retry = 0.2;
  sim::Time queue_sample_interval = sim::Time::millis(250.0);
  double queue_ewma_alpha = 0.5;
};

class NodeLoadIndex final : public routing::LoadSource {
 public:
  NodeLoadIndex(sim::Simulator& simulator, const LoadIndexParams& params,
                mac::DcfMac& mac);
  ~NodeLoadIndex() override;

  NodeLoadIndex(const NodeLoadIndex&) = delete;
  NodeLoadIndex& operator=(const NodeLoadIndex&) = delete;

  // The blended load index in [0, 1].
  [[nodiscard]] double load_index() const override;

  // Individual components (diagnostics / ablation benches).
  [[nodiscard]] double queue_component() const { return queue_ewma_; }
  [[nodiscard]] double busy_component() const { return mac_.busy_ratio(); }
  [[nodiscard]] double retry_component() const { return mac_.retry_ratio(); }

 private:
  void sample_queue();

  sim::Simulator& sim_;
  LoadIndexParams params_;
  mac::DcfMac& mac_;
  double queue_ewma_ = 0.0;
  sim::EventId timer_{};
};

}  // namespace wmn::core
