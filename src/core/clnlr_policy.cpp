#include "core/clnlr_policy.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::core {

ClnlrRebroadcastPolicy::ClnlrRebroadcastPolicy(const ClnlrPolicyParams& params)
    : params_(params) {
  WMN_CHECK_GT(params_.degree_ref, 0.0,
               "CLNLR degree_ref divides the density term");
  WMN_CHECK_GT(params_.density_gate, 0.0,
               "CLNLR density_gate divides the gate ramp");
  WMN_CHECK_GE(params_.p_min, 0.0, "CLNLR p_min must be non-negative");
  WMN_CHECK_LE(params_.p_min, params_.p_max,
               "CLNLR p_min must not exceed p_max");
  WMN_CHECK_LE(params_.p_max, 1.0, "CLNLR p_max is a probability");
  // Under kLogAndCount execution continues past a tripped check: clamp
  // the divisors so forward_probability stays finite regardless.
  params_.degree_ref = std::max(params_.degree_ref, 1e-6);
  params_.density_gate = std::max(params_.density_gate, 1e-6);
}

double ClnlrRebroadcastPolicy::forward_probability(
    const routing::RebroadcastContext& ctx) const {
  const double deg = static_cast<double>(ctx.neighbor_count);
  const double excess_density =
      std::max(0.0, deg - params_.degree_ref) / params_.degree_ref;
  // Density damping ramps in with load: idle meshes flood regardless
  // of density.
  const double gate =
      std::clamp(ctx.neighbourhood_load / params_.density_gate, 0.0, 1.0);
  const double p = params_.p_max -
                   params_.load_weight * ctx.neighbourhood_load -
                   params_.density_weight * excess_density * gate;
  return std::clamp(p, params_.p_min, params_.p_max);
}

routing::RebroadcastDecision ClnlrRebroadcastPolicy::decide(
    const routing::RebroadcastContext& ctx, sim::RngStream& rng) {
  // Load-scaled jitter: hold the copy longer where the air is busy.
  const double jitter_scale =
      1.0 + params_.load_jitter_factor * ctx.neighbourhood_load;
  const sim::Time delay = sim::Time::nanos(static_cast<std::int64_t>(
      rng.uniform01() * static_cast<double>(params_.base_jitter.ns()) *
      jitter_scale));

  if (ctx.hop_count < params_.always_forward_hops ||
      ctx.neighbor_count <= params_.sparse_degree) {
    return {routing::RebroadcastAction::kForward, delay};
  }
  if (rng.bernoulli(forward_probability(ctx))) {
    return {routing::RebroadcastAction::kForward, delay};
  }
  // Lost the coin flip: hold the copy and let assess() decide (rescue
  // if no neighbour rebroadcast in the meantime).
  return {routing::RebroadcastAction::kDefer, delay + params_.base_jitter};
}

bool ClnlrRebroadcastPolicy::assess(const routing::RebroadcastContext& ctx,
                                    sim::RngStream&) {
  return ctx.duplicates_seen == 0;
}

}  // namespace wmn::core
