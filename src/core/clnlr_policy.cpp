#include "core/clnlr_policy.hpp"

#include <algorithm>

namespace wmn::core {

double ClnlrRebroadcastPolicy::forward_probability(
    const routing::RebroadcastContext& ctx) const {
  const double deg = static_cast<double>(ctx.neighbor_count);
  const double excess_density =
      std::max(0.0, deg - params_.degree_ref) / params_.degree_ref;
  // Density damping ramps in with load: idle meshes flood regardless
  // of density.
  const double gate =
      std::clamp(ctx.neighbourhood_load / params_.density_gate, 0.0, 1.0);
  const double p = params_.p_max -
                   params_.load_weight * ctx.neighbourhood_load -
                   params_.density_weight * excess_density * gate;
  return std::clamp(p, params_.p_min, params_.p_max);
}

routing::RebroadcastDecision ClnlrRebroadcastPolicy::decide(
    const routing::RebroadcastContext& ctx, sim::RngStream& rng) {
  // Load-scaled jitter: hold the copy longer where the air is busy.
  const double jitter_scale =
      1.0 + params_.load_jitter_factor * ctx.neighbourhood_load;
  const sim::Time delay = sim::Time::nanos(static_cast<std::int64_t>(
      rng.uniform01() * static_cast<double>(params_.base_jitter.ns()) *
      jitter_scale));

  if (ctx.hop_count < params_.always_forward_hops ||
      ctx.neighbor_count <= params_.sparse_degree) {
    return {routing::RebroadcastAction::kForward, delay};
  }
  if (rng.bernoulli(forward_probability(ctx))) {
    return {routing::RebroadcastAction::kForward, delay};
  }
  // Lost the coin flip: hold the copy and let assess() decide (rescue
  // if no neighbour rebroadcast in the meantime).
  return {routing::RebroadcastAction::kDefer, delay + params_.base_jitter};
}

bool ClnlrRebroadcastPolicy::assess(const routing::RebroadcastContext& ctx,
                                    sim::RngStream&) {
  return ctx.duplicates_seen == 0;
}

}  // namespace wmn::core
