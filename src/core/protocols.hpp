// Protocol catalogue and factory — the one place where the AODV engine
// is wired into each evaluated protocol.
//
// | Protocol      | RREQ rebroadcast      | Route selection | Load metric |
// |---------------|-----------------------|-----------------|-------------|
// | kAodvFlood    | blind flood           | first arrival   | no          |
// | kAodvGossip   | gossip(p)             | first arrival   | no          |
// | kAodvCounter  | counter-based(c)      | first arrival   | no          |
// | kClnlr        | load-adaptive (CLNLR) | best metric     | yes         |
// | kClnlrRdOnly  | load-adaptive (CLNLR) | first arrival   | no          |
// | kClnlrRsOnly  | blind flood           | best metric     | yes         |
//
// kClnlrRdOnly / kClnlrRsOnly are the ablation halves (discovery
// throttling alone / load-aware selection alone).
#pragma once

#include <memory>
#include <vector>
#include <string>

#include "core/clnlr_policy.hpp"
#include "core/vap_policy.hpp"
#include "core/node_load_index.hpp"
#include "routing/aodv.hpp"

namespace wmn::core {

enum class Protocol {
  kAodvFlood,
  kAodvGossip,
  kAodvCounter,
  kAodvAp,       // density-adjusted probabilistic (the group's own scheme)
  kAodvVap,      // velocity-aware probabilistic discovery (mobility niche)
  kClnlr,
  kClnlrRdOnly,
  kClnlrRsOnly,
};

[[nodiscard]] std::string protocol_name(Protocol p);

// All protocols in evaluation order (benches iterate this).
[[nodiscard]] const std::vector<Protocol>& all_protocols();
[[nodiscard]] const std::vector<Protocol>& headline_protocols();  // no ablations

struct ProtocolOptions {
  double gossip_p = 0.65;
  std::uint32_t counter_threshold = 3;
  ClnlrPolicyParams clnlr;
  VapPolicyParams vap;
  LoadIndexParams load_index;
  routing::AodvConfig aodv;  // base engine config, adjusted per protocol
};

// Build a fully wired routing agent for one node. `mobility` is only
// required by velocity-aware protocols (kAodvVap); others ignore it.
[[nodiscard]] std::unique_ptr<routing::AodvAgent> make_agent(
    Protocol protocol, const ProtocolOptions& options, sim::Simulator& simulator,
    net::Address self, mac::DcfMac& mac, net::PacketFactory& factory,
    const mobility::MobilityModel* mobility = nullptr);

}  // namespace wmn::core
