#include "core/vap_policy.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::core {

double VapRebroadcastPolicy::forward_probability(double speed_mps) const {
  const double p = 1.0 - speed_mps / params_.v_ref_mps;
  return std::clamp(p, params_.p_min, 1.0);
}

routing::RebroadcastDecision VapRebroadcastPolicy::decide(
    const routing::RebroadcastContext& ctx, sim::RngStream& rng) {
  WMN_CHECK_NOTNULL(mobility_, "VAP needs the node's mobility model");
  const sim::Time jitter = sim::Time::nanos(static_cast<std::int64_t>(
      rng.uniform01() * static_cast<double>(params_.max_jitter.ns())));

  if (ctx.hop_count < params_.always_forward_hops ||
      ctx.neighbor_count <= params_.sparse_degree) {
    return {routing::RebroadcastAction::kForward, jitter};
  }
  const double speed = mobility_->speed(sim_.now());
  if (rng.bernoulli(forward_probability(speed))) {
    return {routing::RebroadcastAction::kForward, jitter};
  }
  return {routing::RebroadcastAction::kDrop, {}};
}

}  // namespace wmn::core
