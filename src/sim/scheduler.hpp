// Binary-heap event calendar.
//
// Ordering is (timestamp, insertion sequence): two events scheduled for
// the same instant execute in the order they were scheduled, which the
// MAC layer relies on for deterministic slot resolution.
//
// Storage: callables live in a slab of generation-tagged slots recycled
// through a free list; the heap itself holds small (time, seq, slot,
// gen) entries. Cancellation is O(1) and lazy — it releases the slot
// immediately (bumping its generation) and leaves the heap entry to be
// discarded when it surfaces, recognized by its stale generation. No
// hashing anywhere: pending() and the dead-entry test are one array
// index plus one integer compare. Together with the allocation-free
// EventFn this makes schedule/cancel/pop malloc-free after the slab and
// heap reach steady-state size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Insert an event at absolute time `at`. Returns a cancellable id.
  EventId schedule(Time at, EventFn fn);

  // Remove a pending event; no-op on fired, cancelled, or invalid ids.
  // Releases the callable (and anything it captures) eagerly.
  void cancel(EventId id);

  // True iff `id` is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = id_slot(id);
    return slot < slots_.size() && slots_[slot].gen == id_gen(id);
  }

  // True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_count_; }

  // Timestamp of the next live event; Time::max() when empty.
  // Compacts stale heap tops as a side effect.
  [[nodiscard]] Time next_time();

  // Remove and return the next live event. Precondition: !empty().
  struct Fired {
    Time at;
    EventFn fn;
  };
  Fired pop();

  // Drop everything (used when a run is aborted).
  void clear();

  // Total events ever scheduled (diagnostics / micro-benchmarks).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  // A slot whose generation matches a heap entry / EventId is live; the
  // generation is bumped whenever the slot is released (fire or
  // cancel), which invalidates every outstanding reference at once.
  // (A stale id could only alias after the same slot cycles through
  // 2^32 generations while the id is held — not a practical concern.)
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
  };

  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // EventId layout: high 32 bits generation, low 32 bits slot + 1 (so
  // id 0 stays the invalid sentinel).
  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId((std::uint64_t{gen} << 32) | (slot + 1));
  }
  static constexpr std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id.value() & 0xFFFFFFFFu) - 1;
  }
  static constexpr std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id.value() >> 32);
  }

  // Min-heap predicate on (time, seq).
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  [[nodiscard]] bool stale(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wmn::sim
