// Binary-heap event calendar.
//
// Ordering is (timestamp, insertion sequence): two events scheduled for
// the same instant execute in the order they were scheduled, which the
// MAC layer relies on for deterministic slot resolution.
//
// Cancellation is lazy: a cancelled entry stays in the heap and is
// discarded when it reaches the top. cancel() is O(1); the pending-id
// set makes cancel-after-fire an exact no-op.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Insert an event at absolute time `at`. Returns a cancellable id.
  EventId schedule(Time at, EventFn fn);

  // Remove a pending event; no-op on fired, cancelled, or invalid ids.
  void cancel(EventId id);

  // True iff `id` is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    return id.valid() && pending_.contains(id.value());
  }

  // True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  // Timestamp of the next live event; Time::max() when empty.
  // Compacts cancelled heap tops as a side effect.
  [[nodiscard]] Time next_time();

  // Remove and return the next live event. Precondition: !empty().
  struct Fired {
    Time at;
    EventFn fn;
  };
  Fired pop();

  // Drop everything (used when a run is aborted).
  void clear();

  // Total events ever scheduled (diagnostics / micro-benchmarks).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // doubles as the EventId payload
    EventFn fn;
  };

  // Min-heap predicate on (time, seq).
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wmn::sim
