// 4-ary-heap event calendar.
//
// Ordering is (timestamp, insertion sequence): two events scheduled for
// the same instant execute in the order they were scheduled, which the
// MAC layer relies on for deterministic slot resolution. The arity is a
// pure layout choice — (time, seq) is a total order, so the pop
// sequence is independent of heap shape; 4 children per node halves the
// tree depth, and the extra sibling compares stay inside one cache line
// of 24-byte entries.
//
// Storage: callables live in a slab of generation-tagged slots recycled
// through a free list; the heap itself holds small (time, seq, slot,
// gen) entries. Cancellation is O(1) and lazy — it releases the slot
// immediately (bumping its generation) and leaves the heap entry to be
// discarded when it surfaces, recognized by its stale generation. No
// hashing anywhere: pending() and the dead-entry test are one array
// index plus one integer compare. Together with the allocation-free
// EventFn this makes schedule/cancel/pop malloc-free after the slab and
// heap reach steady-state size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Insert an event at absolute time `at`. Returns a cancellable id.
  // Defined inline below: schedule/pop run once per simulated event,
  // and keeping them visible to callers lets the fixed-size EventFn
  // moves and the heap arithmetic fold into the call site. Templated
  // on the callable so a lambda's captures are constructed directly in
  // the calendar slot (no intermediate full-capacity EventFn copy).
  template <typename F>
  EventId schedule(Time at, F&& fn);

  // Remove a pending event; no-op on fired, cancelled, or invalid ids.
  // Releases the callable (and anything it captures) eagerly.
  void cancel(EventId id);

  // True iff `id` is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = id_slot(id);
    return slot < slots_.size() && slots_[slot].gen == id_gen(id);
  }

  // True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_count_; }

  // Timestamp of the next live event; Time::max() when empty.
  // Compacts stale heap tops as a side effect.
  [[nodiscard]] Time next_time();

  // Remove and return the next live event. Precondition: !empty().
  struct Fired {
    Time at;
    EventFn fn;
  };
  Fired pop();

  // Drop everything (used when a run is aborted).
  void clear();

  // Total events ever scheduled (diagnostics / micro-benchmarks).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  // A slot whose generation matches a heap entry / EventId is live; the
  // generation is bumped whenever the slot is released (fire or
  // cancel), which invalidates every outstanding reference at once.
  // (A stale id could only alias after the same slot cycles through
  // 2^32 generations while the id is held — not a practical concern.)
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
  };

  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kArity = 4;  // children per heap node

  // EventId layout: high 32 bits generation, low 32 bits slot + 1 (so
  // id 0 stays the invalid sentinel).
  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId((std::uint64_t{gen} << 32) | (slot + 1));
  }
  static constexpr std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id.value() & 0xFFFFFFFFu) - 1;
  }
  static constexpr std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id.value() >> 32);
  }

  // Min-heap predicate on (time, seq).
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  [[nodiscard]] bool stale(const Entry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
};

// --- hot-path definitions (see the note on schedule() above) ---------

inline std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    return slot;
  }
  WMN_CHECK(slots_.size() < kNilSlot, "scheduler slot slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

inline void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = EventFn{};  // drop captures now, not when the entry surfaces
  ++s.gen;           // invalidates every outstanding id / heap entry
  s.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
}

// Both sifts move a hole instead of swapping: one 24-byte entry copy
// per level plus one at the end, versus three per level for std::swap.
inline void Scheduler::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

inline void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t smallest = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[smallest], heap_[c])) smallest = c;
    }
    if (!later(e, heap_[smallest])) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = e;
}

inline void Scheduler::drop_dead_top() {
  while (!heap_.empty() && stale(heap_[0])) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

template <typename F>
inline EventId Scheduler::schedule(Time at, F&& fn) {
  WMN_CHECK(!at.is_negative(), "events cannot be scheduled before t=0");
  const std::uint64_t seq = ++next_seq_;  // ids start at 1; 0 = invalid
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::forward<F>(fn);
  heap_.push_back(Entry{at, seq, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_count_;
  return make_id(slot, s.gen);
}

inline Time Scheduler::next_time() {
  drop_dead_top();
  return heap_.empty() ? Time::max() : heap_[0].at;
}

inline Scheduler::Fired Scheduler::pop() {
  drop_dead_top();
  WMN_CHECK(!heap_.empty(), "pop() on empty scheduler");
  const Entry top = heap_[0];
  Fired out{top.at, std::move(slots_[top.slot].fn)};
  release_slot(top.slot);
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

}  // namespace wmn::sim
