// Minimal leveled logging for simulator components.
//
// Logging is off by default (benchmarks and sweeps must not pay for
// formatting). Components log through a Logger carrying a component tag;
// the global level is a process-wide switch intended for debugging
// single runs, not for concurrent sweeps.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace wmn::sim {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

// Process-wide log level (plain global; the simulation kernel is
// single-threaded and sweeps should leave this at kOff).
LogLevel global_log_level();
void set_global_log_level(LogLevel level);

class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(global_log_level());
  }

  void log(LogLevel level, Time now, std::string_view msg) const;

  void error(Time now, std::string_view msg) const { log(LogLevel::kError, now, msg); }
  void warn(Time now, std::string_view msg) const { log(LogLevel::kWarn, now, msg); }
  void info(Time now, std::string_view msg) const { log(LogLevel::kInfo, now, msg); }
  void debug(Time now, std::string_view msg) const { log(LogLevel::kDebug, now, msg); }

 private:
  std::string component_;
};

// Convenience for building messages only when the level is active:
//   WMN_LOG_DEBUG(logger, sim.now(), "rreq id=" << id << " ttl=" << ttl);
#define WMN_LOG_AT(logger, level, now, expr)                      \
  do {                                                            \
    if ((logger).enabled(level)) {                                \
      std::ostringstream wmn_log_oss_;                            \
      wmn_log_oss_ << expr;                                       \
      (logger).log((level), (now), wmn_log_oss_.str());           \
    }                                                             \
  } while (0)

#define WMN_LOG_DEBUG(logger, now, expr) \
  WMN_LOG_AT(logger, ::wmn::sim::LogLevel::kDebug, now, expr)
#define WMN_LOG_INFO(logger, now, expr) \
  WMN_LOG_AT(logger, ::wmn::sim::LogLevel::kInfo, now, expr)
#define WMN_LOG_WARN(logger, now, expr) \
  WMN_LOG_AT(logger, ::wmn::sim::LogLevel::kWarn, now, expr)

}  // namespace wmn::sim
