// Fixed-capacity, allocation-free callable wrapper for the event loop.
//
// std::function heap-allocates any callable whose captures exceed the
// implementation's small-buffer (16 bytes on libstdc++), which put one
// malloc/free pair on every scheduled event. InplaceFunction stores the
// callable inline in a fixed buffer and refuses — at compile time — any
// callable that does not fit, so the event hot path provably never
// allocates. Call sites that trip the capacity check must shrink their
// captures (capture a slot index or handle instead of a fat object);
// see phy::WirelessChannel::transmit for the pattern.
//
// Move-only (like the callables it carries: packets, timers); moves are
// required to be noexcept so the scheduler's heap operations keep the
// strong guarantee.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>

#include "core/check.hpp"

namespace wmn::sim {

template <typename Signature, std::size_t Capacity>
class InplaceFunction;  // primary template undefined

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InplaceFunction() = default;

  // Only callables that fit the inline buffer are accepted; the
  // requires-clause makes the rejection visible to traits
  // (std::is_constructible_v), which the tests pin down.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...> &&
             sizeof(std::remove_cvref_t<F>) <= Capacity)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables must be nothrow-movable (the scheduler moves "
                  "them during heap maintenance)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    vt_ = &vtable_for<Fn>;
  }

  // Assign a fresh callable in place: destroys the current one and
  // constructs the new one directly in the buffer. The scheduler uses
  // this to build an event's captures straight into its calendar slot
  // instead of bouncing them through a full-capacity temporary.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...> &&
             sizeof(std::remove_cvref_t<F>) <= Capacity)
  InplaceFunction& operator=(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables must be nothrow-movable (the scheduler moves "
                  "them during heap maintenance)");
    destroy();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    vt_ = &vtable_for<Fn>;
    return *this;
  }

  InplaceFunction(InplaceFunction&& other) noexcept : vt_(other.vt_) {
    relocate_from(other);
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this == &other) return *this;
    destroy();
    vt_ = other.vt_;
    relocate_from(other);
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  R operator()(Args... args) {
    WMN_CHECK_NOTNULL(vt_, "invoking an empty InplaceFunction");
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-construct into dst from src, then destroy src. nullptr for
    // trivially-relocatable callables: the scheduler's heap operations
    // move every event several times, and the hot lambdas (a `this`
    // pointer plus a slot index or key) are plain bits — for those a
    // fixed-size memcpy beats an indirect call into per-type code.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;  // nullptr when trivially destructible
  };

  template <typename Fn>
  static constexpr bool is_trivially_relocatable =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr VTable vtable_for = {
      [](void* p, Args&&... args) -> R {
        return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
      },
      is_trivially_relocatable<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  void relocate_from(InplaceFunction& other) noexcept {
    if (vt_ == nullptr) return;
    if (vt_->relocate != nullptr) {
      vt_->relocate(buf_, other.buf_);
    } else {
      // Fixed-size copy: lets the compiler inline a handful of wide
      // moves instead of dispatching on the callable's type.
      std::memcpy(buf_, other.buf_, Capacity);
    }
    other.vt_ = nullptr;
  }

  void destroy() noexcept {
    if (vt_ != nullptr && vt_->destroy != nullptr) vt_->destroy(buf_);
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace wmn::sim
