// Calendar: the event-calendar interface extracted from sim::Scheduler.
//
// The sharded engine (sim/sharded_simulator.hpp) gives every region its
// own calendar. Rather than introduce a virtual base on the hottest
// path in the program, the calendar contract is a C++20 concept: any
// type that schedules closures at strongly-typed times, hands back
// cancellable ids, and pops in (time, insertion-seq) total order can
// drive a Simulator. sim::Scheduler — with its generation-tagged slot
// slab and O(1) lazy cancel — is the one production model; the concept
// is the seam where an alternative (e.g. a calendar-queue or ladder
// structure for 10k-node meshes) would plug in without touching the
// drivers.
#pragma once

#include <concepts>
#include <cstddef>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

template <typename C>
concept Calendar = requires(C cal, const C ccal, Time at, EventId id) {
  // Admission. schedule() accepts any event closure and returns a
  // handle that stays valid (for cancel / pending queries) until the
  // event fires or the slab slot is recycled.
  { cal.schedule(at, [] {}) } -> std::same_as<EventId>;
  { cal.cancel(id) };
  { ccal.pending(id) } -> std::convertible_to<bool>;

  // Inspection. next_time() is non-const: the slab scheduler sheds
  // lazily-cancelled heap tops while peeking.
  { ccal.empty() } -> std::convertible_to<bool>;
  { ccal.size() } -> std::convertible_to<std::size_t>;
  { cal.next_time() } -> std::same_as<Time>;
  { ccal.total_scheduled() } -> std::convertible_to<std::uint64_t>;

  // Extraction: pop() yields events in (time, insertion-seq) order —
  // the total order every determinism fingerprint in the repo relies
  // on. clear() drops everything (end-of-run teardown).
  { cal.pop() };
  { cal.clear() };
};

// The production calendar models the concept. If Scheduler's surface
// drifts, this fires at compile time in every TU that includes the
// sharded driver, not at link or run time.
static_assert(Calendar<Scheduler>,
              "sim::Scheduler must model the Calendar concept");

}  // namespace wmn::sim
