#include "sim/sharded_simulator.hpp"

#include <atomic>
#include <thread>

#include "core/check.hpp"

namespace wmn::sim {

// Spin-barrier worker team. An epoch is ~30 microseconds of simulated
// time and often a handful of events, so the per-epoch handoff must
// cost well under a microsecond — condition variables and the exp::
// ThreadPool's mutex-guarded queue are an order of magnitude too slow
// at ~500k epochs per run. Workers spin on an epoch sequence number
// with a bounded busy phase before yielding.
//
// Memory ordering: the coordinator writes `boundary_` then publishes
// it with a release fetch_add on `epoch_seq_`; a worker's acquire load
// of the new sequence makes the boundary (and every merge-phase write
// to its regions) visible. Each worker signals completion with a
// release increment of `done_`; the coordinator's acquire spin on
// `done_` makes all region state written by workers visible before the
// merge phase touches it. Region assignment is static (region r runs
// on worker r % W), so no two threads ever touch the same region
// concurrently.
struct ShardedSimulator::WorkerTeam {
  ShardedSimulator& owner;
  const std::uint32_t n_workers;  // including the coordinator (worker 0)
  std::atomic<std::uint64_t> epoch_seq{0};
  std::atomic<std::uint32_t> done{0};
  std::atomic<bool> shutdown{false};
  Time boundary{};  // published by the epoch_seq release increment
  std::vector<std::thread> threads;

  WorkerTeam(ShardedSimulator& o, std::uint32_t n) : owner(o), n_workers(n) {
    threads.reserve(n - 1);
    for (std::uint32_t w = 1; w < n; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~WorkerTeam() {
    shutdown.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
  }

  void run_share(std::uint32_t w, Time b) {
    const auto n_regions = static_cast<std::uint32_t>(owner.regions_.size());
    for (std::uint32_t r = w; r < n_regions; r += n_workers) {
      owner.regions_[r]->run_until(b);
    }
  }

  static void relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  void worker_loop(std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint32_t spins = 0;
      std::uint64_t cur = 0;
      while ((cur = epoch_seq.load(std::memory_order_acquire)) == seen) {
        if (shutdown.load(std::memory_order_acquire)) return;
        if (++spins < 4096) {
          relax();
        } else {
          spins = 0;
          std::this_thread::yield();
        }
      }
      seen = cur;
      run_share(w, boundary);
      done.fetch_add(1, std::memory_order_release);
    }
  }

  // Coordinator side: publish the epoch, run worker 0's share inline,
  // then wait for the rest.
  void run_epoch(Time b) {
    boundary = b;
    done.store(0, std::memory_order_relaxed);
    epoch_seq.fetch_add(1, std::memory_order_release);
    run_share(0, b);
    std::uint32_t spins = 0;
    while (done.load(std::memory_order_acquire) != n_workers - 1) {
      if (++spins < 4096) {
        relax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
};

ShardedSimulator::ShardedSimulator(std::uint64_t master_seed, std::uint32_t region_count,
                                   Time epoch, std::uint32_t worker_threads)
    : epoch_(epoch) {
  WMN_CHECK_GT(region_count, 0u, "sharded simulator needs at least one region");
  WMN_CHECK_GT(epoch.ns(), 0, "epoch width must be positive");
  WMN_CHECK_NE(epoch, Time::max(), "infinite lookahead must downgrade to one region");
  regions_.reserve(region_count);
  for (std::uint32_t r = 0; r < region_count; ++r) {
    regions_.push_back(std::make_unique<Simulator>(master_seed));
  }
  workers_ = worker_threads == 0 ? 1 : worker_threads;
  if (workers_ > region_count) workers_ = region_count;
  // More spin-barrier workers than hardware threads is strictly worse
  // than fewer (they evict each other mid-epoch); clamping is safe
  // because worker count is unobservable in event order.
  const std::uint32_t hw = std::thread::hardware_concurrency();
  if (hw > 0 && workers_ > hw) workers_ = hw;
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_event_budget(std::uint64_t max_events) {
  event_budget_ = max_events;
  split_budget();
}

void ShardedSimulator::set_cancel_token(const CancelToken* token, std::uint64_t poll_every) {
  for (auto& r : regions_) r->set_cancel_token(token, poll_every);
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) total += r->events_executed();
  return total;
}

std::uint64_t ShardedSimulator::events_pending() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) total += r->events_pending();
  return total;
}

// Re-split the global budget: every region may spend up to the whole
// remaining allowance. Whichever region trips it stops at a
// deterministic event count (its own executed + remaining), and the
// trip is detected at the next barrier — identically for every worker
// count, because the split happens only at barriers from
// deterministic per-region counters.
void ShardedSimulator::split_budget() {
  if (event_budget_ == 0) return;
  const std::uint64_t executed = events_executed();
  const std::uint64_t remaining = event_budget_ > executed ? event_budget_ - executed : 0;
  for (auto& r : regions_) r->set_event_budget(r->events_executed() + remaining);
}

bool ShardedSimulator::collect_aborts() {
  // Budget beats cancel: a budget trip is deterministic and callers
  // map it to a typed abort; a cancel is external.
  for (const auto& r : regions_) {
    if (r->abort_reason() == Simulator::AbortReason::kEventBudget) {
      abort_reason_ = Simulator::AbortReason::kEventBudget;
      return true;
    }
  }
  for (const auto& r : regions_) {
    if (r->abort_reason() == Simulator::AbortReason::kCancelled) {
      abort_reason_ = Simulator::AbortReason::kCancelled;
      return true;
    }
  }
  return false;
}

void ShardedSimulator::run_regions_until(Time boundary) {
  if (team_) {
    team_->run_epoch(boundary);
  } else {
    for (auto& r : regions_) r->run_until(boundary);
  }
}

void ShardedSimulator::run_until(Time deadline) {
  WMN_CHECK_NE(deadline, Time::max(), "sharded run_until needs a finite deadline");
  WMN_CHECK_GE(deadline, now_, "sharded deadline is in the past");
  abort_reason_ = Simulator::AbortReason::kNone;
  // Worker threads live only for the duration of the run: sweep pools
  // keep many scenarios alive at once, and idle teams would burn cores
  // spinning between runs.
  if (workers_ > 1 && !team_) team_ = std::make_unique<WorkerTeam>(*this, workers_);
  split_budget();
  bool drain_deadline = false;
  while (now_ < deadline || drain_deadline) {
    const Time boundary =
        now_ < deadline && deadline - now_ > epoch_ ? now_ + epoch_ : deadline;
    run_regions_until(boundary);
    if (collect_aborts()) {
      team_.reset();
      return;
    }
    now_ = boundary;
    // Every region clock sits exactly at the boundary and every worker
    // is parked: the hook may schedule into any region at >= boundary.
    // Events landing exactly on the boundary run at the head of the
    // next epoch (run_until deadlines are inclusive). A merge at the
    // final boundary can release deliveries at exactly the deadline —
    // re-run the deadline until the merge goes quiet, matching the
    // serial engine's inclusive semantics.
    bool merged = false;
    if (hook_ != nullptr) merged = hook_->merge_epoch(boundary);
    drain_deadline = merged && now_ == deadline;
    split_budget();
  }
  team_.reset();
}

}  // namespace wmn::sim
