#include "sim/shard_map.hpp"

#include <cmath>
#include <cstdlib>

#include "core/check.hpp"

namespace wmn::sim {

namespace {

// One grid axis coordinate: floor(v / cell), with NaN and negatives
// clamping to 0 and the far edge clamping to n-1. Must stay in
// lockstep with phy::SpatialIndex's cell formula so the shard map and
// the delivery index agree on every node's cell.
std::uint32_t axis_cell(double v, double cell_m, std::uint32_t n) {
  const double c = std::floor(v / cell_m);
  if (!(c > 0.0)) return 0;  // NaN lands here too
  if (c >= static_cast<double>(n - 1)) return n - 1;
  return static_cast<std::uint32_t>(c);
}

}  // namespace

ShardMap ShardMap::build(const ShardGrid& grid, std::uint32_t target_regions) {
  WMN_CHECK_GT(grid.nx, 0u, "shard grid has no columns");
  WMN_CHECK_GT(grid.ny, 0u, "shard grid has no rows");
  WMN_CHECK_GT(grid.cell_m, 0.0, "shard grid cell size must be positive");
  if (target_regions == 0) target_regions = 1;

  ShardMap map;
  map.grid_ = grid;
  // Largest achievable region count <= target: walk targets downward
  // and take the first with a feasible (tx, ty) factorisation
  // (tx <= nx, ty <= ny, so every tile owns at least one cell column
  // and row). Among a target's divisor pairs, pick the one whose tile
  // aspect best matches the grid aspect — compact tiles minimise
  // border cells and therefore cross-region traffic.
  for (std::uint32_t target = target_regions; target >= 1; --target) {
    bool found = false;
    std::uint64_t best_mismatch = 0;
    std::uint32_t best_tx = 1;
    std::uint32_t best_ty = 1;
    for (std::uint32_t tx = 1; tx <= target; ++tx) {
      if (target % tx != 0) continue;
      const std::uint32_t ty = target / tx;
      if (tx > grid.nx || ty > grid.ny) continue;
      // Aspect mismatch |tx/ty - nx/ny| cross-multiplied to stay exact
      // in integers.
      const std::int64_t cross = static_cast<std::int64_t>(tx) * grid.ny -
                                 static_cast<std::int64_t>(ty) * grid.nx;
      const std::uint64_t mismatch = static_cast<std::uint64_t>(std::llabs(cross));
      // tx ascends, so '<=' resolves aspect ties toward more columns
      // (the documented tie-break).
      if (!found || mismatch <= best_mismatch) {
        found = true;
        best_mismatch = mismatch;
        best_tx = tx;
        best_ty = ty;
      }
    }
    if (found) {
      map.tiles_x_ = best_tx;
      map.tiles_y_ = best_ty;
      return map;
    }
  }
  map.tiles_x_ = 1;  // unreachable: target 1 always factors as 1x1
  map.tiles_y_ = 1;
  return map;
}

ShardMap ShardMap::single(const ShardGrid& grid) {
  ShardMap map;
  map.grid_ = grid;
  map.tiles_x_ = 1;
  map.tiles_y_ = 1;
  return map;
}

std::uint32_t ShardMap::cell_of(double x, double y) const {
  const std::uint32_t cx = axis_cell(x, grid_.cell_m, grid_.nx);
  const std::uint32_t cy = axis_cell(y, grid_.cell_m, grid_.ny);
  return cy * grid_.nx + cx;
}

std::uint32_t ShardMap::region_of_cell(std::uint32_t cell_id) const {
  WMN_CHECK_LT(cell_id, grid_.nx * grid_.ny, "cell id outside the shard grid");
  const std::uint32_t cx = cell_id % grid_.nx;
  const std::uint32_t cy = cell_id / grid_.nx;
  // Proportional partition: cell column c maps to tile c*tx/nx. With
  // tx <= nx every tile is non-empty and tiles are contiguous runs of
  // whole columns/rows.
  const std::uint32_t tx = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(cx) * tiles_x_) / grid_.nx);
  const std::uint32_t ty = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(cy) * tiles_y_) / grid_.ny);
  return ty * tiles_x_ + tx;
}

Time ShardMap::lookahead(double max_range_m, double signal_speed_mps, Time mac_turnaround) {
  if (!std::isfinite(max_range_m)) return Time::max();
  WMN_CHECK_GT(signal_speed_mps, 0.0, "signal speed must be positive");
  const double range = max_range_m > 0.0 ? max_range_m : 0.0;
  return Time::seconds(range / signal_speed_mps) + mac_turnaround;
}

}  // namespace wmn::sim
