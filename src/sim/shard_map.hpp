// ShardMap: the geometric region decomposition behind the sharded
// event loop (sim/sharded_simulator.hpp).
//
// The map tiles the spatial index's uniform grid into contiguous
// rectangular regions of whole grid cells. Two properties carry the
// whole determinism contract:
//
//  1. The decomposition is a pure function of the grid geometry and a
//     FIXED region target — never of the worker-thread count. Shard
//     counts 1/2/4/8 all run the same regions; only how many OS
//     threads advance them differs, and thread count is unobservable
//     in event order. Bit-identical fingerprints across shard counts
//     are structural, not incidental.
//
//  2. Every node has exactly one deterministic home region for the
//     whole run: the region of the lowest-numbered grid cell its
//     trajectory bounds overlap (cell ids are row-major, so that is
//     the cell containing the bounding box's low corner). A static
//     node's box is a point; a node whose box spans a region border
//     still gets one stable home.
//
// Layering: sim/ cannot see phy/, so the map takes the grid as plain
// numbers (ShardGrid). The exp layer builds it from
// phy::SpatialIndex::grid_for(...) so both structures tile the exact
// same cells.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace wmn::sim {

// Uniform-grid geometry, mirroring phy::SpatialIndex's tiling.
struct ShardGrid {
  std::uint32_t nx = 1;   // cells along x
  std::uint32_t ny = 1;   // cells along y
  double cell_m = 1.0;    // cell edge length, metres
};

class ShardMap {
 public:
  // Region target used by the sharded scenario path. A constant on
  // purpose (see file comment): more worker threads than regions is
  // capped, fewer just leaves some workers idle.
  static constexpr std::uint32_t kRegionTarget = 8;

  // Tile `grid` into at most `target_regions` contiguous rectangular
  // regions. The tile factorisation (tx, ty) is the feasible divisor
  // pair of the largest achievable region count whose tile aspect best
  // matches the grid aspect; ties prefer more columns. Pure function
  // of its arguments.
  [[nodiscard]] static ShardMap build(const ShardGrid& grid, std::uint32_t target_regions);

  // Degenerate single-region map (the downgrade path: mobility, +inf
  // range, disabled spatial index). One region = the exact serial
  // event semantics, never a wrong answer.
  [[nodiscard]] static ShardMap single(const ShardGrid& grid);

  [[nodiscard]] std::uint32_t region_count() const { return tiles_x_ * tiles_y_; }
  [[nodiscard]] std::uint32_t tiles_x() const { return tiles_x_; }
  [[nodiscard]] std::uint32_t tiles_y() const { return tiles_y_; }
  [[nodiscard]] const ShardGrid& grid() const { return grid_; }

  // Row-major cell id of a position (NaN and out-of-area coordinates
  // clamp, matching phy::SpatialIndex).
  [[nodiscard]] std::uint32_t cell_of(double x, double y) const;

  [[nodiscard]] std::uint32_t region_of_cell(std::uint32_t cell_id) const;
  [[nodiscard]] std::uint32_t region_of_position(double x, double y) const {
    return region_of_cell(cell_of(x, y));
  }

  // Home region of a trajectory bounding box [lo, hi]: the region of
  // the lowest cell id the box overlaps — i.e. the cell of (lo_x,
  // lo_y), since cell ids grow with x then y. Infinite/NaN low corners
  // clamp to cell 0 (unbounded models force the single-region
  // downgrade anyway, but the rule stays total).
  [[nodiscard]] std::uint32_t home_region(double lo_x, double lo_y) const {
    return region_of_position(lo_x, lo_y);
  }

  // Conservative lookahead: the minimum latency of any cross-region
  // delivery. A transmission reaches another region no sooner than the
  // propagation delay across the *detection* range plus the MAC
  // turnaround (SIFS + one slot) before the medium can react — so
  // regions advanced in epochs of this width can never miss a
  // causality edge. An infinite detection range (a propagation model
  // without a provable max_range_m inversion) has no finite lookahead:
  // Time::max() is returned and callers must downgrade to one region.
  [[nodiscard]] static Time lookahead(double max_range_m, double signal_speed_mps,
                                      Time mac_turnaround);

 private:
  ShardGrid grid_;
  std::uint32_t tiles_x_ = 1;
  std::uint32_t tiles_y_ = 1;
};

}  // namespace wmn::sim
