// Deterministic random-number generation.
//
// Reproducibility contract: every stochastic component in the simulator
// draws from its own RngStream, derived from (master seed, stream id).
// Two runs with the same master seed and the same component wiring are
// bit-identical, independent of the order in which components are
// constructed relative to each other (streams never share state).
//
// Core generator: xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. Both are implemented here so the
// library has no dependency on platform-varying <random> engine
// internals (libstdc++ vs libc++ produce different mt19937 streams for
// the distributions; we need cross-platform identical results).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace wmn::sim {

// SplitMix64: tiny 64-bit generator used only for seeding/stream
// derivation. Passes through every value exactly once over 2^64.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator; period 2^256 - 1.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

// A named random stream with the variate generators the simulator needs.
class RngStream {
 public:
  // Derive a stream from a master seed and a stream id. Different
  // (seed, id) pairs yield statistically independent streams.
  RngStream(std::uint64_t master_seed, std::uint64_t stream_id);

  // Raw 64 random bits.
  std::uint64_t bits();

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive (Lemire-style rejection-free
  // unbiased mapping is unnecessary at simulation scales; we use the
  // multiply-shift reduction with rejection for exactness).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponential variate with given mean (> 0).
  double exponential(double mean);

  // Standard normal via Marsaglia polar method; normal(mean, stddev).
  double normal(double mean, double stddev);

  // Pareto (heavy tail) with shape alpha > 0 and scale xm > 0.
  double pareto(double shape, double scale);

  // Fisher-Yates shuffle helper index: uniform in [0, n).
  std::size_t index(std::size_t n);

 private:
  Xoshiro256 gen_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace wmn::sim
