// The discrete-event simulator: a clock plus an event calendar plus the
// master RNG seed from which all component streams derive.
//
// One Simulator instance = one independent simulation run. The kernel
// is strictly single-threaded; experiment-level parallelism runs many
// Simulator instances concurrently (see exp::ParallelRunner), which is
// safe because instances share no mutable state.
#pragma once

#include <cstdint>

#include "core/check.hpp"
#include "sim/event.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t master_seed = 1) : master_seed_(master_seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- clock -------------------------------------------------------
  [[nodiscard]] Time now() const { return now_; }

  // --- scheduling ----------------------------------------------------
  // Schedule `fn` to run `delay` after the current time. Negative
  // delays are clamped to zero (run "now", after already-queued
  // same-time events). Inline and templated on the callable: this runs
  // once per simulated event, and forwarding the lambda itself lets
  // its captures be built directly in the calendar slot.
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    if (delay.is_negative()) delay = Time::zero();
    return calendar_.schedule(now_ + delay, std::forward<F>(fn));
  }

  // Schedule at an absolute timestamp; must not be in the past.
  template <typename F>
  EventId schedule_at(Time at, F&& fn) {
    WMN_CHECK_GE(at, now_, "cannot schedule in the past");
    return calendar_.schedule(at, std::forward<F>(fn));
  }

  void cancel(EventId id) { calendar_.cancel(id); }
  [[nodiscard]] bool pending(EventId id) const { return calendar_.pending(id); }

  // --- execution -----------------------------------------------------
  // Run until the calendar drains or stop() is called.
  void run() { run_until(Time::max()); }

  // Run until the clock would pass `deadline`; events at exactly
  // `deadline` are executed. The clock finishes at
  // min(deadline, time of last event) unless stopped early.
  void run_until(Time deadline) {
    stopped_ = false;
    while (!stopped_ && !calendar_.empty()) {
      const Time t = calendar_.next_time();
      if (t > deadline) {
        now_ = deadline;
        return;
      }
      auto fired = calendar_.pop();
      WMN_CHECK_GE(fired.at, now_, "calendar must be monotone");
      now_ = fired.at;
      fired.fn();
      ++events_executed_;
    }
    if (!stopped_ && deadline != Time::max() && now_ < deadline) now_ = deadline;
  }

  // Request termination; takes effect before the next event dispatch.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- rng -----------------------------------------------------------
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

  // Create an independent random stream. Components pass a stable
  // stream id (e.g. hash of node id + purpose) so wiring order does not
  // perturb the streams.
  [[nodiscard]] RngStream make_stream(std::uint64_t stream_id) const {
    return RngStream(master_seed_, stream_id);
  }

  // --- diagnostics ----------------------------------------------------
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t events_pending() const { return calendar_.size(); }

 private:
  Scheduler calendar_;
  Time now_ = Time::zero();
  std::uint64_t master_seed_;
  std::uint64_t events_executed_ = 0;
  bool stopped_ = false;
};

}  // namespace wmn::sim
