// The discrete-event simulator: a clock plus an event calendar plus the
// master RNG seed from which all component streams derive.
//
// One Simulator instance = one independent simulation run. The kernel
// is strictly single-threaded; experiment-level parallelism runs many
// Simulator instances concurrently (see exp::ParallelRunner), which is
// safe because instances share no mutable state.
#pragma once

#include <cstdint>

#include "core/check.hpp"
#include "sim/cancel_token.hpp"
#include "sim/event.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t master_seed = 1) : master_seed_(master_seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- clock -------------------------------------------------------
  [[nodiscard]] Time now() const { return now_; }

  // --- scheduling ----------------------------------------------------
  // Schedule `fn` to run `delay` after the current time. Negative
  // delays are clamped to zero (run "now", after already-queued
  // same-time events). Inline and templated on the callable: this runs
  // once per simulated event, and forwarding the lambda itself lets
  // its captures be built directly in the calendar slot.
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    if (delay.is_negative()) delay = Time::zero();
    return calendar_.schedule(now_ + delay, std::forward<F>(fn));
  }

  // Schedule at an absolute timestamp; must not be in the past. Under
  // CheckPolicy::kLogAndCount the violation is logged and the event is
  // clamped to `now_`: inserting the past-dated time itself would break
  // calendar monotonicity one pop later and cascade a second violation
  // out of the run loop.
  template <typename F>
  EventId schedule_at(Time at, F&& fn) {
    WMN_CHECK_GE(at, now_, "cannot schedule in the past");
    if (at < now_) at = now_;
    return calendar_.schedule(at, std::forward<F>(fn));
  }

  void cancel(EventId id) { calendar_.cancel(id); }
  [[nodiscard]] bool pending(EventId id) const { return calendar_.pending(id); }

  // --- supervision ----------------------------------------------------
  // Why a run loop ended early, beyond an explicit stop().
  enum class AbortReason : std::uint8_t {
    kNone,         // ran to completion (or stop()/deadline)
    kEventBudget,  // event budget exhausted — deterministic
    kCancelled,    // cooperative cancel token observed set
  };

  // Deterministic event budget: abort the run once `events_executed()`
  // reaches `max_events` with more work pending. A pure function of the
  // event count — two same-seed runs trip it at the identical event —
  // so a budgeted run is exactly reproducible. 0 (the default) disables
  // the budget; existing runs and fingerprints are untouched.
  void set_event_budget(std::uint64_t max_events) {
    event_budget_ = max_events;
  }
  [[nodiscard]] std::uint64_t event_budget() const { return event_budget_; }

  // Cooperative cancellation: poll `token` every `poll_every` executed
  // events and abort the run when it is set. The kernel only ever loads
  // one relaxed atomic — no clocks, no blocking — so a run that is NOT
  // cancelled is bit-identical to an unsupervised one. Pass nullptr to
  // detach. Granularity: a cancel is observed within `poll_every`
  // events of being requested.
  void set_cancel_token(const CancelToken* token,
                        std::uint64_t poll_every = 1024) {
    WMN_CHECK_GT(poll_every, std::uint64_t{0},
                 "cancel poll interval must be positive");
    cancel_token_ = token;
    cancel_poll_every_ = poll_every == 0 ? 1 : poll_every;
    cancel_countdown_ = cancel_poll_every_;
  }

  // Why the last run_until() aborted; kNone for a clean finish.
  [[nodiscard]] AbortReason abort_reason() const { return abort_reason_; }
  [[nodiscard]] bool aborted() const {
    return abort_reason_ != AbortReason::kNone;
  }

  // --- execution -----------------------------------------------------
  // Run until the calendar drains or stop() is called.
  void run() { run_until(Time::max()); }

  // Run until the clock would pass `deadline`; events at exactly
  // `deadline` are executed. The clock finishes at
  // min(deadline, time of last event) unless stopped early.
  void run_until(Time deadline) {
    stopped_ = false;
    abort_reason_ = AbortReason::kNone;
    while (!stopped_ && !calendar_.empty()) {
      if (event_budget_ != 0 && events_executed_ >= event_budget_)
          [[unlikely]] {
        abort_reason_ = AbortReason::kEventBudget;
        stopped_ = true;
        return;
      }
      if (cancel_token_ != nullptr && --cancel_countdown_ == 0) [[unlikely]] {
        cancel_countdown_ = cancel_poll_every_;
        if (cancel_token_->cancelled()) {
          abort_reason_ = AbortReason::kCancelled;
          stopped_ = true;
          return;
        }
      }
      const Time t = calendar_.next_time();
      if (t > deadline) {
        now_ = deadline;
        return;
      }
      auto fired = calendar_.pop();
      WMN_CHECK_GE(fired.at, now_, "calendar must be monotone");
      now_ = fired.at;
      fired.fn();
      ++events_executed_;
    }
    if (!stopped_ && deadline != Time::max() && now_ < deadline) now_ = deadline;
  }

  // Request termination; takes effect before the next event dispatch.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- rng -----------------------------------------------------------
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

  // Create an independent random stream. Components pass a stable
  // stream id (e.g. hash of node id + purpose) so wiring order does not
  // perturb the streams.
  [[nodiscard]] RngStream make_stream(std::uint64_t stream_id) const {
    return RngStream(master_seed_, stream_id);
  }

  // --- diagnostics ----------------------------------------------------
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t events_pending() const { return calendar_.size(); }

 private:
  Scheduler calendar_;
  Time now_ = Time::zero();
  std::uint64_t master_seed_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_budget_ = 0;  // 0 = unlimited
  const CancelToken* cancel_token_ = nullptr;
  std::uint64_t cancel_poll_every_ = 1024;
  std::uint64_t cancel_countdown_ = 1024;
  bool stopped_ = false;
  AbortReason abort_reason_ = AbortReason::kNone;
};

}  // namespace wmn::sim
