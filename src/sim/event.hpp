// Event primitives for the discrete-event calendar.
#pragma once

#include <cstdint>

#include "sim/inplace_function.hpp"

namespace wmn::sim {

// Work item executed when simulation time reaches the event's stamp.
// Allocation-free: captures larger than kEventCaptureBytes are rejected
// at compile time — restructure the call site (capture an index or a
// handle) instead of raising the capacity, so the event loop's zero-
// allocation guarantee stays intact.
inline constexpr std::size_t kEventCaptureBytes = 48;
using EventFn = InplaceFunction<void(), kEventCaptureBytes>;

// Opaque handle identifying a scheduled event; usable for cancellation.
// Encodes (slot, generation) in the scheduler's slab: a stale id whose
// slot was recycled carries an old generation and cancels nothing.
// Id 0 is reserved as "invalid / never scheduled".
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  std::uint64_t v_ = 0;
};

}  // namespace wmn::sim
