// Event primitives for the discrete-event calendar.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace wmn::sim {

// Work item executed when simulation time reaches the event's stamp.
using EventFn = std::function<void()>;

// Opaque handle identifying a scheduled event; usable for cancellation.
// Id 0 is reserved as "invalid / never scheduled".
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  std::uint64_t v_ = 0;
};

}  // namespace wmn::sim
