#include "sim/fingerprint.hpp"

namespace wmn::sim {

void Fingerprint::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (8 * i)) & 0xFFU;
    state_ *= kPrime;
  }
}

void Fingerprint::mix(std::string_view bytes) {
  for (const char c : bytes) {
    state_ ^= static_cast<unsigned char>(c);
    state_ *= kPrime;
  }
  // Length terminator so ("ab","c") and ("a","bc") differ.
  mix(static_cast<std::uint64_t>(bytes.size()));
}

}  // namespace wmn::sim
