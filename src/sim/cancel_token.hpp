// Cooperative cancellation for a running simulation.
//
// A CancelToken is one atomic flag shared between exactly two parties:
// a supervisor (the exp-layer watchdog, or any harness code) that flips
// it, and a Simulator that polls it every K executed events (see
// Simulator::set_cancel_token). The simulator never blocks on it and
// never reads a clock: cancellation decides only *whether* a run
// completes, never what a completed run computes, so the determinism
// contract is untouched — a run that finishes under a token is
// bit-identical to one without.
#pragma once

#include <atomic>

namespace wmn::sim {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Request cancellation. Safe to call from any thread, repeatedly.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Re-arm for another run (harness reuse between retries).
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace wmn::sim
