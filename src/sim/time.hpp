// Simulation time: a strongly-typed wrapper over signed 64-bit
// nanoseconds. All simulator components exchange Time values; raw
// integers never cross module boundaries.
//
// The representation gives ~292 years of range at nanosecond
// resolution, which comfortably covers any mesh-network scenario while
// keeping arithmetic exact (no floating-point drift in the event
// calendar).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace wmn::sim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors. nanos() is exact; the rest round to nearest ns.
  static constexpr Time nanos(std::int64_t ns) { return Time(ns); }
  static constexpr Time seconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Time micros(double us) { return seconds(us * 1e-6); }
  static constexpr Time millis(double ms) { return seconds(ms * 1e-3); }

  // Sentinel greater than every schedulable time.
  static constexpr Time max() { return Time(std::numeric_limits<std::int64_t>::max()); }
  static constexpr Time zero() { return Time(0); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ns_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time(a.ns_ * k); }

  // Fractional scaling kept off operator* so `t * 2` stays exact and
  // unambiguous.
  [[nodiscard]] constexpr Time scaled(double k) const {
    return Time::seconds(to_seconds() * k);
  }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time(a.ns_ / k); }

  // "12.345678s"-style rendering for logs and tables.
  [[nodiscard]] std::string str() const {
    return std::to_string(to_seconds()) + "s";
  }

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace wmn::sim
