#include "sim/simulator.hpp"

#include <utility>

#include "core/check.hpp"

namespace wmn::sim {

EventId Simulator::schedule(Time delay, EventFn fn) {
  if (delay.is_negative()) delay = Time::zero();
  return calendar_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  WMN_CHECK_GE(at, now_, "cannot schedule in the past");
  return calendar_.schedule(at, std::move(fn));
}

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !calendar_.empty()) {
    const Time t = calendar_.next_time();
    if (t > deadline) {
      now_ = deadline;
      return;
    }
    auto fired = calendar_.pop();
    WMN_CHECK_GE(fired.at, now_, "calendar must be monotone");
    now_ = fired.at;
    fired.fn();
    ++events_executed_;
  }
  if (!stopped_ && deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace wmn::sim
