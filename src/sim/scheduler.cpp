#include "sim/scheduler.hpp"

#include "core/check.hpp"

namespace wmn::sim {

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size() || slots_[slot].gen != id_gen(id)) return;
  release_slot(slot);  // heap entry goes stale; dropped when it surfaces
}

void Scheduler::clear() {
  for (const Entry& e : heap_) {
    if (!stale(e)) release_slot(e.slot);
  }
  heap_.clear();
  WMN_CHECK_EQ(live_count_, std::size_t{0}, "clear() left live slots");
}

}  // namespace wmn::sim
