#include "sim/scheduler.hpp"

#include <utility>

#include "core/check.hpp"

namespace wmn::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    return slot;
  }
  WMN_CHECK(slots_.size() < kNilSlot, "scheduler slot slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = EventFn{};  // drop captures now, not when the entry surfaces
  ++s.gen;           // invalidates every outstanding id / heap entry
  s.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
}

EventId Scheduler::schedule(Time at, EventFn fn) {
  WMN_CHECK(!at.is_negative(), "events cannot be scheduled before t=0");
  const std::uint64_t seq = ++next_seq_;  // ids start at 1; 0 = invalid
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(Entry{at, seq, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_count_;
  return make_id(slot, s.gen);
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size() || slots_[slot].gen != id_gen(id)) return;
  release_slot(slot);  // heap entry goes stale; dropped when it surfaces
}

void Scheduler::drop_dead_top() {
  while (!heap_.empty() && stale(heap_[0])) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

Time Scheduler::next_time() {
  drop_dead_top();
  return heap_.empty() ? Time::max() : heap_[0].at;
}

Scheduler::Fired Scheduler::pop() {
  drop_dead_top();
  WMN_CHECK(!heap_.empty(), "pop() on empty scheduler");
  const Entry top = heap_[0];
  Fired out{top.at, std::move(slots_[top.slot].fn)};
  release_slot(top.slot);
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void Scheduler::clear() {
  for (const Entry& e : heap_) {
    if (!stale(e)) release_slot(e.slot);
  }
  heap_.clear();
  WMN_CHECK_EQ(live_count_, std::size_t{0}, "clear() left live slots");
}

void Scheduler::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace wmn::sim
