#include "sim/scheduler.hpp"

#include <utility>

#include "core/check.hpp"

namespace wmn::sim {

EventId Scheduler::schedule(Time at, EventFn fn) {
  WMN_CHECK(!at.is_negative(), "events cannot be scheduled before t=0");
  const std::uint64_t seq = ++next_seq_;  // ids start at 1; 0 = invalid
  heap_.push_back(Entry{at, seq, std::move(fn)});
  sift_up(heap_.size() - 1);
  pending_.insert(seq);
  return EventId(seq);
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  pending_.erase(id.value());
}

void Scheduler::drop_dead_top() {
  while (!heap_.empty() && !pending_.contains(heap_[0].seq)) {
    heap_[0] = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

Time Scheduler::next_time() {
  drop_dead_top();
  return heap_.empty() ? Time::max() : heap_[0].at;
}

Scheduler::Fired Scheduler::pop() {
  drop_dead_top();
  WMN_CHECK(!heap_.empty(), "pop() on empty scheduler");
  Fired out{heap_[0].at, std::move(heap_[0].fn)};
  pending_.erase(heap_[0].seq);
  heap_[0] = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void Scheduler::clear() {
  heap_.clear();
  pending_.clear();
}

void Scheduler::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace wmn::sim
