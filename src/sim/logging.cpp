#include "sim/logging.hpp"

namespace wmn::sim {

namespace {
LogLevel g_level = LogLevel::kOff;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel global_log_level() { return g_level; }
void set_global_log_level(LogLevel level) { g_level = level; }

void Logger::log(LogLevel level, Time now, std::string_view msg) const {
  if (!enabled(level)) return;
  std::clog << "[" << level_name(level) << "] t=" << now.str() << " "
            << component_ << ": " << msg << '\n';
}

}  // namespace wmn::sim
