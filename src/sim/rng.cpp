#include "sim/rng.hpp"

#include "core/check.hpp"

namespace wmn::sim {

namespace {
// Mix the stream id into the master seed so streams are decorrelated
// even for adjacent ids. Two rounds of splitmix on the concatenation.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  SplitMix64 a(master ^ (stream * 0x9E3779B97F4A7C15ULL));
  std::uint64_t s = a.next();
  SplitMix64 b(s + stream);
  return b.next();
}
}  // namespace

RngStream::RngStream(std::uint64_t master_seed, std::uint64_t stream_id)
    : gen_(derive_seed(master_seed, stream_id)) {}

std::uint64_t RngStream::bits() { return gen_.next(); }

double RngStream::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t RngStream::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  WMN_CHECK_LE(lo, hi, "uniform_u64 range inverted");
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return gen_.next();
  const std::uint64_t n = span + 1;
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x = gen_.next();
  while (x >= limit) x = gen_.next();
  return lo + (x % n);
}

std::int64_t RngStream::uniform_i64(std::int64_t lo, std::int64_t hi) {
  WMN_CHECK_LE(lo, hi, "uniform_i64 range inverted");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(lo) + uniform_u64(0, span));
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double RngStream::exponential(double mean) {
  WMN_CHECK_GT(mean, 0.0, "exponential() needs a positive mean");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  has_spare_normal_ = true;
  return mean + stddev * (u * m);
}

double RngStream::pareto(double shape, double scale) {
  WMN_CHECK(shape > 0.0 && scale > 0.0, "pareto() needs positive parameters");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale / std::pow(u, 1.0 / shape);
}

std::size_t RngStream::index(std::size_t n) {
  WMN_CHECK_GT(n, std::size_t{0}, "index() over an empty range");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

}  // namespace wmn::sim
