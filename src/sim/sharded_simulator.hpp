// ShardedSimulator: conservative-PDES parallel intra-run simulation.
//
// The engine owns one sim::Simulator (and therefore one slab-backed
// calendar, see sim/calendar.hpp) per ShardMap region and advances all
// regions in lockstep epochs of width `epoch` — the conservative
// lookahead (ShardMap::lookahead): no event executed inside an epoch
// can cause an event in ANOTHER region earlier than the epoch's end
// boundary, because any cross-region influence rides a radio delivery
// whose latency is at least the lookahead.
//
// The determinism contract (bit-identical fingerprints for every
// worker-thread count, including 1) is structural:
//
//  * The region decomposition and the epoch width are pure functions
//    of scenario config — never of the thread count.
//  * Within an epoch each region executes its own calendar serially,
//    in (time, insertion-seq) order, touching only region-local state.
//    Worker count only changes which OS thread runs a region.
//  * Cross-region effects are posted to per-(src-region, dst-region)
//    inboxes with per-row monotone sequence numbers and merged at the
//    barrier — on the coordinating thread, with every worker parked —
//    in the fixed total order (release time, src region, row seq).
//    See phy::ShardRouter.
//
// With one region the same machinery runs fully inline, so shard-count
// invariance degenerates to "the code runs once" — which is exactly
// why downgrades (mobility, infinite range) are safe: one region is
// the exact serial event semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::sim {

// Barrier-time merge hook. merge_epoch(boundary) runs on the
// coordinating thread after every region has advanced to exactly
// `boundary` and before any region advances past it; no worker is
// executing, so the hook may freely touch every region's calendar.
// Returns true if it scheduled anything — the driver uses this to
// drain releases landing exactly on the final deadline (which the
// serial engine's inclusive run_until would execute).
class ShardBarrierHook {
 public:
  ShardBarrierHook() = default;
  ShardBarrierHook(const ShardBarrierHook&) = delete;
  ShardBarrierHook& operator=(const ShardBarrierHook&) = delete;
  virtual ~ShardBarrierHook() = default;

  virtual bool merge_epoch(Time boundary) = 0;
};

class ShardedSimulator {
 public:
  // All regions derive their streams from `master_seed` exactly like a
  // serial Simulator would, so a component keeps its RNG draws when it
  // moves between the serial and sharded drivers. `worker_threads` is
  // clamped to [1, region_count]; 1 runs everything inline on the
  // caller's thread (no threads are created).
  ShardedSimulator(std::uint64_t master_seed, std::uint32_t region_count, Time epoch,
                   std::uint32_t worker_threads);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::uint32_t region_count() const {
    return static_cast<std::uint32_t>(regions_.size());
  }
  [[nodiscard]] std::uint32_t worker_threads() const { return workers_; }
  [[nodiscard]] Time epoch() const { return epoch_; }
  [[nodiscard]] Simulator& region(std::uint32_t r) { return *regions_[r]; }
  [[nodiscard]] const Simulator& region(std::uint32_t r) const { return *regions_[r]; }

  void set_barrier_hook(ShardBarrierHook* hook) { hook_ = hook; }

  // Global event budget across all regions (0 = unlimited). The budget
  // is re-split at every barrier from deterministic per-region event
  // counts, so a budget trip fires in the same region at the same
  // event for every worker count.
  void set_event_budget(std::uint64_t max_events);
  [[nodiscard]] std::uint64_t event_budget() const { return event_budget_; }

  // Cooperative cancellation, polled inside every region's event loop
  // (per-shard polling). A cancelled run aborts at the next barrier.
  void set_cancel_token(const CancelToken* token, std::uint64_t poll_every = 1024);

  // Advance all regions to `deadline` (inclusive, like
  // Simulator::run_until). The deadline must be finite: epochs step an
  // integer number of lookaheads, and a sharded run always has a
  // scenario horizon.
  void run_until(Time deadline);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t events_pending() const;
  [[nodiscard]] Simulator::AbortReason abort_reason() const { return abort_reason_; }

 private:
  struct WorkerTeam;  // std::thread lives only in the .cpp (see wmn-nondeterminism)

  void run_regions_until(Time boundary);
  void split_budget();
  [[nodiscard]] bool collect_aborts();

  std::vector<std::unique_ptr<Simulator>> regions_;
  Time epoch_;
  Time now_ = Time::zero();
  std::uint32_t workers_ = 1;
  std::uint64_t event_budget_ = 0;
  ShardBarrierHook* hook_ = nullptr;
  Simulator::AbortReason abort_reason_ = Simulator::AbortReason::kNone;
  std::unique_ptr<WorkerTeam> team_;  // null when workers_ == 1
};

}  // namespace wmn::sim
