// Run fingerprinting for the determinism contract.
//
// Every figure in the reproduction assumes that one (scenario, seed)
// pair produces exactly one event trace. A Fingerprint folds an
// ordered sequence of scalars (event counts, packet totals, metric
// values) into a single 64-bit digest; two same-seed runs must produce
// bit-identical digests, and tests/test_determinism.cpp holds the
// project to that.
//
// The hash is FNV-1a over the value bytes. It is a diagnostic digest,
// not a cryptographic one: collisions between *different* traces are
// astronomically unlikely to hide a real nondeterminism bug across the
// dozens of mixed quantities, and that is the only property needed.
//
// Doubles are folded via their IEEE-754 bit pattern, so "identical"
// means bit-for-bit identical — exactly the determinism the RNG
// discipline (stable per-component stream ids) promises. -0.0 and NaN
// payloads therefore matter; deterministic code produces the same ones.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace wmn::sim {

class Fingerprint {
 public:
  // Fold one value into the digest. Order is significant.
  void mix(std::uint64_t v);
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(std::string_view bytes);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

 private:
  // FNV-1a 64-bit offset basis / prime.
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001B3ULL;

  std::uint64_t state_ = kOffset;
};

}  // namespace wmn::sim
