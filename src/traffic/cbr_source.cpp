#include "traffic/cbr_source.hpp"

#include "core/check.hpp"


namespace wmn::traffic {

namespace {
constexpr std::uint64_t kCbrStreamSalt = 0xCB20'0000'0000'0000ULL;
constexpr std::uint64_t kOnOffStreamSalt = 0x0F0F'0000'0000'0000ULL;
}  // namespace

CbrSource::CbrSource(sim::Simulator& simulator, const CbrConfig& cfg,
                     routing::AodvAgent& agent, net::PacketFactory& factory,
                     FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kCbrStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.rate_pps, 0.0, "CBR rate must be positive");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  const sim::Time interval = sim::Time::seconds(1.0 / cfg_.rate_pps);
  sim::Time first = cfg_.start;
  if (cfg_.randomize_start_phase) first += interval.scaled(rng_.uniform01());
  timer_ = sim_.schedule_at(first, [this] { emit(); });
}

CbrSource::~CbrSource() { sim_.cancel(timer_); }

void CbrSource::emit() {
  if (sim_.now() >= cfg_.stop) return;
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  timer_ = sim_.schedule(sim::Time::seconds(1.0 / cfg_.rate_pps),
                         [this] { emit(); });
}

PoissonOnOffSource::PoissonOnOffSource(sim::Simulator& simulator,
                                       const PoissonOnOffConfig& cfg,
                                       routing::AodvAgent& agent,
                                       net::PacketFactory& factory,
                                       FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kOnOffStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.rate_pps, 0.0, "on/off source rate must be positive");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  timer_ = sim_.schedule_at(
      cfg_.start + sim::Time::seconds(rng_.exponential(cfg_.mean_off.to_seconds())),
      [this] { begin_on(); });
}

PoissonOnOffSource::~PoissonOnOffSource() { sim_.cancel(timer_); }

void PoissonOnOffSource::begin_on() {
  if (sim_.now() >= cfg_.stop) return;
  on_ = true;
  on_ends_ = sim_.now() +
             sim::Time::seconds(rng_.exponential(cfg_.mean_on.to_seconds()));
  emit();
}

void PoissonOnOffSource::begin_off() {
  on_ = false;
  timer_ = sim_.schedule(
      sim::Time::seconds(rng_.exponential(cfg_.mean_off.to_seconds())),
      [this] { begin_on(); });
}

void PoissonOnOffSource::emit() {
  if (sim_.now() >= cfg_.stop) return;
  if (!on_ || sim_.now() >= on_ends_) {
    begin_off();
    return;
  }
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  timer_ = sim_.schedule(sim::Time::seconds(1.0 / cfg_.rate_pps),
                         [this] { emit(); });
}

}  // namespace wmn::traffic
