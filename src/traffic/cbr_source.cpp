#include "traffic/cbr_source.hpp"

#include "core/check.hpp"


namespace wmn::traffic {

namespace {
constexpr std::uint64_t kCbrStreamSalt = 0xCB20'0000'0000'0000ULL;
constexpr std::uint64_t kOnOffStreamSalt = 0x0F0F'0000'0000'0000ULL;
}  // namespace

CbrSource::CbrSource(sim::Simulator& simulator, const CbrConfig& cfg,
                     routing::AodvAgent& agent, net::PacketFactory& factory,
                     FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kCbrStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.rate_pps, 0.0, "CBR rate must be positive");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  base_ = cfg_.start;
  if (cfg_.randomize_start_phase) {
    base_ += sim::Time::seconds(rng_.uniform01() / cfg_.rate_pps);
  }
  if (base_ < cfg_.stop) {
    timer_ = sim_.schedule_at(base_, [this] { emit(); });
  }
}

CbrSource::~CbrSource() { sim_.cancel(timer_); }

sim::Time CbrSource::tick_time(std::uint64_t k) const {
  // One double divide + one rounding per tick: the error of tick k is
  // bounded by a rounding ulp and never accumulates across ticks.
  return base_ +
         sim::Time::seconds(static_cast<double>(k) / cfg_.rate_pps);
}

void CbrSource::emit() {
  timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  const sim::Time next = tick_time(seq_);
  if (next < cfg_.stop) {
    timer_ = sim_.schedule_at(next, [this] { emit(); });
  }
}

PoissonOnOffSource::PoissonOnOffSource(sim::Simulator& simulator,
                                       const PoissonOnOffConfig& cfg,
                                       routing::AodvAgent& agent,
                                       net::PacketFactory& factory,
                                       FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kOnOffStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.rate_pps, 0.0, "on/off source rate must be positive");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  schedule_guarded(
      cfg_.start + sim::Time::seconds(rng_.exponential(cfg_.mean_off.to_seconds())),
      [this] { begin_on(); });
}

PoissonOnOffSource::~PoissonOnOffSource() { sim_.cancel(timer_); }

template <typename Fn>
void PoissonOnOffSource::schedule_guarded(sim::Time at, Fn fn) {
  if (at >= cfg_.stop) {
    timer_ = sim::EventId{};
    return;
  }
  timer_ = sim_.schedule_at(at, fn);
}

void PoissonOnOffSource::begin_on() {
  timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;
  on_ = true;
  on_ends_ = sim_.now() +
             sim::Time::seconds(rng_.exponential(cfg_.mean_on.to_seconds()));
  burst_base_ = sim_.now();
  burst_sent_ = 0;
  emit();
}

void PoissonOnOffSource::begin_off() {
  on_ = false;
  schedule_guarded(
      sim_.now() + sim::Time::seconds(rng_.exponential(cfg_.mean_off.to_seconds())),
      [this] { begin_on(); });
}

void PoissonOnOffSource::emit() {
  timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;
  if (!on_ || sim_.now() >= on_ends_) {
    begin_off();
    return;
  }
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  ++burst_sent_;
  // Absolute-base pacing within the burst (see header): tick k of this
  // burst goes out at burst start + k/rate, drift-free.
  schedule_guarded(
      burst_base_ + sim::Time::seconds(static_cast<double>(burst_sent_) /
                                       cfg_.rate_pps),
      [this] { emit(); });
}

}  // namespace wmn::traffic
