#include "traffic/flow_registry.hpp"

#include <cmath>

#include "core/check.hpp"

namespace wmn::traffic {

FlowRecord& FlowRegistry::register_flow(std::uint32_t flow_id, net::Address src,
                                        net::Address dst) {
  WMN_CHECK(!flows_.contains(flow_id), "duplicate flow id");
  FlowRecord& r = flows_[flow_id];
  r.flow_id = flow_id;
  r.src = src;
  r.dst = dst;
  return r;
}

void FlowRegistry::record_sent(std::uint32_t flow_id, std::uint32_t bytes) {
  auto it = flows_.find(flow_id);
  WMN_CHECK(it != flows_.end(), "record_sent for an unregistered flow");
  ++it->second.sent;
  it->second.sent_bytes += bytes;
}

void FlowRegistry::record_sent(std::uint32_t flow_id, std::uint32_t bytes,
                               sim::Time now) {
  record_sent(flow_id, bytes);
  if (outage_query_ && outage_query_(now)) ++sent_during_outage_;
}

void FlowRegistry::record_delivery(std::uint32_t flow_id, std::uint64_t seq,
                                   std::uint32_t bytes, sim::Time sent_at,
                                   sim::Time now) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;  // stray delivery after teardown
  FlowRecord& r = it->second;

  if (r.any_delivered && seq <= r.highest_seq_delivered) {
    if (seq == r.highest_seq_delivered) {
      ++r.duplicates;
      return;
    }
    ++r.out_of_order;
    // Late packet: still counts as delivered below.
  }

  ++r.delivered;
  r.delivered_bytes += bytes;
  if (outage_query_ && outage_query_(sent_at)) ++delivered_during_outage_;
  const double delay_s = (now - sent_at).to_seconds();

  // Welford update.
  const double d1 = delay_s - r.delay_mean_s;
  r.delay_mean_s += d1 / static_cast<double>(r.delivered);
  r.delay_m2 += d1 * (delay_s - r.delay_mean_s);

  if (r.last_delay_s >= 0.0) {
    const double diff = std::abs(delay_s - r.last_delay_s);
    ++r.jitter_count;
    r.jitter_mean_s +=
        (diff - r.jitter_mean_s) / static_cast<double>(r.jitter_count);
  }
  r.last_delay_s = delay_s;

  if (!r.any_delivered) {
    r.first_delivery = now;
    r.any_delivered = true;
  }
  r.last_delivery = now;
  if (seq > r.highest_seq_delivered) r.highest_seq_delivered = seq;
}

void FlowRegistry::merge_from(const FlowRegistry& other) {
  for (const auto& [id, src] : other.flows_) {
    auto it = flows_.find(id);
    if (it == flows_.end()) {
      flows_[id] = src;
      continue;
    }
    FlowRecord& r = it->second;
    r.sent += src.sent;
    r.sent_bytes += src.sent_bytes;
    if (src.any_delivered || src.duplicates != 0 || src.out_of_order != 0) {
      WMN_CHECK(!r.any_delivered && r.duplicates == 0 && r.out_of_order == 0,
                "flow delivered in two region registries");
      r.delivered = src.delivered;
      r.delivered_bytes = src.delivered_bytes;
      r.duplicates = src.duplicates;
      r.out_of_order = src.out_of_order;
      r.delay_mean_s = src.delay_mean_s;
      r.delay_m2 = src.delay_m2;
      r.jitter_mean_s = src.jitter_mean_s;
      r.jitter_count = src.jitter_count;
      r.last_delay_s = src.last_delay_s;
      r.highest_seq_delivered = src.highest_seq_delivered;
      r.any_delivered = src.any_delivered;
      r.first_delivery = src.first_delivery;
      r.last_delivery = src.last_delivery;
    }
  }
  sent_during_outage_ += other.sent_during_outage_;
  delivered_during_outage_ += other.delivered_during_outage_;
}

const FlowRecord* FlowRegistry::find(std::uint32_t flow_id) const {
  auto it = flows_.find(flow_id);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<FlowRecord> FlowRegistry::snapshot() const {
  std::vector<FlowRecord> out;
  out.reserve(flows_.size());
  for (const auto& [id, r] : flows_) out.push_back(r);
  return out;
}

std::uint64_t FlowRegistry::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& [id, r] : flows_) n += r.sent;
  return n;
}

std::uint64_t FlowRegistry::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& [id, r] : flows_) n += r.delivered;
  return n;
}

std::uint64_t FlowRegistry::total_delivered_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, r] : flows_) n += r.delivered_bytes;
  return n;
}

double FlowRegistry::aggregate_pdr() const {
  const std::uint64_t sent = total_sent();
  return sent == 0 ? 0.0
                   : static_cast<double>(total_delivered()) /
                         static_cast<double>(sent);
}

double FlowRegistry::mean_delay_s() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& [id, r] : flows_) {
    n += r.delivered;
    sum += r.delay_mean_s * static_cast<double>(r.delivered);
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double FlowRegistry::mean_jitter_s() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& [id, r] : flows_) {
    n += r.jitter_count;
    sum += r.jitter_mean_s * static_cast<double>(r.jitter_count);
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace wmn::traffic
