// Destination-side application: receives delivered packets from the
// routing agent and records per-flow end-to-end metrics.
#pragma once

#include "routing/aodv.hpp"
#include "traffic/flow_registry.hpp"

namespace wmn::traffic {

class PacketSink {
 public:
  PacketSink(sim::Simulator& simulator, routing::AodvAgent& agent,
             FlowRegistry& registry);

  PacketSink(const PacketSink&) = delete;
  PacketSink& operator=(const PacketSink&) = delete;

  [[nodiscard]] std::uint64_t packets_received() const { return received_; }

 private:
  void on_deliver(net::Packet packet, net::Address origin);

  sim::Simulator& sim_;
  FlowRegistry& registry_;
  std::uint64_t received_ = 0;
};

}  // namespace wmn::traffic
