// Per-user session aggregation — one mesh node carrying the traffic of
// thousands of users (the ROADMAP's "millions of users" workload item).
//
// A mesh router in a deployed WMN does not originate one CBR flow: it
// aggregates the sessions of every user behind it. This source models
// that directly: sessions arrive as a Poisson process with aggregate
// rate `users * session_rate_per_user_per_s` (the seeded flow-arrival
// process — new sessions arrive over time instead of a fixed set), each
// session transfers a Pareto-distributed number of packets (heavy-tailed
// "file sizes"), paced at `session_rate_pps` with the drift-free
// absolute-base schedule shared by every traffic:: source. Concurrent
// sessions overlap, so the node's offered load is bursty and
// long-range-dependent even though each session is simple.
//
// All sessions of a source share one FlowRegistry flow (the node's
// aggregate toward its gateway) and one monotone sequence space, so
// PDR/delay/duplicate accounting works unchanged.
//
// Determinism contract: one salted RngStream; the draw sequence per
// arrival is fixed — (session size, next inter-arrival gap) — and is
// consumed even when the session is rejected by the concurrency cap, so
// the sequence is a pure function of the source's own arrival count,
// never of downstream state. Same-seed fingerprints are bit-identical
// serial vs pooled.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/aodv.hpp"
#include "traffic/flow_registry.hpp"
#include "traffic/rate_envelope.hpp"

namespace wmn::traffic {

struct SessionSourceConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;  // the node's gateway
  std::uint32_t packet_bytes = 512;
  std::uint32_t users = 1000;  // users aggregated behind this node
  double session_rate_per_user_per_s = 0.002;  // session arrivals per user
  double session_rate_pps = 16.0;              // pacing within a session
  double mean_session_pkts = 20.0;             // Pareto mean size
  double pareto_shape = 1.5;                   // alpha > 1
  // Concurrency cap: arrivals beyond this many overlapping sessions are
  // counted as rejected instead of exploding the event calendar.
  std::uint32_t max_active_sessions = 64;
  sim::Time start{};
  sim::Time stop = sim::Time::max();
  // Time-varying arrival-rate multiplier (flash crowds, diurnal load).
  // Inactive (the default) keeps the draw sequence — and therefore all
  // existing fingerprints — bit-identical to the constant-rate source.
  RateEnvelope envelope;
};

class SessionSource {
 public:
  SessionSource(sim::Simulator& simulator, const SessionSourceConfig& cfg,
                routing::AodvAgent& agent, net::PacketFactory& factory,
                FlowRegistry& registry);
  ~SessionSource();

  SessionSource(const SessionSource&) = delete;
  SessionSource& operator=(const SessionSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }
  [[nodiscard]] std::uint64_t sessions_started() const { return started_; }
  [[nodiscard]] std::uint64_t sessions_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t sessions_rejected() const { return rejected_; }
  [[nodiscard]] std::uint32_t active_sessions() const { return active_; }
  [[nodiscard]] std::uint32_t flow_id() const { return cfg_.flow_id; }
  // True while any arrival or session pacing event is scheduled.
  [[nodiscard]] bool timer_armed() const;

 private:
  struct Session {
    bool active = false;
    std::uint64_t remaining = 0;  // packets left to send
    std::uint64_t sent = 0;       // packets sent so far (pacing index)
    sim::Time base{};             // time of the session's packet 0
    sim::EventId timer{};
  };

  void on_arrival();
  void emit(std::uint32_t slot);
  void finish_session(std::uint32_t slot);

  sim::Simulator& sim_;
  SessionSourceConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  std::vector<Session> sessions_;  // fixed pool, size max_active_sessions
  std::uint64_t seq_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint32_t active_ = 0;
  sim::EventId arrival_timer_{};
};

}  // namespace wmn::traffic
