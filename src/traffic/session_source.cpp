#include "traffic/session_source.hpp"

#include <cmath>

#include "core/check.hpp"

namespace wmn::traffic {

namespace {
constexpr std::uint64_t kSessionStreamSalt = 0x5E55'1040'0000'0000ULL;
}  // namespace

SessionSource::SessionSource(sim::Simulator& simulator,
                             const SessionSourceConfig& cfg,
                             routing::AodvAgent& agent,
                             net::PacketFactory& factory,
                             FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kSessionStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.users, 0u, "session source needs at least one user");
  WMN_CHECK_GT(cfg_.session_rate_per_user_per_s, 0.0,
               "per-user session rate must be positive");
  WMN_CHECK_GT(cfg_.session_rate_pps, 0.0, "session pacing must be positive");
  WMN_CHECK_GT(cfg_.mean_session_pkts, 0.0,
               "mean session size must be positive");
  WMN_CHECK_GT(cfg_.pareto_shape, 1.0,
               "Pareto shape must exceed 1 (finite mean session size)");
  WMN_CHECK_GT(cfg_.max_active_sessions, 0u,
               "session concurrency cap must be positive");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  sessions_.resize(cfg_.max_active_sessions);

  double aggregate_rate = static_cast<double>(cfg_.users) *
                          cfg_.session_rate_per_user_per_s;
  // Frozen-rate envelope application: the rate in force at the moment
  // of the draw shapes this gap (see traffic/rate_envelope.hpp). The
  // branch keeps the inactive path's arithmetic untouched.
  if (cfg_.envelope.active()) {
    aggregate_rate *= cfg_.envelope.multiplier_at(cfg_.start.to_seconds());
  }
  const sim::Time first =
      cfg_.start + sim::Time::seconds(rng_.exponential(1.0 / aggregate_rate));
  if (first < cfg_.stop) {
    arrival_timer_ = sim_.schedule_at(first, [this] { on_arrival(); });
  }
}

SessionSource::~SessionSource() {
  sim_.cancel(arrival_timer_);
  for (Session& s : sessions_) sim_.cancel(s.timer);
}

bool SessionSource::timer_armed() const {
  if (arrival_timer_.valid()) return true;
  for (const Session& s : sessions_) {
    if (s.timer.valid()) return true;
  }
  return false;
}

void SessionSource::on_arrival() {
  arrival_timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;

  // Fixed draw order per arrival — (size, next gap) — consumed whether
  // or not the session is admitted, so the stream's state depends only
  // on how many arrivals occurred.
  const double alpha = cfg_.pareto_shape;
  const double scale = cfg_.mean_session_pkts * (alpha - 1.0) / alpha;
  const double size = rng_.pareto(alpha, scale);
  double aggregate_rate = static_cast<double>(cfg_.users) *
                          cfg_.session_rate_per_user_per_s;
  if (cfg_.envelope.active()) {
    aggregate_rate *= cfg_.envelope.multiplier_at(sim_.now().to_seconds());
  }
  const sim::Time next_arrival =
      sim_.now() + sim::Time::seconds(rng_.exponential(1.0 / aggregate_rate));

  std::uint32_t slot = cfg_.max_active_sessions;
  for (std::uint32_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i].active) {
      slot = i;
      break;
    }
  }
  if (slot == cfg_.max_active_sessions) {
    ++rejected_;
  } else {
    Session& s = sessions_[slot];
    s.active = true;
    s.remaining = static_cast<std::uint64_t>(std::llround(std::max(1.0, size)));
    s.sent = 0;
    s.base = sim_.now();
    ++started_;
    ++active_;
    emit(slot);
  }

  if (next_arrival < cfg_.stop) {
    arrival_timer_ = sim_.schedule_at(next_arrival, [this] { on_arrival(); });
  }
}

void SessionSource::emit(std::uint32_t slot) {
  Session& s = sessions_[slot];
  s.timer = sim::EventId{};
  if (sim_.now() >= cfg_.stop) {
    finish_session(slot);
    return;
  }
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  ++s.sent;
  --s.remaining;
  if (s.remaining == 0) {
    finish_session(slot);
    return;
  }
  // Drift-free pacing: packet k of the session at base + k/rate.
  const sim::Time next =
      s.base + sim::Time::seconds(static_cast<double>(s.sent) /
                                  cfg_.session_rate_pps);
  if (next >= cfg_.stop) {
    finish_session(slot);
    return;
  }
  s.timer = sim_.schedule_at(next, [this, slot] { emit(slot); });
}

void SessionSource::finish_session(std::uint32_t slot) {
  Session& s = sessions_[slot];
  if (!s.active) return;
  s.active = false;
  s.timer = sim::EventId{};
  --active_;
  ++completed_;
}

}  // namespace wmn::traffic
