#include "traffic/packet_sink.hpp"

namespace wmn::traffic {

PacketSink::PacketSink(sim::Simulator& simulator, routing::AodvAgent& agent,
                       FlowRegistry& registry)
    : sim_(simulator), registry_(registry) {
  agent.set_deliver_callback([this](net::Packet p, net::Address origin) {
    on_deliver(std::move(p), origin);
  });
}

void PacketSink::on_deliver(net::Packet packet, net::Address) {
  ++received_;
  const net::Packet::FlowInfo& fi = packet.flow_info();
  if (!fi.valid) return;  // control or untagged traffic
  registry_.record_delivery(fi.flow_id, fi.seq, packet.payload_bytes(),
                            fi.sent_at, sim_.now());
}

}  // namespace wmn::traffic
