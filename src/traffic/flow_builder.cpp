#include "traffic/flow_builder.hpp"

#include <algorithm>
#include <set>

#include "core/check.hpp"

namespace wmn::traffic {

std::vector<NodePair> random_pairs(std::size_t n_flows, std::uint32_t n_nodes,
                                   sim::RngStream& rng) {
  WMN_CHECK_GE(n_nodes, 2u, "flows need at least two nodes");
  std::vector<NodePair> out;
  std::set<NodePair> used;
  out.reserve(n_flows);
  // With n_flows << n_nodes^2 rejection terminates fast; the cap keeps
  // pathological parameterizations from spinning.
  std::size_t attempts = 0;
  const std::size_t max_attempts = n_flows * 1000 + 1000;
  while (out.size() < n_flows && attempts++ < max_attempts) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(0, n_nodes - 1));
    const auto b = static_cast<std::uint32_t>(rng.uniform_u64(0, n_nodes - 1));
    if (a == b) continue;
    if (!used.insert({a, b}).second) continue;
    out.push_back({a, b});
  }
  WMN_CHECK_EQ(out.size(), n_flows, "could not build requested flow count");
  return out;
}

std::vector<NodePair> gateway_pairs(std::size_t n_flows, std::uint32_t n_nodes,
                                    const std::vector<std::uint32_t>& gateways,
                                    sim::RngStream& rng) {
  WMN_CHECK(!gateways.empty() && n_nodes >= 2,
            "gateway flows need a gateway and at least two nodes");
  std::vector<NodePair> out;
  std::set<NodePair> used;
  out.reserve(n_flows);
  std::size_t gw_idx = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = n_flows * 1000 + 1000;
  while (out.size() < n_flows && attempts++ < max_attempts) {
    const std::uint32_t gw = gateways[gw_idx % gateways.size()];
    const auto src = static_cast<std::uint32_t>(rng.uniform_u64(0, n_nodes - 1));
    if (src == gw) continue;
    if (!used.insert({src, gw}).second) continue;
    out.push_back({src, gw});
    ++gw_idx;
  }
  WMN_CHECK_EQ(out.size(), n_flows, "could not build requested flow count");
  return out;
}

std::vector<sim::Time> arrival_offsets(std::size_t n, sim::Time mean_gap,
                                       sim::Time horizon,
                                       sim::RngStream& rng) {
  return arrival_offsets(n, mean_gap, horizon, rng, RateEnvelope{});
}

std::vector<sim::Time> arrival_offsets(std::size_t n, sim::Time mean_gap,
                                       sim::Time horizon, sim::RngStream& rng,
                                       const RateEnvelope& envelope) {
  WMN_CHECK_GT(mean_gap.ns(), std::int64_t{0},
               "arrival gap must be positive");
  std::vector<sim::Time> out;
  out.reserve(n);
  sim::Time at = sim::Time::zero();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::min(at, horizon));
    if (envelope.active()) {
      // Frozen-rate: the envelope value at the current offset shapes
      // this gap. One draw per flow either way.
      const double mult = envelope.multiplier_at(at.to_seconds());
      at += sim::Time::seconds(rng.exponential(mean_gap.to_seconds() / mult));
    } else {
      at += sim::Time::seconds(rng.exponential(mean_gap.to_seconds()));
    }
  }
  return out;
}

}  // namespace wmn::traffic
