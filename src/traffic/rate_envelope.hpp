// Piecewise-linear arrival-rate envelope — flash crowds and diurnal
// load for the seeded arrival processes.
//
// An envelope is a list of (seconds since its origin, multiplier)
// knots, strictly increasing in time. Between knots the multiplier is
// linearly interpolated; before the first and after the last it is
// clamped to the boundary value. Sources apply it by scaling the
// *instantaneous* arrival rate at each draw (a frozen-rate
// approximation of the nonhomogeneous Poisson process: the gap drawn
// at time t uses rate(t) — exact in the piecewise-constant limit and
// within one gap of exact elsewhere, while keeping the one-draw-per-
// arrival determinism contract of every traffic:: source).
//
// An inactive (empty) envelope is the promise this feature is built
// on: callers must branch on active() and keep the pre-envelope
// arithmetic bit-for-bit when it is off, so every existing fingerprint
// survives.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace wmn::traffic {

class RateEnvelope {
 public:
  // Multipliers are floored here: a literal zero rate would stall the
  // arrival process forever (no next draw ever scheduled); a deep
  // trough approximates "off" while keeping the process alive.
  static constexpr double kMinMultiplier = 1e-6;

  RateEnvelope() = default;

  // `knots` as (seconds since `origin_s`, multiplier); `origin_s` is
  // the absolute simulation time the envelope's clock starts at
  // (typically the traffic-window start).
  explicit RateEnvelope(std::vector<std::pair<double, double>> knots,
                        double origin_s = 0.0)
      : knots_(std::move(knots)), origin_s_(origin_s) {
    for (std::size_t i = 0; i < knots_.size(); ++i) {
      WMN_CHECK_GE(knots_[i].second, 0.0,
                   "envelope multiplier cannot be negative");
      knots_[i].second = std::max(knots_[i].second, kMinMultiplier);
      if (i > 0) {
        WMN_CHECK_GT(knots_[i].first, knots_[i - 1].first,
                     "envelope knot times must be strictly increasing");
      }
    }
  }

  [[nodiscard]] bool active() const { return !knots_.empty(); }

  // Multiplier at absolute simulation time `t_s` (seconds). 1.0 when
  // inactive.
  [[nodiscard]] double multiplier_at(double t_s) const {
    if (knots_.empty()) return 1.0;
    const double t = t_s - origin_s_;
    if (t <= knots_.front().first) return knots_.front().second;
    if (t >= knots_.back().first) return knots_.back().second;
    // Knots are few (an envelope is a handful of way-points); linear
    // scan beats binary search at this size and stays branch-simple.
    for (std::size_t i = 1; i < knots_.size(); ++i) {
      if (t <= knots_[i].first) {
        const auto& [t0, m0] = knots_[i - 1];
        const auto& [t1, m1] = knots_[i];
        const double f = (t - t0) / (t1 - t0);
        return m0 + f * (m1 - m0);
      }
    }
    return knots_.back().second;
  }

 private:
  std::vector<std::pair<double, double>> knots_;
  double origin_s_ = 0.0;
};

}  // namespace wmn::traffic
