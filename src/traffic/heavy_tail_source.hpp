// Heavy-tailed on/off traffic source — the production-workload burst
// model (F11).
//
// ON periods are Pareto-distributed (shape alpha, finite mean requires
// alpha > 1), OFF gaps exponential; during ON the source emits CBR at
// `rate_pps` with the drift-free absolute-base pacing shared by every
// traffic:: source (see cbr_source.hpp). Superposing many such sources
// yields long-range-dependent aggregate load — the self-similar traffic
// real gateways see, and the regime where neighbourhood-load routing
// either pays off or doesn't.
//
// Determinism contract: all randomness comes from one salted RngStream
// whose draw sequence is a pure function of the source's own history
// (off gap, on duration, off gap, ...) — never of other components'
// state — so same-seed fingerprints are bit-identical serial vs pooled.
#pragma once

#include <cstdint>

#include "routing/aodv.hpp"
#include "traffic/flow_registry.hpp"

namespace wmn::traffic {

struct HeavyTailOnOffConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;
  std::uint32_t packet_bytes = 512;
  double rate_pps = 8.0;       // emission rate while ON
  double pareto_shape = 1.5;   // alpha; must be > 1 (finite mean)
  sim::Time mean_on = sim::Time::seconds(2.0);   // mean Pareto burst
  sim::Time mean_off = sim::Time::seconds(2.0);  // exponential gap
  sim::Time start{};
  sim::Time stop = sim::Time::max();
};

class HeavyTailOnOffSource {
 public:
  HeavyTailOnOffSource(sim::Simulator& simulator,
                       const HeavyTailOnOffConfig& cfg,
                       routing::AodvAgent& agent, net::PacketFactory& factory,
                       FlowRegistry& registry);
  ~HeavyTailOnOffSource();

  HeavyTailOnOffSource(const HeavyTailOnOffSource&) = delete;
  HeavyTailOnOffSource& operator=(const HeavyTailOnOffSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }
  [[nodiscard]] std::uint64_t bursts_started() const { return bursts_; }
  [[nodiscard]] std::uint32_t flow_id() const { return cfg_.flow_id; }
  [[nodiscard]] bool timer_armed() const { return timer_.valid(); }

 private:
  void begin_on();
  void begin_off();
  void emit();
  template <typename Fn>
  void schedule_guarded(sim::Time at, Fn fn);

  sim::Simulator& sim_;
  HeavyTailOnOffConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t bursts_ = 0;
  bool on_ = false;
  sim::Time on_ends_{};
  sim::Time burst_base_{};
  std::uint64_t burst_sent_ = 0;
  sim::EventId timer_{};
};

}  // namespace wmn::traffic
