#include "traffic/heavy_tail_source.hpp"

#include "core/check.hpp"

namespace wmn::traffic {

namespace {
constexpr std::uint64_t kHeavyTailStreamSalt = 0x4EA7'7A11'0000'0000ULL;
}  // namespace

HeavyTailOnOffSource::HeavyTailOnOffSource(sim::Simulator& simulator,
                                           const HeavyTailOnOffConfig& cfg,
                                           routing::AodvAgent& agent,
                                           net::PacketFactory& factory,
                                           FlowRegistry& registry)
    : sim_(simulator),
      cfg_(cfg),
      agent_(agent),
      factory_(factory),
      registry_(registry),
      rng_(simulator.make_stream(kHeavyTailStreamSalt ^ cfg.flow_id)) {
  WMN_CHECK_GT(cfg_.rate_pps, 0.0, "heavy-tail source rate must be positive");
  WMN_CHECK_GT(cfg_.pareto_shape, 1.0,
               "Pareto shape must exceed 1 (finite mean on period)");
  registry_.register_flow(cfg_.flow_id, agent_.address(), cfg_.dest);
  schedule_guarded(cfg_.start + sim::Time::seconds(rng_.exponential(
                                    cfg_.mean_off.to_seconds())),
                   [this] { begin_on(); });
}

HeavyTailOnOffSource::~HeavyTailOnOffSource() { sim_.cancel(timer_); }

template <typename Fn>
void HeavyTailOnOffSource::schedule_guarded(sim::Time at, Fn fn) {
  if (at >= cfg_.stop) {
    timer_ = sim::EventId{};
    return;
  }
  timer_ = sim_.schedule_at(at, fn);
}

void HeavyTailOnOffSource::begin_on() {
  timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;
  on_ = true;
  ++bursts_;
  // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); invert for the scale
  // that realises the configured mean burst length.
  const double alpha = cfg_.pareto_shape;
  const double scale = cfg_.mean_on.to_seconds() * (alpha - 1.0) / alpha;
  on_ends_ = sim_.now() + sim::Time::seconds(rng_.pareto(alpha, scale));
  burst_base_ = sim_.now();
  burst_sent_ = 0;
  emit();
}

void HeavyTailOnOffSource::begin_off() {
  on_ = false;
  schedule_guarded(sim_.now() + sim::Time::seconds(rng_.exponential(
                                    cfg_.mean_off.to_seconds())),
                   [this] { begin_on(); });
}

void HeavyTailOnOffSource::emit() {
  timer_ = sim::EventId{};
  if (sim_.now() >= cfg_.stop) return;
  if (!on_ || sim_.now() >= on_ends_) {
    begin_off();
    return;
  }
  net::Packet pkt = factory_.make(cfg_.packet_bytes, sim_.now());
  pkt.set_flow_info(net::Packet::FlowInfo{cfg_.flow_id, ++seq_, sim_.now(), true});
  registry_.record_sent(cfg_.flow_id, cfg_.packet_bytes, sim_.now());
  agent_.send(std::move(pkt), cfg_.dest);
  ++burst_sent_;
  schedule_guarded(
      burst_base_ + sim::Time::seconds(static_cast<double>(burst_sent_) /
                                       cfg_.rate_pps),
      [this] { emit(); });
}

}  // namespace wmn::traffic
