// Flow-set construction for experiments.
//
// random_pairs: the standard evaluation workload — n distinct
// (src, dst) pairs drawn uniformly with src != dst (and no duplicate
// pairs), matching the "randomly chosen CBR connections" setup of the
// source papers.
//
// gateway_pairs: WMN backhaul workload — every flow targets one of the
// gateway nodes (round-robin), concentrating load near gateways; the
// workload behind the load-balance experiment (F8).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "traffic/rate_envelope.hpp"

namespace wmn::traffic {

using NodePair = std::pair<std::uint32_t, std::uint32_t>;

[[nodiscard]] std::vector<NodePair> random_pairs(std::size_t n_flows,
                                                 std::uint32_t n_nodes,
                                                 sim::RngStream& rng);

[[nodiscard]] std::vector<NodePair> gateway_pairs(
    std::size_t n_flows, std::uint32_t n_nodes,
    const std::vector<std::uint32_t>& gateways, sim::RngStream& rng);

// Seeded flow-arrival process: `n` non-decreasing start offsets drawn
// as a Poisson process with the given mean inter-arrival gap (flow 0
// starts at offset 0 — somebody is always already talking when the
// window opens). Offsets exceeding `horizon` are clamped to it, so a
// short traffic window still starts every flow. The scenario adds
// these to the traffic start time when staggered arrivals are enabled:
// flows join the mesh over time instead of all at once.
[[nodiscard]] std::vector<sim::Time> arrival_offsets(std::size_t n,
                                                     sim::Time mean_gap,
                                                     sim::Time horizon,
                                                     sim::RngStream& rng);

// Envelope-aware variant: the instantaneous arrival rate at offset t is
// (1 / mean_gap) * envelope(t) with the envelope's clock starting at
// offset 0, so a flash-crowd spike compresses the gaps drawn inside it
// (frozen-rate scheme, see traffic/rate_envelope.hpp). With an
// inactive envelope the draw sequence — and every offset — is
// bit-identical to the overload above.
[[nodiscard]] std::vector<sim::Time> arrival_offsets(
    std::size_t n, sim::Time mean_gap, sim::Time horizon, sim::RngStream& rng,
    const RateEnvelope& envelope);

}  // namespace wmn::traffic
