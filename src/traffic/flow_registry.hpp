// Per-flow end-to-end bookkeeping shared by sources and sinks.
//
// Sources register flows and count offered packets; sinks record
// deliveries with their end-to-end delay. One registry per simulation;
// the experiment layer reads it after the run.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace wmn::traffic {

struct FlowRecord {
  std::uint32_t flow_id = 0;
  net::Address src;
  net::Address dst;

  // Offered load (source side).
  std::uint64_t sent = 0;
  std::uint64_t sent_bytes = 0;

  // Delivered (sink side).
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;

  // Delay statistics (Welford) over delivered packets, seconds.
  double delay_mean_s = 0.0;
  double delay_m2 = 0.0;
  // Mean absolute successive delay difference (jitter), seconds.
  double jitter_mean_s = 0.0;
  std::uint64_t jitter_count = 0;

  double last_delay_s = -1.0;
  std::uint64_t highest_seq_delivered = 0;
  bool any_delivered = false;
  sim::Time first_delivery{};
  sim::Time last_delivery{};

  [[nodiscard]] double pdr() const {
    return sent == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(sent);
  }
  [[nodiscard]] double delay_stddev_s() const {
    return delivered < 2 ? 0.0 : std::sqrt(delay_m2 / static_cast<double>(delivered - 1));
  }
};

class FlowRegistry {
 public:
  // Create a flow record; flow ids must be unique within a run.
  FlowRecord& register_flow(std::uint32_t flow_id, net::Address src,
                            net::Address dst);

  void record_sent(std::uint32_t flow_id, std::uint32_t bytes);
  // Timestamped variant: additionally classifies the packet against the
  // outage query (below). Sources use this one.
  void record_sent(std::uint32_t flow_id, std::uint32_t bytes, sim::Time now);
  void record_delivery(std::uint32_t flow_id, std::uint64_t seq,
                       std::uint32_t bytes, sim::Time sent_at, sim::Time now);

  // Resilience accounting: when set (fault-enabled runs), packets whose
  // send time satisfies the predicate count toward the during-outage
  // aggregates; deliveries are classified by their *send* time, so a
  // packet's bucket is decided once. Unset by default — zero cost.
  void set_outage_query(std::function<bool(sim::Time)> query) {
    outage_query_ = std::move(query);
  }
  [[nodiscard]] std::uint64_t sent_during_outage() const {
    return sent_during_outage_;
  }
  [[nodiscard]] std::uint64_t delivered_during_outage() const {
    return delivered_during_outage_;
  }

  [[nodiscard]] const FlowRecord* find(std::uint32_t flow_id) const;
  [[nodiscard]] std::vector<FlowRecord> snapshot() const;

  // Fold another registry's records into this one (the sharded engine
  // keeps one registry per region and merges after the run). A flow
  // present in both registries has its send-side counters summed; its
  // delivery-side block (Welford/jitter/sequence state) is taken from
  // whichever registry saw deliveries — a flow's sink lives in exactly
  // one region, so at most one side may have any_delivered set.
  void merge_from(const FlowRegistry& other);

  // Aggregates over all flows.
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_delivered_bytes() const;
  [[nodiscard]] double aggregate_pdr() const;
  // Delivery-weighted mean end-to-end delay (seconds).
  [[nodiscard]] double mean_delay_s() const;
  [[nodiscard]] double mean_jitter_s() const;

 private:
  std::map<std::uint32_t, FlowRecord> flows_;
  std::function<bool(sim::Time)> outage_query_;
  std::uint64_t sent_during_outage_ = 0;
  std::uint64_t delivered_during_outage_ = 0;
};

}  // namespace wmn::traffic
