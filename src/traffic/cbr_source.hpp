// Application-layer traffic sources.
//
// CbrSource emits fixed-size packets at a constant rate between start
// and stop times (the evaluation workload: 512-byte UDP-style CBR).
// PoissonOnOffSource alternates exponential ON/OFF periods, emitting
// CBR during ON — the bursty variant used in the congestion benches.
#pragma once

#include <cstdint>

#include "routing/aodv.hpp"
#include "traffic/flow_registry.hpp"

namespace wmn::traffic {

struct CbrConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;
  std::uint32_t packet_bytes = 512;
  double rate_pps = 4.0;
  sim::Time start{};
  sim::Time stop = sim::Time::max();
  // First packet is offset uniformly within one interval so flows
  // starting together do not phase-align.
  bool randomize_start_phase = true;
};

class CbrSource {
 public:
  CbrSource(sim::Simulator& simulator, const CbrConfig& cfg,
            routing::AodvAgent& agent, net::PacketFactory& factory,
            FlowRegistry& registry);
  ~CbrSource();

  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }
  [[nodiscard]] std::uint32_t flow_id() const { return cfg_.flow_id; }

 private:
  void emit();

  sim::Simulator& sim_;
  CbrConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  std::uint64_t seq_ = 0;
  sim::EventId timer_{};
};

struct PoissonOnOffConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;
  std::uint32_t packet_bytes = 512;
  double rate_pps = 8.0;          // rate while ON
  sim::Time mean_on = sim::Time::seconds(2.0);
  sim::Time mean_off = sim::Time::seconds(2.0);
  sim::Time start{};
  sim::Time stop = sim::Time::max();
};

class PoissonOnOffSource {
 public:
  PoissonOnOffSource(sim::Simulator& simulator, const PoissonOnOffConfig& cfg,
                     routing::AodvAgent& agent, net::PacketFactory& factory,
                     FlowRegistry& registry);
  ~PoissonOnOffSource();

  PoissonOnOffSource(const PoissonOnOffSource&) = delete;
  PoissonOnOffSource& operator=(const PoissonOnOffSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }

 private:
  void begin_on();
  void begin_off();
  void emit();

  sim::Simulator& sim_;
  PoissonOnOffConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  std::uint64_t seq_ = 0;
  bool on_ = false;
  sim::Time on_ends_{};
  sim::EventId timer_{};
};

}  // namespace wmn::traffic
