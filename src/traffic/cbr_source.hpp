// Application-layer traffic sources.
//
// CbrSource emits fixed-size packets at a constant rate between start
// and stop times (the evaluation workload: 512-byte UDP-style CBR).
// PoissonOnOffSource alternates exponential ON/OFF periods, emitting
// CBR during ON — the bursty variant used in the congestion benches.
//
// Timing contract (shared by every source in traffic::): packet k of a
// pacing run is scheduled at the *absolute* time base + k/rate, not by
// repeatedly adding a rounded per-tick interval. Rounding 1/rate to
// integer nanoseconds once per tick compounds (3 pps drifts 1/3 ns per
// packet, and any non-dyadic rate drifts), which shifts packets across
// the stop boundary and silently distorts offered-load sweeps; the
// absolute form keeps the error of tick k below one rounding ulp
// independent of k. Sources also never schedule an event at or past
// `stop`: the pacing timer is cleared the moment the next tick would
// cross the horizon, so no dead wakeups churn the calendar after the
// traffic window closes.
#pragma once

#include <cstdint>

#include "routing/aodv.hpp"
#include "traffic/flow_registry.hpp"

namespace wmn::traffic {

struct CbrConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;
  std::uint32_t packet_bytes = 512;
  double rate_pps = 4.0;
  sim::Time start{};
  sim::Time stop = sim::Time::max();
  // First packet is offset uniformly within one interval so flows
  // starting together do not phase-align.
  bool randomize_start_phase = true;
};

class CbrSource {
 public:
  CbrSource(sim::Simulator& simulator, const CbrConfig& cfg,
            routing::AodvAgent& agent, net::PacketFactory& factory,
            FlowRegistry& registry);
  ~CbrSource();

  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }
  [[nodiscard]] std::uint32_t flow_id() const { return cfg_.flow_id; }
  // True while a pacing event is scheduled; false once the source has
  // crossed `stop` (no stale EventId is ever left behind).
  [[nodiscard]] bool timer_armed() const { return timer_.valid(); }

 private:
  void emit();
  // Absolute send time of packet k: base_ + k/rate, rounded once.
  [[nodiscard]] sim::Time tick_time(std::uint64_t k) const;

  sim::Simulator& sim_;
  CbrConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  sim::Time base_{};  // time of packet 0 (start + random phase)
  std::uint64_t seq_ = 0;
  sim::EventId timer_{};
};

struct PoissonOnOffConfig {
  std::uint32_t flow_id = 0;
  net::Address dest;
  std::uint32_t packet_bytes = 512;
  double rate_pps = 8.0;          // rate while ON
  sim::Time mean_on = sim::Time::seconds(2.0);
  sim::Time mean_off = sim::Time::seconds(2.0);
  sim::Time start{};
  sim::Time stop = sim::Time::max();
};

class PoissonOnOffSource {
 public:
  PoissonOnOffSource(sim::Simulator& simulator, const PoissonOnOffConfig& cfg,
                     routing::AodvAgent& agent, net::PacketFactory& factory,
                     FlowRegistry& registry);
  ~PoissonOnOffSource();

  PoissonOnOffSource(const PoissonOnOffSource&) = delete;
  PoissonOnOffSource& operator=(const PoissonOnOffSource&) = delete;

  [[nodiscard]] std::uint64_t packets_sent() const { return seq_; }
  [[nodiscard]] bool timer_armed() const { return timer_.valid(); }

 private:
  void begin_on();
  void begin_off();
  void emit();
  // Schedule `fn` at `at` unless that would cross the stop horizon, in
  // which case the timer is cleared and the source goes quiet for good.
  template <typename Fn>
  void schedule_guarded(sim::Time at, Fn fn);

  sim::Simulator& sim_;
  PoissonOnOffConfig cfg_;
  routing::AodvAgent& agent_;
  net::PacketFactory& factory_;
  FlowRegistry& registry_;
  sim::RngStream rng_;
  std::uint64_t seq_ = 0;
  bool on_ = false;
  sim::Time on_ends_{};
  sim::Time burst_base_{};        // time of packet 0 of the current burst
  std::uint64_t burst_sent_ = 0;  // packets emitted in the current burst
  sim::EventId timer_{};
};

}  // namespace wmn::traffic
