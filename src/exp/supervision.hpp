// Wall-clock run supervision — deliberately confined to the harness.
//
// The Watchdog is the only component in the experiment layer that reads
// a wall clock on behalf of a running simulation, and the justification
// for that nondeterminism is narrow and written down (docs/TOOLING.md,
// "Run supervision & resume"): the clock decides only *whether* a run
// completes, never what a completed run computes. A replication that
// beats its deadline is bit-identical to an unsupervised one; a
// replication that doesn't is discarded wholesale as kDeadlineExceeded.
// No simulated time, seed, or metric ever derives from the clock.
//
// Mechanics: each supervised task registers a Lease pairing its
// sim::CancelToken with an absolute deadline (start time is taken at
// registration — the per-task start-time tracking lives here, not in
// the workers). One lazily started supervisor thread scans the active
// leases every kTickMillis and flips the token of any lease past its
// deadline; the simulator observes the flip at its next poll (every K
// events). Detection latency is therefore bounded by
// deadline + kTickMillis + K events of simulation progress.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "sim/cancel_token.hpp"

namespace wmn::exp {

class Watchdog {
 public:
  // Supervisor scan period; the wall-clock granularity added on top of
  // a deadline before a hung run is flagged.
  static constexpr int kTickMillis = 50;

  Watchdog() = default;
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // RAII registration of one supervised run. Destroying the lease
  // (normally: the replication finished) withdraws it; the token is
  // only ever flipped while the lease is alive.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    // Withdraw supervision early (idempotent).
    void release();

   private:
    friend class Watchdog;
    Lease(Watchdog* dog, std::uint64_t id) : dog_(dog), id_(id) {}
    Watchdog* dog_ = nullptr;
    std::uint64_t id_ = 0;
  };

  // Start supervising: `token` is flipped once `deadline_s` wall
  // seconds elapse from now, unless the lease dies first. The token
  // must outlive the lease.
  [[nodiscard]] Lease watch(sim::CancelToken& token, double deadline_s);

  // Leases currently registered (tests / diagnostics).
  [[nodiscard]] std::size_t active() const;

  // Total tokens this watchdog has ever flipped.
  [[nodiscard]] std::uint64_t expired_count() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    sim::CancelToken* token = nullptr;
    std::chrono::steady_clock::time_point deadline;
  };

  void unregister(std::uint64_t id);
  void loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::uint64_t expired_ = 0;
  bool stop_ = false;
  bool thread_started_ = false;
  std::thread thread_;
};

}  // namespace wmn::exp
