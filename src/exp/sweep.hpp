// Replication and sweep helpers used by every bench binary.
//
// The sweep engine flattens an entire experiment — every (point ×
// protocol) cell times every replication — into one task list drained
// by the persistent worker pool (exp::shared_pool). There is no
// barrier between points: a worker finishing the last replication of
// point 3 immediately picks up point 4. Workers are crash-safe: a
// replication that throws (or finishes tainted by WMN_CHECK
// log-and-count violations) fills a failed RepOutcome slot instead of
// terminating the binary, and the sweep completes with the failure
// reported alongside the results.
//
// Seeds are derived by replication_seed(base, point, rep) — a pure
// SplitMix64 function of the indices — so results are bit-identical
// regardless of thread count or task execution order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <span>
#include <vector>

#include "exp/metrics.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "stats/confidence.hpp"

namespace wmn::exp {

// SplitMix64 finalizer: the standard 64-bit bijective mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The seed of replication `rep` of sweep cell `point`, derived from the
// cell's base seed. Pure function of its arguments: the same sweep
// produces the same seeds whether it runs on 1 thread or 64, in any
// task order. Two mixing rounds keep distinct (point, rep) pairs from
// colliding even for adjacent base seeds.
[[nodiscard]] constexpr std::uint64_t replication_seed(std::uint64_t base_seed,
                                                       std::uint64_t point,
                                                       std::uint64_t rep) {
  return splitmix64(splitmix64(base_seed ^ (point * 0xBF58476D1CE4E5B9ULL)) +
                    rep);
}

// One replication slot of a sweep cell. Exactly one of:
//   * ok()          — metrics present, no taint;
//   * crashed       — the worker threw; `metrics` empty, `error` set;
//   * tainted       — run finished but WMN_CHECK violations were
//                     counted under kLogAndCount; metrics are kept for
//                     inspection but excluded from cell statistics.
struct RepOutcome {
  std::uint64_t seed = 0;
  std::optional<RunMetrics> metrics;
  std::string error;  // empty iff ok()

  [[nodiscard]] bool ok() const { return metrics.has_value() && error.empty(); }
};

// Flattened sweep over the shared pool. Usage (every bench binary):
//   SweepEngine sweep(env.threads);
//   ... add_cell() for every point × protocol ...   (phase 1)
//   sweep.run();                                    (drain, once)
//   ... cell_metrics(id) to render rows ...         (phase 2)
class SweepEngine {
 public:
  explicit SweepEngine(unsigned threads);

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;
  virtual ~SweepEngine() = default;

  // Enqueue one sweep cell: n_reps replications of cfg. The returned
  // id indexes cell()/cell_metrics() after run(). The label (e.g. the
  // protocol name) makes failure reports readable.
  std::size_t add_cell(const ScenarioConfig& cfg, std::size_t n_reps,
                       std::string label = {});

  // Drain every queued replication through the shared pool. Call once.
  void run();

  // All replication slots of a cell, in replication order.
  [[nodiscard]] std::span<const RepOutcome> cell(std::size_t id) const;

  // Metrics of the cell's *successful* replications, in order.
  [[nodiscard]] std::vector<RunMetrics> cell_metrics(std::size_t id) const;

  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] std::size_t failed_count() const;

  // Human-readable report of every failed slot; empty string if clean.
  [[nodiscard]] std::string failure_report() const;

 protected:
  // One replication: build, run, aggregate. Virtual so tests can
  // substitute a crashing body without a full Scenario.
  [[nodiscard]] virtual RunMetrics execute(const ScenarioConfig& cfg);

 private:
  struct Cell {
    std::string label;
    ScenarioConfig cfg;
    std::size_t first = 0;  // index of rep 0 in outcomes_
    std::size_t n_reps = 0;
  };

  unsigned threads_;
  std::vector<Cell> cells_;
  std::vector<RepOutcome> outcomes_;  // flattened, cell-major
  bool ran_ = false;
};

// Run `n_reps` independent replications of `base` across `threads`
// workers of the shared pool, seeded replication_seed(base.seed, 0, i).
// Strict wrapper over SweepEngine: throws std::runtime_error with the
// failure report if any replication failed (benches that want partial
// results use SweepEngine directly).
[[nodiscard]] std::vector<RunMetrics> run_replications(
    const ScenarioConfig& base, std::size_t n_reps,
    unsigned threads = default_thread_count());

// Extract one scalar from each replication.
using MetricFn = std::function<double(const RunMetrics&)>;
[[nodiscard]] std::vector<double> extract(std::span<const RunMetrics> reps,
                                          const MetricFn& fn);

// 95% CI of a scalar across replications.
[[nodiscard]] stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                                           const MetricFn& fn);

// "mean +-hw" rendering used in result tables (CI shown from 3 reps
// up; "n/a" when every replication of the cell failed).
[[nodiscard]] std::string ci_str(std::span<const RunMetrics> reps,
                                 const MetricFn& fn, int precision = 2);

// Environment knobs shared by all benches:
//   WMN_REPS     — replications per point (default `default_reps`)
//   WMN_THREADS  — worker threads (default: hardware concurrency)
//   WMN_QUICK    — if set, shrink traffic time to 15 s for smoke runs
// Malformed or non-positive values fall back to the default with a
// warning on stderr instead of being silently misread.
[[nodiscard]] std::size_t env_reps(std::size_t default_reps);
[[nodiscard]] unsigned env_threads();
void apply_quick_mode(ScenarioConfig& cfg);

}  // namespace wmn::exp
