// Replication and sweep helpers used by every bench binary.
#pragma once

#include <functional>
#include <string>
#include <span>
#include <vector>

#include "exp/metrics.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "stats/confidence.hpp"

namespace wmn::exp {

// Run `n_reps` independent replications of `base` (seeds base.seed,
// base.seed+1, ...) across `threads` workers.
[[nodiscard]] std::vector<RunMetrics> run_replications(
    const ScenarioConfig& base, std::size_t n_reps,
    unsigned threads = default_thread_count());

// Extract one scalar from each replication.
using MetricFn = std::function<double(const RunMetrics&)>;
[[nodiscard]] std::vector<double> extract(std::span<const RunMetrics> reps,
                                          const MetricFn& fn);

// 95% CI of a scalar across replications.
[[nodiscard]] stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                                           const MetricFn& fn);

// "mean +-hw" rendering used in result tables (CI shown from 3 reps up).
[[nodiscard]] std::string ci_str(std::span<const RunMetrics> reps,
                                 const MetricFn& fn, int precision = 2);

// Environment knobs shared by all benches:
//   WMN_REPS     — replications per point (default `default_reps`)
//   WMN_THREADS  — worker threads (default hardware concurrency)
//   WMN_QUICK    — if set, shrink traffic time to 15 s for smoke runs
[[nodiscard]] std::size_t env_reps(std::size_t default_reps);
[[nodiscard]] unsigned env_threads();
void apply_quick_mode(ScenarioConfig& cfg);

}  // namespace wmn::exp
