// Replication and sweep helpers used by every bench binary.
//
// The sweep engine flattens an entire experiment — every (point ×
// protocol) cell times every replication — into one task list drained
// by the persistent worker pool (exp::shared_pool). There is no
// barrier between points: a worker finishing the last replication of
// point 3 immediately picks up point 4. Workers are crash-safe: a
// replication that fails fills its RepOutcome slot with a structured
// FailureKind instead of terminating the binary, and the sweep
// completes with the failure reported alongside the results.
//
// Run supervision (all off by default):
//   * set_rep_deadline    — wall-clock watchdog per replication; a hung
//                           run is cooperatively cancelled and reported
//                           kDeadlineExceeded (see exp::Watchdog for
//                           why this is the one sanctioned wall clock).
//   * ScenarioConfig::event_budget — deterministic per-run guard; a
//                           livelocked config fails kEventBudgetExhausted
//                           identically on every host.
//   * set_retry_limit     — transient kinds (deadline, bad_alloc) are
//                           re-executed with the same seed; deterministic
//                           kinds never are.
//   * enable_journal      — checkpoint/resume: every clean slot is
//                           appended to a JSONL journal as it completes,
//                           and a resume run re-executes only the slots
//                           the journal doesn't cover (see exp/journal.hpp
//                           for the identity checks).
//   * set_sweep_event_budget — cumulative cross-slot event ceiling; the
//                           deterministic way to stop a sweep partway
//                           (CI's kill-mid-sweep resume smoke uses it).
//
// Seeds are derived by replication_seed(base, point, rep) — a pure
// SplitMix64 function of the indices — so results are bit-identical
// regardless of thread count, task execution order, or how many
// resume runs it took to fill every slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <span>
#include <vector>

#include "exp/failure.hpp"
#include "exp/metrics.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "sim/cancel_token.hpp"
#include "stats/confidence.hpp"

namespace wmn::exp {

// SplitMix64 finalizer: the standard 64-bit bijective mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The seed of replication `rep` of sweep cell `point`, derived from the
// cell's base seed. Pure function of its arguments: the same sweep
// produces the same seeds whether it runs on 1 thread or 64, in any
// task order. Two mixing rounds keep distinct (point, rep) pairs from
// colliding even for adjacent base seeds.
[[nodiscard]] constexpr std::uint64_t replication_seed(std::uint64_t base_seed,
                                                       std::uint64_t point,
                                                       std::uint64_t rep) {
  return splitmix64(splitmix64(base_seed ^ (point * 0xBF58476D1CE4E5B9ULL)) +
                    rep);
}

// One replication slot of a sweep cell. ok() means clean metrics;
// otherwise `kind` says exactly how the slot failed (kCheckTaint keeps
// its metrics for inspection but they are excluded from statistics).
struct RepOutcome {
  std::uint64_t seed = 0;
  std::optional<RunMetrics> metrics;
  std::string error;                    // empty iff ok()
  FailureKind kind = FailureKind::kNone;
  unsigned attempts = 0;  // executions consumed; 0 = restored from journal
  bool restored = false;  // loaded from the resume journal, not re-run

  [[nodiscard]] bool ok() const { return metrics.has_value() && error.empty(); }
};

// Flattened sweep over the shared pool. Usage (every bench binary):
//   SweepEngine sweep(env.threads);
//   ... add_cell() for every point × protocol ...   (phase 1)
//   ... supervision knobs, enable_journal() ...
//   sweep.run();                                    (drain, once)
//   ... cell_metrics(id) to render rows ...         (phase 2)
class SweepEngine {
 public:
  explicit SweepEngine(unsigned threads);

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;
  virtual ~SweepEngine();

  // Enqueue one sweep cell: n_reps replications of cfg. The returned
  // id indexes cell()/cell_metrics() after run(). The label (e.g. the
  // protocol name) makes failure reports readable.
  std::size_t add_cell(const ScenarioConfig& cfg, std::size_t n_reps,
                       std::string label = {});

  // --- supervision knobs (set before run()) ---------------------------

  // Wall-clock deadline per replication attempt, in seconds; 0 (the
  // default) disables the watchdog entirely.
  void set_rep_deadline(double seconds);

  // How many times a *transient* failure (kDeadlineExceeded, kBadAlloc)
  // is re-executed with the same seed before the slot is given up.
  // Deterministic failures are never retried. Default: 1.
  void set_retry_limit(unsigned retries) { retry_limit_ = retries; }

  // Cumulative event ceiling across the whole sweep: once the summed
  // sim_event_count of completed slots reaches `total_events`, every
  // remaining slot fails kEventBudgetExhausted without running.
  // Deterministic for threads == 1 (slots complete in index order) —
  // the reproducible "kill the sweep partway" switch resume tests and
  // the CI smoke are built on. 0 (default) = off.
  void set_sweep_event_budget(std::uint64_t total_events) {
    sweep_event_budget_ = total_events;
  }

  // Checkpoint journal at `path`: every clean slot is appended (and
  // flushed) as it completes. With `resume`, run() first loads every
  // record whose identity checks out (see exp/journal.hpp) and
  // re-executes only the rest; a parseable record for a *different*
  // sweep (config digest or seed mismatch, out-of-range slot) makes
  // run() throw rather than mix experiments, while a damaged line is
  // skipped with a warning and its slot re-runs.
  void enable_journal(std::string path, bool resume);

  // Drain every queued replication through the shared pool. Call once.
  void run();

  // All replication slots of a cell, in replication order.
  [[nodiscard]] std::span<const RepOutcome> cell(std::size_t id) const;

  // Metrics of the cell's *successful* replications, in order.
  [[nodiscard]] std::vector<RunMetrics> cell_metrics(std::size_t id) const;

  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] std::size_t failed_count() const;

  // Slots satisfied from the resume journal instead of executing.
  [[nodiscard]] std::size_t resumed_count() const { return resumed_; }

  // Slot counts per FailureKind (index 0, kNone, counts clean slots).
  [[nodiscard]] FailureCounts failure_counts() const;

  // Human-readable report of every failed slot; empty string if clean.
  [[nodiscard]] std::string failure_report() const;

 protected:
  // One replication attempt: build, run, aggregate. `cancel` is this
  // attempt's cooperative cancellation token (null when the watchdog is
  // off). Virtual so tests can substitute bodies that throw, hang, or
  // spin without a full Scenario.
  [[nodiscard]] virtual RunMetrics execute(const ScenarioConfig& cfg,
                                           sim::CancelToken* cancel);

 private:
  struct Cell {
    std::string label;
    ScenarioConfig cfg;
    std::uint64_t digest = 0;  // config_digest(cfg), the journal identity
    std::size_t first = 0;     // index of rep 0 in outcomes_
    std::size_t n_reps = 0;
  };

  void run_slot(std::size_t cell_id, std::size_t rep);
  void load_journal();
  void journal_append(std::size_t cell_id, std::size_t rep,
                      const RunMetrics& metrics);

  unsigned threads_;
  std::vector<Cell> cells_;
  std::vector<RepOutcome> outcomes_;  // flattened, cell-major
  bool ran_ = false;

  double rep_deadline_s_ = 0.0;
  unsigned retry_limit_ = 1;
  std::uint64_t sweep_event_budget_ = 0;
  // Summed sim_event_count of completed slots (journal-restored ones
  // included): the sweep-budget odometer.
  std::atomic<std::uint64_t> sweep_events_{0};

  std::string journal_path_;
  bool journal_enabled_ = false;
  bool resume_ = false;
  std::size_t resumed_ = 0;
  std::FILE* journal_file_ = nullptr;  // append handle while run() drains
  std::mutex journal_mu_;
};

// Run `n_reps` independent replications of `base` across `threads`
// workers of the shared pool, seeded replication_seed(base.seed, 0, i).
// Strict wrapper over SweepEngine: throws std::runtime_error with the
// failure report if any replication failed (benches that want partial
// results use SweepEngine directly).
[[nodiscard]] std::vector<RunMetrics> run_replications(
    const ScenarioConfig& base, std::size_t n_reps,
    unsigned threads = default_thread_count());

// Extract one scalar from each replication.
using MetricFn = std::function<double(const RunMetrics&)>;
[[nodiscard]] std::vector<double> extract(std::span<const RunMetrics> reps,
                                          const MetricFn& fn);

// 95% CI of a scalar across replications.
[[nodiscard]] stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                                           const MetricFn& fn);

// "mean +-hw" rendering used in result tables (CI shown from 3 reps
// up; "n/a" when every replication of the cell failed).
[[nodiscard]] std::string ci_str(std::span<const RunMetrics> reps,
                                 const MetricFn& fn, int precision = 2);

// Environment knobs shared by all benches:
//   WMN_REPS     — replications per point (default `default_reps`)
//   WMN_THREADS  — worker threads (default: hardware concurrency)
//   WMN_QUICK    — if set, shrink traffic time to 15 s for smoke runs
// Malformed or non-positive values fall back to the default with a
// warning on stderr instead of being silently misread.
[[nodiscard]] std::size_t env_reps(std::size_t default_reps);
[[nodiscard]] unsigned env_threads();
void apply_quick_mode(ScenarioConfig& cfg);

// Supervision knobs, applied to an engine before run():
//   WMN_DEADLINE_S         — per-replication wall deadline (seconds)
//   WMN_RETRIES            — transient-failure retry limit (0 allowed)
//   WMN_SWEEP_EVENT_BUDGET — cumulative sweep event ceiling
//   WMN_RESUME             — if set (or force_resume), load the journal
// The journal itself is enabled whenever `journal_path` is non-empty.
void apply_supervision_env(SweepEngine& sweep, const std::string& journal_path,
                           bool force_resume = false);

}  // namespace wmn::exp
