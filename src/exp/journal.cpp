#include "exp/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/scenario.hpp"
#include "sim/fingerprint.hpp"

namespace wmn::exp {

namespace {

// ---------------------------------------------------------------------
// Config digest
// ---------------------------------------------------------------------

void mix_time(sim::Fingerprint& fp, sim::Time t) {
  fp.mix(static_cast<std::uint64_t>(t.ns()));
}

void mix_protocol_options(sim::Fingerprint& fp,
                          const core::ProtocolOptions& o) {
  fp.mix(o.gossip_p);
  fp.mix(std::uint64_t{o.counter_threshold});

  fp.mix(o.clnlr.p_min);
  fp.mix(o.clnlr.p_max);
  fp.mix(o.clnlr.load_weight);
  fp.mix(o.clnlr.density_weight);
  fp.mix(o.clnlr.density_gate);
  fp.mix(o.clnlr.degree_ref);
  fp.mix(std::uint64_t{o.clnlr.sparse_degree});
  fp.mix(std::uint64_t{o.clnlr.always_forward_hops});
  mix_time(fp, o.clnlr.base_jitter);
  fp.mix(o.clnlr.load_jitter_factor);

  fp.mix(o.vap.p_min);
  fp.mix(o.vap.v_ref_mps);
  fp.mix(std::uint64_t{o.vap.sparse_degree});
  fp.mix(std::uint64_t{o.vap.always_forward_hops});
  mix_time(fp, o.vap.max_jitter);

  fp.mix(o.load_index.weight_queue);
  fp.mix(o.load_index.weight_busy);
  fp.mix(o.load_index.weight_retry);
  mix_time(fp, o.load_index.queue_sample_interval);
  fp.mix(o.load_index.queue_ewma_alpha);

  const routing::AodvConfig& a = o.aodv;
  mix_time(fp, a.hello_interval);
  fp.mix(std::uint64_t{a.allowed_hello_loss});
  mix_time(fp, a.active_route_timeout);
  mix_time(fp, a.rreq_cache_timeout);
  fp.mix(std::uint64_t{a.rreq_retries});
  mix_time(fp, a.net_traversal_time);
  fp.mix(std::uint64_t{a.rreq_ttl});
  fp.mix(static_cast<std::uint64_t>(a.expanding_ring ? 1 : 0));
  fp.mix(std::uint64_t{a.ers_ttl_start});
  fp.mix(std::uint64_t{a.ers_ttl_increment});
  fp.mix(std::uint64_t{a.ers_ttl_threshold});
  fp.mix(std::uint64_t{a.data_ttl});
  fp.mix(static_cast<std::uint64_t>(a.buffer_capacity));
  mix_time(fp, a.buffer_timeout);
  mix_time(fp, a.housekeeping_interval);
  mix_time(fp, a.dead_route_retention);
  fp.mix(static_cast<std::uint64_t>(a.use_load_metric ? 1 : 0));
  fp.mix(static_cast<std::uint64_t>(a.hello_carries_load ? 1 : 0));
  fp.mix(a.nbhd_self_weight);
  fp.mix(static_cast<std::uint64_t>(a.local_repair ? 1 : 0));
  fp.mix(std::uint64_t{a.local_repair_max_dest_hops});
  fp.mix(std::uint64_t{a.local_repair_ttl_slack});
  fp.mix(static_cast<std::uint64_t>(a.rrep_blacklist ? 1 : 0));
  mix_time(fp, a.blacklist_timeout);
  fp.mix(static_cast<std::uint64_t>(a.rerr_to_precursors ? 1 : 0));
}

void mix_traffic(sim::Fingerprint& fp, const TrafficSpec& t) {
  fp.mix(static_cast<std::uint64_t>(t.pattern));
  fp.mix(static_cast<std::uint64_t>(t.model));
  fp.mix(static_cast<std::uint64_t>(t.n_flows));
  fp.mix(t.rate_pps);
  fp.mix(std::uint64_t{t.packet_bytes});
  fp.mix(static_cast<std::uint64_t>(t.n_gateways));
  fp.mix(t.mean_on_s);
  fp.mix(t.mean_off_s);
  fp.mix(t.pareto_shape);
  fp.mix(std::uint64_t{t.users_per_node});
  fp.mix(t.session_rate_per_user_per_s);
  fp.mix(t.session_rate_pps);
  fp.mix(t.mean_session_pkts);
  fp.mix(std::uint64_t{t.max_active_sessions});
  fp.mix(t.mean_arrival_gap_s);
  fp.mix(static_cast<std::uint64_t>(t.rate_envelope.size()));
  for (const auto& [at_s, mult] : t.rate_envelope) {
    fp.mix(at_s);
    fp.mix(mult);
  }
}

void mix_fault(sim::Fingerprint& fp, const fault::FaultPlan& f) {
  fp.mix(static_cast<std::uint64_t>(f.outages.size()));
  for (const fault::NodeOutage& o : f.outages) {
    fp.mix(std::uint64_t{o.node});
    mix_time(fp, o.down_at);
    mix_time(fp, o.up_at);
  }
  fp.mix(static_cast<std::uint64_t>(f.blackouts.size()));
  for (const fault::LinkBlackout& b : f.blackouts) {
    fp.mix(std::uint64_t{b.a});
    fp.mix(std::uint64_t{b.b});
    mix_time(fp, b.from);
    mix_time(fp, b.to);
    fp.mix(b.attenuation_db);
    fp.mix(static_cast<std::uint64_t>(b.bidirectional ? 1 : 0));
  }
  fp.mix(f.churn.rate_per_s);
  mix_time(fp, f.churn.mean_downtime);
  mix_time(fp, f.churn.start);
  mix_time(fp, f.churn.stop);
}

// ---------------------------------------------------------------------
// Field enumeration — single source of truth for writer AND parser, so
// a RunMetrics field added here can never silently drop out of one
// side. (A field added to RunMetrics but not here fails the resume
// tests: the recomputed fingerprint matches but the aggregate diff
// catches the zeroed field.)
// ---------------------------------------------------------------------

#define WMN_JOURNAL_U64_FIELDS(X) \
  X(seed)                         \
  X(data_sent)                    \
  X(data_delivered)               \
  X(rreq_tx)                      \
  X(rrep_tx)                      \
  X(rerr_tx)                      \
  X(hello_tx)                     \
  X(control_tx)                   \
  X(rreq_suppressed)              \
  X(discoveries)                  \
  X(discoveries_failed)           \
  X(mac_queue_drops)              \
  X(mac_retry_drops)              \
  X(mac_retries)                  \
  X(phy_collisions)               \
  X(forwarding_active_nodes)      \
  X(gateway_count)                \
  X(sessions_started)             \
  X(sessions_completed)           \
  X(sessions_rejected)            \
  X(fault_crashes)                \
  X(fault_rejoins)                \
  X(fault_blackouts)              \
  X(sent_during_outage)           \
  X(delivered_during_outage)      \
  X(local_repairs_attempted)      \
  X(local_repairs_succeeded)      \
  X(route_recoveries)             \
  X(route_recoveries_abandoned)   \
  X(flows_stranded)               \
  X(check_violations)

#define WMN_JOURNAL_F64_FIELDS(X) \
  X(pdr)                          \
  X(mean_delay_ms)                \
  X(mean_jitter_ms)               \
  X(throughput_kbps)              \
  X(rreq_per_discovery)           \
  X(nrl)                          \
  X(nrl_on_demand)                \
  X(mean_busy_ratio)              \
  X(forwarding_jain)              \
  X(forwarding_peak_to_mean)      \
  X(gateway_jain)                 \
  X(gateway_load_variance)        \
  X(total_energy_j)               \
  X(mean_node_energy_j)           \
  X(energy_mj_per_kbit)           \
  X(avg_path_hops)                \
  X(fault_downtime_s)             \
  X(pdr_during_outage)            \
  X(pdr_outside_outage)           \
  X(route_recovery_mean_ms)       \
  X(sim_event_count)              \
  X(wall_seconds)

#define WMN_JOURNAL_VEC_FIELDS(X) \
  X(per_node_forwarded)           \
  X(per_gateway_delivered)

// ---------------------------------------------------------------------
// Serialization primitives
// ---------------------------------------------------------------------

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
  out += buf;
}

// Hexfloat round-trips every finite double bit-exactly through strtod;
// that exactness is what makes "resumed == uninterrupted" literal.
void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "\"%a\"", v);
  out += buf;
}

// ---------------------------------------------------------------------
// Parsing — a deliberately small scanner for exactly the flat JSON the
// writer emits: {"key":value,...} with values that are unsigned
// decimals, quoted strings, or arrays of quoted strings. Anything else
// (truncation mid-line, binary garbage, an unknown shape) returns
// nullopt and the caller re-runs the slot.
// ---------------------------------------------------------------------

struct Cursor {
  const char* p;
  const char* end;

  [[nodiscard]] bool done() const { return p >= end; }
  [[nodiscard]] bool accept(char c) {
    if (done() || *p != c) return false;
    ++p;
    return true;
  }
};

bool scan_quoted(Cursor& c, std::string_view& out) {
  if (!c.accept('"')) return false;
  const char* start = c.p;
  while (!c.done() && *c.p != '"') ++c.p;
  if (c.done()) return false;
  out = std::string_view(start, static_cast<std::size_t>(c.p - start));
  ++c.p;  // closing quote
  return true;
}

bool scan_u64(Cursor& c, std::uint64_t& out) {
  const char* start = c.p;
  while (!c.done() && *c.p >= '0' && *c.p <= '9') ++c.p;
  if (c.p == start || c.p - start > 20) return false;
  out = 0;
  for (const char* q = start; q != c.p; ++q) {
    out = out * 10 + static_cast<std::uint64_t>(*q - '0');
  }
  return true;
}

bool parse_hexfloat(std::string_view s, double& out) {
  char buf[48];
  if (s.empty() || s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* endp = nullptr;
  out = std::strtod(buf, &endp);
  return endp == buf + s.size();
}

bool parse_hex64(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  out = 0;
  for (const char ch : s) {
    std::uint64_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint64_t>(ch - 'a') + 10;
    } else {
      return false;
    }
    out = (out << 4) | digit;
  }
  return true;
}

}  // namespace

std::uint64_t config_digest(const ScenarioConfig& cfg) {
  sim::Fingerprint fp;
  fp.mix(std::uint64_t{0xC0F1'6D16'0000'0000ULL});  // domain tag
  fp.mix(std::uint64_t{kJournalVersion});

  fp.mix(static_cast<std::uint64_t>(cfg.n_nodes));
  fp.mix(cfg.area_width_m);
  fp.mix(cfg.area_height_m);
  fp.mix(static_cast<std::uint64_t>(cfg.placement));
  fp.mix(cfg.placement_jitter_m);

  fp.mix(cfg.mobility.min_speed_mps);
  fp.mix(cfg.mobility.max_speed_mps);
  mix_time(fp, cfg.mobility.pause);

  mix_traffic(fp, cfg.traffic);

  fp.mix(static_cast<std::uint64_t>(cfg.protocol));
  mix_protocol_options(fp, cfg.options);

  const phy::PhyConfig& p = cfg.phy;
  fp.mix(p.tx_power_dbm);
  fp.mix(p.bit_rate_bps);
  mix_time(fp, p.preamble);
  fp.mix(p.noise_floor_dbm);
  fp.mix(p.rx_sensitivity_dbm);
  fp.mix(p.cca_threshold_dbm);
  fp.mix(p.detection_floor_dbm);
  fp.mix(p.sinr_threshold_db);
  fp.mix(p.power_tx_w);
  fp.mix(p.power_rx_w);
  fp.mix(p.power_idle_w);

  const mac::MacConfig& m = cfg.mac;
  mix_time(fp, m.slot);
  mix_time(fp, m.sifs);
  fp.mix(std::uint64_t{m.cw_min});
  fp.mix(std::uint64_t{m.cw_max});
  fp.mix(std::uint64_t{m.retry_limit});
  fp.mix(static_cast<std::uint64_t>(m.queue_capacity));
  mix_time(fp, m.ack_timeout_slack);
  fp.mix(std::uint64_t{m.rts_threshold_bytes});
  mix_time(fp, m.cts_timeout_slack);

  fp.mix(cfg.shadowing_sigma_db);
  mix_fault(fp, cfg.fault);

  mix_time(fp, cfg.warmup);
  mix_time(fp, cfg.traffic_time);
  mix_time(fp, cfg.drain);
  fp.mix(cfg.seed);
  fp.mix(cfg.event_budget);
  fp.mix(static_cast<std::uint64_t>(cfg.spatial_index ? 1 : 0));
  return fp.digest();
}

std::string journal_line(const JournalRecord& rec) {
  std::string out;
  out.reserve(1024);
  out += "{\"v\":";
  append_u64(out, static_cast<std::uint64_t>(kJournalVersion));
  out += ",\"cell\":";
  append_u64(out, rec.cell);
  out += ",\"rep\":";
  append_u64(out, rec.rep);
  out += ",\"cfg\":";
  append_hex64(out, rec.cfg_digest);
  out += ",\"fp\":";
  append_hex64(out, rec.fingerprint);

  const RunMetrics& met = rec.metrics;
#define WMN_X(field)        \
  out += ",\"" #field "\":"; \
  append_u64(out, met.field);
  WMN_JOURNAL_U64_FIELDS(WMN_X)
#undef WMN_X
#define WMN_X(field)        \
  out += ",\"" #field "\":"; \
  append_f64(out, met.field);
  WMN_JOURNAL_F64_FIELDS(WMN_X)
#undef WMN_X
  out += ",\"fault_enabled\":";
  append_u64(out, met.fault_enabled ? 1 : 0);
#define WMN_X(field)                                 \
  out += ",\"" #field "\":[";                        \
  for (std::size_t i = 0; i < met.field.size(); ++i) { \
    if (i != 0) out += ',';                          \
    append_f64(out, met.field[i]);                   \
  }                                                  \
  out += ']';
  WMN_JOURNAL_VEC_FIELDS(WMN_X)
#undef WMN_X
  out += '}';
  return out;
}

std::optional<JournalRecord> parse_journal_line(std::string_view line) {
  JournalRecord rec;
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.accept('{')) return std::nullopt;

  // Presence tracking: every field the writer emits must appear exactly
  // once, or the line is damaged.
  bool have_v = false, have_cell = false, have_rep = false;
  bool have_cfg = false, have_fp = false, have_fault_enabled = false;
#define WMN_X(field) bool have_##field = false;
  WMN_JOURNAL_U64_FIELDS(WMN_X)
  WMN_JOURNAL_F64_FIELDS(WMN_X)
  WMN_JOURNAL_VEC_FIELDS(WMN_X)
#undef WMN_X

  bool first = true;
  while (true) {
    if (c.accept('}')) break;
    if (!first && !c.accept(',')) return std::nullopt;
    first = false;

    std::string_view key;
    if (!scan_quoted(c, key)) return std::nullopt;
    if (!c.accept(':')) return std::nullopt;

    if (key == "v") {
      std::uint64_t v = 0;
      if (!scan_u64(c, v)) return std::nullopt;
      if (v != static_cast<std::uint64_t>(kJournalVersion)) {
        return std::nullopt;
      }
      have_v = true;
    } else if (key == "cell") {
      if (!scan_u64(c, rec.cell)) return std::nullopt;
      have_cell = true;
    } else if (key == "rep") {
      if (!scan_u64(c, rec.rep)) return std::nullopt;
      have_rep = true;
    } else if (key == "cfg" || key == "fp") {
      std::string_view s;
      std::uint64_t v = 0;
      if (!scan_quoted(c, s) || !parse_hex64(s, v)) return std::nullopt;
      (key == "cfg" ? rec.cfg_digest : rec.fingerprint) = v;
      (key == "cfg" ? have_cfg : have_fp) = true;
    } else if (key == "fault_enabled") {
      std::uint64_t v = 0;
      if (!scan_u64(c, v) || v > 1) return std::nullopt;
      rec.metrics.fault_enabled = v != 0;
      have_fault_enabled = true;
    }
#define WMN_X(field)                                     \
    else if (key == #field) {                            \
      if (!scan_u64(c, rec.metrics.field)) return std::nullopt; \
      have_##field = true;                               \
    }
    WMN_JOURNAL_U64_FIELDS(WMN_X)
#undef WMN_X
#define WMN_X(field)                                     \
    else if (key == #field) {                            \
      std::string_view s;                                \
      if (!scan_quoted(c, s)) return std::nullopt;       \
      if (!parse_hexfloat(s, rec.metrics.field)) return std::nullopt; \
      have_##field = true;                               \
    }
    WMN_JOURNAL_F64_FIELDS(WMN_X)
#undef WMN_X
#define WMN_X(field)                                     \
    else if (key == #field) {                            \
      if (!c.accept('[')) return std::nullopt;           \
      if (!c.accept(']')) {                              \
        while (true) {                                   \
          std::string_view s;                            \
          double v = 0.0;                                \
          if (!scan_quoted(c, s)) return std::nullopt;   \
          if (!parse_hexfloat(s, v)) return std::nullopt; \
          rec.metrics.field.push_back(v);                \
          if (c.accept(']')) break;                      \
          if (!c.accept(',')) return std::nullopt;       \
        }                                                \
      }                                                  \
      have_##field = true;                               \
    }
    WMN_JOURNAL_VEC_FIELDS(WMN_X)
#undef WMN_X
    else {
      return std::nullopt;  // unknown key: not ours, or damaged
    }
  }
  if (!c.done()) return std::nullopt;  // trailing garbage after '}'

  bool complete = have_v && have_cell && have_rep && have_cfg && have_fp &&
                  have_fault_enabled;
#define WMN_X(field) complete = complete && have_##field;
  WMN_JOURNAL_U64_FIELDS(WMN_X)
  WMN_JOURNAL_F64_FIELDS(WMN_X)
  WMN_JOURNAL_VEC_FIELDS(WMN_X)
#undef WMN_X
  if (!complete) return std::nullopt;
  return rec;
}

bool journal_record_consistent(const JournalRecord& rec) {
  return fingerprint(rec.metrics) == rec.fingerprint;
}

}  // namespace wmn::exp
