// Replication-level parallelism over the persistent pool.
//
// The simulation kernel is single-threaded by design; throughput comes
// from running independent replications concurrently. This follows the
// shared-nothing discipline of the HPC guides: tasks read an immutable
// description, build their entire world privately, and return results
// by value. The only shared state is the atomic work index and the
// pre-sized results vector, where each task writes exclusively to its
// own slot.
//
// Two entry points:
//   * parallel_try_map — the crash-safe primitive. Each task's outcome
//     (value or captured exception) lands in its own TaskResult slot;
//     a throwing task taints its slot instead of std::terminate-ing
//     the process, so a multi-hour sweep finishes with partial results.
//   * parallel_map     — the strict convenience wrapper: unwraps the
//     values and rethrows the first captured exception in the caller.
//
// Results are boxed in TaskResult even for bool-returning callables:
// a plain std::vector<bool> would pack results into shared words and
// concurrent slot writes would race (caught by TSan); the box keeps
// every slot a distinct object.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <latch>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/pool.hpp"

namespace wmn::exp {

// Outcome of one task: exactly one of `value` or `error` is populated.
template <typename T>
struct TaskResult {
  std::optional<T> value;        // engaged iff the task completed
  std::string error;             // what() text of the captured exception
  std::exception_ptr exception;  // same failure, rethrowable

  [[nodiscard]] bool ok() const { return value.has_value(); }
};

// Evaluate fn(0..n-1) on `pool` with at most `width` tasks in flight
// for this call; returns per-task outcomes in index order. Fn is shared
// across workers and must be const-callable concurrently. Exceptions
// thrown by fn are captured per task, never propagated.
template <typename Fn>
auto parallel_try_map(ThreadPool& pool, std::size_t n, unsigned width, Fn fn)
    -> std::vector<TaskResult<std::decay_t<decltype(fn(std::size_t{0}))>>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(!std::is_void_v<Result>, "tasks must return a value");

  std::vector<TaskResult<Result>> results(n);
  if (n == 0) return results;

  const auto run_one = [&results, &fn](std::size_t i) noexcept {
    TaskResult<Result>& slot = results[i];
    try {
      slot.value.emplace(fn(i));
    } catch (const std::exception& e) {
      slot.error = e.what();
      slot.exception = std::current_exception();
    } catch (...) {
      slot.error = "unknown exception";
      slot.exception = std::current_exception();
    }
  };

  if (width <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return results;
  }

  // Drain-task model: k long-lived pool workers race an atomic index
  // instead of queueing n closures. The latch's count_down/wait pair
  // publishes every slot write to the caller.
  const unsigned drains = static_cast<unsigned>(std::min<std::size_t>(
      {static_cast<std::size_t>(width), static_cast<std::size_t>(pool.size()),
       n}));
  std::atomic<std::size_t> next{0};
  std::latch done(drains);
  for (unsigned d = 0; d < drains; ++d) {
    pool.submit([&results, &fn, &next, &done, n, run_one] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        run_one(i);
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

// Strict map over the shared pool: returns values in index order and
// rethrows the first captured exception (by index) in the caller's
// thread — the caller decides the failure policy, not std::terminate.
template <typename Fn>
auto parallel_map(std::size_t n, unsigned threads, Fn fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<Result> out;
  out.reserve(n);
  if (threads <= 1 || n <= 1) {
    // Serial fast path: no pool spin-up for single-threaded callers.
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  auto tried = parallel_try_map(shared_pool(), n, threads, std::move(fn));
  for (TaskResult<Result>& r : tried) {
    if (!r.ok()) std::rethrow_exception(r.exception);
    out.push_back(std::move(*r.value));
  }
  return out;
}

}  // namespace wmn::exp
