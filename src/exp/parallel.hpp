// Replication-level parallelism.
//
// The simulation kernel is single-threaded by design; throughput comes
// from running independent replications concurrently. This follows the
// shared-nothing discipline of the HPC guides: tasks read an immutable
// description (captured by value), build their entire world privately,
// and return results by value. The only shared state is the atomic
// work-stealing index and the pre-sized results vector, where each task
// writes exclusively to its own slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace wmn::exp {

// Number of worker threads to use by default: hardware concurrency,
// floored at 1.
[[nodiscard]] inline unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

// Evaluate fn(0..n-1) across `threads` workers; returns results in
// index order. Fn must be const-callable from multiple threads
// concurrently (it is copied per worker).
template <typename Fn>
auto parallel_map(std::size_t n, unsigned threads, Fn fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(n);
  if (n == 0) return results;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&results, &next, n, fn]() mutable {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        results[i] = fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace wmn::exp
