// Time-series probe: samples network-wide state at a fixed cadence
// during a run, for time-resolved plots (congestion onset, recovery
// after mobility events) and for exporting simulation traces.
//
// Attach before Scenario::run(); read or export after.
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace wmn::exp {

struct TimeSample {
  double t_s = 0.0;
  std::uint64_t delivered_cum = 0;   // packets delivered so far
  std::uint64_t sent_cum = 0;        // packets offered so far
  double mean_busy_ratio = 0.0;      // mean over nodes
  double max_busy_ratio = 0.0;
  double mean_queue_ratio = 0.0;
  double max_queue_ratio = 0.0;
  double mean_nbhd_load = 0.0;       // mean neighbourhood load index
  std::uint64_t control_tx_cum = 0;  // control transmissions so far
};

class TimeseriesProbe {
 public:
  // Samples every `interval` from `start` until the simulation ends.
  TimeseriesProbe(Scenario& scenario, sim::Time interval,
                  sim::Time start = sim::Time::zero());

  TimeseriesProbe(const TimeseriesProbe&) = delete;
  TimeseriesProbe& operator=(const TimeseriesProbe&) = delete;

  [[nodiscard]] const std::vector<TimeSample>& samples() const {
    return samples_;
  }

  // Export as CSV; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  void sample();

  Scenario& scenario_;
  sim::Time interval_;
  std::vector<TimeSample> samples_;
};

}  // namespace wmn::exp
