#include "exp/sweep.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/check.hpp"
#include "exp/journal.hpp"
#include "exp/supervision.hpp"

namespace wmn::exp {

// --------------------------------------------------------------------------
// SweepEngine
// --------------------------------------------------------------------------

SweepEngine::SweepEngine(unsigned threads)
    : threads_(threads == 0 ? 1u : threads) {}

SweepEngine::~SweepEngine() {
  if (journal_file_ != nullptr) std::fclose(journal_file_);
}

std::size_t SweepEngine::add_cell(const ScenarioConfig& cfg,
                                  std::size_t n_reps, std::string label) {
  WMN_CHECK(!ran_, "add_cell after run(): a SweepEngine drains once");
  WMN_CHECK_GT(n_reps, std::size_t{0}, "a sweep cell needs >= 1 replication");
  Cell cell;
  cell.label = std::move(label);
  cell.cfg = cfg;
  cell.digest = config_digest(cfg);
  cell.first = outcomes_.size();
  cell.n_reps = n_reps;
  outcomes_.resize(outcomes_.size() + n_reps);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void SweepEngine::set_rep_deadline(double seconds) {
  WMN_CHECK_GE(seconds, 0.0, "replication deadline cannot be negative");
  rep_deadline_s_ = seconds < 0.0 ? 0.0 : seconds;
}

void SweepEngine::enable_journal(std::string path, bool resume) {
  WMN_CHECK(!ran_, "enable_journal after run()");
  WMN_CHECK(!path.empty(), "journal path must be non-empty");
  journal_path_ = std::move(path);
  journal_enabled_ = true;
  resume_ = resume;
}

RunMetrics SweepEngine::execute(const ScenarioConfig& cfg,
                                sim::CancelToken* cancel) {
  Scenario scenario(cfg);
  if (cancel != nullptr) scenario.set_cancel_token(cancel);
  scenario.run();
  return scenario.metrics();
}

void SweepEngine::load_journal() {
  std::ifstream in(journal_path_);
  if (!in.is_open()) return;  // no journal yet: nothing to resume

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto rec = parse_journal_line(line);
    if (!rec.has_value() || !journal_record_consistent(*rec)) {
      // Damaged (truncated write, bit rot): the slot it would have
      // covered simply re-runs. Warn so an operator sees the data loss.
      std::fprintf(stderr,
                   "[wmn] journal %s line %zu: damaged record skipped "
                   "(its slot will re-run)\n",
                   journal_path_.c_str(), lineno);
      continue;
    }
    // A record that parses cleanly but does not belong to *this* sweep
    // is a category error, not damage: refuse to resume rather than
    // silently blend two experiments' results.
    if (rec->cell >= cells_.size() ||
        rec->rep >= cells_[rec->cell].n_reps) {
      throw std::runtime_error(
          "resume refused: journal '" + journal_path_ + "' line " +
          std::to_string(lineno) +
          " addresses a slot outside this sweep (different experiment?)");
    }
    const Cell& cell = cells_[rec->cell];
    if (rec->cfg_digest != cell.digest) {
      throw std::runtime_error(
          "resume refused: journal '" + journal_path_ + "' line " +
          std::to_string(lineno) +
          " has a different scenario config digest — it belongs to a "
          "different experiment; delete the journal (or point "
          "WMN_RESULTS_DIR elsewhere) to start fresh");
    }
    const std::uint64_t want_seed =
        replication_seed(cell.cfg.seed, rec->cell, rec->rep);
    if (rec->metrics.seed != want_seed) {
      throw std::runtime_error(
          "resume refused: journal '" + journal_path_ + "' line " +
          std::to_string(lineno) + " seed does not match replication_seed(" +
          std::to_string(cell.cfg.seed) + ", " + std::to_string(rec->cell) +
          ", " + std::to_string(rec->rep) + ")");
    }
    RepOutcome& out = outcomes_[cell.first + rec->rep];
    if (out.metrics.has_value()) continue;  // duplicate line: first wins
    out.seed = want_seed;
    out.metrics = std::move(rec->metrics);
    out.kind = FailureKind::kNone;
    out.restored = true;
    out.attempts = 0;
    sweep_events_.fetch_add(
        static_cast<std::uint64_t>(out.metrics->sim_event_count),
        std::memory_order_relaxed);
    ++resumed_;
  }
}

void SweepEngine::journal_append(std::size_t cell_id, std::size_t rep,
                                 const RunMetrics& metrics) {
  JournalRecord rec;
  rec.cell = cell_id;
  rec.rep = rep;
  rec.cfg_digest = cells_[cell_id].digest;
  rec.fingerprint = fingerprint(metrics);
  rec.metrics = metrics;
  const std::string line = journal_line(rec);

  const std::lock_guard<std::mutex> lk(journal_mu_);
  if (journal_file_ == nullptr) return;
  std::fputs(line.c_str(), journal_file_);
  std::fputc('\n', journal_file_);
  // Flush per record: a killed process keeps every completed line.
  std::fflush(journal_file_);
}

void SweepEngine::run_slot(std::size_t cell_id, std::size_t rep) {
  const Cell& cell = cells_[cell_id];
  RepOutcome& out = outcomes_[cell.first + rep];
  ScenarioConfig cfg = cell.cfg;  // private copy per task
  cfg.seed = replication_seed(cell.cfg.seed, cell_id, rep);
  out.seed = cfg.seed;

  const unsigned max_attempts = 1 + retry_limit_;
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    // Cumulative sweep budget: once spent, remaining slots are skipped
    // deterministically (checked between attempts, never mid-run).
    if (sweep_event_budget_ != 0 &&
        sweep_events_.load(std::memory_order_relaxed) >= sweep_event_budget_) {
      out.kind = FailureKind::kEventBudgetExhausted;
      out.error = "sweep event budget exhausted before this slot ran";
      out.attempts = attempt - 1;
      return;
    }
    out.attempts = attempt;

    FailureKind kind = FailureKind::kNone;
    std::string error;
    std::optional<RunMetrics> metrics;
    sim::CancelToken token;
    Watchdog::Lease lease;
    if (rep_deadline_s_ > 0.0) {
      lease = shared_pool().watchdog().watch(token, rep_deadline_s_);
    }
    try {
      metrics =
          execute(cfg, rep_deadline_s_ > 0.0 ? &token : nullptr);
    } catch (const RunAborted& e) {
      kind = e.kind();
      error = e.what();
    } catch (const std::bad_alloc& e) {
      kind = FailureKind::kBadAlloc;
      error = e.what();
    } catch (const std::exception& e) {
      kind = FailureKind::kException;
      error = e.what();
    } catch (...) {
      kind = FailureKind::kException;
      error = "unknown exception";
    }
    lease.release();

    if (kind == FailureKind::kNone && metrics.has_value() &&
        metrics->check_violations > 0) {
      // The run finished but tripped invariants under kLogAndCount:
      // keep the numbers for inspection, exclude them from statistics.
      std::ostringstream oss;
      oss << metrics->check_violations
          << " invariant violation(s) (WMN_CHECK, log-and-count)";
      kind = FailureKind::kCheckTaint;
      error = oss.str();
    }

    if (kind == FailureKind::kNone) {
      out.metrics = std::move(metrics);
      out.kind = FailureKind::kNone;
      out.error.clear();
      sweep_events_.fetch_add(
          static_cast<std::uint64_t>(out.metrics->sim_event_count),
          std::memory_order_relaxed);
      if (journal_enabled_) journal_append(cell_id, rep, *out.metrics);
      return;
    }

    out.kind = kind;
    out.error = error;
    if (kind == FailureKind::kCheckTaint) out.metrics = std::move(metrics);
    if (!failure_is_transient(kind) || attempt == max_attempts) return;
    // Transient failure with attempts left: same seed, fresh token.
  }
}

void SweepEngine::run() {
  WMN_CHECK(!ran_, "SweepEngine::run() called twice");
  ran_ = true;

  if (journal_enabled_) {
    if (resume_) load_journal();
    journal_file_ = std::fopen(journal_path_.c_str(), "a+");
    if (journal_file_ == nullptr) {
      throw std::runtime_error("cannot open sweep journal for append: " +
                               journal_path_);
    }
    // A crash can leave a torn final line with no newline; terminate it
    // now or the first record appended below would concatenate onto the
    // damage and be lost too.
    if (std::fseek(journal_file_, -1, SEEK_END) == 0) {
      if (std::fgetc(journal_file_) != '\n') std::fputc('\n', journal_file_);
    }
  }

  // Flatten the (cell, rep) pairs still owed an execution so the pool
  // sees one uniform task list. Journal-restored slots are already
  // final and never re-run — that is the whole point of resume.
  struct Task {
    std::size_t cell;
    std::size_t rep;
  };
  std::vector<Task> tasks;
  tasks.reserve(outcomes_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    for (std::size_t r = 0; r < cells_[c].n_reps; ++r) {
      if (!outcomes_[cells_[c].first + r].restored) tasks.push_back({c, r});
    }
  }

  // Each task writes its own outcomes_ slot exclusively; run_slot
  // contains every failure, so the boxed result is always `true` and
  // only the drain machinery of parallel_try_map is used.
  (void)parallel_try_map(shared_pool(), tasks.size(), threads_,
                         [this, &tasks](std::size_t t) {
                           run_slot(tasks[t].cell, tasks[t].rep);
                           return true;
                         });

  if (journal_file_ != nullptr) {
    std::fclose(journal_file_);
    journal_file_ = nullptr;
  }
}

std::span<const RepOutcome> SweepEngine::cell(std::size_t id) const {
  WMN_CHECK(ran_, "cell() before run(): results not computed yet");
  WMN_CHECK_LT(id, cells_.size(), "cell id out of range");
  return {outcomes_.data() + cells_[id].first, cells_[id].n_reps};
}

std::vector<RunMetrics> SweepEngine::cell_metrics(std::size_t id) const {
  std::vector<RunMetrics> out;
  for (const RepOutcome& rep : cell(id)) {
    if (rep.ok()) out.push_back(*rep.metrics);
  }
  return out;
}

std::size_t SweepEngine::task_count() const { return outcomes_.size(); }

std::size_t SweepEngine::failed_count() const {
  WMN_CHECK(ran_, "failed_count() before run()");
  std::size_t n = 0;
  for (const RepOutcome& rep : outcomes_) {
    if (!rep.ok()) ++n;
  }
  return n;
}

FailureCounts SweepEngine::failure_counts() const {
  WMN_CHECK(ran_, "failure_counts() before run()");
  FailureCounts counts{};
  for (const RepOutcome& rep : outcomes_) {
    counts[static_cast<std::size_t>(rep.kind)]++;
  }
  return counts;
}

std::string SweepEngine::failure_report() const {
  WMN_CHECK(ran_, "failure_report() before run()");
  std::ostringstream oss;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    for (std::size_t r = 0; r < cell.n_reps; ++r) {
      const RepOutcome& rep = outcomes_[cell.first + r];
      if (rep.ok()) continue;
      oss << "  cell " << c;
      if (!cell.label.empty()) oss << " (" << cell.label << ")";
      oss << " rep " << r << " seed " << rep.seed << " ["
          << failure_kind_name(rep.kind) << "]";
      if (rep.attempts > 1) oss << " after " << rep.attempts << " attempts";
      oss << ": " << rep.error << "\n";
    }
  }
  return oss.str();
}

// --------------------------------------------------------------------------
// Replication + aggregation helpers
// --------------------------------------------------------------------------

std::vector<RunMetrics> run_replications(const ScenarioConfig& base,
                                         std::size_t n_reps, unsigned threads) {
  SweepEngine engine(threads);
  const std::size_t id = engine.add_cell(base, n_reps);
  engine.run();
  if (engine.failed_count() > 0) {
    throw std::runtime_error("run_replications: " +
                             std::to_string(engine.failed_count()) +
                             " replication(s) failed:\n" +
                             engine.failure_report());
  }
  return engine.cell_metrics(id);
}

std::vector<double> extract(std::span<const RunMetrics> reps,
                            const MetricFn& fn) {
  std::vector<double> out;
  out.reserve(reps.size());
  for (const RunMetrics& r : reps) out.push_back(fn(r));
  return out;
}

stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                             const MetricFn& fn) {
  const std::vector<double> xs = extract(reps, fn);
  return stats::mean_ci_95(xs);
}

std::string ci_str(std::span<const RunMetrics> reps, const MetricFn& fn,
                   int precision) {
  // Every replication of the cell failed: say so instead of printing a
  // fabricated zero.
  if (reps.empty()) return "n/a";
  const auto c = ci(reps, fn);
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << c.mean;
  // With two samples the t(1)=12.7 multiplier makes the half-width
  // uninformative noise; report it from three replications up.
  if (reps.size() >= 3) oss << " +-" << c.half_width;
  return oss.str();
}

// --------------------------------------------------------------------------
// Environment knobs
// --------------------------------------------------------------------------

namespace {

// Parse a positive integer environment value. Rejects (with a stderr
// warning) anything but a fully-consumed, in-range, positive number:
// "abc", "0", "-3", "3x", "" all fall back to the caller's default.
std::optional<unsigned long long> env_positive(const char* name,
                                               const char* value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  const bool consumed = end != value && *end == '\0';
  // strtoull silently negates "-3" into a huge value; reject any sign.
  if (!consumed || errno == ERANGE || v == 0 ||
      std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr,
                 "[wmn] %s='%s' is not a positive integer; using default\n",
                 name, value);
    return std::nullopt;
  }
  return v;
}

// Like env_positive but zero is a legal value (e.g. WMN_RETRIES=0
// means "never retry").
std::optional<unsigned long long> env_nonnegative(const char* name,
                                                  const char* value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  const bool consumed = end != value && *end == '\0';
  if (!consumed || errno == ERANGE || std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr,
                 "[wmn] %s='%s' is not a non-negative integer; using default\n",
                 name, value);
    return std::nullopt;
  }
  return v;
}

std::optional<double> env_positive_double(const char* name,
                                          const char* value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  const bool consumed = end != value && *end == '\0';
  if (!consumed || errno == ERANGE || !(v > 0.0)) {
    std::fprintf(stderr,
                 "[wmn] %s='%s' is not a positive number; using default\n",
                 name, value);
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::size_t env_reps(std::size_t default_reps) {
  // Operator knob read once at sweep setup, before any worker spawns.
  // It changes how many replications run, never the per-replication
  // seed derivation, so results stay a pure function of (config, seed).
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_REPS"); s != nullptr) {
    if (const auto v = env_positive("WMN_REPS", s); v.has_value()) {
      return static_cast<std::size_t>(*v);
    }
  }
  return default_reps;
}

unsigned env_threads() {
  // Same contract as WMN_REPS: thread count is bit-invisible in the
  // results (pool-vs-serial fingerprint test pins this).
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_THREADS"); s != nullptr) {
    if (const auto v = env_positive("WMN_THREADS", s); v.has_value()) {
      if (*v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr,
                     "[wmn] WMN_THREADS=%s exceeds the representable range; "
                     "using default\n",
                     s);
        return default_thread_count();
      }
      return static_cast<unsigned>(*v);
    }
  }
  return default_thread_count();
}

void apply_quick_mode(ScenarioConfig& cfg) {
  // Explicit operator opt-in that edits the config itself; anything it
  // changes is visible in the config the fingerprint derives from.
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (std::getenv("WMN_QUICK") != nullptr) {
    cfg.traffic_time = sim::Time::seconds(15.0);
  }
}

void apply_supervision_env(SweepEngine& sweep, const std::string& journal_path,
                           bool force_resume) {
  // All four knobs follow the WMN_REPS contract: read once at setup,
  // steering only *which* slots execute (or whether a hung one is
  // abandoned) — never what an executed slot computes.
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_DEADLINE_S"); s != nullptr) {
    if (const auto v = env_positive_double("WMN_DEADLINE_S", s);
        v.has_value()) {
      sweep.set_rep_deadline(*v);
    }
  }
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_RETRIES"); s != nullptr) {
    if (const auto v = env_nonnegative("WMN_RETRIES", s); v.has_value()) {
      sweep.set_retry_limit(static_cast<unsigned>(
          std::min<unsigned long long>(*v, 16)));  // sanity ceiling
    }
  }
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_SWEEP_EVENT_BUDGET"); s != nullptr) {
    if (const auto v = env_positive("WMN_SWEEP_EVENT_BUDGET", s);
        v.has_value()) {
      sweep.set_sweep_event_budget(*v);
    }
  }
  if (!journal_path.empty()) {
    // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
    const bool resume = force_resume || std::getenv("WMN_RESUME") != nullptr;
    sweep.enable_journal(journal_path, resume);
  }
}

}  // namespace wmn::exp
