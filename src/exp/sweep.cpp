#include "exp/sweep.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/check.hpp"

namespace wmn::exp {

// --------------------------------------------------------------------------
// SweepEngine
// --------------------------------------------------------------------------

SweepEngine::SweepEngine(unsigned threads)
    : threads_(threads == 0 ? 1u : threads) {}

std::size_t SweepEngine::add_cell(const ScenarioConfig& cfg,
                                  std::size_t n_reps, std::string label) {
  WMN_CHECK(!ran_, "add_cell after run(): a SweepEngine drains once");
  WMN_CHECK_GT(n_reps, std::size_t{0}, "a sweep cell needs >= 1 replication");
  Cell cell;
  cell.label = std::move(label);
  cell.cfg = cfg;
  cell.first = outcomes_.size();
  cell.n_reps = n_reps;
  outcomes_.resize(outcomes_.size() + n_reps);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

RunMetrics SweepEngine::execute(const ScenarioConfig& cfg) {
  Scenario scenario(cfg);
  scenario.run();
  return scenario.metrics();
}

void SweepEngine::run() {
  WMN_CHECK(!ran_, "SweepEngine::run() called twice");
  ran_ = true;

  // Flatten (cell, rep) pairs so the pool sees one uniform task list.
  struct Task {
    std::size_t cell;
    std::size_t rep;
  };
  std::vector<Task> tasks;
  tasks.reserve(outcomes_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    for (std::size_t r = 0; r < cells_[c].n_reps; ++r) tasks.push_back({c, r});
  }

  auto tried = parallel_try_map(
      shared_pool(), tasks.size(), threads_, [this, &tasks](std::size_t t) {
        const Task& tk = tasks[t];
        const Cell& cell = cells_[tk.cell];
        ScenarioConfig cfg = cell.cfg;  // private copy per task
        cfg.seed = replication_seed(cell.cfg.seed, tk.cell, tk.rep);
        return execute(cfg);
      });

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Task& tk = tasks[t];
    RepOutcome& out = outcomes_[cells_[tk.cell].first + tk.rep];
    out.seed = replication_seed(cells_[tk.cell].cfg.seed, tk.cell, tk.rep);
    if (!tried[t].ok()) {
      out.error = tried[t].error;
      continue;
    }
    out.metrics = std::move(*tried[t].value);
    if (out.metrics->check_violations > 0) {
      // The run finished but tripped invariants under kLogAndCount:
      // keep the numbers for inspection, exclude them from statistics.
      std::ostringstream oss;
      oss << out.metrics->check_violations
          << " invariant violation(s) (WMN_CHECK, log-and-count)";
      out.error = oss.str();
    }
  }
}

std::span<const RepOutcome> SweepEngine::cell(std::size_t id) const {
  WMN_CHECK(ran_, "cell() before run(): results not computed yet");
  WMN_CHECK_LT(id, cells_.size(), "cell id out of range");
  return {outcomes_.data() + cells_[id].first, cells_[id].n_reps};
}

std::vector<RunMetrics> SweepEngine::cell_metrics(std::size_t id) const {
  std::vector<RunMetrics> out;
  for (const RepOutcome& rep : cell(id)) {
    if (rep.ok()) out.push_back(*rep.metrics);
  }
  return out;
}

std::size_t SweepEngine::task_count() const { return outcomes_.size(); }

std::size_t SweepEngine::failed_count() const {
  WMN_CHECK(ran_, "failed_count() before run()");
  std::size_t n = 0;
  for (const RepOutcome& rep : outcomes_) {
    if (!rep.ok()) ++n;
  }
  return n;
}

std::string SweepEngine::failure_report() const {
  WMN_CHECK(ran_, "failure_report() before run()");
  std::ostringstream oss;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    for (std::size_t r = 0; r < cell.n_reps; ++r) {
      const RepOutcome& rep = outcomes_[cell.first + r];
      if (rep.ok()) continue;
      oss << "  cell " << c;
      if (!cell.label.empty()) oss << " (" << cell.label << ")";
      oss << " rep " << r << " seed " << rep.seed << ": " << rep.error << "\n";
    }
  }
  return oss.str();
}

// --------------------------------------------------------------------------
// Replication + aggregation helpers
// --------------------------------------------------------------------------

std::vector<RunMetrics> run_replications(const ScenarioConfig& base,
                                         std::size_t n_reps, unsigned threads) {
  SweepEngine engine(threads);
  const std::size_t id = engine.add_cell(base, n_reps);
  engine.run();
  if (engine.failed_count() > 0) {
    throw std::runtime_error("run_replications: " +
                             std::to_string(engine.failed_count()) +
                             " replication(s) failed:\n" +
                             engine.failure_report());
  }
  return engine.cell_metrics(id);
}

std::vector<double> extract(std::span<const RunMetrics> reps,
                            const MetricFn& fn) {
  std::vector<double> out;
  out.reserve(reps.size());
  for (const RunMetrics& r : reps) out.push_back(fn(r));
  return out;
}

stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                             const MetricFn& fn) {
  const std::vector<double> xs = extract(reps, fn);
  return stats::mean_ci_95(xs);
}

std::string ci_str(std::span<const RunMetrics> reps, const MetricFn& fn,
                   int precision) {
  // Every replication of the cell failed: say so instead of printing a
  // fabricated zero.
  if (reps.empty()) return "n/a";
  const auto c = ci(reps, fn);
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << c.mean;
  // With two samples the t(1)=12.7 multiplier makes the half-width
  // uninformative noise; report it from three replications up.
  if (reps.size() >= 3) oss << " +-" << c.half_width;
  return oss.str();
}

// --------------------------------------------------------------------------
// Environment knobs
// --------------------------------------------------------------------------

namespace {

// Parse a positive integer environment value. Rejects (with a stderr
// warning) anything but a fully-consumed, in-range, positive number:
// "abc", "0", "-3", "3x", "" all fall back to the caller's default.
std::optional<unsigned long long> env_positive(const char* name,
                                               const char* value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  const bool consumed = end != value && *end == '\0';
  // strtoull silently negates "-3" into a huge value; reject any sign.
  if (!consumed || errno == ERANGE || v == 0 ||
      std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr,
                 "[wmn] %s='%s' is not a positive integer; using default\n",
                 name, value);
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::size_t env_reps(std::size_t default_reps) {
  // Operator knob read once at sweep setup, before any worker spawns.
  // It changes how many replications run, never the per-replication
  // seed derivation, so results stay a pure function of (config, seed).
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_REPS"); s != nullptr) {
    if (const auto v = env_positive("WMN_REPS", s); v.has_value()) {
      return static_cast<std::size_t>(*v);
    }
  }
  return default_reps;
}

unsigned env_threads() {
  // Same contract as WMN_REPS: thread count is bit-invisible in the
  // results (pool-vs-serial fingerprint test pins this).
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (const char* s = std::getenv("WMN_THREADS"); s != nullptr) {
    if (const auto v = env_positive("WMN_THREADS", s); v.has_value()) {
      if (*v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr,
                     "[wmn] WMN_THREADS=%s exceeds the representable range; "
                     "using default\n",
                     s);
        return default_thread_count();
      }
      return static_cast<unsigned>(*v);
    }
  }
  return default_thread_count();
}

void apply_quick_mode(ScenarioConfig& cfg) {
  // Explicit operator opt-in that edits the config itself; anything it
  // changes is visible in the config the fingerprint derives from.
  // NOLINTNEXTLINE(wmn-nondeterminism,concurrency-mt-unsafe)
  if (std::getenv("WMN_QUICK") != nullptr) {
    cfg.traffic_time = sim::Time::seconds(15.0);
  }
}

}  // namespace wmn::exp
