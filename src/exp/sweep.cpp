#include "exp/sweep.hpp"

#include <cstdlib>
#include <sstream>

namespace wmn::exp {

std::vector<RunMetrics> run_replications(const ScenarioConfig& base,
                                         std::size_t n_reps, unsigned threads) {
  return parallel_map(n_reps, threads, [base](std::size_t i) {
    ScenarioConfig cfg = base;  // private copy per task
    cfg.seed = base.seed + i;
    Scenario scenario(cfg);
    scenario.run();
    return scenario.metrics();
  });
}

std::vector<double> extract(std::span<const RunMetrics> reps,
                            const MetricFn& fn) {
  std::vector<double> out;
  out.reserve(reps.size());
  for (const RunMetrics& r : reps) out.push_back(fn(r));
  return out;
}

stats::ConfidenceInterval ci(std::span<const RunMetrics> reps,
                             const MetricFn& fn) {
  const std::vector<double> xs = extract(reps, fn);
  return stats::mean_ci_95(xs);
}

std::string ci_str(std::span<const RunMetrics> reps, const MetricFn& fn,
                   int precision) {
  const auto c = ci(reps, fn);
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << c.mean;
  // With two samples the t(1)=12.7 multiplier makes the half-width
  // uninformative noise; report it from three replications up.
  if (reps.size() >= 3) oss << " +-" << c.half_width;
  return oss.str();
}

std::size_t env_reps(std::size_t default_reps) {
  if (const char* s = std::getenv("WMN_REPS"); s != nullptr) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_reps;
}

unsigned env_threads() {
  if (const char* s = std::getenv("WMN_THREADS"); s != nullptr) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return default_thread_count();
}

void apply_quick_mode(ScenarioConfig& cfg) {
  if (std::getenv("WMN_QUICK") != nullptr) {
    cfg.traffic_time = sim::Time::seconds(15.0);
  }
}

}  // namespace wmn::exp
