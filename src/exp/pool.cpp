#include "exp/pool.hpp"

#include <cstdio>
#include <exception>
#include <utility>

#include "core/check.hpp"
#include "exp/sweep.hpp"

namespace wmn::exp {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1u : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  WMN_CHECK_NOTNULL(task, "ThreadPool::submit needs a callable task");
  {
    const std::lock_guard<std::mutex> lk(mu_);
    WMN_CHECK(!stop_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lk.unlock();
    try {
      task();
    } catch (const std::exception& e) {
      // Contract violation: containment belongs in parallel_try_map.
      // Last resort — report and keep the worker alive; terminating
      // here would take a whole sweep down with it.
      std::fprintf(stderr,
                   "[wmn] ThreadPool: task escaped with exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "[wmn] ThreadPool: task escaped with unknown exception\n");
    }
    lk.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool(env_threads());
  return pool;
}

}  // namespace wmn::exp
