// Network-wide metrics of one simulation run — the quantities the
// paper's figures plot.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fingerprint.hpp"

namespace wmn::exp {

struct RunMetrics {
  // --- end-to-end data plane -------------------------------------------
  std::uint64_t data_sent = 0;       // application packets offered
  std::uint64_t data_delivered = 0;  // reached their destination
  double pdr = 0.0;                  // delivered / sent
  double mean_delay_ms = 0.0;        // over delivered packets
  double mean_jitter_ms = 0.0;       // mean |successive delay diff|
  double throughput_kbps = 0.0;      // delivered payload over traffic time

  // --- control plane (network totals, transmissions) ---------------------
  std::uint64_t rreq_tx = 0;   // RREQ broadcasts (originated + forwarded)
  std::uint64_t rrep_tx = 0;
  std::uint64_t rerr_tx = 0;
  std::uint64_t hello_tx = 0;
  std::uint64_t control_tx = 0;
  std::uint64_t rreq_suppressed = 0;

  std::uint64_t discoveries = 0;
  std::uint64_t discoveries_failed = 0;
  double rreq_per_discovery = 0.0;  // RREQ transmissions per discovery
  // Normalized routing load: control transmissions per delivered packet.
  double nrl = 0.0;
  // Same but HELLO excluded (isolates the on-demand overhead).
  double nrl_on_demand = 0.0;

  // --- MAC / PHY health ----------------------------------------------------
  std::uint64_t mac_queue_drops = 0;
  std::uint64_t mac_retry_drops = 0;
  std::uint64_t mac_retries = 0;
  std::uint64_t phy_collisions = 0;  // frames locked then clobbered (SINR)
  double mean_busy_ratio = 0.0;      // mean of final per-node busy EWMAs

  // --- forwarding-load distribution ----------------------------------------
  std::vector<double> per_node_forwarded;  // data frames forwarded per node
  // Fairness over the *active* forwarding set (nodes that forwarded at
  // least one data frame); including the idle majority would reward
  // protocols that deliver less.
  std::uint64_t forwarding_active_nodes = 0;
  double forwarding_jain = 1.0;
  double forwarding_peak_to_mean = 1.0;

  // --- gateway-aggregation workload (populated for kGateway traffic) ----
  // Per-gateway delivered packets, in gateway discovery order; fairness
  // over them is the F11 headline: AODV-BF collapsing at one hotspot
  // shows up as gateway_jain falling toward 1/K while the variance
  // explodes.
  std::uint64_t gateway_count = 0;
  std::vector<double> per_gateway_delivered;
  double gateway_jain = 1.0;
  double gateway_load_variance = 0.0;

  // --- session workload (populated for TrafficSpec::Model::kSessions) ---
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  // Arrivals refused by the per-node concurrency cap; nonzero means the
  // offered-load knob exceeded what the cap admits — report it, never
  // silently truncate the workload.
  std::uint64_t sessions_rejected = 0;

  // --- energy ------------------------------------------------------------
  double total_energy_j = 0.0;        // network-wide radio energy
  double mean_node_energy_j = 0.0;
  // Communication efficiency: millijoules per delivered payload kilobit.
  double energy_mj_per_kbit = 0.0;

  // --- path properties --------------------------------------------------
  // Mean hop count experienced by delivered packets, estimated as
  // 1 + total forwards / total deliveries.
  double avg_path_hops = 0.0;

  // --- resilience (populated when the scenario ran a FaultPlan) --------
  bool fault_enabled = false;
  std::uint64_t fault_crashes = 0;
  std::uint64_t fault_rejoins = 0;
  std::uint64_t fault_blackouts = 0;
  double fault_downtime_s = 0.0;     // summed realized node downtime
  std::uint64_t sent_during_outage = 0;
  std::uint64_t delivered_during_outage = 0;
  double pdr_during_outage = 0.0;    // over packets sent inside windows
  double pdr_outside_outage = 0.0;
  std::uint64_t local_repairs_attempted = 0;
  std::uint64_t local_repairs_succeeded = 0;
  std::uint64_t route_recoveries = 0;
  double route_recovery_mean_ms = 0.0;  // break -> reinstalled route
  std::uint64_t route_recoveries_abandoned = 0;
  // Flows that offered traffic but died for good: nothing ever arrived,
  // or deliveries stopped well before the traffic window closed.
  std::uint64_t flows_stranded = 0;

  // --- bookkeeping -----------------------------------------------------
  std::uint64_t seed = 0;
  double sim_event_count = 0.0;
  double wall_seconds = 0.0;

  // Invariant violations observed during this run under
  // core::CheckPolicy::kLogAndCount (always 0 under kAbort, which
  // terminates instead). Nonzero means the run's numbers are suspect.
  std::uint64_t check_violations = 0;
};

// Digest of everything a run produced, for the determinism contract:
// same config + same seed must yield the same digest, bit for bit.
// Wall-clock time and the violation counter are deliberately excluded
// (host-dependent, respectively global-state-dependent).
[[nodiscard]] inline std::uint64_t fingerprint(const RunMetrics& m) {
  sim::Fingerprint fp;
  fp.mix(m.seed);
  fp.mix(m.sim_event_count);
  fp.mix(m.data_sent);
  fp.mix(m.data_delivered);
  fp.mix(m.pdr);
  fp.mix(m.mean_delay_ms);
  fp.mix(m.mean_jitter_ms);
  fp.mix(m.throughput_kbps);
  fp.mix(m.rreq_tx);
  fp.mix(m.rrep_tx);
  fp.mix(m.rerr_tx);
  fp.mix(m.hello_tx);
  fp.mix(m.control_tx);
  fp.mix(m.rreq_suppressed);
  fp.mix(m.discoveries);
  fp.mix(m.discoveries_failed);
  fp.mix(m.nrl);
  fp.mix(m.mac_queue_drops);
  fp.mix(m.mac_retry_drops);
  fp.mix(m.mac_retries);
  fp.mix(m.phy_collisions);
  fp.mix(m.mean_busy_ratio);
  fp.mix(m.forwarding_active_nodes);
  fp.mix(m.forwarding_jain);
  fp.mix(m.forwarding_peak_to_mean);
  fp.mix(m.total_energy_j);
  fp.mix(m.energy_mj_per_kbit);
  fp.mix(m.avg_path_hops);
  fp.mix(static_cast<std::uint64_t>(m.per_node_forwarded.size()));
  for (const double f : m.per_node_forwarded) fp.mix(f);
  // Workload-family metrics join the digest only when their traffic
  // pattern produced them, mirroring the fault-block convention below:
  // runs without gateways / sessions keep the digest they had before
  // the F11 workload family existed.
  if (m.gateway_count > 0) {
    fp.mix(std::uint64_t{2});
    fp.mix(m.gateway_count);
    fp.mix(static_cast<std::uint64_t>(m.per_gateway_delivered.size()));
    for (const double g : m.per_gateway_delivered) fp.mix(g);
    fp.mix(m.gateway_jain);
    fp.mix(m.gateway_load_variance);
  }
  if (m.sessions_started > 0 || m.sessions_rejected > 0) {
    fp.mix(std::uint64_t{3});
    fp.mix(m.sessions_started);
    fp.mix(m.sessions_completed);
    fp.mix(m.sessions_rejected);
  }
  // Resilience metrics join the digest only for fault-enabled runs:
  // with an empty FaultPlan the digest must stay bit-identical to what
  // the seed produced before the fault layer existed.
  if (m.fault_enabled) {
    fp.mix(std::uint64_t{1});
    fp.mix(m.fault_crashes);
    fp.mix(m.fault_rejoins);
    fp.mix(m.fault_blackouts);
    fp.mix(m.fault_downtime_s);
    fp.mix(m.sent_during_outage);
    fp.mix(m.delivered_during_outage);
    fp.mix(m.pdr_during_outage);
    fp.mix(m.pdr_outside_outage);
    fp.mix(m.local_repairs_attempted);
    fp.mix(m.local_repairs_succeeded);
    fp.mix(m.route_recoveries);
    fp.mix(m.route_recovery_mean_ms);
    fp.mix(m.route_recoveries_abandoned);
    fp.mix(m.flows_stranded);
  }
  return fp.digest();
}

}  // namespace wmn::exp
