// Network-wide metrics of one simulation run — the quantities the
// paper's figures plot.
#pragma once

#include <cstdint>
#include <vector>

namespace wmn::exp {

struct RunMetrics {
  // --- end-to-end data plane -------------------------------------------
  std::uint64_t data_sent = 0;       // application packets offered
  std::uint64_t data_delivered = 0;  // reached their destination
  double pdr = 0.0;                  // delivered / sent
  double mean_delay_ms = 0.0;        // over delivered packets
  double mean_jitter_ms = 0.0;       // mean |successive delay diff|
  double throughput_kbps = 0.0;      // delivered payload over traffic time

  // --- control plane (network totals, transmissions) ---------------------
  std::uint64_t rreq_tx = 0;   // RREQ broadcasts (originated + forwarded)
  std::uint64_t rrep_tx = 0;
  std::uint64_t rerr_tx = 0;
  std::uint64_t hello_tx = 0;
  std::uint64_t control_tx = 0;
  std::uint64_t rreq_suppressed = 0;

  std::uint64_t discoveries = 0;
  std::uint64_t discoveries_failed = 0;
  double rreq_per_discovery = 0.0;  // RREQ transmissions per discovery
  // Normalized routing load: control transmissions per delivered packet.
  double nrl = 0.0;
  // Same but HELLO excluded (isolates the on-demand overhead).
  double nrl_on_demand = 0.0;

  // --- MAC / PHY health ----------------------------------------------------
  std::uint64_t mac_queue_drops = 0;
  std::uint64_t mac_retry_drops = 0;
  std::uint64_t mac_retries = 0;
  std::uint64_t phy_collisions = 0;  // frames locked then clobbered (SINR)
  double mean_busy_ratio = 0.0;      // mean of final per-node busy EWMAs

  // --- forwarding-load distribution ----------------------------------------
  std::vector<double> per_node_forwarded;  // data frames forwarded per node
  // Fairness over the *active* forwarding set (nodes that forwarded at
  // least one data frame); including the idle majority would reward
  // protocols that deliver less.
  std::uint64_t forwarding_active_nodes = 0;
  double forwarding_jain = 1.0;
  double forwarding_peak_to_mean = 1.0;

  // --- energy ------------------------------------------------------------
  double total_energy_j = 0.0;        // network-wide radio energy
  double mean_node_energy_j = 0.0;
  // Communication efficiency: millijoules per delivered payload kilobit.
  double energy_mj_per_kbit = 0.0;

  // --- path properties --------------------------------------------------
  // Mean hop count experienced by delivered packets, estimated as
  // 1 + total forwards / total deliveries.
  double avg_path_hops = 0.0;

  // --- bookkeeping -----------------------------------------------------
  std::uint64_t seed = 0;
  double sim_event_count = 0.0;
  double wall_seconds = 0.0;
};

}  // namespace wmn::exp
