#include "exp/timeseries.hpp"

#include <algorithm>
#include <fstream>

namespace wmn::exp {

TimeseriesProbe::TimeseriesProbe(Scenario& scenario, sim::Time interval,
                                 sim::Time start)
    : scenario_(scenario), interval_(interval) {
  scenario_.simulator().schedule_at(start, [this] { sample(); });
}

void TimeseriesProbe::sample() {
  TimeSample s;
  s.t_s = scenario_.simulator().now().to_seconds();
  s.delivered_cum = scenario_.flows().total_delivered();
  s.sent_cum = scenario_.flows().total_sent();

  const std::size_t n = scenario_.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const double busy = scenario_.node_mac(i).busy_ratio();
    const double queue = scenario_.node_mac(i).queue_ratio();
    s.mean_busy_ratio += busy;
    s.max_busy_ratio = std::max(s.max_busy_ratio, busy);
    s.mean_queue_ratio += queue;
    s.max_queue_ratio = std::max(s.max_queue_ratio, queue);
    s.mean_nbhd_load += scenario_.agent(i).neighbourhood_load();

    const auto& rc = scenario_.agent(i).counters();
    s.control_tx_cum += rc.rreq_originated + rc.rreq_forwarded +
                        rc.rrep_originated + rc.rrep_intermediate +
                        rc.rrep_forwarded + rc.rerr_sent + rc.hello_sent;
  }
  const double dn = static_cast<double>(n);
  s.mean_busy_ratio /= dn;
  s.mean_queue_ratio /= dn;
  s.mean_nbhd_load /= dn;
  samples_.push_back(s);

  scenario_.simulator().schedule(interval_, [this] { sample(); });
}

bool TimeseriesProbe::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "t_s,delivered_cum,sent_cum,mean_busy,max_busy,mean_queue,max_queue,"
       "mean_nbhd_load,control_tx_cum\n";
  for (const TimeSample& s : samples_) {
    f << s.t_s << ',' << s.delivered_cum << ',' << s.sent_cum << ','
      << s.mean_busy_ratio << ',' << s.max_busy_ratio << ','
      << s.mean_queue_ratio << ',' << s.max_queue_ratio << ','
      << s.mean_nbhd_load << ',' << s.control_tx_cum << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace wmn::exp
