// Structured failure taxonomy for supervised replications.
//
// A replication slot that does not produce clean metrics fails with
// exactly one FailureKind, machine-checkable by the harness, CI, and
// the journal — never a free-text-only error string. The split that
// matters operationally is transient vs deterministic:
//
//   * deterministic kinds (kException, kCheckTaint,
//     kEventBudgetExhausted) are pure functions of (config, seed) —
//     retrying replays the identical failure, so the sweep engine never
//     does;
//   * transient kinds (kDeadlineExceeded, kBadAlloc) depend on host
//     state — a noisy-neighbour stall or memory pressure — and are
//     retried with the *same seed* up to the engine's retry limit.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wmn::exp {

enum class FailureKind : std::uint8_t {
  kNone = 0,                  // slot completed clean
  kException,                 // replication body threw
  kCheckTaint,                // finished, but WMN_CHECK violations counted
  kDeadlineExceeded,          // watchdog cancelled a hung replication
  kEventBudgetExhausted,      // deterministic event budget tripped
  kBadAlloc,                  // allocation failure (std::bad_alloc)
};

inline constexpr std::size_t kFailureKindCount = 6;

[[nodiscard]] constexpr const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kException: return "exception";
    case FailureKind::kCheckTaint: return "check_taint";
    case FailureKind::kDeadlineExceeded: return "deadline_exceeded";
    case FailureKind::kEventBudgetExhausted: return "event_budget_exhausted";
    case FailureKind::kBadAlloc: return "bad_alloc";
  }
  return "unknown";
}

// Transient failures may pass on a retry with the same seed;
// deterministic ones cannot (same config + same seed = same trace).
[[nodiscard]] constexpr bool failure_is_transient(FailureKind k) {
  return k == FailureKind::kDeadlineExceeded || k == FailureKind::kBadAlloc;
}

// Per-kind slot counts, indexed by FailureKind's underlying value.
using FailureCounts = std::array<std::size_t, kFailureKindCount>;

// Thrown by Scenario::run() when the simulator aborted instead of
// completing: the run's metrics do not exist (a truncated trace is not
// a measurement), only the structured reason does.
class RunAborted : public std::runtime_error {
 public:
  RunAborted(FailureKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] FailureKind kind() const { return kind_; }

 private:
  FailureKind kind_;
};

}  // namespace wmn::exp
