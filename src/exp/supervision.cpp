#include "exp/supervision.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/check.hpp"

namespace wmn::exp {

// wmn-nondeterminism confinement note: every clock read in this file
// feeds a *supervision* decision — "has this replication been running
// longer than its wall deadline?" — and nothing else. A run the
// watchdog never cancels is bit-identical to an unsupervised run; a
// cancelled run is discarded as kDeadlineExceeded, not measured. See
// docs/TOOLING.md, "Run supervision & resume".

Watchdog::Lease::Lease(Lease&& other) noexcept
    : dog_(std::exchange(other.dog_, nullptr)),
      id_(std::exchange(other.id_, 0)) {}

Watchdog::Lease& Watchdog::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    dog_ = std::exchange(other.dog_, nullptr);
    id_ = std::exchange(other.id_, 0);
  }
  return *this;
}

void Watchdog::Lease::release() {
  if (dog_ != nullptr) {
    dog_->unregister(id_);
    dog_ = nullptr;
    id_ = 0;
  }
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Watchdog::Lease Watchdog::watch(sim::CancelToken& token, double deadline_s) {
  WMN_CHECK_GT(deadline_s, 0.0, "watchdog deadline must be positive");
  const auto deadline =
      std::chrono::steady_clock::now() +  // NOLINT(wmn-nondeterminism)
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_s));
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    id = next_id_++;
    entries_.push_back(Entry{id, &token, deadline});
    if (!thread_started_) {
      thread_started_ = true;
      thread_ = std::thread([this] { loop(); });
    }
  }
  cv_.notify_all();
  return Lease(this, id);
}

std::size_t Watchdog::active() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::uint64_t Watchdog::expired_count() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return expired_;
}

void Watchdog::unregister(std::uint64_t id) {
  const std::lock_guard<std::mutex> lk(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(kTickMillis),
                 [this] { return stop_; });
    if (stop_) return;
    const auto now =
        std::chrono::steady_clock::now();  // NOLINT(wmn-nondeterminism)
    // Flip and drop expired leases; the owning task's Lease::release()
    // later is a no-op on the already-removed id.
    auto expired_it =
        std::partition(entries_.begin(), entries_.end(),
                       [now](const Entry& e) { return e.deadline > now; });
    for (auto it = expired_it; it != entries_.end(); ++it) {
      it->token->cancel();
      ++expired_;
    }
    entries_.erase(expired_it, entries_.end());
  }
}

}  // namespace wmn::exp
