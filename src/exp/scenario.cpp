#include "exp/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "core/check.hpp"
#include "exp/failure.hpp"
#include <set>

#include "mobility/placement.hpp"
#include "phy/units.hpp"
#include "sim/logging.hpp"
#include "stats/fairness.hpp"

namespace wmn::exp {

namespace {
constexpr std::uint64_t kPlacementSalt = 0x97AC'0000'0000'0000ULL;
constexpr std::uint64_t kFlowSalt = 0xF107'0000'0000'0000ULL;
constexpr std::uint64_t kMobilitySalt = 0x0B11'0000'0000'0000ULL;
constexpr std::uint64_t kArrivalSalt = 0xA881'7A10'0000'0000ULL;
}  // namespace

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg), sim_(cfg.seed) {
  WMN_CHECK_GE(cfg_.n_nodes, std::size_t{2}, "a mesh needs at least two nodes");
  if (cfg_.intra_run_shards > 0) build_sharded();
  if (cfg_.event_budget != 0) {
    if (sharded_) {
      sharded_->set_event_budget(cfg_.event_budget);
    } else {
      sim_.set_event_budget(cfg_.event_budget);
    }
  }
  if (!sharded_) {
    channel_ = std::make_unique<phy::WirelessChannel>(sim_, make_propagation());
    if (cfg_.spatial_index) {
      channel_->enable_spatial_index(cfg_.area_width_m, cfg_.area_height_m);
    }
  }
  build_nodes();
  build_traffic();

  if (!cfg_.fault.empty()) {
    if (sharded_) {
      build_fault_timeline();
    } else {
      std::vector<fault::NodeHooks> hooks;
      hooks.reserve(nodes_.size());
      for (NodeStack& n : nodes_) {
        hooks.push_back({n.phy.get(), n.mac.get(), n.agent.get()});
      }
      injector_ = std::make_unique<fault::Injector>(sim_, cfg_.fault,
                                                    std::move(hooks));
      channel_->set_fault_overlay(injector_.get());
      registry_.set_outage_query(
          [this](sim::Time t) { return injector_->in_fault_window(t); });
    }
  }
}

Scenario::~Scenario() = default;

std::unique_ptr<phy::PropagationModel> Scenario::make_propagation() const {
  std::unique_ptr<phy::PropagationModel> prop =
      std::make_unique<phy::LogDistanceModel>();
  if (cfg_.shadowing_sigma_db > 0.0) {
    // Shadowing offsets are a pure hash of (seed, link pair), so every
    // region channel's chain agrees link-for-link.
    prop = std::make_unique<phy::LogNormalShadowing>(
        std::move(prop), cfg_.shadowing_sigma_db, cfg_.seed);
  }
  return prop;
}

sim::Simulator& Scenario::node_sim(std::size_t i) {
  return sharded_ ? sharded_->region(home_region_[i]) : sim_;
}

net::PacketFactory& Scenario::node_factory(std::size_t i) {
  return sharded_ ? *region_factories_[home_region_[i]] : factory_;
}

traffic::FlowRegistry& Scenario::node_registry(std::size_t i) {
  return sharded_ ? *region_registries_[home_region_[i]] : registry_;
}

// Select the region decomposition, the epoch (conservative lookahead),
// and the per-region engine state. Region count and epoch are pure
// functions of the scenario config — NEVER of intra_run_shards, which
// only caps the worker-thread count — so every shard count executes
// the identical event schedule (DESIGN.md §3e).
void Scenario::build_sharded() {
  const sim::Logger log("shard");
  const double range = make_propagation()->max_range_m(
      cfg_.phy.tx_power_dbm, cfg_.phy.detection_floor_dbm);
  sim::Time epoch = sim::ShardMap::lookahead(range, phy::kSpeedOfLight,
                                             cfg_.mac.sifs + cfg_.mac.slot);
  const sim::Time horizon = cfg_.warmup + cfg_.traffic_time + cfg_.drain;

  bool downgrade = false;
  if (cfg_.mobility.mobile()) {
    log.warn(sim::Time::zero(),
             "mobile nodes have no stable home region; sharding downgraded "
             "to one region");
    downgrade = true;
  }
  if (!cfg_.spatial_index) {
    log.warn(sim::Time::zero(),
             "sharding shares the spatial index's grid geometry; "
             "spatial_index=false downgrades to one region");
    downgrade = true;
  }
  if (epoch == sim::Time::max()) {
    log.warn(sim::Time::zero(),
             "propagation model has no finite detection range, so no finite "
             "lookahead exists; sharding downgraded to one region");
    downgrade = true;
  }

  const double cell = phy::SpatialIndex::cell_size_for(
      std::isfinite(range) ? range : 0.0, cfg_.area_width_m, cfg_.area_height_m);
  const phy::SpatialIndex::Grid g =
      phy::SpatialIndex::grid_for(cfg_.area_width_m, cfg_.area_height_m, cell);
  const sim::ShardGrid grid{g.nx, g.ny, g.cell_m};
  if (downgrade) {
    shard_map_ = std::make_unique<sim::ShardMap>(sim::ShardMap::single(grid));
  } else {
    shard_map_ = std::make_unique<sim::ShardMap>(
        sim::ShardMap::build(grid, sim::ShardMap::kRegionTarget));
  }
  const std::uint32_t regions = shard_map_->region_count();
  // One region has no cross-region edges: a single whole-horizon epoch
  // is the exact serial event semantics, minus ~500k no-op barriers.
  if (regions == 1) epoch = horizon;

  sharded_ = std::make_unique<sim::ShardedSimulator>(cfg_.seed, regions, epoch,
                                                     cfg_.intra_run_shards);
  if (regions > 1) {
    // A cross-region ACK/CTS can be released up to one epoch after its
    // physical arrival (the barrier clamp); widen the MAC timeout
    // slack by two epochs so the clamp shows up as latency, not as
    // spurious retries. Epoch is config-pure, so this is identical for
    // every shard count.
    cfg_.mac.ack_timeout_slack += epoch + epoch;
    cfg_.mac.cts_timeout_slack += epoch + epoch;
  }

  region_factories_.reserve(regions);
  region_registries_.reserve(regions);
  region_channels_.reserve(regions);
  for (std::uint32_t r = 0; r < regions; ++r) {
    region_factories_.push_back(std::make_unique<net::PacketFactory>());
    region_registries_.push_back(std::make_unique<traffic::FlowRegistry>());
    auto ch = std::make_unique<phy::WirelessChannel>(sharded_->region(r),
                                                     make_propagation());
    ch->enable_spatial_index(cfg_.area_width_m, cfg_.area_height_m);
    region_channels_.push_back(std::move(ch));
  }
}

// Precompute the fault history (fault::FaultTimeline replays the
// injector's state machine off-line) and wire it into every region:
// overlay queries answer from the frozen windows, and the crash/rejoin
// choreography is scheduled onto each victim's home-region calendar.
void Scenario::build_fault_timeline() {
  const sim::Time horizon = cfg_.warmup + cfg_.traffic_time + cfg_.drain;
  timeline_ = std::make_unique<fault::FaultTimeline>(cfg_.seed, cfg_.fault,
                                                     nodes_.size(), horizon);
  overlays_.reserve(region_channels_.size());
  for (std::uint32_t r = 0; r < region_channels_.size(); ++r) {
    overlays_.push_back(std::make_unique<fault::TimelineOverlay>(
        *timeline_, sharded_->region(r)));
    region_channels_[r]->set_fault_overlay(overlays_.back().get());
  }
  for (const auto& rr : region_registries_) {
    rr->set_outage_query(
        [this](sim::Time t) { return timeline_->in_fault_window(t); });
  }
  for (const fault::FaultTimeline::NodeWindow& w : timeline_->node_windows()) {
    sim::Simulator& s = node_sim(w.node);
    phy::WifiPhy* phy = nodes_[w.node].phy.get();
    mac::DcfMac* mac = nodes_[w.node].mac.get();
    routing::AodvAgent* agent = nodes_[w.node].agent.get();
    // Same choreography (and layer order) as fault::Injector.
    s.schedule_at(w.down_at, [phy, mac, agent] {
      agent->pause();
      mac->power_down();
      phy->set_up(false);
    });
    if (!w.open) {
      s.schedule_at(w.up_at, [phy, mac, agent] {
        phy->set_up(true);
        mac->power_up();
        agent->resume();
      });
    }
  }
}

void Scenario::build_nodes() {
  sim::RngStream placement_rng = sim_.make_stream(kPlacementSalt);
  std::vector<mobility::Vec2> positions;
  switch (cfg_.placement) {
    case Placement::kGrid:
      positions = mobility::grid_placement(cfg_.n_nodes, cfg_.area_width_m,
                                           cfg_.area_height_m);
      break;
    case Placement::kPerturbedGrid:
      positions = mobility::perturbed_grid_placement(
          cfg_.n_nodes, cfg_.area_width_m, cfg_.area_height_m,
          cfg_.placement_jitter_m, placement_rng);
      break;
    case Placement::kUniform:
      positions = mobility::uniform_placement(cfg_.n_nodes, cfg_.area_width_m,
                                              cfg_.area_height_m, placement_rng);
      break;
  }

  nodes_.resize(cfg_.n_nodes);
  if (sharded_) home_region_.resize(cfg_.n_nodes);
  for (std::size_t i = 0; i < cfg_.n_nodes; ++i) {
    NodeStack& n = nodes_[i];
    const auto id = static_cast<std::uint32_t>(i);
    const net::Address addr(id);

    if (cfg_.mobility.mobile()) {
      mobility::RandomWaypointConfig rwp;
      rwp.area_width_m = cfg_.area_width_m;
      rwp.area_height_m = cfg_.area_height_m;
      rwp.min_speed_mps = cfg_.mobility.min_speed_mps;
      rwp.max_speed_mps = cfg_.mobility.max_speed_mps;
      rwp.pause = cfg_.mobility.pause;
      // Mobility forces the single-region downgrade, so region 0 ==
      // "the" simulator in sharded mode.
      sim::Simulator& msim = sharded_ ? sharded_->region(0) : sim_;
      n.mobility = std::make_unique<mobility::RandomWaypointModel>(
          msim, rwp, positions[i], kMobilitySalt ^ id);
    } else {
      n.mobility = std::make_unique<mobility::ConstantPositionModel>(positions[i]);
    }
    if (sharded_) {
      // Home region: lowest grid cell the trajectory bounds overlap —
      // the cell of the bounding box's low corner (DESIGN.md §3e).
      const mobility::TrajectoryBounds b = n.mobility->trajectory_bounds();
      home_region_[i] = shard_map_->home_region(b.lo.x, b.lo.y);
    }

    sim::Simulator& s = node_sim(i);
    net::PacketFactory& f = node_factory(i);
    n.phy = std::make_unique<phy::WifiPhy>(s, cfg_.phy, id, n.mobility.get());
    if (!sharded_) channel_->attach(n.phy.get());
    n.mac = std::make_unique<mac::DcfMac>(s, cfg_.mac, addr, *n.phy, f);
    n.agent = core::make_agent(cfg_.protocol, cfg_.options, s, addr, *n.mac, f,
                               n.mobility.get());
    n.sink = std::make_unique<traffic::PacketSink>(s, *n.agent, node_registry(i));
  }

  if (sharded_) {
    // Every region channel registers every radio — home radios via
    // attach (which binds the phy to that channel), the rest via
    // attach_remote — in the same global node order, so attach indices
    // agree across regions and delivery iteration order is a pure
    // function of geometry.
    const std::uint32_t regions = shard_map_->region_count();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      for (std::uint32_t r = 0; r < regions; ++r) {
        if (r == home_region_[i]) {
          region_channels_[r]->attach(nodes_[i].phy.get());
        } else {
          region_channels_[r]->attach_remote(nodes_[i].phy.get());
        }
      }
    }
    std::vector<phy::WirelessChannel*> channels;
    std::vector<net::PacketFactory*> factories;
    for (std::uint32_t r = 0; r < regions; ++r) {
      channels.push_back(region_channels_[r].get());
      factories.push_back(region_factories_[r].get());
    }
    router_ = std::make_unique<phy::ShardRouter>(home_region_, std::move(channels),
                                                 std::move(factories));
    for (std::uint32_t r = 0; r < regions; ++r) {
      region_channels_[r]->set_shard_router(router_.get(), r);
    }
    sharded_->set_barrier_hook(router_.get());
  }
}

void Scenario::build_traffic() {
  sim::RngStream flow_rng = sim_.make_stream(kFlowSalt);
  const auto n_nodes = static_cast<std::uint32_t>(cfg_.n_nodes);

  switch (cfg_.traffic.pattern) {
    case TrafficSpec::Pattern::kRandomPairs:
      flow_pairs_ =
          traffic::random_pairs(cfg_.traffic.n_flows, n_nodes, flow_rng);
      break;
    case TrafficSpec::Pattern::kGateway: {
      // Gateways: the nodes nearest to anchor points spread along the
      // area diagonal — route diversity exists, as in deployed meshes.
      const std::size_t k = std::max<std::size_t>(cfg_.traffic.n_gateways, 1);
      const sim::Time t0 = sim_.now();
      for (std::size_t g = 0; g < k; ++g) {
        const double f = (static_cast<double>(g) + 1.0) /
                         (static_cast<double>(k) + 1.0);
        const mobility::Vec2 anchor{f * cfg_.area_width_m, f * cfg_.area_height_m};
        std::uint32_t best = 0;
        double best_d = 1e18;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const double d = nodes_[i].mobility->position(t0).distance_to(anchor);
          if (d < best_d) {
            best_d = d;
            best = static_cast<std::uint32_t>(i);
          }
        }
        if (std::find(gateways_.begin(), gateways_.end(), best) ==
            gateways_.end()) {
          gateways_.push_back(best);
        }
      }
      // Distinct random sources, each talking to its nearest gateway.
      std::set<std::uint32_t> used;
      std::size_t guard = 0;
      while (flow_pairs_.size() < cfg_.traffic.n_flows &&
             guard++ < cfg_.traffic.n_flows * 1000 + 1000) {
        const auto src =
            static_cast<std::uint32_t>(flow_rng.uniform_u64(0, n_nodes - 1));
        if (used.contains(src) ||
            std::find(gateways_.begin(), gateways_.end(), src) !=
                gateways_.end()) {
          continue;
        }
        used.insert(src);
        const mobility::Vec2 sp = nodes_[src].mobility->position(t0);
        std::uint32_t gw = gateways_.front();
        double gw_d = 1e18;
        for (std::uint32_t g : gateways_) {
          const double d = nodes_[g].mobility->position(t0).distance_to(sp);
          if (d < gw_d) {
            gw_d = d;
            gw = g;
          }
        }
        flow_pairs_.push_back({src, gw});
      }
      break;
    }
  }

  const sim::Time stop = cfg_.warmup + cfg_.traffic_time;

  // Seeded flow-arrival process: flows join over time instead of all
  // at once. A dedicated salted stream keeps the offsets independent of
  // the pair draws above (state-independent draw sequences).
  std::vector<sim::Time> starts(flow_pairs_.size(), cfg_.warmup);
  if (cfg_.traffic.mean_arrival_gap_s > 0.0) {
    sim::RngStream arrival_rng = sim_.make_stream(kArrivalSalt);
    // Offsets count from the traffic-window start, so the envelope's
    // clock starts at 0 here (vs. `warmup` for the session sources
    // below, which see absolute simulation time).
    const traffic::RateEnvelope offset_env(cfg_.traffic.rate_envelope, 0.0);
    const auto offsets = traffic::arrival_offsets(
        flow_pairs_.size(),
        sim::Time::seconds(cfg_.traffic.mean_arrival_gap_s),
        cfg_.traffic_time, arrival_rng, offset_env);
    for (std::size_t i = 0; i < starts.size(); ++i) starts[i] += offsets[i];
  }

  std::uint32_t flow_id = 0;
  for (std::size_t i = 0; i < flow_pairs_.size(); ++i) {
    const auto [src, dst] = flow_pairs_[i];
    const sim::Time start = starts[i];
    const std::uint32_t fid = flow_id++;
    switch (cfg_.traffic.model) {
      case TrafficSpec::Model::kPoissonOnOff: {
        traffic::PoissonOnOffConfig fc;
        fc.flow_id = fid;
        fc.dest = net::Address(dst);
        fc.packet_bytes = cfg_.traffic.packet_bytes;
        fc.rate_pps = cfg_.traffic.rate_pps;
        fc.mean_on = sim::Time::seconds(cfg_.traffic.mean_on_s);
        fc.mean_off = sim::Time::seconds(cfg_.traffic.mean_off_s);
        fc.start = start;
        fc.stop = stop;
        onoff_sources_.push_back(std::make_unique<traffic::PoissonOnOffSource>(
            node_sim(src), fc, *nodes_[src].agent, node_factory(src),
            node_registry(src)));
        break;
      }
      case TrafficSpec::Model::kHeavyTailOnOff: {
        traffic::HeavyTailOnOffConfig fc;
        fc.flow_id = fid;
        fc.dest = net::Address(dst);
        fc.packet_bytes = cfg_.traffic.packet_bytes;
        fc.rate_pps = cfg_.traffic.rate_pps;
        fc.pareto_shape = cfg_.traffic.pareto_shape;
        fc.mean_on = sim::Time::seconds(cfg_.traffic.mean_on_s);
        fc.mean_off = sim::Time::seconds(cfg_.traffic.mean_off_s);
        fc.start = start;
        fc.stop = stop;
        heavy_sources_.push_back(std::make_unique<traffic::HeavyTailOnOffSource>(
            node_sim(src), fc, *nodes_[src].agent, node_factory(src),
            node_registry(src)));
        break;
      }
      case TrafficSpec::Model::kSessions: {
        traffic::SessionSourceConfig fc;
        fc.flow_id = fid;
        fc.dest = net::Address(dst);
        fc.packet_bytes = cfg_.traffic.packet_bytes;
        fc.users = cfg_.traffic.users_per_node;
        fc.session_rate_per_user_per_s =
            cfg_.traffic.session_rate_per_user_per_s;
        fc.session_rate_pps = cfg_.traffic.session_rate_pps;
        fc.mean_session_pkts = cfg_.traffic.mean_session_pkts;
        fc.pareto_shape = cfg_.traffic.pareto_shape;
        fc.max_active_sessions = cfg_.traffic.max_active_sessions;
        fc.start = start;
        fc.stop = stop;
        // Session arrivals see absolute simulation time; anchor the
        // envelope at the traffic-window start.
        fc.envelope = traffic::RateEnvelope(cfg_.traffic.rate_envelope,
                                            cfg_.warmup.to_seconds());
        session_sources_.push_back(std::make_unique<traffic::SessionSource>(
            node_sim(src), fc, *nodes_[src].agent, node_factory(src),
            node_registry(src)));
        break;
      }
      case TrafficSpec::Model::kCbr: {
        traffic::CbrConfig fc;
        fc.flow_id = fid;
        fc.dest = net::Address(dst);
        fc.packet_bytes = cfg_.traffic.packet_bytes;
        fc.rate_pps = cfg_.traffic.rate_pps;
        fc.start = start;
        fc.stop = stop;
        cbr_sources_.push_back(std::make_unique<traffic::CbrSource>(
            node_sim(src), fc, *nodes_[src].agent, node_factory(src),
            node_registry(src)));
        break;
      }
    }
    // The source registered the flow in src's home-region registry;
    // deliveries are recorded by the sink in DST's home region, whose
    // registry must know the flow too (record_delivery drops unknown
    // flow ids as stray). The two records merge after the run.
    if (sharded_ && home_region_[dst] != home_region_[src]) {
      node_registry(dst).register_flow(fid, net::Address(src),
                                       net::Address(dst));
    }
  }
}

void Scenario::run() {
  check_violations_before_ = core::check_violations();
  const sim::Time horizon = cfg_.warmup + cfg_.traffic_time + cfg_.drain;
  // The one legitimate wall-clock read in simulation code: it measures
  // how long the run took on the host, is reported as wall_seconds, and
  // never feeds an event time, a seed, or a routing decision.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(wmn-nondeterminism)
  if (sharded_) {
    sharded_->run_until(horizon);
  } else {
    sim_.run_until(horizon);
  }
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(wmn-nondeterminism)
  wall_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  // A run cut short by supervision produced a truncated trace, not a
  // measurement: surface the structured reason, never partial metrics.
  const sim::Simulator::AbortReason reason =
      sharded_ ? sharded_->abort_reason() : sim_.abort_reason();
  const std::uint64_t budget =
      sharded_ ? sharded_->event_budget() : sim_.event_budget();
  switch (reason) {
    case sim::Simulator::AbortReason::kNone:
      break;
    case sim::Simulator::AbortReason::kEventBudget:
      throw RunAborted(FailureKind::kEventBudgetExhausted,
                       "event budget (" + std::to_string(budget) +
                           " events) exhausted at t=" +
                           std::to_string(engine_now().to_seconds()) + "s");
    case sim::Simulator::AbortReason::kCancelled:
      throw RunAborted(FailureKind::kDeadlineExceeded,
                       "cancelled by the run supervisor at t=" +
                           std::to_string(engine_now().to_seconds()) + "s");
  }
  if (sharded_) {
    // Fold the per-region registries into the classic one so metrics()
    // and flows() read the same structure either way.
    for (const auto& rr : region_registries_) registry_.merge_from(*rr);
  }
  ran_ = true;
}

RunMetrics Scenario::metrics() const {
  WMN_CHECK(ran_, "metrics() before run()");
  RunMetrics m;
  m.seed = cfg_.seed;
  m.wall_seconds = wall_seconds_;
  m.sim_event_count = static_cast<double>(
      sharded_ ? sharded_->events_executed() : sim_.events_executed());
  m.check_violations = core::check_violations() - check_violations_before_;

  m.data_sent = registry_.total_sent();
  m.data_delivered = registry_.total_delivered();
  m.pdr = registry_.aggregate_pdr();
  m.mean_delay_ms = registry_.mean_delay_s() * 1e3;
  m.mean_jitter_ms = registry_.mean_jitter_s() * 1e3;
  const double traffic_s = cfg_.traffic_time.to_seconds();
  m.throughput_kbps =
      static_cast<double>(registry_.total_delivered_bytes()) * 8.0 / traffic_s /
      1e3;

  double busy_sum = 0.0;
  std::uint64_t data_forwarded_total = 0;
  m.per_node_forwarded.reserve(nodes_.size());
  for (const NodeStack& n : nodes_) {
    const auto& rc = n.agent->counters();
    m.rreq_tx += rc.rreq_originated + rc.rreq_forwarded;
    m.rreq_suppressed += rc.rreq_suppressed;
    m.rrep_tx += rc.rrep_originated + rc.rrep_intermediate + rc.rrep_forwarded;
    m.rerr_tx += rc.rerr_sent;
    m.hello_tx += rc.hello_sent;
    m.discoveries += rc.discovery_started;
    m.discoveries_failed += rc.discovery_failed;
    data_forwarded_total += rc.data_forwarded;
    m.per_node_forwarded.push_back(static_cast<double>(rc.data_forwarded));

    const auto& mc = n.mac->counters();
    m.mac_queue_drops += mc.queue_drops;
    m.mac_retry_drops += mc.retry_drops;
    m.mac_retries += mc.retries;
    busy_sum += n.mac->busy_ratio();

    m.phy_collisions += n.phy->counters().rx_failed_sinr;
    m.total_energy_j += n.phy->energy_joules();
  }
  m.control_tx = m.rreq_tx + m.rrep_tx + m.rerr_tx + m.hello_tx;
  m.mean_busy_ratio = busy_sum / static_cast<double>(nodes_.size());
  if (m.discoveries > 0) {
    m.rreq_per_discovery =
        static_cast<double>(m.rreq_tx) / static_cast<double>(m.discoveries);
  }
  if (m.data_delivered > 0) {
    m.nrl = static_cast<double>(m.control_tx) /
            static_cast<double>(m.data_delivered);
    m.nrl_on_demand = static_cast<double>(m.control_tx - m.hello_tx) /
                      static_cast<double>(m.data_delivered);
    m.avg_path_hops = 1.0 + static_cast<double>(data_forwarded_total) /
                                static_cast<double>(m.data_delivered);
  }
  m.mean_node_energy_j = m.total_energy_j / static_cast<double>(nodes_.size());
  const double delivered_kbit =
      static_cast<double>(registry_.total_delivered_bytes()) * 8.0 / 1e3;
  if (delivered_kbit > 0.0) {
    m.energy_mj_per_kbit = m.total_energy_j * 1e3 / delivered_kbit;
  }

  std::vector<double> active;
  for (double f : m.per_node_forwarded) {
    if (f > 0.0) active.push_back(f);
  }
  m.forwarding_active_nodes = active.size();
  m.forwarding_jain = stats::jain_index(active);
  m.forwarding_peak_to_mean = stats::peak_to_mean(active);

  // Gateway-aggregation fairness (F11): delivered load per gateway, in
  // gateway discovery order. A protocol collapsing at one hotspot shows
  // up as Jain falling toward 1/K with the variance exploding.
  if (!gateways_.empty()) {
    m.gateway_count = gateways_.size();
    m.per_gateway_delivered.assign(gateways_.size(), 0.0);
    const auto flow_snapshot = registry_.snapshot();
    for (std::size_t g = 0; g < gateways_.size(); ++g) {
      const net::Address addr(gateways_[g]);
      for (const auto& f : flow_snapshot) {
        if (f.dst == addr) {
          m.per_gateway_delivered[g] += static_cast<double>(f.delivered);
        }
      }
    }
    m.gateway_jain = stats::jain_index(m.per_gateway_delivered);
    m.gateway_load_variance = stats::load_variance(m.per_gateway_delivered);
  }

  for (const auto& s : session_sources_) {
    m.sessions_started += s->sessions_started();
    m.sessions_completed += s->sessions_completed();
    m.sessions_rejected += s->sessions_rejected();
  }

  if (injector_ != nullptr || timeline_ != nullptr) {
    m.fault_enabled = true;
    if (injector_) {
      const auto& fc = injector_->counters();
      m.fault_crashes = fc.crashes;
      m.fault_rejoins = fc.rejoins;
      m.fault_blackouts = fc.blackouts;
      m.fault_downtime_s =
          injector_->total_node_downtime(sim_.now()).to_seconds();
    } else {
      const auto& fc = timeline_->counters();
      m.fault_crashes = fc.crashes;
      m.fault_rejoins = fc.rejoins;
      m.fault_blackouts = fc.blackouts;
      m.fault_downtime_s =
          timeline_->total_node_downtime(engine_now()).to_seconds();
    }

    m.sent_during_outage = registry_.sent_during_outage();
    m.delivered_during_outage = registry_.delivered_during_outage();
    if (m.sent_during_outage > 0) {
      m.pdr_during_outage = static_cast<double>(m.delivered_during_outage) /
                            static_cast<double>(m.sent_during_outage);
    }
    const std::uint64_t sent_out = m.data_sent - m.sent_during_outage;
    if (sent_out > 0) {
      m.pdr_outside_outage =
          static_cast<double>(m.data_delivered - m.delivered_during_outage) /
          static_cast<double>(sent_out);
    }

    std::uint64_t recovery_ns = 0;
    for (const NodeStack& n : nodes_) {
      const auto& rc = n.agent->counters();
      m.local_repairs_attempted += rc.local_repair_attempted;
      m.local_repairs_succeeded += rc.local_repair_succeeded;
      m.route_recoveries += rc.route_recoveries;
      recovery_ns += rc.route_recovery_ns_total;
      m.route_recoveries_abandoned += rc.route_recovery_abandoned;
    }
    if (m.route_recoveries > 0) {
      m.route_recovery_mean_ms = static_cast<double>(recovery_ns) /
                                 static_cast<double>(m.route_recoveries) / 1e6;
    }

    // Stranded: the flow offered traffic but nothing ever arrived, or
    // deliveries dried up well before the senders stopped.
    const sim::Time traffic_end = cfg_.warmup + cfg_.traffic_time;
    const sim::Time slack =
        std::min(cfg_.traffic_time.scaled(0.25), sim::Time::seconds(10.0));
    for (const auto& f : registry_.snapshot()) {
      if (f.sent == 0) continue;
      if (!f.any_delivered || f.last_delivery < traffic_end - slack) {
        ++m.flows_stranded;
      }
    }
  }
  return m;
}

}  // namespace wmn::exp
