// Checkpoint/resume journal for sweeps.
//
// SweepEngine appends one JSONL record per *completed, untainted*
// replication slot as it finishes, flushed line-by-line, so a killed or
// OOM'd process loses at most the slot in flight — never the completed
// prefix of a multi-hour campaign. A rerun in resume mode reloads every
// record whose identity checks out and re-executes only the missing
// slots; the aggregate output is bit-identical to an uninterrupted run.
//
// Record identity is three-fold, and all of it is verified on load:
//   * cfg    — digest of the slot's cell ScenarioConfig (every field).
//              A parseable record whose digest mismatches the current
//              sweep is a *different experiment*: resume refuses
//              outright rather than mixing results.
//   * seed   — must equal replication_seed(base, cell, rep) recomputed
//              from the current sweep.
//   * fp     — exp::fingerprint() of the stored metrics, recomputed
//              from the parsed values. A bit-flipped or truncated
//              metrics payload fails this check and the line is
//              skipped (that slot simply re-runs).
//
// Doubles are serialized as C hexfloats ("%a") and u64 digests as
// fixed-width hex, so the parse→serialize round trip is bit-exact —
// the property the resume-equals-uninterrupted contract rests on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "exp/metrics.hpp"

namespace wmn::exp {

struct ScenarioConfig;  // exp/scenario.hpp

inline constexpr int kJournalVersion = 1;

// Digest over every ScenarioConfig field (placement, mobility, traffic
// incl. the rate envelope, protocol options, phy/mac, faults, timing,
// base seed, supervision budget). Pure and stable: the same config
// always digests the same, any field change digests differently.
[[nodiscard]] std::uint64_t config_digest(const ScenarioConfig& cfg);

// One journaled slot. metrics.seed carries the replication seed.
struct JournalRecord {
  std::uint64_t cell = 0;
  std::uint64_t rep = 0;
  std::uint64_t cfg_digest = 0;
  std::uint64_t fingerprint = 0;  // exp::fingerprint(metrics) at write time
  RunMetrics metrics;
};

// Serialize one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const JournalRecord& rec);

// Parse one journal line. Returns nullopt on any structural damage
// (truncation, corruption, unknown version, missing field) — the
// caller skips the line and re-runs the slot. Internal consistency
// (fingerprint vs metrics) is NOT checked here; see
// journal_record_consistent().
[[nodiscard]] std::optional<JournalRecord> parse_journal_line(
    std::string_view line);

// True iff the record's stored fingerprint matches a recomputation
// from its parsed metrics — the bit-exactness proof for resume.
[[nodiscard]] bool journal_record_consistent(const JournalRecord& rec);

}  // namespace wmn::exp
