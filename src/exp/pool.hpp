// Persistent worker pool for the sweep layer.
//
// One pool lives for the lifetime of a bench binary (see shared_pool())
// and drains every sweep's flattened task list, replacing the previous
// spawn/join-per-point discipline: workers are created once, so a
// 20-point sweep no longer pays 20 rounds of thread churn and — more
// importantly — no longer serializes at a barrier after every point.
//
// The pool itself is deliberately dumb: FIFO tasks, mutex + condvar.
// Tasks must not throw — exception containment lives one layer up in
// parallel_try_map (src/exp/parallel.hpp), which boxes each task's
// outcome. A task that escapes with an exception anyway is logged and
// swallowed as a last resort rather than taking the process down.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "exp/supervision.hpp"

namespace wmn::exp {

// Number of worker threads to use by default: hardware concurrency,
// floored at 1.
[[nodiscard]] inline unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

class ThreadPool {
 public:
  // Spins up `threads` long-lived workers (floored at 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();  // drains the queue, then joins every worker

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueue one task. Tasks run in FIFO order on the next free worker
  // and must not throw (see header comment).
  void submit(std::function<void()> task);

  // Block until every submitted task has completed.
  void wait_idle();

  // The pool's run supervisor: tasks that want a wall-clock deadline
  // register their CancelToken here (see exp::Watchdog). Owned by the
  // pool so a hung task and the supervisor that cancels it share one
  // lifetime; the supervisor thread starts lazily on first use and
  // costs nothing for unsupervised sweeps.
  [[nodiscard]] Watchdog& watchdog() { return watchdog_; }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there is work (or stop)"
  std::condition_variable idle_cv_;  // waiters: "queue drained, none running"
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
  Watchdog watchdog_;
};

// The process-lifetime pool every sweep shares, sized by env_threads()
// (WMN_THREADS, default hardware concurrency) at first use. Callers
// that want less concurrency than the pool offers bound it per call
// (the `width` argument of parallel_try_map), not by resizing.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace wmn::exp
