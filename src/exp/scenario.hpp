// Scenario: the top-level facade assembling a complete mesh simulation.
//
// One Scenario = one network (placement + radios + MACs + routing
// agents + traffic) inside one Simulator instance. Construction wires
// everything; run() executes; metrics() aggregates the paper's
// quantities. Scenarios are self-contained and share nothing, so the
// sweep layer runs them concurrently on a thread pool.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/protocols.hpp"
#include "exp/metrics.hpp"
#include "fault/fault_timeline.hpp"
#include "fault/injector.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "phy/shard_router.hpp"
#include "sim/shard_map.hpp"
#include "sim/sharded_simulator.hpp"
#include "traffic/cbr_source.hpp"
#include "traffic/flow_builder.hpp"
#include "traffic/heavy_tail_source.hpp"
#include "traffic/packet_sink.hpp"
#include "traffic/session_source.hpp"

namespace wmn::exp {

enum class Placement { kGrid, kPerturbedGrid, kUniform };

struct MobilitySpec {
  // max_speed == 0 -> static mesh routers (the WMN backbone default).
  double min_speed_mps = 0.5;
  double max_speed_mps = 0.0;
  sim::Time pause = sim::Time::seconds(2.0);
  [[nodiscard]] bool mobile() const { return max_speed_mps > 0.0; }
};

struct TrafficSpec {
  enum class Pattern { kRandomPairs, kGateway };
  // Source model per flow:
  //   kCbr          — constant bit rate (the paper's evaluation load);
  //   kPoissonOnOff — exponential ON/OFF bursts of CBR;
  //   kHeavyTailOnOff — Pareto ON periods (self-similar aggregate load);
  //   kSessions     — per-user session aggregation: each source node
  //                   carries `users_per_node` users whose sessions
  //                   arrive as a seeded Poisson process and transfer
  //                   Pareto-sized packet batches (the F11 production
  //                   workload).
  enum class Model { kCbr, kPoissonOnOff, kHeavyTailOnOff, kSessions };
  Pattern pattern = Pattern::kRandomPairs;
  Model model = Model::kCbr;
  std::size_t n_flows = 10;
  double rate_pps = 4.0;
  std::uint32_t packet_bytes = 512;
  // kGateway: this many gateways are placed spread across the area
  // (the nodes nearest to evenly spaced anchor points); each source
  // sends to its *nearest* gateway, as real WMN backhaul does.
  std::size_t n_gateways = 1;

  // kPoissonOnOff / kHeavyTailOnOff burst shape.
  double mean_on_s = 2.0;
  double mean_off_s = 2.0;
  double pareto_shape = 1.5;  // kHeavyTailOnOff / kSessions tail index

  // kSessions knobs (per source node).
  std::uint32_t users_per_node = 1000;
  double session_rate_per_user_per_s = 0.002;
  double session_rate_pps = 16.0;
  double mean_session_pkts = 20.0;
  std::uint32_t max_active_sessions = 64;

  // Seeded flow-arrival process: when > 0, flow start times are
  // staggered by a Poisson process with this mean inter-arrival gap
  // (clamped to the traffic window) instead of all flows starting at
  // once — new flows join a mesh that is already carrying load.
  double mean_arrival_gap_s = 0.0;

  // Piecewise-linear arrival-rate multiplier over the traffic window:
  // (seconds since traffic start, multiplier) knots, strictly
  // increasing in time. Scales session arrival rates and the staggered
  // flow-arrival process — a flash crowd is e.g. {0:1, 10:1, 12:8,
  // 20:8, 22:1}, a diurnal cycle a slow triangle wave. Empty (the
  // default) bypasses the envelope entirely: RNG draw sequence and
  // fingerprints are bit-identical to builds that predate it.
  std::vector<std::pair<double, double>> rate_envelope;
};

struct ScenarioConfig {
  std::size_t n_nodes = 100;
  double area_width_m = 1000.0;
  double area_height_m = 1000.0;
  Placement placement = Placement::kPerturbedGrid;
  double placement_jitter_m = 60.0;
  MobilitySpec mobility;
  TrafficSpec traffic;

  core::Protocol protocol = core::Protocol::kClnlr;
  core::ProtocolOptions options;
  phy::PhyConfig phy;
  mac::MacConfig mac;
  double shadowing_sigma_db = 0.0;

  // Deterministic fault schedule; empty (the default) means the fault
  // layer is never constructed — zero cost, zero RNG draws.
  fault::FaultPlan fault;

  sim::Time warmup = sim::Time::seconds(5.0);    // hellos settle
  sim::Time traffic_time = sim::Time::seconds(60.0);
  sim::Time drain = sim::Time::seconds(2.0);     // in-flight packets land
  std::uint64_t seed = 1;

  // Deterministic run-away guard: abort the run (Scenario::run() throws
  // exp::RunAborted, kEventBudgetExhausted) once the simulator has
  // executed this many events. A pure function of the event count —
  // bit-reproducible across hosts, unlike any wall-clock deadline.
  // 0 (the default) disables the budget; existing fingerprints are
  // untouched.
  std::uint64_t event_budget = 0;

  // Channel spatial neighbourhood index + link-budget cache. Results
  // are bit-identical either way (see docs/TOOLING.md); turn off only
  // to benchmark the full O(N^2) scan or to isolate a suspected index
  // bug.
  bool spatial_index = true;

  // Intra-run sharding (conservative PDES; DESIGN.md §3e). 0 (the
  // default) runs the classic serial engine — untouched code path,
  // untouched fingerprints. N >= 1 partitions the area into a FIXED
  // set of contiguous grid-cell regions (a pure function of geometry,
  // never of N) and advances them in parallel epochs on min(N,
  // regions) worker threads; cross-region deliveries merge at epoch
  // barriers in a fixed total order, so the fingerprint is
  // bit-identical for every shard count, including 1. Configurations
  // the engine cannot shard safely (mobile nodes, unbounded detection
  // range, spatial_index off) log a warning and degrade to one region
  // — still deterministic, never a wrong answer.
  std::uint32_t intra_run_shards = 0;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // Execute warmup + traffic + drain. Throws exp::RunAborted when the
  // run was cut short by the event budget (kEventBudgetExhausted) or a
  // cancelled token (kDeadlineExceeded) — a truncated trace is not a
  // measurement, so no metrics survive an abort.
  void run();

  // Cooperative cancellation: the simulator polls `token` every
  // `poll_every` events (see sim::Simulator::set_cancel_token; in a
  // sharded run every region polls it). The token must outlive run();
  // pass nullptr to detach.
  void set_cancel_token(const sim::CancelToken* token,
                        std::uint64_t poll_every = 1024) {
    if (sharded_) {
      sharded_->set_cancel_token(token, poll_every);
    } else {
      sim_.set_cancel_token(token, poll_every);
    }
  }

  // Aggregate metrics; valid after run().
  [[nodiscard]] RunMetrics metrics() const;

  // --- component access (tests, examples, custom experiments) ---------
  // The classic serial simulator. In a sharded run this engine is idle
  // (components live on the region simulators); use sharded_engine().
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  // True when intra_run_shards > 0 selected the sharded engine.
  [[nodiscard]] bool sharded() const { return sharded_ != nullptr; }
  // Null in classic mode.
  [[nodiscard]] sim::ShardedSimulator* sharded_engine() { return sharded_.get(); }
  [[nodiscard]] const sim::ShardMap* shard_map() const { return shard_map_.get(); }
  // Node i's home region (sharded mode; empty otherwise).
  [[nodiscard]] const std::vector<std::uint32_t>& home_regions() const {
    return home_region_;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] routing::AodvAgent& agent(std::size_t i) { return *nodes_[i].agent; }
  [[nodiscard]] mac::DcfMac& node_mac(std::size_t i) { return *nodes_[i].mac; }
  [[nodiscard]] phy::WifiPhy& node_phy(std::size_t i) { return *nodes_[i].phy; }
  [[nodiscard]] const traffic::FlowRegistry& flows() const { return registry_; }
  [[nodiscard]] const std::vector<traffic::NodePair>& flow_pairs() const {
    return flow_pairs_;
  }
  // Gateway node indices (kGateway traffic only; empty otherwise).
  [[nodiscard]] const std::vector<std::uint32_t>& gateways() const {
    return gateways_;
  }
  // Session sources (Model::kSessions only; empty otherwise).
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::SessionSource>>&
  session_sources() const {
    return session_sources_;
  }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  // Classic mode: the one channel. Sharded mode: region 0's channel.
  [[nodiscard]] phy::WirelessChannel& channel() {
    return sharded_ ? *region_channels_.front() : *channel_;
  }
  // Null when the config's FaultPlan is empty (and in sharded runs,
  // which precompute the history into a fault::FaultTimeline instead).
  [[nodiscard]] const fault::Injector* injector() const {
    return injector_.get();
  }
  // Null except in sharded runs with a non-empty FaultPlan.
  [[nodiscard]] const fault::FaultTimeline* fault_timeline() const {
    return timeline_.get();
  }
  // Factory for injecting extra (unmeasured) traffic into the mesh.
  [[nodiscard]] net::PacketFactory& packet_factory() { return factory_; }

  // Mean per-node dynamic footprint: each node's phy/mac/agent state
  // plus an equal share of the channel (caches, index, pending slots).
  // Surfaced as the bytes_per_node counter in BENCH_macro.json and
  // gated by bench/perf_gate.py.
  [[nodiscard]] std::size_t bytes_per_node() const {
    if (nodes_.empty()) return 0;
    std::size_t bytes = 0;
    for (const NodeStack& n : nodes_) {
      bytes += sizeof(NodeStack) + n.phy->memory_bytes() +
               n.mac->memory_bytes() + n.agent->memory_bytes();
    }
    if (sharded_) {
      // Every region channel sees every radio, so the per-region
      // tables genuinely replicate — the rollup charges all of them.
      for (const auto& ch : region_channels_) bytes += ch->memory_bytes();
    } else {
      bytes += channel_->memory_bytes();
    }
    return bytes / nodes_.size();
  }

 private:
  struct NodeStack {
    std::unique_ptr<mobility::MobilityModel> mobility;
    std::unique_ptr<phy::WifiPhy> phy;
    std::unique_ptr<mac::DcfMac> mac;
    std::unique_ptr<routing::AodvAgent> agent;
    std::unique_ptr<traffic::PacketSink> sink;
  };

  void build_sharded();
  void build_nodes();
  void build_traffic();
  void build_fault_timeline();
  [[nodiscard]] std::unique_ptr<phy::PropagationModel> make_propagation() const;
  // The engine a node's components are scheduled on / allocate from /
  // report to: its home region's in sharded mode, the classic
  // simulator/factory/registry otherwise.
  [[nodiscard]] sim::Simulator& node_sim(std::size_t i);
  [[nodiscard]] net::PacketFactory& node_factory(std::size_t i);
  [[nodiscard]] traffic::FlowRegistry& node_registry(std::size_t i);
  [[nodiscard]] sim::Time engine_now() const {
    return sharded_ ? sharded_->now() : sim_.now();
  }

  ScenarioConfig cfg_;
  sim::Simulator sim_;
  // Sharded engine (intra_run_shards > 0): the region simulators own
  // the calendars every component schedules on, so they sit right
  // after sim_ — destroyed after the node stacks, like sim_ itself.
  std::unique_ptr<sim::ShardMap> shard_map_;
  std::unique_ptr<sim::ShardedSimulator> sharded_;
  net::PacketFactory factory_;
  // Per-region arenas/registries outlive the node stacks and channels
  // below (parked packets release arena references at channel
  // teardown).
  std::vector<std::unique_ptr<net::PacketFactory>> region_factories_;
  std::vector<std::unique_ptr<traffic::FlowRegistry>> region_registries_;
  std::vector<std::uint32_t> home_region_;  // per node (sharded mode)
  // nodes_ before channel_: the channel's spatial index detaches from
  // the mobility models in its destructor, so it must die first.
  std::vector<NodeStack> nodes_;
  std::unique_ptr<phy::WirelessChannel> channel_;
  std::vector<std::unique_ptr<phy::WirelessChannel>> region_channels_;
  std::unique_ptr<phy::ShardRouter> router_;
  std::unique_ptr<fault::FaultTimeline> timeline_;
  std::vector<std::unique_ptr<fault::TimelineOverlay>> overlays_;
  std::unique_ptr<fault::Injector> injector_;
  traffic::FlowRegistry registry_;
  std::vector<traffic::NodePair> flow_pairs_;
  std::vector<std::uint32_t> gateways_;
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr_sources_;
  std::vector<std::unique_ptr<traffic::PoissonOnOffSource>> onoff_sources_;
  std::vector<std::unique_ptr<traffic::HeavyTailOnOffSource>> heavy_sources_;
  std::vector<std::unique_ptr<traffic::SessionSource>> session_sources_;
  bool ran_ = false;
  double wall_seconds_ = 0.0;
  // Snapshot of the global invariant-violation counter at run() start;
  // metrics() reports the per-run delta.
  std::uint64_t check_violations_before_ = 0;
};

}  // namespace wmn::exp
