#include "mobility/mobility_model.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace wmn::mobility {

RandomWaypointModel::RandomWaypointModel(sim::Simulator& simulator,
                                         const RandomWaypointConfig& cfg,
                                         Vec2 initial, std::uint64_t stream_id)
    : sim_(simulator),
      cfg_(cfg),
      rng_(simulator.make_stream(stream_id)),
      leg_start_(initial),
      leg_end_(initial),
      leg_t0_(simulator.now()),
      leg_t1_(simulator.now()) {
  WMN_CHECK(cfg_.min_speed_mps > 0.0 &&
                cfg_.max_speed_mps >= cfg_.min_speed_mps,
            "waypoint speed range must be positive and ordered");
  // Start with an initial pause so all nodes do not move in lockstep.
  begin_pause();
}

RandomWaypointModel::~RandomWaypointModel() { sim_.cancel(next_change_); }

void RandomWaypointModel::begin_pause() {
  paused_ = true;
  leg_start_ = leg_end_;
  leg_t0_ = sim_.now();
  leg_t1_ = sim_.now();
  next_change_ = sim_.schedule(cfg_.pause, [this] { begin_leg(); });
  bump_epoch();  // bounds collapse to the waypoint for the pause
}

void RandomWaypointModel::begin_leg() {
  paused_ = false;
  leg_start_ = leg_end_;
  leg_end_ = Vec2{rng_.uniform(0.0, cfg_.area_width_m),
                  rng_.uniform(0.0, cfg_.area_height_m)};
  const double speed = rng_.uniform(cfg_.min_speed_mps, cfg_.max_speed_mps);
  const double dist = leg_start_.distance_to(leg_end_);
  leg_t0_ = sim_.now();
  const double travel_s = dist / std::max(speed, 1e-9);
  leg_t1_ = leg_t0_ + sim::Time::seconds(travel_s);
  next_change_ = sim_.schedule(sim::Time::seconds(travel_s), [this] { begin_pause(); });
  bump_epoch();  // bounds widen to the new leg's segment box
}

TrajectoryBounds RandomWaypointModel::trajectory_bounds() const {
  if (paused_) return TrajectoryBounds::point(leg_start_);
  return TrajectoryBounds::box(leg_start_, leg_end_);
}

Vec2 RandomWaypointModel::position(sim::Time now) const {
  if (paused_ || now >= leg_t1_ || leg_t1_ == leg_t0_) {
    return paused_ ? leg_start_ : leg_end_;
  }
  const double f = (now - leg_t0_) / (leg_t1_ - leg_t0_);
  const double fc = std::clamp(f, 0.0, 1.0);
  return leg_start_ + (leg_end_ - leg_start_) * fc;
}

Vec2 RandomWaypointModel::velocity(sim::Time now) const {
  if (paused_ || now >= leg_t1_ || leg_t1_ == leg_t0_) return {0.0, 0.0};
  const double travel_s = (leg_t1_ - leg_t0_).to_seconds();
  return (leg_end_ - leg_start_) * (1.0 / travel_s);
}

}  // namespace wmn::mobility
