#include "mobility/placement.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace wmn::mobility {

std::vector<Vec2> grid_placement(std::size_t n, double width_m, double height_m) {
  WMN_CHECK_GT(n, std::size_t{0}, "placement of zero nodes");
  const auto cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  const double dx = width_m / static_cast<double>(cols);
  const double dy = height_m / static_cast<double>(rows);
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    out.push_back(Vec2{(static_cast<double>(c) + 0.5) * dx,
                       (static_cast<double>(r) + 0.5) * dy});
  }
  return out;
}

std::vector<Vec2> uniform_placement(std::size_t n, double width_m,
                                    double height_m, sim::RngStream& rng) {
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Vec2{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
  }
  return out;
}

std::vector<Vec2> perturbed_grid_placement(std::size_t n, double width_m,
                                           double height_m, double jitter_m,
                                           sim::RngStream& rng) {
  auto out = grid_placement(n, width_m, height_m);
  for (auto& p : out) {
    p.x = std::clamp(p.x + rng.uniform(-jitter_m, jitter_m), 0.0, width_m);
    p.y = std::clamp(p.y + rng.uniform(-jitter_m, jitter_m), 0.0, height_m);
  }
  return out;
}

std::vector<Vec2> line_placement(std::size_t n, double spacing_m, double y_m) {
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Vec2{static_cast<double>(i) * spacing_m, y_m});
  }
  return out;
}

}  // namespace wmn::mobility
