// Initial node placement helpers for mesh topologies.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/vec2.hpp"
#include "sim/rng.hpp"

namespace wmn::mobility {

// n positions on a near-square grid filling the given rectangle.
// Rows/columns are chosen as close to sqrt(n) as possible; extra cells
// in the last row are left empty. Grid spacing keeps a half-cell margin
// at each border so the topology is symmetric.
[[nodiscard]] std::vector<Vec2> grid_placement(std::size_t n, double width_m,
                                               double height_m);

// Uniform random placement over the rectangle.
[[nodiscard]] std::vector<Vec2> uniform_placement(std::size_t n, double width_m,
                                                  double height_m,
                                                  sim::RngStream& rng);

// Grid placement with per-node uniform jitter of up to `jitter_m` in
// each axis (clamped to the area). Models planned-but-imperfect mesh
// router deployment — the usual WMN backbone topology.
[[nodiscard]] std::vector<Vec2> perturbed_grid_placement(std::size_t n,
                                                         double width_m,
                                                         double height_m,
                                                         double jitter_m,
                                                         sim::RngStream& rng);

// Equally spaced points on a straight horizontal line (unit tests and
// chain-topology experiments).
[[nodiscard]] std::vector<Vec2> line_placement(std::size_t n, double spacing_m,
                                               double y_m = 0.0);

}  // namespace wmn::mobility
