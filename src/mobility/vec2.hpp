// 2-D plane geometry for node positions (metres).
#pragma once

#include <cmath>

namespace wmn::mobility {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }

  [[nodiscard]] double distance_to(Vec2 o) const { return (*this - o).norm(); }

  // Unit vector toward `o`; zero vector if coincident.
  [[nodiscard]] Vec2 direction_to(Vec2 o) const {
    const Vec2 d = o - *this;
    const double n = d.norm();
    if (n <= 0.0) return {0.0, 0.0};
    return {d.x / n, d.y / n};
  }
};

}  // namespace wmn::mobility
