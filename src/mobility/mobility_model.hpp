// Node mobility models.
//
// Position is evaluated lazily: position(now) interpolates the current
// movement leg, so there is no per-tick position event churn. The
// random-waypoint model schedules one event per leg boundary (arrival
// at a waypoint / end of pause).
//
// Movement epochs: spatial consumers (phy::SpatialIndex) need to know
// *when a trajectory changes* without polling every node per query.
// Each model carries a movement-epoch counter, bumped whenever the
// trajectory it previously advertised stops being valid (a new RWP leg,
// an explicit set_position). trajectory_bounds() returns a region that
// provably contains the node for as long as the epoch keeps its current
// value; a registered MotionListener is notified on every bump, so
// consumers can cache bounds and re-bin only dirty nodes.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>

#include "mobility/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::mobility {

// Axis-aligned region guaranteed to contain a node's position for the
// lifetime of one movement epoch. A *point* bound (lo == hi) means the
// position itself is pinned until the next epoch bump — the contract
// the phy layer's link-budget cache keys on.
struct TrajectoryBounds {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] static TrajectoryBounds point(Vec2 p) { return {p, p}; }
  [[nodiscard]] static TrajectoryBounds box(Vec2 a, Vec2 b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }
  [[nodiscard]] static TrajectoryBounds unbounded() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {{-inf, -inf}, {inf, inf}};
  }
  [[nodiscard]] bool is_point() const { return lo.x == hi.x && lo.y == hi.y; }
  [[nodiscard]] bool is_bounded() const {
    return lo.x > -std::numeric_limits<double>::infinity() &&
           hi.x < std::numeric_limits<double>::infinity() &&
           lo.y > -std::numeric_limits<double>::infinity() &&
           hi.y < std::numeric_limits<double>::infinity();
  }
};

// Observer for movement-epoch bumps. `token` is the value supplied at
// registration (the channel passes the node's attach index).
class MotionListener {
 public:
  virtual ~MotionListener() = default;
  virtual void on_motion_epoch(std::uint32_t token) = 0;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  // Position at the given instant; `now` must be >= any previously
  // queried time (simulation time is monotone).
  [[nodiscard]] virtual Vec2 position(sim::Time now) const = 0;

  // Instantaneous velocity vector (m/s); zero when paused/static.
  [[nodiscard]] virtual Vec2 velocity(sim::Time now) const = 0;

  // Speed magnitude convenience.
  [[nodiscard]] double speed(sim::Time now) const { return velocity(now).norm(); }

  // Monotone counter identifying the current trajectory; bumped by the
  // model whenever trajectory_bounds() would change.
  [[nodiscard]] std::uint64_t movement_epoch() const { return epoch_; }

  // Region containing the node's position while movement_epoch() keeps
  // its current value. Default: unbounded (consumers must treat the
  // node as potentially anywhere — the transparent fallback).
  [[nodiscard]] virtual TrajectoryBounds trajectory_bounds() const {
    return TrajectoryBounds::unbounded();
  }

  // At most one listener (the channel's spatial index). Pass nullptr
  // to detach; the listener must stay valid while registered. Const:
  // observer registration is not part of the model's logical state
  // (consumers hold models through const pointers).
  void set_motion_listener(MotionListener* listener,
                           std::uint32_t token) const {
    listener_ = listener;
    listener_token_ = token;
  }

 protected:
  // Derived models call this whenever their advertised trajectory
  // changes (new leg, pause boundary, explicit reposition).
  void bump_epoch() {
    ++epoch_;
    if (listener_ != nullptr) listener_->on_motion_epoch(listener_token_);
  }

 private:
  std::uint64_t epoch_ = 0;
  mutable MotionListener* listener_ = nullptr;
  mutable std::uint32_t listener_token_ = 0;
};

// Fixed position forever (mesh routers / backbone nodes).
class ConstantPositionModel final : public MobilityModel {
 public:
  explicit ConstantPositionModel(Vec2 pos) : pos_(pos) {}
  [[nodiscard]] Vec2 position(sim::Time) const override { return pos_; }
  [[nodiscard]] Vec2 velocity(sim::Time) const override { return {0.0, 0.0}; }
  [[nodiscard]] TrajectoryBounds trajectory_bounds() const override {
    return TrajectoryBounds::point(pos_);
  }
  void set_position(Vec2 pos) {
    pos_ = pos;
    bump_epoch();
  }

 private:
  Vec2 pos_;
};

// Straight-line constant velocity (used in tests and as a building
// block for deterministic link-breakage scenarios).
class ConstantVelocityModel final : public MobilityModel {
 public:
  ConstantVelocityModel(Vec2 start, Vec2 velocity_mps, sim::Time t0)
      : start_(start), vel_(velocity_mps), t0_(t0) {}

  [[nodiscard]] Vec2 position(sim::Time now) const override {
    const double dt = (now - t0_).to_seconds();
    return start_ + vel_ * dt;
  }
  [[nodiscard]] Vec2 velocity(sim::Time) const override { return vel_; }

 private:
  Vec2 start_;
  Vec2 vel_;
  sim::Time t0_;
};

// Random waypoint over a rectangular area: pick a uniform destination,
// travel at a uniform speed in [min_speed, max_speed], pause, repeat.
// The standard MANET/WMN client mobility model (and the one the
// authors' group uses throughout their 2009-2012 evaluations).
struct RandomWaypointConfig {
  double area_width_m = 1000.0;
  double area_height_m = 1000.0;
  double min_speed_mps = 0.5;   // strictly positive to avoid the
                                // well-known RWP speed-decay pathology
  double max_speed_mps = 10.0;
  sim::Time pause = sim::Time::seconds(2);
};

class RandomWaypointModel final : public MobilityModel {
 public:
  // `stream_id` must be unique per node for independent trajectories.
  RandomWaypointModel(sim::Simulator& simulator, const RandomWaypointConfig& cfg,
                      Vec2 initial, std::uint64_t stream_id);
  ~RandomWaypointModel() override;

  RandomWaypointModel(const RandomWaypointModel&) = delete;
  RandomWaypointModel& operator=(const RandomWaypointModel&) = delete;

  [[nodiscard]] Vec2 position(sim::Time now) const override;
  [[nodiscard]] Vec2 velocity(sim::Time now) const override;
  // Paused: the node is pinned at the waypoint (a point bound, so
  // link budgets to it are cacheable until the next leg). Moving: the
  // bounding box of the current leg segment.
  [[nodiscard]] TrajectoryBounds trajectory_bounds() const override;

 private:
  void begin_pause();
  void begin_leg();

  sim::Simulator& sim_;
  RandomWaypointConfig cfg_;
  mutable sim::RngStream rng_;

  // Current leg state.
  Vec2 leg_start_;
  Vec2 leg_end_;
  sim::Time leg_t0_;
  sim::Time leg_t1_;        // arrival time at leg_end_
  bool paused_ = true;      // between legs the node sits at leg_start_
  sim::EventId next_change_{};
};

}  // namespace wmn::mobility
