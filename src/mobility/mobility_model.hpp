// Node mobility models.
//
// Position is evaluated lazily: position(now) interpolates the current
// movement leg, so there is no per-tick position event churn. The
// random-waypoint model schedules one event per leg boundary (arrival
// at a waypoint / end of pause).
#pragma once

#include <memory>

#include "mobility/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace wmn::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  // Position at the given instant; `now` must be >= any previously
  // queried time (simulation time is monotone).
  [[nodiscard]] virtual Vec2 position(sim::Time now) const = 0;

  // Instantaneous velocity vector (m/s); zero when paused/static.
  [[nodiscard]] virtual Vec2 velocity(sim::Time now) const = 0;

  // Speed magnitude convenience.
  [[nodiscard]] double speed(sim::Time now) const { return velocity(now).norm(); }
};

// Fixed position forever (mesh routers / backbone nodes).
class ConstantPositionModel final : public MobilityModel {
 public:
  explicit ConstantPositionModel(Vec2 pos) : pos_(pos) {}
  [[nodiscard]] Vec2 position(sim::Time) const override { return pos_; }
  [[nodiscard]] Vec2 velocity(sim::Time) const override { return {0.0, 0.0}; }
  void set_position(Vec2 pos) { pos_ = pos; }

 private:
  Vec2 pos_;
};

// Straight-line constant velocity (used in tests and as a building
// block for deterministic link-breakage scenarios).
class ConstantVelocityModel final : public MobilityModel {
 public:
  ConstantVelocityModel(Vec2 start, Vec2 velocity_mps, sim::Time t0)
      : start_(start), vel_(velocity_mps), t0_(t0) {}

  [[nodiscard]] Vec2 position(sim::Time now) const override {
    const double dt = (now - t0_).to_seconds();
    return start_ + vel_ * dt;
  }
  [[nodiscard]] Vec2 velocity(sim::Time) const override { return vel_; }

 private:
  Vec2 start_;
  Vec2 vel_;
  sim::Time t0_;
};

// Random waypoint over a rectangular area: pick a uniform destination,
// travel at a uniform speed in [min_speed, max_speed], pause, repeat.
// The standard MANET/WMN client mobility model (and the one the
// authors' group uses throughout their 2009-2012 evaluations).
struct RandomWaypointConfig {
  double area_width_m = 1000.0;
  double area_height_m = 1000.0;
  double min_speed_mps = 0.5;   // strictly positive to avoid the
                                // well-known RWP speed-decay pathology
  double max_speed_mps = 10.0;
  sim::Time pause = sim::Time::seconds(2);
};

class RandomWaypointModel final : public MobilityModel {
 public:
  // `stream_id` must be unique per node for independent trajectories.
  RandomWaypointModel(sim::Simulator& simulator, const RandomWaypointConfig& cfg,
                      Vec2 initial, std::uint64_t stream_id);
  ~RandomWaypointModel() override;

  RandomWaypointModel(const RandomWaypointModel&) = delete;
  RandomWaypointModel& operator=(const RandomWaypointModel&) = delete;

  [[nodiscard]] Vec2 position(sim::Time now) const override;
  [[nodiscard]] Vec2 velocity(sim::Time now) const override;

 private:
  void begin_pause();
  void begin_leg();

  sim::Simulator& sim_;
  RandomWaypointConfig cfg_;
  mutable sim::RngStream rng_;

  // Current leg state.
  Vec2 leg_start_;
  Vec2 leg_end_;
  sim::Time leg_t0_;
  sim::Time leg_t1_;        // arrival time at leg_end_
  bool paused_ = true;      // between legs the node sits at leg_start_
  sim::EventId next_change_{};
};

}  // namespace wmn::mobility
