// Packet model.
//
// A Packet is a byte-size-accounted container with a typed header
// stack. Headers are plain structs defined by the layer that uses them
// (MAC header in mac/, AODV headers in routing/, ...); the packet
// stores them type-erased so lower layers need no knowledge of upper
// protocols. Header *contents are immutable once pushed* — forwarding a
// modified header means copying the struct, editing the copy, and
// pushing it onto a fresh packet. This makes the cheap shallow copy
// (shared header payloads) used for broadcast fan-out safe.
//
// Byte accounting: each header contributes its declared wire size; the
// application payload contributes `payload_bytes`. `size_bytes()` is
// what the PHY serializes, so MAC/PHY timing is driven by realistic
// frame sizes.
#pragma once

#include <cstdint>
#include <memory>
#include <typeindex>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "sim/time.hpp"

namespace wmn::net {

// Every header struct must expose:
//   static constexpr std::uint32_t kWireSize;   // bytes on the air
// (checked at push time via the Header concept below).
template <typename T>
concept Header = requires {
  { T::kWireSize } -> std::convertible_to<std::uint32_t>;
};

class Packet {
 public:
  Packet(std::uint64_t uid, std::uint32_t payload_bytes, sim::Time created)
      : uid_(uid), payload_bytes_(payload_bytes), created_(created) {}

  // Copies share immutable header payloads (cheap broadcast fan-out).
  Packet(const Packet&) = default;
  Packet& operator=(const Packet&) = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  [[nodiscard]] std::uint64_t uid() const { return uid_; }
  [[nodiscard]] sim::Time created() const { return created_; }
  [[nodiscard]] std::uint32_t payload_bytes() const { return payload_bytes_; }

  // Total on-air size: payload plus all pushed headers.
  [[nodiscard]] std::uint32_t size_bytes() const {
    return payload_bytes_ + header_bytes_;
  }

  // --- header stack ---------------------------------------------------
  template <Header T>
  void push(T header) {
    stack_.push_back(Slot{std::type_index(typeid(T)),
                          std::make_shared<T>(std::move(header)),
                          T::kWireSize});
    header_bytes_ += T::kWireSize;
  }

  // Read the top-of-stack header, which must be a T.
  template <Header T>
  [[nodiscard]] const T& peek() const {
    WMN_CHECK(!stack_.empty(), "peek on empty header stack");
    WMN_CHECK(stack_.back().type == std::type_index(typeid(T)),
              "header stack type mismatch");
    return *static_cast<const T*>(stack_.back().data.get());
  }

  // Remove and return the top-of-stack header, which must be a T.
  template <Header T>
  T pop() {
    T out = peek<T>();
    header_bytes_ -= stack_.back().wire_size;
    stack_.pop_back();
    return out;
  }

  // True if the top-of-stack header is a T.
  template <Header T>
  [[nodiscard]] bool top_is() const {
    return !stack_.empty() && stack_.back().type == std::type_index(typeid(T));
  }

  [[nodiscard]] std::size_t header_count() const { return stack_.size(); }

  // --- end-to-end metadata (set by the traffic layer, read by stats) --
  struct FlowInfo {
    std::uint32_t flow_id = 0;
    std::uint64_t seq = 0;
    sim::Time sent_at{};
    bool valid = false;
  };
  void set_flow_info(FlowInfo info) { flow_ = info; }
  [[nodiscard]] const FlowInfo& flow_info() const { return flow_; }

 private:
  struct Slot {
    std::type_index type;
    std::shared_ptr<const void> data;
    std::uint32_t wire_size;
  };

  std::uint64_t uid_;
  std::uint32_t payload_bytes_;
  std::uint32_t header_bytes_ = 0;
  sim::Time created_;
  std::vector<Slot> stack_;
  FlowInfo flow_;
};

// Factory handing out process-unique packet uids within one simulation.
class PacketFactory {
 public:
  PacketFactory() = default;
  PacketFactory(const PacketFactory&) = delete;
  PacketFactory& operator=(const PacketFactory&) = delete;

  [[nodiscard]] Packet make(std::uint32_t payload_bytes, sim::Time now) {
    return Packet(++next_uid_, payload_bytes, now);
  }

  [[nodiscard]] std::uint64_t packets_created() const { return next_uid_; }

 private:
  std::uint64_t next_uid_ = 0;
};

}  // namespace wmn::net
