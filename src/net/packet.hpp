// Packet model.
//
// A Packet is a byte-size-accounted container with a typed header
// stack. Headers are plain structs defined by the layer that uses them
// (MAC header in mac/, AODV headers in routing/, ...); the packet
// stores them type-erased so lower layers need no knowledge of upper
// protocols. Header *contents are immutable once pushed* — forwarding a
// modified header means copying the struct, editing the copy, and
// pushing it onto a fresh packet. This makes the cheap shallow copy
// (shared header payloads) used for broadcast fan-out safe.
//
// Storage: the header stack is a persistent singly-linked list of
// refcounted nodes in a PacketArena (one arena per PacketFactory, one
// factory per simulation). push/pop recycle fixed-size nodes through
// the arena free list and a packet copy is a single refcount bump, so
// the per-packet hot path performs no heap allocation after the arena
// warms up. See packet_arena.hpp for lifetime and threading rules.
//
// Byte accounting: each header contributes its declared wire size; the
// application payload contributes `payload_bytes`. `size_bytes()` is
// what the PHY serializes, so MAC/PHY timing is driven by realistic
// frame sizes.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "core/check.hpp"
#include "net/packet_arena.hpp"
#include "sim/time.hpp"

namespace wmn::net {

// Every header struct must expose:
//   static constexpr std::uint32_t kWireSize;   // bytes on the air
// (checked at push time via the Header concept below).
template <typename T>
concept Header = requires {
  { T::kWireSize } -> std::convertible_to<std::uint32_t>;
};

class Packet {
 public:
  Packet(PacketArena* arena, std::uint64_t uid, std::uint32_t payload_bytes,
         sim::Time created)
      : uid_(uid), payload_bytes_(payload_bytes), created_(created),
        arena_(arena) {
    WMN_CHECK_NOTNULL(arena_, "packets require an arena (use PacketFactory)");
    arena_->add_ref();
  }

  // Copies share immutable header payloads (cheap broadcast fan-out).
  Packet(const Packet& other)
      : uid_(other.uid_), payload_bytes_(other.payload_bytes_),
        header_bytes_(other.header_bytes_), created_(other.created_),
        arena_(other.arena_), top_(other.top_), flow_(other.flow_) {
    if (top_ != nullptr) ++top_->refs;
    if (arena_ != nullptr) arena_->add_ref();
  }

  Packet& operator=(const Packet& other) {
    if (this != &other) {
      Packet copy(other);
      swap(copy);
    }
    return *this;
  }

  Packet(Packet&& other) noexcept
      : uid_(other.uid_), payload_bytes_(other.payload_bytes_),
        header_bytes_(other.header_bytes_), created_(other.created_),
        arena_(other.arena_), top_(other.top_), flow_(other.flow_) {
    other.arena_ = nullptr;  // moved-from: inert, destructor is a no-op
    other.top_ = nullptr;
  }

  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      release();
      uid_ = other.uid_;
      payload_bytes_ = other.payload_bytes_;
      header_bytes_ = other.header_bytes_;
      created_ = other.created_;
      arena_ = other.arena_;
      top_ = other.top_;
      flow_ = other.flow_;
      other.arena_ = nullptr;
      other.top_ = nullptr;
    }
    return *this;
  }

  ~Packet() { release(); }

  [[nodiscard]] std::uint64_t uid() const { return uid_; }
  [[nodiscard]] sim::Time created() const { return created_; }
  [[nodiscard]] std::uint32_t payload_bytes() const { return payload_bytes_; }

  // Total on-air size: payload plus all pushed headers.
  [[nodiscard]] std::uint32_t size_bytes() const {
    return payload_bytes_ + header_bytes_;
  }

  // --- header stack ---------------------------------------------------
  template <Header T>
  void push(T header) {
    static_assert(sizeof(T) <= PacketArena::kPayloadCapacity,
                  "header does not fit an arena node; raise "
                  "PacketArena::kPayloadCapacity");
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "headers are raw wire structs; the arena does not run "
                  "destructors on recycled nodes");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "header is over-aligned for an arena node");
    WMN_CHECK_NOTNULL(arena_, "push on a moved-from packet");
    PacketArena::Node* n = arena_->allocate();
    n->next = top_;  // transfers this packet's reference on the old top
    n->refs = 1;
    n->wire_size = T::kWireSize;
    n->type = &typeid(T);
    ::new (static_cast<void*>(n->payload)) T(std::move(header));
    top_ = n;
    header_bytes_ += T::kWireSize;
  }

  // Read the top-of-stack header, which must be a T.
  template <Header T>
  [[nodiscard]] const T& peek() const {
    WMN_CHECK_NOTNULL(top_, "peek on empty header stack");
    WMN_CHECK(*top_->type == typeid(T), "header stack type mismatch");
    return *std::launder(reinterpret_cast<const T*>(top_->payload));
  }

  // Remove and return the top-of-stack header, which must be a T.
  template <Header T>
  T pop() {
    T out = peek<T>();
    PacketArena::Node* n = top_;
    header_bytes_ -= n->wire_size;
    top_ = n->next;
    if (top_ != nullptr) ++top_->refs;  // our new direct reference
    arena_->release_chain(n);
    return out;
  }

  // True if the top-of-stack header is a T.
  template <Header T>
  [[nodiscard]] bool top_is() const {
    return top_ != nullptr && *top_->type == typeid(T);
  }

  [[nodiscard]] std::size_t header_count() const {
    std::size_t n = 0;
    for (const PacketArena::Node* p = top_; p != nullptr; p = p->next) ++n;
    return n;
  }

  // --- end-to-end metadata (set by the traffic layer, read by stats) --
  struct FlowInfo {
    std::uint32_t flow_id = 0;
    std::uint64_t seq = 0;
    sim::Time sent_at{};
    bool valid = false;
  };
  void set_flow_info(FlowInfo info) { flow_ = info; }
  [[nodiscard]] const FlowInfo& flow_info() const { return flow_; }

  // Deep copy into `arena` (normally another simulation region's — the
  // sharded engine re-materialises cross-region deliveries so two
  // regions never share refcounted nodes; see phy::ShardRouter).
  // Header payloads are copied bit-for-bit, byte accounting and flow
  // metadata carry over; the uid comes from the destination factory.
  [[nodiscard]] Packet clone_into(PacketArena* arena, std::uint64_t new_uid) const {
    Packet out(arena, new_uid, payload_bytes_, created_);
    out.header_bytes_ = header_bytes_;
    out.flow_ = flow_;
    out.top_ = clone_chain(arena, top_);
    return out;
  }

 private:
  // Bottom-up so each fresh node links to an already-cloned tail; the
  // stack is a handful of headers deep, so recursion is fine.
  static PacketArena::Node* clone_chain(PacketArena* arena,
                                        const PacketArena::Node* src) {
    if (src == nullptr) return nullptr;
    PacketArena::Node* next = clone_chain(arena, src->next);
    PacketArena::Node* n = arena->allocate();
    n->next = next;
    n->refs = 1;
    n->wire_size = src->wire_size;
    n->type = src->type;
    std::memcpy(n->payload, src->payload, PacketArena::kPayloadCapacity);
    return n;
  }

  void release() {
    if (top_ != nullptr) {
      arena_->release_chain(top_);
      top_ = nullptr;
    }
    if (arena_ != nullptr) {
      arena_->release_ref();
      arena_ = nullptr;
    }
  }

  void swap(Packet& other) noexcept {
    std::swap(uid_, other.uid_);
    std::swap(payload_bytes_, other.payload_bytes_);
    std::swap(header_bytes_, other.header_bytes_);
    std::swap(created_, other.created_);
    std::swap(arena_, other.arena_);
    std::swap(top_, other.top_);
    std::swap(flow_, other.flow_);
  }

  std::uint64_t uid_;
  std::uint32_t payload_bytes_;
  std::uint32_t header_bytes_ = 0;
  sim::Time created_;
  PacketArena* arena_;
  PacketArena::Node* top_ = nullptr;
  FlowInfo flow_;
};

// Factory handing out process-unique packet uids within one simulation,
// and owning the header arena those packets allocate from. The arena
// survives until the last Packet releases it, so factory/component
// declaration order is not a correctness concern.
class PacketFactory {
 public:
  PacketFactory() : arena_(new PacketArena()) {}
  PacketFactory(const PacketFactory&) = delete;
  PacketFactory& operator=(const PacketFactory&) = delete;
  ~PacketFactory() { arena_->release_ref(); }

  [[nodiscard]] Packet make(std::uint32_t payload_bytes, sim::Time now) {
    return Packet(arena_, ++next_uid_, payload_bytes, now);
  }

  // Deep copy of a packet (typically owned by another factory's arena)
  // into this factory's arena. Counts as a created packet here.
  [[nodiscard]] Packet clone(const Packet& src) {
    return src.clone_into(arena_, ++next_uid_);
  }

  [[nodiscard]] std::uint64_t packets_created() const { return next_uid_; }

  // Arena statistics (tests, diagnostics).
  [[nodiscard]] const PacketArena& arena() const { return *arena_; }

 private:
  PacketArena* arena_;
  std::uint64_t next_uid_ = 0;
};

}  // namespace wmn::net
