// Node addressing.
//
// The mesh uses a single flat address space: one Address per node,
// doubling as the MAC-layer and network-layer identifier (the standard
// simplification in protocol-level WMN studies — per-layer address
// resolution is orthogonal to routing behaviour).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace wmn::net {

class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t v) : v_(v) {}

  // Link-layer broadcast.
  static constexpr Address broadcast() { return Address(0xFFFFFFFFu); }
  // "no address" sentinel (distinct from broadcast).
  static constexpr Address invalid() { return Address(0xFFFFFFFEu); }

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool is_broadcast() const { return v_ == 0xFFFFFFFFu; }
  [[nodiscard]] constexpr bool is_valid() const { return v_ != 0xFFFFFFFEu; }

  constexpr auto operator<=>(const Address&) const = default;

  [[nodiscard]] std::string str() const {
    if (is_broadcast()) return "*";
    if (!is_valid()) return "-";
    return std::to_string(v_);
  }

 private:
  std::uint32_t v_ = 0xFFFFFFFEu;
};

}  // namespace wmn::net

template <>
struct std::hash<wmn::net::Address> {
  std::size_t operator()(const wmn::net::Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
