#include "net/packet_arena.hpp"

namespace wmn::net {

void PacketArena::grow() {
  auto chunk = std::make_unique<Node[]>(kNodesPerChunk);
  // Thread the fresh nodes onto the free list in index order; the
  // poisoned free state is established here so the very first
  // allocation from a chunk behaves like a recycled one.
  for (std::size_t i = kNodesPerChunk; i-- > 0;) {
    Node* n = &chunk[i];
    n->refs = 0;
    n->next = free_head_;
    WMN_POISON(n->payload, kPayloadCapacity);
    free_head_ = n;
  }
  free_count_ += kNodesPerChunk;
  chunks_.push_back(std::move(chunk));
}

}  // namespace wmn::net
