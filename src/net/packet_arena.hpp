// Free-list arena for packet header nodes.
//
// Every header pushed onto a Packet used to cost one shared_ptr control
// block, and every packet copy one vector allocation — at 100 radios a
// single broadcast paid ~100 such copies. The arena replaces both: a
// header stack is an immutable, intrusively refcounted singly-linked
// list of fixed-size nodes carved from chunked storage, so push/pop are
// a free-list pop/push and a broadcast fan-out copy is one refcount
// increment.
//
// Lifetime: the arena is created by a PacketFactory and shared by every
// Packet that factory makes. It is intrusively refcounted (factory +
// each live Packet) and frees itself when the last reference drops, so
// declaration order of factories vs. packet-holding components cannot
// dangle. Chunks are only returned to the OS at arena destruction;
// freed nodes recycle through the free list for the whole run.
//
// Concurrency: NOT thread-safe by design. One arena belongs to one
// simulation (one Scenario = one thread); refcounts are plain ints.
// Experiment-level parallelism runs one arena per concurrent Scenario.
//
// Under AddressSanitizer the payload bytes of free-listed nodes are
// poisoned, so a stale pointer into a recycled header is reported at
// the exact use site instead of silently reading the next tenant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <typeinfo>
#include <vector>

#include "core/check.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WMN_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define WMN_ASAN 1
#endif

#if defined(WMN_ASAN)
#include <sanitizer/asan_interface.h>
#define WMN_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define WMN_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define WMN_POISON(addr, size) ((void)0)
#define WMN_UNPOISON(addr, size) ((void)0)
#endif

namespace wmn::net {

class PacketArena {
 public:
  // Large enough for the fattest header in the tree (RerrHeader, 44
  // bytes); Packet::push static-asserts each type against this.
  static constexpr std::size_t kPayloadCapacity = 48;
  static constexpr std::size_t kNodesPerChunk = 256;

  struct Node {
    Node* next;         // stack link (live) / free-list link (freed)
    std::uint32_t refs; // owners: packet tops + predecessor links
    std::uint32_t wire_size;
    const std::type_info* type;
    alignas(std::max_align_t) unsigned char payload[kPayloadCapacity];
  };

  // Created with one reference (the owning factory's).
  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // --- intrusive arena lifetime ---------------------------------------
  void add_ref() { ++refs_; }
  void release_ref() {
    WMN_CHECK_GT(refs_, std::uint64_t{0}, "arena refcount underflow");
    if (--refs_ == 0) delete this;
  }

  // --- node allocation -------------------------------------------------
  [[nodiscard]] Node* allocate() {
    if (free_head_ == nullptr) grow();
    Node* n = free_head_;
    WMN_UNPOISON(n->payload, kPayloadCapacity);
    free_head_ = n->next;
    --free_count_;
    ++allocations_;
    return n;
  }

  void free_node(Node* n) {
    WMN_POISON(n->payload, kPayloadCapacity);
    n->next = free_head_;
    free_head_ = n;
    ++free_count_;
  }

  // Drop one reference to `n`; when it was the last, recycle the node
  // and cascade down the chain it pointed at.
  void release_chain(Node* n) {
    while (n != nullptr && --n->refs == 0) {
      Node* next = n->next;
      free_node(n);
      n = next;
    }
  }

  // --- diagnostics (tests, leak triage) -------------------------------
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t capacity_nodes() const {
    return chunks_.size() * kNodesPerChunk;
  }
  [[nodiscard]] std::size_t live_nodes() const {
    return capacity_nodes() - free_count_;
  }
  // Total allocate() calls ever (recycled or fresh).
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

 private:
  ~PacketArena() {
#if defined(WMN_ASAN)
    // Chunk storage is about to be returned to the allocator; ASan
    // forbids freeing memory that contains poisoned sub-regions.
    for (auto& chunk : chunks_) {
      for (std::size_t i = 0; i < kNodesPerChunk; ++i) {
        WMN_UNPOISON(chunk[i].payload, kPayloadCapacity);
      }
    }
#endif
  }

  void grow();

  Node* free_head_ = nullptr;
  std::size_t free_count_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t refs_ = 1;
  std::vector<std::unique_ptr<Node[]>> chunks_;
};

}  // namespace wmn::net
