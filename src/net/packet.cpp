// Packet is header-only today; this TU anchors the library and hosts
// the one out-of-line definition gcc wants for vague-linkage hygiene.
#include "net/packet.hpp"

namespace wmn::net {
// (intentionally empty)
}  // namespace wmn::net
