#include "phy/shard_router.hpp"

#include <algorithm>
#include <utility>

#include "phy/channel.hpp"

namespace wmn::phy {

ShardRouter::ShardRouter(std::vector<std::uint32_t> region_of_node,
                         std::vector<WirelessChannel*> channels,
                         std::vector<net::PacketFactory*> factories)
    : region_of_node_(std::move(region_of_node)),
      channels_(std::move(channels)),
      factories_(std::move(factories)) {
  WMN_CHECK_EQ(channels_.size(), factories_.size(),
               "one packet factory per region channel");
  WMN_CHECK_GT(channels_.size(), 0u, "router needs at least one region");
  for (const std::uint32_t r : region_of_node_) {
    WMN_CHECK_LT(r, channels_.size(), "node mapped to a nonexistent region");
  }
  outboxes_.resize(channels_.size() * channels_.size());
}

void ShardRouter::post(std::uint32_t src_region, std::uint32_t dst_region,
                       WifiPhy* rx, const net::Packet& packet, double rx_power_dbm,
                       double rx_power_mw, sim::Time arrival, sim::Time duration) {
  WMN_CHECK_NE(src_region, dst_region, "intra-region delivery posted to router");
  Outbox& row = outboxes_[src_region * region_count() + dst_region];
  row.entries.push_back(Entry{net::Packet(packet), rx, rx_power_dbm, rx_power_mw,
                              arrival, duration, row.next_seq++});
}

bool ShardRouter::merge_epoch(sim::Time boundary) {
  const std::uint32_t n = region_count();
  bool any = false;
  if (trace_on_) trace_.clear();
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::uint32_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      const Outbox& row = outboxes_[src * n + dst];
      for (std::uint32_t i = 0; i < row.entries.size(); ++i) {
        const Entry& e = row.entries[i];
        const sim::Time release = e.arrival > boundary ? e.arrival : boundary;
        scratch_.push_back(MergeRef{release, src, e.seq, i});
      }
    }
    if (scratch_.empty()) continue;
    any = true;
    std::sort(scratch_.begin(), scratch_.end(),
              [](const MergeRef& a, const MergeRef& b) {
                if (a.release != b.release) return a.release < b.release;
                if (a.src_region != b.src_region) return a.src_region < b.src_region;
                return a.seq < b.seq;
              });
    for (const MergeRef& ref : scratch_) {
      Entry& e = outboxes_[ref.src_region * n + dst].entries[ref.index];
      if (trace_on_) {
        trace_.push_back(MergeTraceEntry{ref.release, ref.src_region, ref.seq,
                                         e.packet.uid()});
      }
      net::Packet clone = factories_[dst]->clone(e.packet);
      channels_[dst]->accept_cross(e.rx, std::move(clone), e.rx_power_dbm,
                                   e.rx_power_mw, ref.release, e.duration);
      ++merged_;
    }
  }
  if (any) {
    // Drop the source-side packet references here, on the coordinating
    // thread — the barrier orders this against all worker access to
    // the source arenas.
    for (Outbox& row : outboxes_) row.entries.clear();
  }
  return any;
}

std::uint64_t ShardRouter::posted() const {
  std::uint64_t total = 0;
  for (const Outbox& row : outboxes_) total += row.next_seq;
  return total;
}

}  // namespace wmn::phy
