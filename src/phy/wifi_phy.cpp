#include "phy/wifi_phy.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "phy/channel.hpp"

namespace wmn::phy {

WifiPhy::WifiPhy(sim::Simulator& simulator, const PhyConfig& cfg,
                 std::uint32_t node_id, const mobility::MobilityModel* mobility)
    : sim_(simulator),
      cfg_(cfg),
      noise_floor_mw_(dbm_to_mw(cfg.noise_floor_dbm)),
      cca_threshold_mw_(dbm_to_mw(cfg.cca_threshold_dbm)),
      sinr_threshold_lin_(db_to_linear(cfg.sinr_threshold_db)),
      node_id_(node_id),
      mobility_(mobility) {
  WMN_CHECK_NOTNULL(mobility_, "WifiPhy needs a mobility model");
}

sim::Time WifiPhy::tx_duration(std::uint32_t bytes) const {
  const double payload_s = static_cast<double>(bytes) * 8.0 / cfg_.bit_rate_bps;
  return cfg_.preamble + sim::Time::seconds(payload_s);
}

bool WifiPhy::cca_busy() const {
  if (!up_) return false;  // a dead radio senses nothing
  if (state_ != State::kIdle) return true;
  return interference_mw(~0ULL) >= cca_threshold_mw_;
}

void WifiPhy::set_up(bool up) {
  if (up == up_) return;
  if (!up) {
    // Drop a reception lock without notifying the listener — the MAC is
    // powered down before the radio and must see no further callbacks.
    if (locked_) {
      locked_ = false;
      counters_.rx_airtime += sim_.now() - locked_since_;
      if (state_ == State::kRx) state_ = State::kIdle;
    }
    up_ = false;
    down_since_ = sim_.now();
  } else {
    up_ = true;
    down_time_ += sim_.now() - down_since_;
  }
  refresh_cca();
}

void WifiPhy::refresh_cca() {
  const bool busy = cca_busy();
  if (busy == last_cca_busy_) return;
  if (busy) {
    busy_since_ = sim_.now();
  } else {
    counters_.busy_time += sim_.now() - busy_since_;
  }
  last_cca_busy_ = busy;
  if (listener_ != nullptr) listener_->on_cca_change(busy);
}

double WifiPhy::interference_mw(std::uint64_t except_key) const {
  double sum = 0.0;
  for (const auto& a : arrivals_) {
    if (a.key != except_key) sum += a.power_mw;
  }
  return sum;
}

void WifiPhy::send(net::Packet packet) {
  WMN_CHECK(up_, "send() on a powered-down radio");
  WMN_CHECK(state_ == State::kIdle, "send() requires an idle radio");
  WMN_CHECK_NOTNULL(channel_, "radio not attached to a channel");
  state_ = State::kTx;
  const sim::Time duration = tx_duration(packet.size_bytes());
  counters_.tx_airtime += duration;
  ++counters_.tx_frames;
  channel_->transmit(*this, packet, duration);
  sim_.schedule(duration, [this] { finish_tx(); });
  refresh_cca();
}

void WifiPhy::finish_tx() {
  WMN_CHECK(state_ == State::kTx, "finish_tx outside an active transmission");
  state_ = State::kIdle;
  // Energy that arrived while we were transmitting may still be on the
  // air; CCA reflects it now that TX no longer dominates.
  refresh_cca();
  if (listener_ != nullptr) listener_->on_tx_end();
}

void WifiPhy::begin_arrival(net::Packet packet, double rx_power_dbm,
                            double rx_power_mw, sim::Time duration) {
  if (!up_) {
    // Crashed mid-window: energy that was already in flight when the
    // channel-side fault check ran lands here and evaporates.
    ++counters_.rx_dropped_down;
    return;
  }
  const std::uint64_t key = ++next_arrival_key_;
  arrivals_.push_back(
      Arrival{key, std::move(packet), rx_power_mw, sim_.now() + duration});

  const bool decodable = rx_power_dbm >= cfg_.rx_sensitivity_dbm;
  if (state_ == State::kIdle && !locked_ && decodable) {
    // Lock onto this frame.
    locked_ = true;
    locked_key_ = key;
    locked_since_ = sim_.now();
    locked_power_mw_ = rx_power_mw;
    locked_power_dbm_ = rx_power_dbm;
    locked_max_interference_mw_ = interference_mw(key);
    state_ = State::kRx;
    if (listener_ != nullptr) listener_->on_rx_start();
  } else {
    if (decodable) {
      if (state_ == State::kIdle && !locked_) {
        WMN_UNREACHABLE("decodable arrival on an idle, unlocked radio");
      } else {
        ++counters_.rx_missed_busy;
      }
    } else {
      ++counters_.rx_below_sensitivity;
    }
    // This arrival raises the interference seen by a locked frame.
    if (locked_) {
      locked_max_interference_mw_ =
          std::max(locked_max_interference_mw_, interference_mw(locked_key_));
    }
  }

  sim_.schedule(duration, [this, key] { end_arrival(key); });
  refresh_cca();
}

void WifiPhy::end_arrival(std::uint64_t key) {
  const auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                               [key](const Arrival& a) { return a.key == key; });
  WMN_CHECK(it != arrivals_.end(), "end_arrival for an unknown arrival key");

  const bool was_locked_frame = locked_ && key == locked_key_;
  net::Packet packet = std::move(it->packet);
  arrivals_.erase(it);

  if (was_locked_frame) {
    locked_ = false;
    counters_.rx_airtime += sim_.now() - locked_since_;
    state_ = State::kIdle;
    const double sinr_lin =
        locked_power_mw_ / (noise_floor_mw_ + locked_max_interference_mw_);
    // Same comparison as linear_to_db(sinr) >= threshold_db, kept in
    // the linear domain so the decode path never calls log10.
    const bool ok = sinr_lin >= sinr_threshold_lin_;
    const double rx_dbm = locked_power_dbm_;
    if (ok) {
      ++counters_.rx_ok;
      if (listener_ != nullptr) listener_->on_rx_end(std::move(packet), rx_dbm);
    } else {
      ++counters_.rx_failed_sinr;
      if (listener_ != nullptr) listener_->on_rx_end(std::nullopt, rx_dbm);
    }
  }
  refresh_cca();
}

}  // namespace wmn::phy
