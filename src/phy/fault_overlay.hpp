// Fault view of the medium, as the channel sees it.
//
// The fault injector (src/fault) lives *above* the phy layer — it also
// drives MACs and routing agents — so the channel cannot depend on it.
// Instead the channel holds an optional, non-owning pointer to this
// tiny interface and consults it per transmission:
//
//   * node_up(id)       — crashed radios neither source nor receive
//                         copies (the injector also gates WifiPhy/Mac
//                         directly; the channel check just avoids
//                         scheduling deliveries that would be dropped
//                         on arrival anyway);
//   * link_loss_db(...) — extra attenuation for a directed pair right
//                         now (blackout windows), added on top of the
//                         propagation model before the detection-floor
//                         test.
//
// With no overlay installed (the default) the hot path pays exactly one
// null-pointer test per transmission — faults are zero-cost when off.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace wmn::phy {

class FaultOverlay {
 public:
  virtual ~FaultOverlay() = default;

  // False while `node` is crashed.
  [[nodiscard]] virtual bool node_up(std::uint32_t node) const = 0;

  // Additional path loss (dB, >= 0) for tx -> rx at `now`; 0 when the
  // link is healthy.
  [[nodiscard]] virtual double link_loss_db(std::uint32_t tx, std::uint32_t rx,
                                            sim::Time now) const = 0;
};

}  // namespace wmn::phy
