// The shared wireless medium.
//
// One WirelessChannel per simulation: it knows every attached radio,
// and on each transmission computes per-receiver received power through
// the propagation model, delivering an energy arrival (after speed-of-
// light delay) to every radio above the detection floor. Whether the
// arrival is a decodable frame, carrier-sense energy, or interference
// is the *receiving* radio's business (see WifiPhy).
//
// In-flight copies are parked in a free-listed slot pool rather than
// captured inside the scheduled event: the event captures only (this,
// slot index), which keeps it inside EventFn's inline buffer — a packet
// capture would not fit, by design — and reuses delivery storage
// instead of allocating per receiver.
//
// Broadcast fan-out cost: the naive transmit() walks all N radios with
// a propagation-model call per pair — O(N^2) for broadcast-heavy
// discovery even though most receivers sit far below the detection
// floor. enable_spatial_index() activates two layers on top:
//
//   * a phy::SpatialIndex (uniform grid fed by mobility epochs) culls
//     receivers provably out of range (PropagationModel::max_range_m)
//     before any propagation math;
//   * a per-source neighbour cache memoises the candidate list and,
//     for pinned-position pairs (both mobility bounds are points), the
//     full link budget — including the shadowing per-link hash — so a
//     static mesh pays the propagation model once per link per run.
//
// The indexed path is bit-identical to the full scan: candidates are
// examined in attach order, culled pairs are provably below the floor
// and are bulk-accounted as copies_dropped_floor, and cached budgets
// are the exact values the model would recompute. With a fault overlay
// installed the channel reverts to the full scan so the overlay's
// counter attribution (fault vs floor drops) stays exact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "phy/fault_overlay.hpp"
#include "phy/propagation.hpp"
#include "phy/spatial_index.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/simulator.hpp"

namespace wmn::phy {

class WirelessChannel {
 public:
  WirelessChannel(sim::Simulator& simulator,
                  std::unique_ptr<PropagationModel> propagation);

  WirelessChannel(const WirelessChannel&) = delete;
  WirelessChannel& operator=(const WirelessChannel&) = delete;

  // Register a radio. The radio must outlive the channel's use of it.
  void attach(WifiPhy* phy);

  // Broadcast `packet` from `src` to every other attached radio.
  // Called by WifiPhy::send(); not part of the public user API.
  void transmit(const WifiPhy& src, const net::Packet& packet, sim::Time duration);

  // Turn on the spatial neighbourhood index + link-budget cache for
  // the given deployment area. Callable before or after attaches; the
  // grid itself is built lazily on the first transmission (cell size
  // derives from the radios' detection range, known only then).
  // Results are bit-identical with the index on or off.
  void enable_spatial_index(double area_width_m, double area_height_m);

  [[nodiscard]] bool spatial_index_enabled() const { return index_enabled_; }
  // Diagnostics/tests: null until enabled AND the first indexed
  // transmission built the grid.
  [[nodiscard]] const SpatialIndex* spatial_index() const { return index_.get(); }

  [[nodiscard]] std::size_t radio_count() const { return radios_.size(); }

  // Received power between two attached radios right now — used by
  // scenario builders to check topology connectivity before a run.
  [[nodiscard]] double link_rx_power_dbm(const WifiPhy& tx, const WifiPhy& rx) const;

  // Install (or clear, with nullptr) the fault overlay. Non-owning; the
  // overlay must outlive its installation. See phy/fault_overlay.hpp.
  void set_fault_overlay(const FaultOverlay* overlay) { fault_ = overlay; }

  struct Counters {
    std::uint64_t transmissions = 0;
    std::uint64_t copies_delivered = 0;  // arrivals above detection floor
    std::uint64_t copies_dropped_floor = 0;
    std::uint64_t copies_dropped_fault = 0;  // receiver crashed mid-window
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Copies currently propagating (diagnostics / tests).
  [[nodiscard]] std::size_t deliveries_in_flight() const { return in_flight_; }

 private:
  struct PendingDelivery {
    std::optional<net::Packet> packet;
    WifiPhy* rx = nullptr;
    double rx_power_dbm = 0.0;
    sim::Time duration{};
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // One candidate receiver in a source's cached neighbour list. For
  // pinned-position pairs the link budget and distance are memoised;
  // pairs with a mobile endpoint recompute them per transmission.
  struct Candidate {
    std::uint32_t rx_index = 0;
    bool budget_cached = false;
    double power_dbm = 0.0;
    double distance_m = 0.0;
  };

  // Per-source candidate list, valid for one SpatialIndex version.
  // `culled` counts receivers provably below the detection floor for
  // this version (out of range, or a pinned pair whose exact cached
  // budget is under the receiver's floor) — bulk-added to
  // copies_dropped_floor per transmission so the counter matches the
  // full scan exactly.
  struct NeighborCache {
    std::uint64_t built_version = ~std::uint64_t{0};
    std::vector<Candidate> candidates;
    std::uint64_t culled = 0;
  };

  std::uint32_t acquire_slot();
  void deliver(std::uint32_t slot);
  void schedule_delivery(WifiPhy* rx, const net::Packet& packet,
                         double p_dbm, double distance_m, sim::Time duration);
  void build_spatial_index();
  void rebuild_neighbor_cache(std::uint32_t src_index);
  void transmit_indexed(const WifiPhy& src, const net::Packet& packet,
                        sim::Time duration, sim::Time now,
                        mobility::Vec2 tx_pos);

  sim::Simulator& sim_;
  std::unique_ptr<PropagationModel> propagation_;
  const FaultOverlay* fault_ = nullptr;
  std::vector<WifiPhy*> radios_;
  std::vector<PendingDelivery> pending_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_flight_ = 0;
  Counters counters_;

  // --- spatial index state (inert unless enable_spatial_index()) ------
  bool index_enabled_ = false;
  double area_width_m_ = 0.0;
  double area_height_m_ = 0.0;
  std::unique_ptr<SpatialIndex> index_;
  bool ranges_valid_ = false;
  double min_detection_floor_dbm_ = 0.0;
  std::vector<double> radio_range_m_;      // per attach index
  std::vector<NeighborCache> neighbor_caches_;
  std::vector<std::uint32_t> gather_scratch_;
};

}  // namespace wmn::phy
