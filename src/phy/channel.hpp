// The shared wireless medium.
//
// One WirelessChannel per simulation: it knows every attached radio,
// and on each transmission computes per-receiver received power through
// the propagation model, delivering an energy arrival (after speed-of-
// light delay) to every radio above the detection floor. Whether the
// arrival is a decodable frame, carrier-sense energy, or interference
// is the *receiving* radio's business (see WifiPhy).
//
// In-flight copies are parked in a free-listed slot pool rather than
// captured inside the scheduled event: the event captures only (this,
// slot index), which keeps it inside EventFn's inline buffer — a packet
// capture would not fit, by design — and reuses delivery storage
// instead of allocating per receiver.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "phy/fault_overlay.hpp"
#include "phy/propagation.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/simulator.hpp"

namespace wmn::phy {

class WirelessChannel {
 public:
  WirelessChannel(sim::Simulator& simulator,
                  std::unique_ptr<PropagationModel> propagation);

  WirelessChannel(const WirelessChannel&) = delete;
  WirelessChannel& operator=(const WirelessChannel&) = delete;

  // Register a radio. The radio must outlive the channel's use of it.
  void attach(WifiPhy* phy);

  // Broadcast `packet` from `src` to every other attached radio.
  // Called by WifiPhy::send(); not part of the public user API.
  void transmit(const WifiPhy& src, const net::Packet& packet, sim::Time duration);

  [[nodiscard]] std::size_t radio_count() const { return radios_.size(); }

  // Received power between two attached radios right now — used by
  // scenario builders to check topology connectivity before a run.
  [[nodiscard]] double link_rx_power_dbm(const WifiPhy& tx, const WifiPhy& rx) const;

  // Install (or clear, with nullptr) the fault overlay. Non-owning; the
  // overlay must outlive its installation. See phy/fault_overlay.hpp.
  void set_fault_overlay(const FaultOverlay* overlay) { fault_ = overlay; }

  struct Counters {
    std::uint64_t transmissions = 0;
    std::uint64_t copies_delivered = 0;  // arrivals above detection floor
    std::uint64_t copies_dropped_floor = 0;
    std::uint64_t copies_dropped_fault = 0;  // receiver crashed mid-window
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Copies currently propagating (diagnostics / tests).
  [[nodiscard]] std::size_t deliveries_in_flight() const { return in_flight_; }

 private:
  struct PendingDelivery {
    std::optional<net::Packet> packet;
    WifiPhy* rx = nullptr;
    double rx_power_dbm = 0.0;
    sim::Time duration{};
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  std::uint32_t acquire_slot();
  void deliver(std::uint32_t slot);

  sim::Simulator& sim_;
  std::unique_ptr<PropagationModel> propagation_;
  const FaultOverlay* fault_ = nullptr;
  std::vector<WifiPhy*> radios_;
  std::vector<PendingDelivery> pending_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_flight_ = 0;
  Counters counters_;
};

}  // namespace wmn::phy
