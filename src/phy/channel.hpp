// The shared wireless medium.
//
// One WirelessChannel per simulation: it knows every attached radio,
// and on each transmission computes per-receiver received power through
// the propagation model, delivering an energy arrival (after speed-of-
// light delay) to every radio above the detection floor. Whether the
// arrival is a decodable frame, carrier-sense energy, or interference
// is the *receiving* radio's business (see WifiPhy).
//
// In-flight copies are parked in a free-listed slot pool rather than
// captured inside the scheduled event: the event captures only (this,
// slot index), which keeps it inside EventFn's inline buffer — a packet
// capture would not fit, by design — and reuses delivery storage
// instead of allocating per receiver.
//
// Broadcast fan-out cost: all candidate-link math runs through the
// phy::LinkBudgetKernel over reusable SoA buffers (one batched
// distance pass + one batched model pass per transmission) instead of
// a virtual propagation call per pair. On top of that,
// enable_spatial_index() activates two layers:
//
//   * a phy::SpatialIndex (uniform grid fed by mobility epochs) culls
//     receivers provably out of range (PropagationModel::max_range_m)
//     before any propagation math;
//   * a per-source neighbour cache memoises the candidate list in SoA
//     form and, for pinned-position pairs (both mobility bounds are
//     points), the full link budget — power in dBm AND milliwatts plus
//     the propagation delay — so a static mesh pays the propagation
//     model (and the dBm->mW pow()) once per link per run.
//
// Even without the index, the full scan culls receivers whose batched
// distance exceeds the source's conservative max_range_m inversion
// (the same proof the spatial index rests on) before the model pass.
//
// The indexed path is bit-identical to the full scan: candidates are
// examined in attach order, culled pairs are provably below the floor
// and are bulk-accounted as copies_dropped_floor, and cached budgets
// are the exact values the kernel would recompute. With a fault
// overlay installed the channel reverts to the per-pair scan so the
// overlay's counter attribution (fault vs floor drops) stays exact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "phy/fault_overlay.hpp"
#include "phy/link_budget_kernel.hpp"
#include "phy/propagation.hpp"
#include "phy/spatial_index.hpp"
#include "phy/wifi_phy.hpp"
#include "sim/simulator.hpp"

namespace wmn::phy {

class ShardRouter;

class WirelessChannel {
 public:
  WirelessChannel(sim::Simulator& simulator,
                  std::unique_ptr<PropagationModel> propagation);

  WirelessChannel(const WirelessChannel&) = delete;
  WirelessChannel& operator=(const WirelessChannel&) = delete;

  // Register a radio. The radio must outlive the channel's use of it.
  void attach(WifiPhy* phy);

  // --- sharded engine hooks (see phy/shard_router.hpp) ----------------
  // Register a radio homed in ANOTHER region as a delivery candidate:
  // grows the radio table, caches, and spatial index, but never takes
  // ownership — the phy keeps transmitting through its home channel.
  // Regions must attach/attach_remote in the same global node order so
  // attach indices agree on every region channel.
  void attach_remote(WifiPhy* phy);

  // Install the cross-region router and this channel's region id. With
  // a router installed, schedule_delivery() forwards any receiver
  // homed elsewhere to the router instead of the local slot pool.
  void set_shard_router(ShardRouter* router, std::uint32_t region_id);

  // Router re-entry on the destination region: park a re-materialised
  // cross-region copy and deliver it at `release_at` (>= the physical
  // arrival; see DESIGN.md §3e). Runs on the coordinating thread at an
  // epoch barrier, with every worker parked.
  void accept_cross(WifiPhy* rx, net::Packet packet, double p_dbm, double p_mw,
                    sim::Time release_at, sim::Time duration);

  // Broadcast `packet` from `src` to every other attached radio.
  // Called by WifiPhy::send(); not part of the public user API.
  void transmit(const WifiPhy& src, const net::Packet& packet, sim::Time duration);

  // Turn on the spatial neighbourhood index + link-budget cache for
  // the given deployment area. Callable before or after attaches; the
  // grid itself is built lazily on the first transmission (cell size
  // derives from the radios' detection range, known only then).
  // Results are bit-identical with the index on or off.
  void enable_spatial_index(double area_width_m, double area_height_m);

  [[nodiscard]] bool spatial_index_enabled() const { return index_enabled_; }
  // Diagnostics/tests: null until enabled AND the first indexed
  // transmission built the grid.
  [[nodiscard]] const SpatialIndex* spatial_index() const { return index_.get(); }

  [[nodiscard]] std::size_t radio_count() const { return radios_.size(); }

  // Received power between two attached radios right now — used by
  // scenario builders to check topology connectivity before a run.
  [[nodiscard]] double link_rx_power_dbm(const WifiPhy& tx, const WifiPhy& rx) const;

  // Install (or clear, with nullptr) the fault overlay. Non-owning; the
  // overlay must outlive its installation. See phy/fault_overlay.hpp.
  void set_fault_overlay(const FaultOverlay* overlay) { fault_ = overlay; }

  // Test hook: force the kernel's scalar path (kAuto uses the explicit
  // SIMD lanes when available). Outputs are bit-identical either way —
  // the batch-vs-scalar equivalence tests pin exactly that.
  void set_link_eval_mode(LinkBudgetKernel::Mode mode) { eval_mode_ = mode; }

  struct Counters {
    std::uint64_t transmissions = 0;
    std::uint64_t copies_delivered = 0;  // arrivals above detection floor
    std::uint64_t copies_dropped_floor = 0;
    std::uint64_t copies_dropped_fault = 0;  // receiver crashed mid-window
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Copies currently propagating (diagnostics / tests).
  [[nodiscard]] std::size_t deliveries_in_flight() const { return in_flight_; }

  // Dynamic footprint of the channel's own state (slot pool, SoA
  // caches, kernel batches, spatial index scratch) — feeds the
  // bytes_per_node bench counter.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct PendingDelivery {
    std::optional<net::Packet> packet;
    WifiPhy* rx = nullptr;
    double rx_power_dbm = 0.0;
    double rx_power_mw = 0.0;
    sim::Time duration{};
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // Per-source candidate list in SoA form, valid for one SpatialIndex
  // version, elements in ascending attach order. Memoised (pinned-
  // pair) entries carry the exact budget: power in dBm and mW plus the
  // propagation delay, all computed once at rebuild through the same
  // kernel the live path uses. Live entries (a mobile endpoint) are
  // re-evaluated per transmission; n_live == 0 (the static-mesh common
  // case) enables the branch-free fast loop.
  //
  // `culled` counts receivers provably below the detection floor for
  // this version (out of range, or a pinned pair whose exact cached
  // budget is under the receiver's floor) — bulk-added to
  // copies_dropped_floor per transmission so the counter matches the
  // full scan exactly.
  struct NeighborCache {
    std::uint64_t built_version = ~std::uint64_t{0};
    std::uint64_t culled = 0;
    std::uint32_t n_live = 0;
    std::vector<std::uint32_t> rx_index;
    std::vector<std::uint8_t> is_cached;  // 1 = memoised budget below
    std::vector<double> power_dbm;
    std::vector<double> power_mw;
    std::vector<sim::Time> delay;

    [[nodiscard]] std::size_t memory_bytes() const {
      return rx_index.capacity() * sizeof(std::uint32_t) +
             is_cached.capacity() +
             power_dbm.capacity() * sizeof(double) +
             power_mw.capacity() * sizeof(double) +
             delay.capacity() * sizeof(sim::Time);
    }
  };

  std::uint32_t acquire_slot();
  void deliver(std::uint32_t slot);
  void schedule_delivery(WifiPhy* rx, const net::Packet& packet, double p_dbm,
                         double p_mw, sim::Time delay, sim::Time duration);
  void refresh_ranges();
  void build_spatial_index();
  void rebuild_neighbor_cache(std::uint32_t src_index);
  void transmit_indexed(const WifiPhy& src, const net::Packet& packet,
                        sim::Time duration, sim::Time now,
                        mobility::Vec2 tx_pos);
  void transmit_full_scan(const WifiPhy& src, const net::Packet& packet,
                          sim::Time duration, sim::Time now,
                          mobility::Vec2 tx_pos);
  void transmit_fault_scan(const WifiPhy& src, const net::Packet& packet,
                           sim::Time duration, sim::Time now,
                           mobility::Vec2 tx_pos);

  sim::Simulator& sim_;
  std::unique_ptr<PropagationModel> propagation_;
  const FaultOverlay* fault_ = nullptr;
  ShardRouter* router_ = nullptr;
  std::uint32_t region_id_ = 0;
  std::vector<WifiPhy*> radios_;
  std::vector<PendingDelivery> pending_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t in_flight_ = 0;
  Counters counters_;
  LinkBudgetKernel::Mode eval_mode_ = LinkBudgetKernel::Mode::kAuto;
  // Reusable kernel buffers (hoisted out of any per-node state): one
  // for per-transmission evaluation, one for cache rebuilds.
  LinkBudgetKernel::Batch batch_;
  LinkBudgetKernel::Batch rebuild_batch_;

  // Conservative per-source detection ranges (max_range_m at the
  // minimum attached floor) — used by both the spatial index grid and
  // the full scan's distance prefilter. Recomputed after attaches.
  bool ranges_valid_ = false;
  double min_detection_floor_dbm_ = 0.0;
  std::vector<double> radio_range_m_;  // per attach index

  // --- spatial index state (inert unless enable_spatial_index()) ------
  bool index_enabled_ = false;
  double area_width_m_ = 0.0;
  double area_height_m_ = 0.0;
  std::unique_ptr<SpatialIndex> index_;
  std::vector<NeighborCache> neighbor_caches_;
  std::vector<std::uint32_t> gather_scratch_;
};

}  // namespace wmn::phy
